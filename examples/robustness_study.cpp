// Robustness study: the paper's §5 future work — sensor failure and
// imperfect communication — measured on the full protocol. Sweeps a grid of
// (channel loss, failure fraction) and reports delay/energy/missed counts;
// optionally writes the grid as CSV for plotting.
//
//   $ ./robustness_study [--reps N] [--threads N] [--csv out.csv]
//                        [--gilbert]
#include <fstream>
#include <iostream>

#include "io/cli.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "runtime/thread_pool.hpp"
#include "world/paper_setup.hpp"
#include "world/sweep.hpp"

int main(int argc, char** argv) {
  std::int64_t reps = 8;
  std::int64_t threads = 0;
  std::string csv_path;
  bool gilbert = false;

  pas::io::Cli cli("robustness_study",
                   "PAS under lossy channels and node failures");
  cli.add_int("reps", &reps, "replications per grid point");
  cli.add_int("threads", &threads, "worker threads (0 = all cores)");
  cli.add_string("csv", &csv_path, "write the sweep grid to this CSV file");
  cli.add_flag("gilbert", &gilbert,
               "use the bursty Gilbert-Elliott channel instead of Bernoulli");
  if (!cli.parse(argc, argv)) return cli.status() == 0 ? 0 : 2;

  pas::runtime::ThreadPool pool(static_cast<std::size_t>(threads));
  std::ofstream csv_file;
  std::unique_ptr<pas::io::CsvWriter> csv;
  if (!csv_path.empty()) {
    csv_file.open(csv_path);
    if (!csv_file) {
      std::cerr << "cannot open " << csv_path << '\n';
      return 1;
    }
    csv = std::make_unique<pas::io::CsvWriter>(csv_file);
    csv->header({"loss_pct", "failure_pct", "delay_s", "delay_ci95",
                 "energy_j", "missed", "deliveries", "dropped"});
  }

  std::cout << "channel: " << (gilbert ? "gilbert-elliott (bursty)" : "bernoulli")
            << ", " << reps << " replications per point\n\n";
  pas::io::Table table({"loss_%", "fail_%", "delay_s", "ci95", "energy_J",
                        "missed/run", "drop_rate"});

  for (const double loss : {0.0, 10.0, 30.0, 50.0}) {
    for (const double fail : {0.0, 10.0, 25.0}) {
      pas::world::PaperSetupOverrides o;
      o.policy = pas::core::Policy::kPas;
      pas::world::ScenarioConfig cfg = pas::world::paper_scenario(o);
      if (loss > 0.0) {
        if (gilbert) {
          cfg.channel = pas::world::ChannelKind::kGilbertElliott;
          // Scale the bad-state dwell so the long-run loss tracks `loss`.
          cfg.gilbert = {.p_good_to_bad = 0.05,
                         .p_bad_to_good = 0.05 * (100.0 - loss) / loss,
                         .loss_good = 0.0,
                         .loss_bad = 1.0};
        } else {
          cfg.channel = pas::world::ChannelKind::kBernoulli;
          cfg.channel_loss = loss / 100.0;
        }
      }
      cfg.failures.fraction = fail / 100.0;
      cfg.failures.window_start_s = 0.0;
      cfg.failures.window_end_s = 75.0;

      const auto agg = pas::world::run_replicated(
          cfg, static_cast<std::size_t>(reps), &pool);
      double deliveries = 0.0, dropped = 0.0;
      for (const auto& r : agg.runs) {
        deliveries += static_cast<double>(r.network.deliveries);
        dropped += static_cast<double>(r.network.dropped_channel);
      }
      const double drop_rate =
          deliveries + dropped > 0.0 ? dropped / (deliveries + dropped) : 0.0;

      table.add_row({pas::io::fixed(loss, 0), pas::io::fixed(fail, 0),
                     pas::io::fixed(agg.delay_s.mean, 3),
                     "±" + pas::io::fixed(agg.delay_s.ci95_half, 3),
                     pas::io::fixed(agg.energy_j.mean, 3),
                     pas::io::fixed(agg.mean_missed, 2),
                     pas::io::fixed(drop_rate, 3)});
      if (csv) {
        csv->row_values({loss, fail, agg.delay_s.mean, agg.delay_s.ci95_half,
                         agg.energy_j.mean, agg.mean_missed, deliveries,
                         dropped});
      }
    }
  }
  table.print(std::cout);
  if (csv) std::cout << "\nwrote " << csv->rows_written() << " rows to " << csv_path << '\n';

  std::cout <<
      "\nexpected pattern: detection survives loss (sensing is local); delay\n"
      "degrades gracefully; failures thin the network and raise delay more\n"
      "than loss does. This quantifies the paper's section-5 future work.\n";
  return 0;
}

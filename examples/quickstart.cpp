// Quickstart: run the paper's 30-node scenario under PAS and print what
// happened. Mirrors README.md's five-minute tour of the public API.
//
//   $ ./quickstart [--seed N] [--policy PAS|SAS|NS|DutyCycle|ThresholdHold]
//                  [--max-sleep S] [--alert S] [--trace]
#include <cstdio>
#include <iostream>

#include "core/policy.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "world/config_json.hpp"
#include "world/paper_setup.hpp"
#include "world/scenario.hpp"

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::string policy = "PAS";
  double max_sleep = 20.0;
  double alert = 20.0;
  bool trace = false;
  bool json = false;

  pas::io::Cli cli("quickstart",
                   "run one simulation under any registered sleeping policy "
                   "and report");
  cli.add_uint("seed", &seed, "random seed (drives deployment & timing)");
  cli.add_string("policy", &policy, "sleeping policy: PAS, SAS, NS, DutyCycle or ThresholdHold");
  cli.add_double("max-sleep", &max_sleep, "maximum sleeping interval (s)");
  cli.add_double("alert", &alert, "alert-time threshold T_alert (s)");
  cli.add_flag("trace", &trace, "print the protocol event trace");
  cli.add_flag("json", &json, "emit the full run record as JSON and exit");
  if (!cli.parse(argc, argv)) return cli.status() == 0 ? 0 : 2;

  // 1. Configure the canonical experiment (§4 of the paper: 30 nodes,
  //    10 m transmission range, Telos power numbers).
  pas::world::PaperSetupOverrides o;
  o.seed = seed;
  o.max_sleep_s = max_sleep;
  o.alert_threshold_s = alert;
  if (const pas::core::PolicyInfo* info = pas::core::find_policy(policy)) {
    o.policy = info->kind;
  } else {
    std::fprintf(stderr, "unknown policy '%s'; registered policies:\n",
                 policy.c_str());
    pas::core::print_policy_registry(stderr);
    return 2;
  }
  pas::world::ScenarioConfig cfg = pas::world::paper_scenario(o);
  cfg.enable_trace = trace;

  // 2. Run the simulation (deterministic for a given seed).
  const pas::world::RunResult result = pas::world::run_scenario(cfg);

  if (json) {
    std::cout << pas::world::run_record(cfg, result).dump(2) << '\n';
    return 0;
  }

  // 3. Report the paper's two metrics plus supporting detail.
  const auto& m = result.metrics;
  std::cout << "policy=" << policy << " seed=" << seed
            << " nodes=" << m.node_count << " duration=" << m.duration_s
            << "s\n\n";

  pas::io::Table summary({"metric", "value"});
  summary.add_row({"avg detection delay (s)", pas::io::fixed(m.avg_delay_s, 3)});
  summary.add_row({"p95 detection delay (s)", pas::io::fixed(m.p95_delay_s, 3)});
  summary.add_row({"max detection delay (s)", pas::io::fixed(m.max_delay_s, 3)});
  summary.add_row({"avg energy per node (J)", pas::io::fixed(m.avg_energy_j, 4)});
  summary.add_row({"active fraction", pas::io::fixed(m.avg_active_fraction, 3)});
  summary.add_row({"nodes reached", std::to_string(m.reached)});
  summary.add_row({"nodes detected", std::to_string(m.detected)});
  summary.add_row({"missed / censored",
                   std::to_string(m.missed) + " / " + std::to_string(m.censored)});
  summary.add_row({"broadcasts", std::to_string(m.network.broadcasts)});
  summary.add_row({"alert entries", std::to_string(m.protocol.alert_entries)});
  summary.print(std::cout);

  std::cout << "\nper-node outcomes (first 10):\n";
  pas::io::Table nodes({"id", "x", "y", "arrival_s", "detected_s", "delay_s",
                        "energy_mJ"});
  for (const auto& oc : result.outcomes) {
    if (oc.id >= 10) break;
    nodes.add_row({std::to_string(oc.id), pas::io::fixed(oc.position.x, 1),
                   pas::io::fixed(oc.position.y, 1),
                   oc.was_reached ? pas::io::fixed(oc.arrival, 1) : "-",
                   oc.was_detected ? pas::io::fixed(oc.detected, 1) : "-",
                   oc.was_detected ? pas::io::fixed(oc.delay_s, 2) : "-",
                   pas::io::fixed(oc.energy_j * 1e3, 1)});
  }
  nodes.print(std::cout);

  if (trace) {
    std::cout << "\nprotocol trace (first 60 events):\n";
    std::size_t shown = 0;
    for (const auto& e : result.trace.events()) {
      if (++shown > 60) break;
      std::cout << "  t=" << pas::io::fixed(e.time, 3) << "s ["
                << pas::sim::to_string(e.category) << "] node " << e.node
                << ": " << pas::sim::format_event(e) << '\n';
    }
  }
  return 0;
}

// Plume monitoring: watch a pollutant plume evolve under the
// advection–diffusion PDE while a PAS network tracks it; renders the field
// and node states as ASCII frames and optionally dumps per-node CSV.
//
//   $ ./plume_monitoring [--frames N] [--seed N] [--csv out.csv]
//                        [--diffusivity D] [--wind-x W] [--wind-y W]
#include <fstream>
#include <iostream>

#include "io/cli.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "metrics/boundary.hpp"
#include "stimulus/contour.hpp"
#include "world/paper_setup.hpp"
#include "world/scenario.hpp"

namespace {

// Overlays node markers on an ASCII field rendering.
std::string render_frame(const pas::stimulus::StimulusModel& model,
                         const pas::world::RunResult& result,
                         pas::geom::Aabb region, double t, int cols,
                         int rows) {
  std::string art =
      pas::stimulus::render_ascii(model, t, region, cols, rows, 0.0, 2.0);
  for (std::size_t i = 0; i < result.positions.size(); ++i) {
    const auto p = result.positions[i];
    const int c = static_cast<int>((p.x - region.lo.x) / region.width() * cols);
    const int r = static_cast<int>((region.hi.y - p.y) / region.height() * rows);
    if (c < 0 || c >= cols || r < 0 || r >= rows) continue;
    const auto idx = static_cast<std::size_t>(r) *
                         (static_cast<std::size_t>(cols) + 1) +
                     static_cast<std::size_t>(c);
    const auto& oc = result.outcomes[i];
    // o = still safe/asleep, X = has detected by t.
    art[idx] = (oc.was_detected && oc.detected <= t) ? 'X' : 'o';
  }
  return art;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t frames = 5;
  std::uint64_t seed = 7;
  std::string csv_path;
  double diffusivity = 1.2;
  double wind_x = 0.08, wind_y = 0.06;

  pas::io::Cli cli("plume_monitoring",
                   "PAS network tracking an advection-diffusion plume");
  cli.add_int("frames", &frames, "number of ASCII frames to render");
  cli.add_uint("seed", &seed, "random seed");
  cli.add_string("csv", &csv_path, "write per-node outcomes to this CSV file");
  cli.add_double("diffusivity", &diffusivity, "plume diffusivity (m^2/s)");
  cli.add_double("wind-x", &wind_x, "wind x-component (m/s)");
  cli.add_double("wind-y", &wind_y, "wind y-component (m/s)");
  if (!cli.parse(argc, argv)) return cli.status() == 0 ? 0 : 2;

  pas::world::PaperSetupOverrides o;
  o.seed = seed;
  o.stimulus = pas::world::StimulusKind::kPde;
  pas::world::ScenarioConfig cfg = pas::world::paper_scenario(o);
  cfg.pde.diffusivity = diffusivity;
  cfg.pde.wind = {wind_x, wind_y};

  std::cout << "simulating " << cfg.deployment.count << " nodes over "
            << cfg.duration_s << "s (PDE grid " << cfg.pde.nx << "x"
            << cfg.pde.ny << ", D=" << diffusivity << ", wind=(" << wind_x
            << "," << wind_y << "))...\n";
  const auto model = pas::world::make_stimulus(cfg);
  const auto result = pas::world::run_scenario(cfg);

  for (std::int64_t f = 1; f <= frames; ++f) {
    const double t =
        cfg.pde.start_time +
        (cfg.duration_s - cfg.pde.start_time) * static_cast<double>(f) /
            static_cast<double>(frames);
    std::cout << "\n--- t = " << pas::io::fixed(t, 0)
              << "s  (o = node, X = node that has detected) ---\n"
              << render_frame(*model, result, cfg.deployment.region, t, 64, 24);
  }

  const auto& m = result.metrics;
  std::cout << "\nresult: detected " << m.detected << "/" << m.reached
            << " reached nodes, avg delay "
            << pas::io::fixed(m.avg_delay_s, 2) << "s, avg energy "
            << pas::io::fixed(m.avg_energy_j, 3) << "J/node\n";

  // How well does the network's coverage knowledge locate the plume edge?
  // Compare the covered/uncovered midpoint estimate against the model's
  // threshold iso-contour at mid-run.
  {
    const double t = 0.5 * (cfg.pde.start_time + cfg.duration_s);
    std::vector<bool> covered(result.positions.size());
    for (std::size_t i = 0; i < covered.size(); ++i) {
      covered[i] = result.outcomes[i].was_detected &&
                   result.outcomes[i].detected <= t;
    }
    const auto points = pas::metrics::estimate_boundary_points(
        result.positions, covered, cfg.radio.range_m);
    const auto segments = pas::stimulus::extract_iso_segments(
        *model, t, cfg.deployment.region, 96, 96, cfg.pde.threshold);
    if (!points.empty() && !segments.empty()) {
      double sum = 0.0, worst = 0.0;
      for (const auto& p : points) {
        double best = 1e300;
        for (const auto& [a, b] : segments) {
          best = std::min(best, pas::geom::point_segment_distance(p, a, b));
        }
        sum += best;
        worst = std::max(worst, best);
      }
      std::cout << "boundary estimate at t=" << pas::io::fixed(t, 0) << "s: "
                << points.size() << " witness points, mean error "
                << pas::io::fixed(sum / static_cast<double>(points.size()), 2)
                << "m, max " << pas::io::fixed(worst, 2) << "m\n";
    }
  }

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "cannot open " << csv_path << " for writing\n";
      return 1;
    }
    pas::io::CsvWriter csv(out);
    csv.header({"id", "x", "y", "arrival_s", "detected_s", "delay_s",
                "energy_j", "tx_count"});
    for (const auto& oc : result.outcomes) {
      csv.row({std::to_string(oc.id), pas::io::format_double(oc.position.x),
               pas::io::format_double(oc.position.y),
               pas::io::format_double(oc.arrival),
               pas::io::format_double(oc.detected),
               oc.was_detected ? pas::io::format_double(oc.delay_s) : "",
               pas::io::format_double(oc.energy_j),
               std::to_string(oc.tx_count)});
    }
    std::cout << "wrote " << csv.rows_written() << " rows to " << csv_path
              << '\n';
  }
  return 0;
}

// Campaign-engine quickstart: build a manifest in code, run it sharded, and
// read the aggregated results — the same machinery `pas-exp` drives from a
// JSON file (examples/campaign.json).
//
// Here: a miniature Figure-4 campaign (policy × max sleeping interval),
// aggregated in memory and printed as a series table.
#include <cstdio>
#include <iostream>

#include "exp/manifest.hpp"
#include "exp/runner.hpp"
#include "io/table.hpp"
#include "world/paper_setup.hpp"

int main() {
  pas::exp::Manifest manifest;
  manifest.name = "fig4-mini";
  manifest.description = "detection delay vs max sleeping interval";
  manifest.base = pas::world::paper_scenario();
  manifest.replications = 10;
  manifest.seed_base = 1;
  manifest.axes = {
      pas::exp::Axis{.kind = pas::exp::AxisKind::kPolicy,
                     .labels = {"NS", "SAS", "PAS"}},
      pas::exp::Axis{.kind = pas::exp::AxisKind::kMaxSleep,
                     .numbers = {5.0, 10.0, 20.0, 40.0}},
  };

  std::printf("running %zu points x %zu replications...\n",
              manifest.point_count(), manifest.replications);

  // No output paths: aggregate in memory. pas-exp adds --out/--resume.
  pas::exp::CampaignOptions options;
  options.jobs = 0;  // hardware concurrency

  // Summaries arrive via the aggregator; collect them through run_campaign's
  // in-memory path by re-running with a progress hook.
  const auto points = pas::exp::expand_grid(manifest);
  std::vector<pas::exp::PointSummary> results(points.size());
  options.progress = [&results](const pas::exp::PointSummary& s, std::size_t,
                                std::size_t) { results[s.point] = s; };
  const auto report = pas::exp::run_campaign(manifest, options);

  pas::io::Table table({"max_sleep_s", "delay_NS", "delay_SAS", "delay_PAS"});
  const auto& sleeps = manifest.axes[1].numbers;
  for (std::size_t s = 0; s < sleeps.size(); ++s) {
    std::vector<std::string> row{pas::io::fixed(sleeps[s], 0)};
    for (std::size_t p = 0; p < 3; ++p) {
      row.push_back(pas::io::fixed(results[p * sleeps.size() + s].delay_s.mean, 3));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::printf("%zu runs in %.1fs\n", report.computed * report.replications,
              report.wall_s);

  // The manifest is a serialisable artifact; this JSON is what pas-exp loads.
  std::printf("\nmanifest JSON:\n%s\n", manifest.to_json().dump(2).c_str());
  return 0;
}

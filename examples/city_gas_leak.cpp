// Emergency-response sizing: the paper's §3.4 example — "the spreading of
// noxious gas in a city is highly emergent. In this case, the alert area
// should be enlarged to minimize detecting delays. In a less hazardous
// case, we can reduce the alert area to cut down energy consumption."
//
// This example runs a fast gas front against a sweep of alert-time
// thresholds and prints the delay/energy trade-off so an operator can pick
// T_alert for their hazard class.
//
//   $ ./city_gas_leak [--speed V] [--reps N] [--threads N]
#include <iostream>

#include "io/cli.hpp"
#include "io/table.hpp"
#include "runtime/thread_pool.hpp"
#include "world/paper_setup.hpp"
#include "world/sweep.hpp"

int main(int argc, char** argv) {
  double speed = 0.9;  // a fast, hazardous release
  std::int64_t reps = 10;
  std::int64_t threads = 0;

  pas::io::Cli cli("city_gas_leak",
                   "size the PAS alert area for an emergent gas release");
  cli.add_double("speed", &speed, "mean front speed (m/s)");
  cli.add_int("reps", &reps, "replications per threshold");
  cli.add_int("threads", &threads, "worker threads (0 = all cores)");
  if (!cli.parse(argc, argv)) return cli.status() == 0 ? 0 : 2;

  pas::runtime::ThreadPool pool(static_cast<std::size_t>(threads));

  std::cout << "gas release at the depot corner, front speed " << speed
            << " m/s; sweeping T_alert...\n\n";

  pas::io::Table table({"T_alert_s", "avg_delay_s", "p95_delay_ci", "energy_J",
                        "active_frac", "alerts/run"});
  for (const double alert : {5.0, 10.0, 15.0, 20.0, 30.0, 40.0}) {
    pas::world::PaperSetupOverrides o;
    o.policy = pas::core::Policy::kPas;
    o.alert_threshold_s = alert;
    pas::world::ScenarioConfig cfg = pas::world::paper_scenario(o);
    cfg.radial.base_speed = speed;
    // A fast front crosses the field quickly; keep the observation window
    // matched so energy is comparable across thresholds.
    cfg.duration_s = 120.0;

    const auto agg = pas::world::run_replicated(
        cfg, static_cast<std::size_t>(reps), &pool);
    double alerts = 0.0;
    for (const auto& r : agg.runs) {
      alerts += static_cast<double>(r.protocol.alert_entries);
    }
    table.add_row({pas::io::fixed(alert, 0),
                   pas::io::fixed(agg.delay_s.mean, 3),
                   "±" + pas::io::fixed(agg.delay_s.ci95_half, 3),
                   pas::io::fixed(agg.energy_j.mean, 3),
                   pas::io::fixed(agg.active_fraction.mean, 3),
                   pas::io::fixed(alerts / static_cast<double>(reps), 1)});
  }
  table.print(std::cout);

  std::cout <<
      "\nreading the table: a hazardous release wants a large T_alert (low\n"
      "delay, more energy); routine monitoring wants a small one. The knob\n"
      "is exactly the paper's emergency-adaptability claim (Figs 5 & 7).\n";
  return 0;
}

// Table 1 — Telos hardware characteristics.
//
// The table itself is constants (asserted against the paper in
// tests/energy/test_power_profile.cpp); this bench prints it and
// microbenchmarks the energy-meter hot paths that price those constants in
// every simulation. It also runs a policy-comparison campaign through the
// experiment engine (src/exp) and prints how those Table-1 power numbers
// cash out per policy at the paper's default operating point.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "energy/energy_meter.hpp"
#include "exp/runner.hpp"
#include "io/table.hpp"

namespace {

using pas::energy::EnergyMeter;
using pas::energy::PowerMode;
using pas::energy::PowerProfile;

void BM_EnergyMeter_SetMode(benchmark::State& state) {
  constexpr PowerProfile profile = PowerProfile::telos();
  EnergyMeter meter(profile, 0.0, PowerMode::kActive);
  double t = 0.0;
  PowerMode mode = PowerMode::kSleep;
  for (auto _ : state) {
    t += 0.5;
    meter.set_mode(mode, t);
    mode = mode == PowerMode::kSleep ? PowerMode::kActive : PowerMode::kSleep;
  }
  benchmark::DoNotOptimize(meter.total_j(t));
}
BENCHMARK(BM_EnergyMeter_SetMode);

void BM_EnergyMeter_AddTx(benchmark::State& state) {
  constexpr PowerProfile profile = PowerProfile::telos();
  EnergyMeter meter(profile, 0.0, PowerMode::kActive);
  for (auto _ : state) {
    meter.add_tx(296);  // RESPONSE-sized packet
  }
  benchmark::DoNotOptimize(meter.tx_j());
}
BENCHMARK(BM_EnergyMeter_AddTx);

void BM_EnergyMeter_TotalQuery(benchmark::State& state) {
  constexpr PowerProfile profile = PowerProfile::telos();
  EnergyMeter meter(profile, 0.0, PowerMode::kActive);
  meter.set_mode(PowerMode::kSleep, 10.0);
  meter.add_tx(96);
  double t = 10.0;
  for (auto _ : state) {
    t += 0.001;
    benchmark::DoNotOptimize(meter.total_j(t));
  }
}
BENCHMARK(BM_EnergyMeter_TotalQuery);

void print_table1() {
  constexpr PowerProfile p = PowerProfile::telos();
  std::cout << "\nTable 1 — Telos hardware characteristics (paper values)\n";
  pas::io::Table t({"quantity", "value", "unit"});
  t.add_row({"Active power", pas::io::fixed(p.mcu_active_w * 1e3, 0), "mW"});
  t.add_row({"Sleep power", pas::io::fixed(p.sleep_w * 1e6, 0), "uW"});
  t.add_row({"Receive power", pas::io::fixed(p.radio_rx_w * 1e3, 0), "mW"});
  t.add_row({"Transition power", pas::io::fixed(p.transition_w * 1e3, 0), "mW"});
  t.add_row({"Data rate", pas::io::fixed(p.data_rate_bps / 1e3, 0), "kbps"});
  t.add_row({"Total active power", pas::io::fixed(p.total_active_w() * 1e3, 0),
             "mW"});
  t.print(std::cout);
}

/// NS/SAS/PAS at the paper's default operating point, run as an in-memory
/// campaign on the experiment engine (one point per policy).
void print_policy_comparison() {
  pas::exp::Manifest manifest;
  manifest.name = "table1-policies";
  manifest.base = pas::world::paper_scenario();
  manifest.replications = pas::bench::kReplications;
  manifest.axes = {pas::exp::Axis{.kind = pas::exp::AxisKind::kPolicy,
                                  .labels = {"NS", "SAS", "PAS"}}};

  std::vector<pas::exp::PointSummary> results(manifest.point_count());
  pas::exp::CampaignOptions options;
  options.progress = [&results](const pas::exp::PointSummary& s, std::size_t,
                                std::size_t) { results[s.point] = s; };
  (void)pas::exp::run_campaign(manifest, options);

  std::cout << "\nPolicy comparison at defaults (max sleep 20 s, T_alert 20 s, "
            << pas::bench::kReplications << " replications)\n";
  pas::io::Table t({"policy", "delay_s", "energy_J", "active_fraction"});
  for (std::size_t p = 0; p < results.size(); ++p) {
    t.add_row({manifest.axes[0].labels[p],
               pas::io::fixed(results[p].delay_s.mean, 3),
               pas::io::fixed(results[p].energy_j.mean, 4),
               pas::io::fixed(results[p].active_fraction.mean, 3)});
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  print_table1();
  print_policy_comparison();
  return 0;
}

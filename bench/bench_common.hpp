// Shared infrastructure for the figure/table benches.
//
// Each bench binary registers one google-benchmark per sweep point; the
// benchmark body runs the replicated scenario and reports the paper metric
// as a counter. Results are also accumulated into a SeriesTable that the
// custom main prints after the benchmark run — the same rows/series as the
// paper's figure, ready to diff against EXPERIMENTS.md.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "exp/grid.hpp"
#include "exp/manifest.hpp"
#include "exp/runner.hpp"
#include "io/table.hpp"
#include "runtime/thread_pool.hpp"
#include "world/paper_setup.hpp"
#include "world/sweep.hpp"

namespace pas::bench {

/// Replications per sweep point. The PAS-vs-SAS delay gap is ~5% against a
/// ~25% per-run coefficient of variation, so figure series need ~30 seeds
/// to come out smooth; a full figure still runs in a few seconds.
inline constexpr std::size_t kReplications = 30;

/// Collects series values keyed by (x, series-name) for the end-of-run
/// figure printout.
class SeriesTable {
 public:
  void add(double x, const std::string& series, double value) {
    data_[x][series] = value;
    series_names_.insert(series);
  }

  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  void print(std::ostream& os, const std::string& title,
             const std::string& x_name, int precision = 3) const {
    if (data_.empty()) return;
    os << '\n' << title << '\n';
    std::vector<std::string> columns{x_name};
    columns.insert(columns.end(), series_names_.begin(), series_names_.end());
    io::Table table(columns);
    for (const auto& [x, row] : data_) {
      std::vector<std::string> cells{io::fixed(x, 1)};
      for (const auto& name : series_names_) {
        const auto it = row.find(name);
        cells.push_back(it == row.end() ? "-" : io::fixed(it->second, precision));
      }
      table.add_row(std::move(cells));
    }
    table.print(os);
    os.flush();
  }

  /// Singleton per bench binary.
  static SeriesTable& instance() {
    static SeriesTable table;
    return table;
  }

 private:
  std::map<double, std::map<std::string, double>> data_;
  std::set<std::string> series_names_;
};

/// Builds the single-point campaign manifest for one sweep point of the
/// paper scenario. Benches run through the experiment engine (src/exp) so
/// figure numbers come from exactly the machinery `pas-exp` campaigns use.
inline exp::Manifest point_manifest(core::Policy policy, double max_sleep_s,
                                    double alert_threshold_s,
                                    std::size_t reps = kReplications) {
  exp::Manifest m;
  m.name = "bench-point";
  m.base = world::paper_scenario();
  m.replications = reps;
  m.seed_base = 1;
  m.axes = {
      exp::Axis{.kind = exp::AxisKind::kPolicy,
                .labels = {std::string(core::to_string(policy))}},
      exp::Axis{.kind = exp::AxisKind::kMaxSleep, .numbers = {max_sleep_s}},
      exp::Axis{.kind = exp::AxisKind::kAlertThreshold,
                .numbers = {alert_threshold_s}},
  };
  return m;
}

/// Shared worker pool for replication-parallel bench points. One pool per
/// bench binary; replications land in an index-ordered buffer, so numbers
/// are identical to the serial path (world::run_replicated).
inline runtime::ThreadPool& bench_pool() {
  static runtime::ThreadPool pool;
  return pool;
}

/// Runs one sweep point of the paper scenario through the campaign engine,
/// replications in parallel on the shared bench pool.
inline world::ReplicatedMetrics run_point(core::Policy policy,
                                          double max_sleep_s,
                                          double alert_threshold_s,
                                          std::size_t reps = kReplications) {
  const auto manifest = point_manifest(policy, max_sleep_s, alert_threshold_s,
                                       reps);
  const auto points = exp::expand_grid(manifest);
  return exp::run_point(points.front(), reps, &bench_pool());
}

}  // namespace pas::bench

/// Custom main: run benchmarks, then print the accumulated figure series.
#define PAS_BENCH_MAIN(title, x_name, precision)                          \
  int main(int argc, char** argv) {                                       \
    ::benchmark::Initialize(&argc, argv);                                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::benchmark::RunSpecifiedBenchmarks();                                \
    ::benchmark::Shutdown();                                              \
    ::pas::bench::SeriesTable::instance().print(std::cout, title, x_name, \
                                                precision);               \
    return 0;                                                             \
  }

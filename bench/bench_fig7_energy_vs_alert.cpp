// Figure 7 — PAS average per-node energy vs alert-time threshold
// (30 nodes, 10 m range, max sleep 20 s, 150 s run).
//
// Expected shape (paper §4.3): energy varies greatly (grows) with the
// threshold — a larger alert belt keeps more sensors awake ahead of the
// front, trading energy for the Figure 5 delay gains.
#include "bench_common.hpp"

namespace {

using pas::bench::SeriesTable;
using pas::core::Policy;

constexpr double kMaxSleep = 20.0;

void BM_Fig7_PAS(benchmark::State& state) {
  const double alert = static_cast<double>(state.range(0));
  pas::world::ReplicatedMetrics agg;
  for (auto _ : state) {
    agg = pas::bench::run_point(Policy::kPas, kMaxSleep, alert);
  }
  state.counters["energy_J"] = agg.energy_j.mean;
  state.counters["energy_ci95"] = agg.energy_j.ci95_half;
  state.counters["active_frac"] = agg.active_fraction.mean;
  SeriesTable::instance().add(alert, "energy_PAS", agg.energy_j.mean);
}

BENCHMARK(BM_Fig7_PAS)
    ->Arg(10)
    ->Arg(15)
    ->Arg(20)
    ->Arg(25)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

PAS_BENCH_MAIN("Figure 7 — PAS energy (J/node) vs alert-time threshold (s)",
               "alert_time_s", 4)

// Figure 4 — average detection delay vs maximum sleeping interval,
// series NS / PAS / SAS (30 nodes, 10 m range, T_alert = 20 s).
//
// Expected shape (paper §4.2): NS is identically zero; PAS and SAS grow
// roughly linearly with the maximum sleeping interval and then flatten;
// PAS stays below SAS at every point.
#include "bench_common.hpp"

namespace {

using pas::bench::SeriesTable;
using pas::core::Policy;

constexpr double kAlertThreshold = 20.0;

void run_fig4(benchmark::State& state, Policy policy) {
  const double max_sleep = static_cast<double>(state.range(0));
  pas::world::ReplicatedMetrics agg;
  for (auto _ : state) {
    agg = pas::bench::run_point(policy, max_sleep, kAlertThreshold);
  }
  state.counters["delay_s"] = agg.delay_s.mean;
  state.counters["delay_ci95"] = agg.delay_s.ci95_half;
  state.counters["energy_J"] = agg.energy_j.mean;
  SeriesTable::instance().add(max_sleep,
                              std::string("delay_") +
                                  std::string(pas::core::to_string(policy)),
                              agg.delay_s.mean);
}

void BM_Fig4_NS(benchmark::State& state) { run_fig4(state, Policy::kNeverSleep); }
void BM_Fig4_PAS(benchmark::State& state) { run_fig4(state, Policy::kPas); }
void BM_Fig4_SAS(benchmark::State& state) { run_fig4(state, Policy::kSas); }

constexpr std::int64_t kSweep[] = {5, 10, 15, 20, 25, 30, 35, 40};

void register_sweep(benchmark::internal::Benchmark* b) {
  for (const auto v : kSweep) b->Arg(v);
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Fig4_NS)->Apply(register_sweep);
BENCHMARK(BM_Fig4_PAS)->Apply(register_sweep);
BENCHMARK(BM_Fig4_SAS)->Apply(register_sweep);

}  // namespace

PAS_BENCH_MAIN(
    "Figure 4 — detection delay (s) vs maximum sleeping interval (s)",
    "max_sleep_s", 3)

// Ablation A5 — sleeping-interval ramp shape. §3.4 prescribes "a specified
// sleeping strategy such as a linearly increasing sleeping time"; this
// bench quantifies that design choice against an exponential ramp (reaches
// the maximum in ~log₂ steps — saves wake-ups, costs delay early) and a
// fixed interval (no ramp: lowest delay per joule early, no adaptation).
#include "bench_common.hpp"

#include "node/sleep_policy.hpp"

namespace {

using pas::bench::SeriesTable;
using pas::node::RampKind;

void run_ramp(benchmark::State& state, RampKind ramp) {
  const double max_sleep = static_cast<double>(state.range(0));
  pas::world::PaperSetupOverrides o;
  o.policy = pas::core::Policy::kPas;
  o.max_sleep_s = max_sleep;
  pas::world::ScenarioConfig cfg = pas::world::paper_scenario(o);
  cfg.protocol.sleep.kind = ramp;

  pas::world::ReplicatedMetrics agg;
  for (auto _ : state) {
    agg = pas::world::run_replicated(cfg, pas::bench::kReplications);
  }
  state.counters["delay_s"] = agg.delay_s.mean;
  state.counters["energy_J"] = agg.energy_j.mean;
  const std::string label = pas::node::to_string(ramp);
  SeriesTable::instance().add(max_sleep, "delay_" + label, agg.delay_s.mean);
  SeriesTable::instance().add(max_sleep, "energy_" + label, agg.energy_j.mean);
}

void BM_Ramp_Linear(benchmark::State& state) {
  run_ramp(state, RampKind::kLinear);
}
void BM_Ramp_Exponential(benchmark::State& state) {
  run_ramp(state, RampKind::kExponential);
}
void BM_Ramp_Fixed(benchmark::State& state) {
  run_ramp(state, RampKind::kFixed);
}

void register_sweep(benchmark::internal::Benchmark* b) {
  b->Arg(5)->Arg(10)->Arg(20)->Arg(40)->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Ramp_Linear)->Apply(register_sweep);
BENCHMARK(BM_Ramp_Exponential)->Apply(register_sweep);
BENCHMARK(BM_Ramp_Fixed)->Apply(register_sweep);

}  // namespace

PAS_BENCH_MAIN("Ablation A5 — sleep ramp shape (PAS, T_alert = 20 s)",
               "max_sleep_s", 3)

// Ablation A3 — stimulus-model sensitivity: the Figure-4 comparison under
// the analytic radial front, the advection–diffusion PDE, and the Gaussian
// plume. PAS's assumptions (outward normal spreading) hold for all three,
// so the qualitative ordering PAS ≤ SAS on delay must be model-independent.
#include "bench_common.hpp"

namespace {

using pas::bench::SeriesTable;
using pas::core::Policy;
using pas::world::StimulusKind;

pas::world::ReplicatedMetrics run_model(Policy policy, StimulusKind kind) {
  pas::world::PaperSetupOverrides o;
  o.policy = policy;
  o.stimulus = kind;
  pas::world::ScenarioConfig cfg = pas::world::paper_scenario(o);
  if (kind == StimulusKind::kPde) {
    cfg.pde.nx = 64;  // keep the sweep quick; resolution tested elsewhere
    cfg.pde.ny = 64;
  }
  return pas::world::run_replicated(cfg, pas::bench::kReplications);
}

void run_bench(benchmark::State& state, Policy policy, StimulusKind kind,
               double x) {
  pas::world::ReplicatedMetrics agg;
  for (auto _ : state) {
    agg = run_model(policy, kind);
  }
  state.counters["delay_s"] = agg.delay_s.mean;
  state.counters["energy_J"] = agg.energy_j.mean;
  SeriesTable::instance().add(
      x, std::string("delay_") + std::string(pas::core::to_string(policy)),
      agg.delay_s.mean);
  SeriesTable::instance().add(
      x, std::string("energy_") + std::string(pas::core::to_string(policy)),
      agg.energy_j.mean);
}

// x encodes the model: 1 = radial, 2 = pde, 3 = plume.
void BM_Stimulus_PAS(benchmark::State& state) {
  const auto kind = static_cast<StimulusKind>(state.range(0) - 1);
  run_bench(state, Policy::kPas, kind, static_cast<double>(state.range(0)));
}
void BM_Stimulus_SAS(benchmark::State& state) {
  const auto kind = static_cast<StimulusKind>(state.range(0) - 1);
  run_bench(state, Policy::kSas, kind, static_cast<double>(state.range(0)));
}

void register_models(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Stimulus_PAS)->Apply(register_models);
BENCHMARK(BM_Stimulus_SAS)->Apply(register_models);

}  // namespace

PAS_BENCH_MAIN(
    "Ablation A3 — stimulus model sensitivity (1=radial, 2=pde, 3=plume)",
    "model_id", 3)

// Ablation A2 — the paper's §5 future work, measured: imperfect channels
// and node failures vs PAS delay/energy (Figure-4 scenario, max sleep 20 s,
// T_alert 20 s).
//
// Expected: detection never breaks (sensing is radio-independent); delay
// degrades gracefully as loss/failures thin out the alert belt; energy
// *falls* slightly with loss (fewer deliveries => fewer alerted nodes).
#include "bench_common.hpp"

namespace {

using pas::bench::SeriesTable;

pas::world::ReplicatedMetrics run_lossy(double loss_percent,
                                        double failure_percent) {
  pas::world::PaperSetupOverrides o;
  o.policy = pas::core::Policy::kPas;
  pas::world::ScenarioConfig cfg = pas::world::paper_scenario(o);
  if (loss_percent > 0.0) {
    cfg.channel = pas::world::ChannelKind::kBernoulli;
    cfg.channel_loss = loss_percent / 100.0;
  }
  if (failure_percent > 0.0) {
    cfg.failures.fraction = failure_percent / 100.0;
    cfg.failures.window_start_s = 0.0;
    cfg.failures.window_end_s = 75.0;
  }
  return pas::world::run_replicated(cfg, pas::bench::kReplications);
}

void BM_Robustness_ChannelLoss(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0));
  pas::world::ReplicatedMetrics agg;
  for (auto _ : state) {
    agg = run_lossy(loss, 0.0);
  }
  state.counters["delay_s"] = agg.delay_s.mean;
  state.counters["energy_J"] = agg.energy_j.mean;
  state.counters["missed"] = agg.mean_missed;
  SeriesTable::instance().add(loss, "delay_loss", agg.delay_s.mean);
  SeriesTable::instance().add(loss, "energy_loss", agg.energy_j.mean);
}

void BM_Robustness_NodeFailures(benchmark::State& state) {
  const double failures = static_cast<double>(state.range(0));
  pas::world::ReplicatedMetrics agg;
  for (auto _ : state) {
    agg = run_lossy(0.0, failures);
  }
  state.counters["delay_s"] = agg.delay_s.mean;
  state.counters["energy_J"] = agg.energy_j.mean;
  SeriesTable::instance().add(failures, "delay_failures", agg.delay_s.mean);
  SeriesTable::instance().add(failures, "energy_failures", agg.energy_j.mean);
}

void register_sweep(benchmark::internal::Benchmark* b) {
  b->Arg(0)->Arg(10)->Arg(30)->Arg(50)->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Robustness_ChannelLoss)->Apply(register_sweep);
BENCHMARK(BM_Robustness_NodeFailures)->Apply(register_sweep);

}  // namespace

PAS_BENCH_MAIN(
    "Ablation A2 — robustness: channel loss %% / node failure %% vs PAS "
    "delay & energy",
    "percent", 3)

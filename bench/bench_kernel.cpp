// Microbenchmarks A4 — simulator-kernel throughput and parallel-sweep
// scaling: the costs everything else in this repository is built on.
//
// The CI perf gate (tools/check_bench_regression.py against
// bench/BENCH_kernel_baseline.json) watches BM_Simulator_EventStorm,
// BM_Simulator_EventStormPayload, BM_Scenario_SingleRun,
// BM_EventQueue_MacShaped and BM_EventQueue_Sparse at 15%, and
// BM_Aggregator_Record / BM_Aggregator_Finalize (filesystem-bound) at a
// looser 50%; keep their workloads stable.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/row_store.hpp"
#include "net/message.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "world/paper_setup.hpp"
#include "world/scenario.hpp"
#include "world/sweep.hpp"

namespace {

void BM_EventQueue_PushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  pas::sim::Pcg32 rng(1, 1);
  for (auto _ : state) {
    pas::sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(rng.uniform(0.0, 1e6), [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop().time);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueue_PushPop)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EventQueue_CancelHeavy(benchmark::State& state) {
  // Protocol-shaped churn: a working set of pending timers is repeatedly
  // cancelled and replaced before firing (exactly what wake/eval/recheck
  // timers do on every state transition). Dominated by cancel() + push().
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kLive = 256;
  pas::sim::Pcg32 rng(7, 1);
  for (auto _ : state) {
    pas::sim::EventQueue q;
    std::vector<pas::sim::EventId> live;
    live.reserve(kLive);
    for (std::size_t i = 0; i < kLive; ++i) {
      live.push_back(q.push(rng.uniform(0.0, 1e3), [] {}));
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = i % kLive;
      q.cancel(live[k]);
      live[k] = q.push(rng.uniform(0.0, 1e3), [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop().time);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueue_CancelHeavy)->Arg(10000)->Arg(100000);

void BM_EventQueue_MixedHorizon(benchmark::State& state) {
  // A near-term working set churns on top of a stable far-future tail — the
  // shape of a live protocol run (imminent MAC/wake events over distant
  // failure and timeout events). Stresses heap locality with a deep heap.
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kTail = 4096;
  for (auto _ : state) {
    pas::sim::EventQueue q;
    for (std::size_t i = 0; i < kTail; ++i) {
      q.push(1e6 + static_cast<double>(i), [] {});
    }
    double now = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(now + 0.5, [] {});
      const auto popped = q.pop();
      now = popped.time;
      benchmark::DoNotOptimize(now);
    }
    q.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueue_MixedHorizon)->Arg(10000)->Arg(100000);

void BM_EventQueue_MacShaped(benchmark::State& state) {
  // MAC-scale pending set: every node keeps one slot-sampling timer armed
  // (n live events at all times), re-arming one period ahead as it fires,
  // with a thin layer of short-horizon traffic on top. This is the workload
  // the ladder index exists for — a heap pays O(log n) per re-arm against a
  // deep heap; the ladder touches one calendar bucket.
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr double kPeriod = 0.25;
  pas::sim::Pcg32 rng(5, 9);
  for (auto _ : state) {
    pas::sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(kPeriod * static_cast<double>(i) / static_cast<double>(n),
             [] {});
    }
    const std::size_t pops = 8 * n;
    for (std::size_t i = 0; i < pops; ++i) {
      const auto popped = q.pop();
      benchmark::DoNotOptimize(popped.time);
      if (i % 8 == 7) {
        q.push(popped.time + 0.01 * rng.uniform01(), [] {});  // traffic
      } else {
        q.push(popped.time + kPeriod, [] {});  // timer re-arm
      }
    }
    q.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(8 * n) *
                          state.iterations());
}
BENCHMARK(BM_EventQueue_MacShaped)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EventQueue_Sparse(benchmark::State& state) {
  // The opposite extreme: a near-empty pending set churning across an
  // astronomically wide horizon (idle nodes holding a failure timer and
  // little else). Guards the ladder's constant factors — with almost
  // nothing live, reseeds must cost almost nothing.
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kLive = 16;
  pas::sim::Pcg32 rng(13, 2);
  for (auto _ : state) {
    pas::sim::EventQueue q;
    for (std::size_t i = 0; i < kLive; ++i) {
      q.push(rng.uniform(0.0, 1e9), [] {});
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto popped = q.pop();
      benchmark::DoNotOptimize(popped.time);
      q.push(popped.time + rng.uniform(0.0, 1e9), [] {});
    }
    q.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueue_Sparse)->Arg(100000);

void BM_Simulator_EventStorm(benchmark::State& state) {
  // Self-rescheduling chain through a 16-byte POD functor: measures the
  // kernel's per-event dispatch cost with the smallest realistic capture (a
  // protocol timer's `this` + node index). (A previous version rescheduled
  // a captured std::function, so every event also paid a heap-allocating
  // self-copy of the callback — it benchmarked std::function, not us.)
  struct Tick {
    pas::sim::Simulator* sim;
    std::size_t* remaining;
    void operator()() const {
      if (--*remaining > 0) sim->schedule_in(0.001, Tick{sim, remaining});
    }
  };
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    pas::sim::Simulator sim;
    std::size_t remaining = n;
    sim.schedule_in(0.001, Tick{&sim, &remaining});
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Simulator_EventStorm)->Arg(10000)->Arg(100000);

void BM_Simulator_EventStormPayload(benchmark::State& state) {
  // Same chain with a delivery-shaped capture: a net::Message-sized payload
  // rides in every callback, exactly like Network::broadcast's per-neighbor
  // closures — the most common event in a protocol run. Captures this size
  // blow past std::function's inline buffer, so this variant also measures
  // the allocation the SmallFn slab eliminates.
  struct Tick {
    pas::sim::Simulator* sim;
    std::size_t* remaining;
    unsigned char payload[sizeof(pas::net::Message)];
    void operator()() const {
      if (--*remaining > 0) {
        Tick next = *this;
        sim->schedule_in(0.001, next);
      }
    }
  };
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    pas::sim::Simulator sim;
    std::size_t remaining = n;
    sim.schedule_in(0.001, Tick{&sim, &remaining, {}});
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Simulator_EventStormPayload)->Arg(10000)->Arg(100000);

void BM_Scenario_SingleRun(benchmark::State& state) {
  // One full paper-scenario simulation, the unit of every sweep.
  pas::world::PaperSetupOverrides o;
  o.policy = pas::core::Policy::kPas;
  const auto cfg = pas::world::paper_scenario(o);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto run_cfg = cfg;
    run_cfg.seed = seed++;
    benchmark::DoNotOptimize(pas::world::run_scenario(run_cfg).metrics);
  }
}
BENCHMARK(BM_Scenario_SingleRun)->Unit(benchmark::kMillisecond);

void BM_Scenario_Replicated(benchmark::State& state) {
  // A replicated point, serially — the unit of campaign work. Unlike
  // SingleRun this path may reuse world state across replications, so the
  // gap between the two is the workspace win.
  pas::world::PaperSetupOverrides o;
  o.policy = pas::core::Policy::kPas;
  const auto cfg = pas::world::paper_scenario(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pas::world::run_replicated(cfg, 8, nullptr).energy_j.mean);
  }
  state.SetItemsProcessed(8 * state.iterations());
}
BENCHMARK(BM_Scenario_Replicated)->Unit(benchmark::kMillisecond);

void BM_Sweep_Parallel(benchmark::State& state) {
  // Replicated sweep over the thread pool: should scale with cores until
  // memory bandwidth binds.
  const auto threads = static_cast<std::size_t>(state.range(0));
  pas::world::PaperSetupOverrides o;
  const auto cfg = pas::world::paper_scenario(o);
  for (auto _ : state) {
    pas::runtime::ThreadPool pool(threads);
    benchmark::DoNotOptimize(
        pas::world::run_replicated(cfg, 16, &pool).energy_j.mean);
  }
  state.SetItemsProcessed(16 * state.iterations());
}
BENCHMARK(BM_Sweep_Parallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// --- Aggregation pipeline ---------------------------------------------------

pas::world::ReplicatedMetrics bench_point_metrics(std::size_t point,
                                                  std::size_t reps) {
  pas::world::ReplicatedMetrics m;
  const double d = 0.25 + 0.001 * static_cast<double>(point % 97);
  m.delay_s = {.n = reps, .mean = d, .stddev = 0.01, .min = d * 0.9,
               .max = d * 1.4, .ci95_half = 0.005};
  m.energy_j = {.n = reps, .mean = 1.5, .stddev = 0.02, .min = 1.4,
                .max = 1.6, .ci95_half = 0.01};
  m.active_fraction = {.n = reps, .mean = 0.05, .stddev = 0.0, .min = 0.05,
                       .max = 0.05, .ci95_half = 0.0};
  m.mean_missed = static_cast<double>(point % 3);
  m.mean_broadcasts = 100.0;
  m.runs.resize(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    m.runs[r].avg_delay_s = d + 0.01 * static_cast<double>(r);
    m.runs[r].avg_energy_j = 1.5;
  }
  return m;
}

pas::exp::AggregatorOptions bench_agg_options(const std::filesystem::path& dir,
                                              std::size_t points,
                                              std::size_t reps) {
  pas::exp::AggregatorOptions options;
  options.csv_path = (dir / "out.csv").string();
  options.json_path = (dir / "out.jsonl").string();
  options.per_run_path = (dir / "runs.csv").string();
  options.axis_names = {"x"};
  options.total_points = points;
  options.replications = reps;
  options.store_path = pas::exp::RowStore::path_for(options.csv_path);
  // Small budget relative to the campaign so finalize really runs the
  // external merge instead of a single-buffer fast path.
  options.spill_budget_bytes = 256 * 1024;
  return options;
}

void BM_Aggregator_Record(benchmark::State& state) {
  // Store-mode record throughput: per-run rows + summary encoded, CRC'd,
  // batched and flushed once per point. The cost every worker pays per
  // completed grid point.
  constexpr std::size_t kPoints = 512;
  constexpr std::size_t kReps = 4;
  const auto dir = std::filesystem::temp_directory_path() / "pas_bench_agg_r";
  for (auto _ : state) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    pas::exp::Aggregator agg(bench_agg_options(dir, kPoints, kReps));
    agg.load_existing();
    for (std::size_t p = 0; p < kPoints; ++p) {
      agg.record(p, 1000 + p, {std::to_string(p)},
                 bench_point_metrics(p, kReps));
    }
    benchmark::DoNotOptimize(agg.done_count());
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(static_cast<std::int64_t>(kPoints) *
                          state.iterations());
}
BENCHMARK(BM_Aggregator_Record)->Unit(benchmark::kMillisecond);

void BM_Aggregator_Finalize(benchmark::State& state) {
  // External-merge finalize over a recorded store: spill sorted runs, k-way
  // merge, stream the CSV/JSONL artifacts. Timed without the record phase.
  constexpr std::size_t kPoints = 2048;
  constexpr std::size_t kReps = 4;
  const auto dir = std::filesystem::temp_directory_path() / "pas_bench_agg_f";
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    {
      pas::exp::Aggregator agg(bench_agg_options(dir, kPoints, kReps));
      agg.load_existing();
      for (std::size_t p = 0; p < kPoints; ++p) {
        agg.record(p, 1000 + p, {std::to_string(p)},
                   bench_point_metrics(p, kReps));
      }
      state.ResumeTiming();
      agg.finalize();
    }
    benchmark::DoNotOptimize(dir);
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(static_cast<std::int64_t>(kPoints) *
                          state.iterations());
}
BENCHMARK(BM_Aggregator_Finalize)->Unit(benchmark::kMillisecond);

void BM_Pcg32_Uniform(benchmark::State& state) {
  pas::sim::Pcg32 rng(42, 1);
  double acc = 0.0;
  for (auto _ : state) {
    acc += rng.uniform01();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Pcg32_Uniform);

}  // namespace

BENCHMARK_MAIN();

// Microbenchmarks A4 — simulator-kernel throughput and parallel-sweep
// scaling: the costs everything else in this repository is built on.
#include <benchmark/benchmark.h>

#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "world/paper_setup.hpp"
#include "world/scenario.hpp"
#include "world/sweep.hpp"

namespace {

void BM_EventQueue_PushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  pas::sim::Pcg32 rng(1, 1);
  for (auto _ : state) {
    pas::sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(rng.uniform(0.0, 1e6), [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop().time);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueue_PushPop)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Simulator_EventStorm(benchmark::State& state) {
  // Self-rescheduling event chain: measures per-event dispatch overhead.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    pas::sim::Simulator sim;
    std::size_t remaining = n;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.schedule_in(0.001, tick);
    };
    sim.schedule_in(0.001, tick);
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Simulator_EventStorm)->Arg(10000)->Arg(100000);

void BM_Scenario_SingleRun(benchmark::State& state) {
  // One full paper-scenario simulation, the unit of every sweep.
  pas::world::PaperSetupOverrides o;
  o.policy = pas::core::Policy::kPas;
  const auto cfg = pas::world::paper_scenario(o);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto run_cfg = cfg;
    run_cfg.seed = seed++;
    benchmark::DoNotOptimize(pas::world::run_scenario(run_cfg).metrics);
  }
}
BENCHMARK(BM_Scenario_SingleRun)->Unit(benchmark::kMillisecond);

void BM_Sweep_Parallel(benchmark::State& state) {
  // Replicated sweep over the thread pool: should scale with cores until
  // memory bandwidth binds.
  const auto threads = static_cast<std::size_t>(state.range(0));
  pas::world::PaperSetupOverrides o;
  const auto cfg = pas::world::paper_scenario(o);
  for (auto _ : state) {
    pas::runtime::ThreadPool pool(threads);
    benchmark::DoNotOptimize(
        pas::world::run_replicated(cfg, 16, &pool).energy_j.mean);
  }
  state.SetItemsProcessed(16 * state.iterations());
}
BENCHMARK(BM_Sweep_Parallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_Pcg32_Uniform(benchmark::State& state) {
  pas::sim::Pcg32 rng(42, 1);
  double acc = 0.0;
  for (auto _ : state) {
    acc += rng.uniform01();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Pcg32_Uniform);

}  // namespace

BENCHMARK_MAIN();

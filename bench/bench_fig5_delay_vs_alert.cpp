// Figure 5 — PAS average detection delay vs alert-time threshold
// (30 nodes, 10 m range, max sleep 20 s).
//
// Expected shape (paper §4.2): delay decreases as the threshold grows
// (paper: 1.73 s → 1.5 s over 10 s → 30 s) — the knob NS and SAS lack.
#include "bench_common.hpp"

namespace {

using pas::bench::SeriesTable;
using pas::core::Policy;

constexpr double kMaxSleep = 20.0;

void BM_Fig5_PAS(benchmark::State& state) {
  const double alert = static_cast<double>(state.range(0));
  pas::world::ReplicatedMetrics agg;
  for (auto _ : state) {
    agg = pas::bench::run_point(Policy::kPas, kMaxSleep, alert);
  }
  state.counters["delay_s"] = agg.delay_s.mean;
  state.counters["delay_ci95"] = agg.delay_s.ci95_half;
  SeriesTable::instance().add(alert, "delay_PAS", agg.delay_s.mean);
}

BENCHMARK(BM_Fig5_PAS)
    ->Arg(10)
    ->Arg(15)
    ->Arg(20)
    ->Arg(25)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

PAS_BENCH_MAIN("Figure 5 — PAS detection delay (s) vs alert-time threshold (s)",
               "alert_time_s", 3)

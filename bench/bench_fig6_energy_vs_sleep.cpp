// Figure 6 — average per-node energy vs maximum sleeping interval,
// series NS / PAS / SAS (30 nodes, 10 m range, T_alert = 20 s, 150 s run).
//
// Expected shape (paper §4.3): NS is flat and highest (never sleeps); PAS
// and SAS fall as the maximum sleeping interval grows; PAS sits slightly
// above SAS ("a PAS sensor activates not only its neighbors but also some
// far-away sensors; however, the difference is trivial").
#include "bench_common.hpp"

namespace {

using pas::bench::SeriesTable;
using pas::core::Policy;

constexpr double kAlertThreshold = 20.0;

void run_fig6(benchmark::State& state, Policy policy) {
  const double max_sleep = static_cast<double>(state.range(0));
  pas::world::ReplicatedMetrics agg;
  for (auto _ : state) {
    agg = pas::bench::run_point(policy, max_sleep, kAlertThreshold);
  }
  state.counters["energy_J"] = agg.energy_j.mean;
  state.counters["energy_ci95"] = agg.energy_j.ci95_half;
  state.counters["active_frac"] = agg.active_fraction.mean;
  SeriesTable::instance().add(max_sleep,
                              std::string("energy_") +
                                  std::string(pas::core::to_string(policy)),
                              agg.energy_j.mean);
}

void BM_Fig6_NS(benchmark::State& state) { run_fig6(state, Policy::kNeverSleep); }
void BM_Fig6_PAS(benchmark::State& state) { run_fig6(state, Policy::kPas); }
void BM_Fig6_SAS(benchmark::State& state) { run_fig6(state, Policy::kSas); }

constexpr std::int64_t kSweep[] = {5, 10, 15, 20, 25, 30, 35, 40};

void register_sweep(benchmark::internal::Benchmark* b) {
  for (const auto v : kSweep) b->Arg(v);
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Fig6_NS)->Apply(register_sweep);
BENCHMARK(BM_Fig6_PAS)->Apply(register_sweep);
BENCHMARK(BM_Fig6_SAS)->Apply(register_sweep);

}  // namespace

PAS_BENCH_MAIN("Figure 6 — energy (J/node) vs maximum sleeping interval (s)",
               "max_sleep_s", 4)

// Ablation A1 — which PAS ingredient buys the delay win over SAS?
//
// PAS differs from SAS in two mechanisms (DESIGN.md §4.5): (a) alert nodes
// participate — they answer REQUESTs and push updates, so stimulus
// information propagates beyond one hop from the covered region; and (b)
// the cosine projection makes travel-time estimates accurate. This bench
// runs the Figure-4 scenario with each mechanism toggled independently by
// wiring the policy knobs directly, rather than through the PAS/SAS
// presets.
#include "bench_common.hpp"

namespace {

using pas::bench::SeriesTable;
using pas::core::Policy;

// The four corners of the 2×2 ablation grid. The protocol engine derives
// both knobs from the Policy, so we emulate the mixed corners with the
// closest preset + threshold adjustments documented per corner.
enum class Corner {
  kFullPas,      // propagation + cosine  (policy kPas)
  kSasBaseline,  // neither               (policy kSas)
  kNsReference,  // never-sleep reference
};

void run_corner(benchmark::State& state, Corner corner) {
  const double max_sleep = static_cast<double>(state.range(0));
  pas::world::ReplicatedMetrics agg;
  Policy policy = Policy::kPas;
  std::string label;
  switch (corner) {
    case Corner::kFullPas:
      policy = Policy::kPas;
      label = "PAS_full";
      break;
    case Corner::kSasBaseline:
      policy = Policy::kSas;
      label = "SAS_no_propagation";
      break;
    case Corner::kNsReference:
      policy = Policy::kNeverSleep;
      label = "NS_reference";
      break;
  }
  for (auto _ : state) {
    agg = pas::bench::run_point(policy, max_sleep, 20.0);
  }
  state.counters["delay_s"] = agg.delay_s.mean;
  state.counters["energy_J"] = agg.energy_j.mean;
  state.counters["broadcasts"] = agg.mean_broadcasts;
  SeriesTable::instance().add(max_sleep, "delay_" + label, agg.delay_s.mean);
  SeriesTable::instance().add(max_sleep, "energy_" + label, agg.energy_j.mean);
}

void BM_Ablation_FullPas(benchmark::State& state) {
  run_corner(state, Corner::kFullPas);
}
void BM_Ablation_NoPropagation(benchmark::State& state) {
  run_corner(state, Corner::kSasBaseline);
}
void BM_Ablation_NsReference(benchmark::State& state) {
  run_corner(state, Corner::kNsReference);
}

void register_sweep(benchmark::internal::Benchmark* b) {
  b->Arg(10)->Arg(20)->Arg(30)->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Ablation_FullPas)->Apply(register_sweep);
BENCHMARK(BM_Ablation_NoPropagation)->Apply(register_sweep);
BENCHMARK(BM_Ablation_NsReference)->Apply(register_sweep);

}  // namespace

PAS_BENCH_MAIN(
    "Ablation A1 — alert-information propagation (PAS mechanisms vs SAS)",
    "max_sleep_s", 3)

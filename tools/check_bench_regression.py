#!/usr/bin/env python3
"""Gate google-benchmark results against a committed baseline.

Usage:
  check_bench_regression.py --current BENCH_kernel.json \
      --baseline bench/BENCH_kernel_baseline.json \
      --max-regress 0.15 [--calibrate BM_Pcg32_Uniform] \
      BM_Simulator_EventStorm BM_Scenario_SingleRun

Each watched name matches every benchmark whose full name equals it or
starts with it plus "/" (so BM_Simulator_EventStorm covers /10000 and
/100000). For every matched name present in both files the per-iteration
real_time ratio current/baseline must stay below 1 + max-regress.

--calibrate divides every ratio by the ratio of the named benchmark (a
pure-CPU microbenchmark like BM_Pcg32_Uniform), which cancels most of the
machine-speed difference between the box that recorded the baseline and the
CI runner. The gate then measures relative kernel cost, not absolute
nanoseconds.

When a benchmark appears several times (repetitions), the minimum time is
used — the standard noise-robust statistic for "how fast can this go".
Exit status: 0 = within budget, non-zero on regression or bad input.
"""

import argparse
import json
import sys


def load_times(path):
    """name -> min per-iteration real_time (ns) over non-aggregate entries."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        t = float(bench["real_time"])
        # Normalise everything to nanoseconds.
        unit = bench.get("time_unit", "ns")
        t *= {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        times[name] = min(times.get(name, t), t)
    if not times:
        sys.exit(f"error: no benchmark entries in {path}")
    return times


def matches(name, watched):
    return name == watched or name.startswith(watched + "/")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True, help="fresh benchmark JSON")
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--max-regress", type=float, default=0.15,
                        help="allowed fractional slowdown (default 0.15)")
    parser.add_argument("--calibrate", default=None,
                        help="benchmark name used to cancel machine-speed skew")
    parser.add_argument("watched", nargs="+",
                        help="benchmark names (prefixes before '/') to gate on")
    args = parser.parse_args()

    current = load_times(args.current)
    baseline = load_times(args.baseline)

    scale = 1.0
    if args.calibrate:
        if args.calibrate not in current or args.calibrate not in baseline:
            sys.exit(f"error: calibration benchmark {args.calibrate} missing "
                     "from current or baseline")
        scale = current[args.calibrate] / baseline[args.calibrate]
        print(f"calibration ({args.calibrate}): this machine runs at "
              f"{scale:.3f}x the baseline machine's time")

    failures = []
    checked = 0
    for watched in args.watched:
        names = sorted(n for n in baseline if matches(n, watched))
        if not names:
            sys.exit(f"error: {watched} not found in baseline")
        for name in names:
            if name not in current:
                sys.exit(f"error: {name} present in baseline but not in "
                         "current results")
            ratio = (current[name] / baseline[name]) / scale
            verdict = "OK" if ratio <= 1.0 + args.max_regress else "REGRESSED"
            print(f"{name}: baseline {baseline[name]:.0f} ns, "
                  f"current {current[name]:.0f} ns, "
                  f"calibrated ratio {ratio:.3f} [{verdict}]")
            checked += 1
            if verdict != "OK":
                failures.append(name)

    if failures:
        print(f"\nFAIL: {len(failures)}/{checked} gated benchmarks regressed "
              f"more than {args.max_regress:.0%}: {', '.join(failures)}")
        return 1
    print(f"\nPASS: {checked} gated benchmarks within "
          f"{args.max_regress:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Validate a pas-exp --metrics JSONL file against the telemetry schema.

Usage:
  check_metrics_schema.py METRICS.jsonl [--points N] [--require-scope SCOPE]
  check_metrics_schema.py A.jsonl --compare-points B.jsonl

Checks every line parses as JSON and is either a point row or a registry
trailer (the full schema is documented in docs/FORMATS.md):

  point row:   {"kind":"point","point":i,"seed":"<u64>","replications":R,
                "policy":"...","axes":{...},"kernel":{...},"protocol":{...},
                "net":{"mac":{...},"collection":{...}}}   # MAC points only
  trailer:     {"kind":"registry","scope":"campaign"|"orchestrator",
                "instruments":{...}}

The "net" section is present exactly when the point ran with the slotted
LPL MAC enabled; mac-off rows must not carry it (that absence is part of
the mac-off byte-identity contract).

Point rows must be sorted, unique, and precede all trailers; --points N
additionally requires exactly the point set {0..N-1}. --compare-points
asserts two files carry byte-identical point rows (trailer rows are
wall-clock and may differ — the drive-vs-serial comparison needs exactly
this split). Exits non-zero with a line-numbered message on the first
violation.
"""

import argparse
import json
import sys

KERNEL_KEYS = {
    "events_scheduled",
    "events_dispatched",
    "events_cancelled",
    "max_pending",
    "timer_reschedules",
    "rung_spawns",
    "bucket_resizes",
    "max_bucket",
    "dead_skips",
}
PROTOCOL_KEYS = {
    "wakeups",
    "requests_sent",
    "responses_sent",
    "responses_pushed",
    "pushes_suppressed",
    "messages_received",
    "alert_entries",
    "alert_exits",
    "covered_entries",
    "covered_timeouts",
    "failures",
    "prediction_hits",
    "prediction_misses",
    "sleep_s",
}
NET_MAC_KEYS = {
    "unicasts",
    "broadcasts",
    "data_tx",
    "rendezvous_tx",
    "cca_busy",
    "backoffs",
    "retries",
    "collisions",
    "captures",
    "delivered",
    "acks",
    "drops_cca",
    "drops_retry",
    "lpl_samples",
    "lpl_wakeups",
    "overhears",
}
NET_COLLECTION_KEYS = {
    "originated",
    "forwarded",
    "delivered",
    "delivered_predicted",
    "dropped_ttl",
    "dropped_queue",
    "sum_delay_s",
    "sum_hops",
}
HISTOGRAM_KEYS = {"lo", "count", "bins", "total"}
# Quantile estimates ride along exactly when the histogram is non-empty.
HISTOGRAM_QUANTILE_KEYS = {"p50", "p95", "p99"}


def fail(path, lineno, message):
    sys.exit(f"{path}:{lineno}: {message}")


def check_histogram(path, lineno, name, value):
    if not isinstance(value, dict) or not (
        set(value) == HISTOGRAM_KEYS
        or set(value) == HISTOGRAM_KEYS | HISTOGRAM_QUANTILE_KEYS
    ):
        fail(path, lineno, f"{name}: expected histogram keys {sorted(HISTOGRAM_KEYS)}"
                           f" (+ optional {sorted(HISTOGRAM_QUANTILE_KEYS)})")
    bins = value["bins"]
    if not isinstance(bins, list):
        fail(path, lineno, f"{name}: bins must be an array")
    if bins and len(bins) != int(value["count"]) + 2:
        fail(path, lineno, f"{name}: {len(bins)} bins for count={value['count']}"
                           " (want count + 2, or empty)")
    if sum(bins) != value["total"]:
        fail(path, lineno, f"{name}: bins sum {sum(bins)} != total {value['total']}")
    has_quantiles = HISTOGRAM_QUANTILE_KEYS <= set(value)
    if has_quantiles != (value["total"] > 0):
        fail(path, lineno, f"{name}: p50/p95/p99 must be present exactly when"
                           " total > 0")
    if has_quantiles and not (value["p50"] <= value["p95"] <= value["p99"]):
        fail(path, lineno, f"{name}: quantiles not monotone")


def check_counters(path, lineno, section, obj, keys):
    if not isinstance(obj, dict) or set(obj) != keys:
        fail(path, lineno, f"{section}: expected keys {sorted(keys)}")
    for key, value in obj.items():
        if key == "sleep_s":
            check_histogram(path, lineno, f"{section}.{key}", value)
        elif not isinstance(value, (int, float)) or value < 0:
            fail(path, lineno, f"{section}.{key}: not a non-negative number")


def load(path):
    """Returns (point_rows: {index: raw_line}, trailers: [parsed])."""
    points = {}
    trailers = []
    last_point = -1
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                fail(path, lineno, "blank line")
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                fail(path, lineno, f"not JSON: {e}")
            kind = row.get("kind")
            if kind == "point":
                if trailers:
                    fail(path, lineno, "point row after a registry trailer")
                for key in ("point", "seed", "replications", "policy",
                            "axes", "kernel", "protocol"):
                    if key not in row:
                        fail(path, lineno, f"point row missing '{key}'")
                index = row["point"]
                if not isinstance(index, int) or index < 0:
                    fail(path, lineno, "'point' must be a non-negative integer")
                if index <= last_point:
                    fail(path, lineno,
                         f"point {index} out of order after {last_point}"
                         " (rows must be sorted and unique)")
                last_point = index
                if not isinstance(row["seed"], str) or not row["seed"].isdigit():
                    fail(path, lineno, "'seed' must be a decimal string")
                check_counters(path, lineno, "kernel", row["kernel"], KERNEL_KEYS)
                check_counters(path, lineno, "protocol", row["protocol"],
                               PROTOCOL_KEYS)
                if "net" in row:  # optional: present iff the MAC ran
                    net = row["net"]
                    if not isinstance(net, dict) or set(net) != {"mac",
                                                                 "collection"}:
                        fail(path, lineno,
                             "net: expected {'mac', 'collection'} sections")
                    check_counters(path, lineno, "net.mac", net["mac"],
                                   NET_MAC_KEYS)
                    check_counters(path, lineno, "net.collection",
                                   net["collection"], NET_COLLECTION_KEYS)
                points[index] = line
            elif kind == "registry":
                if row.get("scope") not in ("campaign", "orchestrator"):
                    fail(path, lineno, f"unknown registry scope {row.get('scope')!r}")
                if not isinstance(row.get("instruments"), dict):
                    fail(path, lineno, "registry trailer missing 'instruments'")
                for name, value in row["instruments"].items():
                    if isinstance(value, dict):
                        check_histogram(path, lineno, name, value)
                    elif not isinstance(value, (int, float)) or value < 0:
                        fail(path, lineno, f"{name}: not a non-negative number")
                trailers.append(row)
            else:
                fail(path, lineno, f"unknown row kind {kind!r}")
    return points, trailers


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("metrics", help="telemetry JSONL file")
    parser.add_argument("--points", type=int, default=None,
                        help="require exactly points 0..N-1")
    parser.add_argument("--require-scope", default=None,
                        help="require a registry trailer with this scope")
    parser.add_argument("--compare-points", metavar="OTHER", default=None,
                        help="assert OTHER carries byte-identical point rows")
    args = parser.parse_args()

    points, trailers = load(args.metrics)
    if args.points is not None and sorted(points) != list(range(args.points)):
        missing = sorted(set(range(args.points)) - set(points))
        extra = sorted(set(points) - set(range(args.points)))
        sys.exit(f"{args.metrics}: expected points 0..{args.points - 1}; "
                 f"missing {missing[:10]}, extra {extra[:10]}")
    if args.require_scope is not None:
        if not any(t.get("scope") == args.require_scope for t in trailers):
            sys.exit(f"{args.metrics}: no registry trailer with scope "
                     f"'{args.require_scope}'")

    if args.compare_points is not None:
        other_points, _ = load(args.compare_points)
        if points != other_points:
            diffs = [i for i in sorted(set(points) | set(other_points))
                     if points.get(i) != other_points.get(i)]
            sys.exit(f"point rows differ between {args.metrics} and "
                     f"{args.compare_points} at points {diffs[:10]}")
        print(f"OK: {len(points)} point rows identical across both files")
        return

    print(f"OK: {len(points)} point rows, {len(trailers)} trailer(s) in "
          f"{args.metrics}")


if __name__ == "__main__":
    main()

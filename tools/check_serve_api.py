#!/usr/bin/env python3
"""Validate captures from the pas-exp --serve HTTP API.

Usage:
  check_serve_api.py --status status.json [--expect-state done]
  check_serve_api.py --metrics metrics.json
  check_serve_api.py --events events.sse [--expect-points N] [--allow-gaps]

Any combination of --status / --metrics / --events may be given in one
invocation; each file is checked against the schema documented in
docs/FORMATS.md ("HTTP API"):

  status:   the /api/status object — key set, enum state, counter sanity
            (done_points <= total_points, non-negative everything), and
            the worker-table row shape.
  metrics:  the /api/metrics registry snapshot — {} (registry not armed)
            or {"scope":...,"instruments":{...}} whose histograms carry
            ordered p50 <= p95 <= p99 quantiles and self-consistent bins.
  events:   a raw /api/events capture (e.g. `curl -N --max-time 5`).
            Frames must parse as `id:`/`event:`/`data:` with one-line
            JSON payloads, sequence ids must be strictly increasing (and
            contiguous unless --allow-gaps), event types must be from
            the documented set, `progress.done` must be monotonic, and
            `point` events must never repeat a point. --expect-points N
            additionally requires exactly N distinct completed points.
            A trailing partial frame (capture cut mid-write) is legal.

Exits non-zero with a pointed message on the first violation.
"""

import argparse
import json
import sys

STATES = {"idle", "running", "done", "interrupted"}
EVENT_TYPES = {"campaign", "progress", "point", "worker", "shutdown"}
STATUS_KEYS = {
    "state",
    "campaign",
    "campaign_id",
    "total_points",
    "done_points",
    "computed",
    "resumed",
    "replications",
    "elapsed_s",
    "last_seq",
    "points_logged",
    "queued_campaigns",
    "workers",
}
WORKER_KEYS = {"id", "has_lease", "lease_points_left", "points_done", "hb_age_s"}
CAMPAIGN_EVENTS = {"start", "done", "interrupted", "submitted"}
WORKER_EVENTS = {"spawn", "crash", "respawn", "recovered"}


def fail(message):
    print(f"check_serve_api: {message}", file=sys.stderr)
    sys.exit(1)


def load_json(path, what):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{what} {path}: {error}")


def require_uint(obj, key, where):
    value = obj.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
        fail(f"{where}: {key!r} must be a non-negative number, got {value!r}")
    return value


def check_status(path, expect_state):
    status = load_json(path, "status")
    if not isinstance(status, dict):
        fail(f"status {path}: not a JSON object")
    missing = STATUS_KEYS - set(status)
    if missing:
        fail(f"status {path}: missing keys {sorted(missing)}")
    if status["state"] not in STATES:
        fail(f"status {path}: state {status['state']!r} not in {sorted(STATES)}")
    if expect_state and status["state"] != expect_state:
        fail(f"status {path}: state {status['state']!r}, expected {expect_state!r}")
    for key in (
        "total_points",
        "done_points",
        "computed",
        "resumed",
        "replications",
        "elapsed_s",
        "last_seq",
        "points_logged",
        "queued_campaigns",
    ):
        require_uint(status, key, f"status {path}")
    if status["done_points"] > status["total_points"]:
        fail(
            f"status {path}: done_points {status['done_points']} exceeds "
            f"total_points {status['total_points']}"
        )
    if status["done_points"] != status["computed"] + status["resumed"]:
        fail(
            f"status {path}: done_points {status['done_points']} != "
            f"computed {status['computed']} + resumed {status['resumed']}"
        )
    workers = status["workers"]
    if not isinstance(workers, list):
        fail(f"status {path}: workers is not a list")
    for index, worker in enumerate(workers):
        if not isinstance(worker, dict) or not WORKER_KEYS <= set(worker):
            fail(f"status {path}: workers[{index}] missing keys (want {sorted(WORKER_KEYS)})")
        if not isinstance(worker["has_lease"], bool):
            fail(f"status {path}: workers[{index}].has_lease is not a bool")
    print(
        f"status OK: state={status['state']} "
        f"done={status['done_points']}/{status['total_points']} "
        f"workers={len(workers)}"
    )


def check_histogram(name, hist, where):
    for key in ("lo", "count", "bins", "total"):
        if key not in hist:
            fail(f"{where}: histogram {name!r} missing {key!r}")
    bins = hist["bins"]
    if not isinstance(bins, list) or len(bins) != hist["count"] + 2:
        fail(f"{where}: histogram {name!r} wants count+2 bins, got {len(bins)}")
    if sum(bins) != hist["total"]:
        fail(f"{where}: histogram {name!r} bins sum {sum(bins)} != total {hist['total']}")
    if hist["total"] > 0:
        quantiles = [hist.get(q) for q in ("p50", "p95", "p99")]
        if any(not isinstance(q, (int, float)) for q in quantiles):
            fail(f"{where}: histogram {name!r} has samples but no p50/p95/p99")
        if not quantiles[0] <= quantiles[1] <= quantiles[2]:
            fail(f"{where}: histogram {name!r} quantiles not ordered: {quantiles}")
    elif any(q in hist for q in ("p50", "p95", "p99")):
        fail(f"{where}: empty histogram {name!r} must omit quantile keys")


def check_metrics(path):
    snapshot = load_json(path, "metrics")
    if not isinstance(snapshot, dict):
        fail(f"metrics {path}: not a JSON object")
    if not snapshot:
        print("metrics OK: registry not armed (empty snapshot)")
        return
    if snapshot.get("scope") not in {"campaign", "orchestrator"}:
        fail(f"metrics {path}: scope {snapshot.get('scope')!r} is not campaign/orchestrator")
    instruments = snapshot.get("instruments")
    if not isinstance(instruments, dict):
        fail(f"metrics {path}: instruments is not an object")
    histograms = 0
    for name, value in instruments.items():
        if isinstance(value, dict):
            histograms += 1
            check_histogram(name, value, f"metrics {path}")
        elif not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(f"metrics {path}: instrument {name!r} is neither number nor histogram")
    print(
        f"metrics OK: scope={snapshot['scope']} "
        f"instruments={len(instruments)} histograms={histograms}"
    )


def parse_sse(text):
    """Yield (seq, event_type, payload_text) frames; drop a trailing partial."""
    frames = []
    for block in text.replace("\r\n", "\n").split("\n\n"):
        if not block.strip():
            continue
        seq = event_type = data = None
        for line in block.split("\n"):
            if line.startswith(":"):
                continue  # keep-alive comment
            if line.startswith("id:"):
                seq = line[3:].strip()
            elif line.startswith("event:"):
                event_type = line[6:].strip()
            elif line.startswith("data:"):
                data = line[5:].strip()
            elif line.strip():
                fail(f"events: unrecognized SSE line {line!r}")
        if seq is None and event_type is None and data is None:
            continue  # pure comment block
        frames.append((seq, event_type, data, block))
    # A capture cut off mid-frame legitimately truncates the LAST block only.
    if frames and (frames[-1][0] is None or frames[-1][1] is None or frames[-1][2] is None):
        frames.pop()
    return frames


def check_events(path, expect_points, allow_gaps):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        fail(f"events {path}: {error}")
    frames = parse_sse(text)
    if not frames:
        fail(f"events {path}: no complete SSE frames captured")

    last_seq = None
    last_progress_done = -1
    points_seen = set()
    counts = {}
    for seq_text, event_type, data, block in frames:
        if seq_text is None or event_type is None or data is None:
            fail(f"events {path}: incomplete frame before the end:\n{block}")
        try:
            seq = int(seq_text)
        except ValueError:
            fail(f"events {path}: non-integer id {seq_text!r}")
        if last_seq is not None:
            if seq <= last_seq:
                fail(f"events {path}: id {seq} after {last_seq} is not increasing")
            if not allow_gaps and seq != last_seq + 1:
                fail(f"events {path}: id gap {last_seq} -> {seq} (use --allow-gaps?)")
        last_seq = seq
        if event_type not in EVENT_TYPES:
            fail(f"events {path}: unknown event type {event_type!r} (id {seq})")
        counts[event_type] = counts.get(event_type, 0) + 1
        try:
            payload = json.loads(data)
        except json.JSONDecodeError as error:
            fail(f"events {path}: id {seq} data is not JSON ({error}): {data!r}")
        if not isinstance(payload, dict):
            fail(f"events {path}: id {seq} data is not a JSON object")
        if event_type == "campaign":
            if payload.get("event") not in CAMPAIGN_EVENTS:
                fail(f"events {path}: id {seq} campaign event {payload.get('event')!r}")
        elif event_type == "progress":
            done = require_uint(payload, "done", f"events {path} id {seq}")
            require_uint(payload, "total", f"events {path} id {seq}")
            if done < last_progress_done:
                fail(
                    f"events {path}: id {seq} progress went backwards "
                    f"({last_progress_done} -> {done})"
                )
            last_progress_done = done
        elif event_type == "point":
            point = payload.get("point")
            if not isinstance(point, int) or point < 0:
                fail(f"events {path}: id {seq} point event without a point index")
            if point in points_seen:
                fail(f"events {path}: point {point} completed twice (id {seq})")
            points_seen.add(point)
        elif event_type == "worker":
            if payload.get("event") not in WORKER_EVENTS:
                fail(f"events {path}: id {seq} worker event {payload.get('event')!r}")

    if expect_points is not None and len(points_seen) != expect_points:
        fail(
            f"events {path}: saw {len(points_seen)} distinct completed points, "
            f"expected {expect_points}"
        )
    summary = " ".join(f"{kind}={counts[kind]}" for kind in sorted(counts))
    print(f"events OK: {len(frames)} frames, last id {last_seq}, {summary}")


def main():
    parser = argparse.ArgumentParser(
        description="Validate pas-exp --serve API captures (see docs/FORMATS.md)."
    )
    parser.add_argument("--status", help="captured GET /api/status body")
    parser.add_argument("--expect-state", choices=sorted(STATES))
    parser.add_argument("--metrics", help="captured GET /api/metrics body")
    parser.add_argument("--events", help="raw GET /api/events SSE capture")
    parser.add_argument("--expect-points", type=int)
    parser.add_argument(
        "--allow-gaps",
        action="store_true",
        help="tolerate non-contiguous SSE ids (capture started mid-ring)",
    )
    args = parser.parse_args()
    if not (args.status or args.metrics or args.events):
        parser.error("nothing to check: pass --status, --metrics, and/or --events")
    if args.status:
        check_status(args.status, args.expect_state)
    if args.metrics:
        check_metrics(args.metrics)
    if args.events:
        check_events(args.events, args.expect_points, args.allow_gaps)


if __name__ == "__main__":
    main()

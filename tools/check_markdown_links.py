#!/usr/bin/env python3
"""Check that relative links in markdown files resolve.

Usage:
  check_markdown_links.py FILE_OR_DIR [FILE_OR_DIR ...]

Walks the given markdown files (directories are searched for *.md),
extracts inline links and images — `[text](target)` — and verifies every
relative target exists on disk, resolved against the containing file's
directory. Absolute URLs (http/https/mailto) are skipped; `#fragment`
suffixes are checked against the target file's headings using
GitHub-style slugs. Exits non-zero listing every broken link.

Stdlib only; used by the CI `docs` job.
"""

import pathlib
import re
import sys

# Inline links/images. [1] is the target; stops at the first unescaped ')'.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def slugify(heading):
    """GitHub-style anchor slug: lowercase, drop punctuation, dash spaces."""
    text = re.sub(r"[`*_\[\]()]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return re.sub(r"\s+", "-", text).strip("-")


def markdown_lines(path):
    """Lines with fenced code blocks blanked (links in code aren't links)."""
    lines = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            lines.append("")
            continue
        lines.append("" if in_fence else line)
    return lines


def anchors_of(path):
    return {slugify(m.group(1))
            for line in markdown_lines(path)
            if (m := HEADING_RE.match(line))}


def check_file(path, errors):
    lines = markdown_lines(path)
    for lineno, line in enumerate(lines, 1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            base, _, fragment = target.partition("#")
            dest = path if not base else (path.parent / base).resolve()
            if not dest.exists():
                errors.append(f"{path}:{lineno}: broken link '{target}'"
                              f" ({dest} does not exist)")
                continue
            if fragment and dest.suffix == ".md":
                if slugify(fragment) not in anchors_of(dest):
                    errors.append(f"{path}:{lineno}: '{target}' — no heading"
                                  f" '#{fragment}' in {dest.name}")


def main(argv):
    if not argv:
        sys.exit(__doc__.strip())
    files = []
    for arg in argv:
        p = pathlib.Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.exists():
            files.append(p)
        else:
            sys.exit(f"{arg}: no such file or directory")
    errors = []
    for f in files:
        check_file(f, errors)
    if errors:
        print("\n".join(errors))
        sys.exit(f"{len(errors)} broken link(s) in {len(files)} file(s)")
    print(f"OK: all relative links resolve across {len(files)} file(s)")


if __name__ == "__main__":
    main(sys.argv[1:])

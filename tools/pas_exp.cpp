// pas-exp — run an experiment campaign from a JSON manifest.
//
//   pas-exp --manifest examples/campaign.json --jobs 8 --out out.csv
//   pas-exp --manifest examples/campaign.json --jobs 8 --out out.csv --resume
//
//   # one command instead of N terminals: a supervised multi-process
//   # campaign with work-stealing leases, crash recovery, and auto-merge
//   pas-exp --drive 4 --manifest examples/campaign.json --out out.csv
//
//   # split one manifest across machines by hand, then recombine:
//   pas-exp --manifest c.json --shard 0/2 --out s0.csv     # machine A
//   pas-exp --manifest c.json --shard 1/2 --out s1.csv     # machine B
//   pas-exp --merge s0.csv s1.csv --out full.csv --manifest c.json
//
// The manifest declares the base scenario, the axes to sweep, and the
// replication count (see src/exp/manifest.hpp for the schema). Output is
// one CSV row per grid point (plus optional per-replication rows via
// --per-run); --resume reloads an interrupted campaign's file and computes
// only the missing points. Results are independent of --jobs, --shard,
// --rep-chunk, and --drive: the completed (merged) file is byte-identical
// for any parallel schedule, single- or multi-process.
#include <algorithm>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "core/policy.hpp"
#include "exp/aggregate.hpp"
#include "exp/grid.hpp"
#include "exp/manifest.hpp"
#include "exp/row_store.hpp"
#include "exp/runner.hpp"
#include "exp/telemetry.hpp"
#include "metrics/report.hpp"
#include "io/cli.hpp"
#include "io/json.hpp"
#include "obs/export.hpp"
#include "orch/supervisor.hpp"
#include "orch/worker_link.hpp"
#include "serve/feed.hpp"
#include "serve/server.hpp"
#include "world/scenario.hpp"

namespace {

/// Set by SIGINT/SIGTERM while --serve is active; the campaign engine polls
/// it (CampaignOptions::should_stop) and the serve loop exits its drain.
/// --drive installs its own guard for the duration of the drive and restores
/// this one afterwards, so both topologies drain gracefully.
volatile std::sig_atomic_t g_stop_requested = 0;

void handle_stop_signal(int) { g_stop_requested = 1; }

/// Parses "i/N" into shard index + count. Returns false on malformed input.
bool parse_shard(const std::string& spec, std::size_t& index,
                 std::size_t& count) {
  const auto slash = spec.find('/');
  if (slash == std::string::npos) return false;
  const char* begin = spec.data();
  auto r1 = std::from_chars(begin, begin + slash, index);
  if (r1.ec != std::errc{} || r1.ptr != begin + slash) return false;
  auto r2 = std::from_chars(begin + slash + 1, begin + spec.size(), count);
  if (r2.ec != std::errc{} || r2.ptr != begin + spec.size()) return false;
  return count >= 1 && index < count;
}

/// JSON string-escapes the campaign name (quotes, backslashes, control
/// chars) so a creative manifest name cannot corrupt the bench file.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const unsigned char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(static_cast<char>(c));
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

/// Appends one perf sample to the trajectory file (BENCH_orch.json in CI):
/// flat JSON, one object per line, so runs accumulate append-only.
void write_bench_json(const std::string& path,
                      const pas::exp::Manifest& manifest, const char* mode,
                      std::size_t workers, std::size_t jobs,
                      std::size_t computed_points, double wall_s) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "pas-exp: cannot write %s\n", path.c_str());
    return;
  }
  const double reps =
      static_cast<double>(computed_points * manifest.replications);
  std::fprintf(f,
               "{\"campaign\":\"%s\",\"mode\":\"%s\",\"workers\":%zu,"
               "\"jobs\":%zu,\"points\":%zu,\"replications\":%zu,"
               "\"computed_points\":%zu,\"wall_s\":%.3f,"
               "\"reps_per_s\":%.1f}\n",
               json_escape(manifest.name).c_str(), mode, workers, jobs,
               manifest.point_count(), manifest.replications, computed_points,
               wall_s, wall_s > 0.0 ? reps / wall_s : 0.0);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  std::string out_csv = "out.csv";
  std::string out_json;
  std::string per_run_csv;
  std::string shard_spec;
  std::string bench_json;
  std::string metrics_path;
  std::string trace_path;
  std::uint64_t trace_point = 0;
  std::uint64_t jobs = 0;
  std::uint64_t rep_chunk = 0;
  std::uint64_t drive_workers = 0;
  std::uint64_t worker_id = 0;
  double hang_timeout = 120.0;
  std::string serve_spec;
  std::string store_spec = "on";
  std::uint64_t agg_synth = 0;
  std::uint64_t agg_reps = 4;
  bool do_export = false;
  bool serve_linger = false;
  bool resume = false;
  bool quiet = false;
  bool progress = false;
  bool dry_run = false;
  bool merge = false;
  bool worker = false;
  bool list_policies = false;

  pas::io::Cli cli("pas-exp",
                   "Run a scenario-grid experiment campaign from a JSON "
                   "manifest, sharded across worker threads, worker "
                   "processes (--drive), or machines (--shard), with "
                   "resumable CSV/JSON output. --merge recombines "
                   "finalized shard outputs.");
  cli.add_string("manifest", &manifest_path,
                 "Path to the campaign manifest (required except --merge, "
                 "where it optionally validates the shard files)");
  cli.add_string("out", &out_csv, "Output CSV path");
  cli.add_string("json", &out_json, "Optional JSON-lines output path");
  cli.add_string("per-run", &per_run_csv,
                 "Optional per-replication CSV (one row per run; enables "
                 "p95/p99 quantile reporting)");
  cli.add_string("shard", &shard_spec,
                 "Run only this shard of the grid, format i/N (points with "
                 "index % N == i)");
  cli.add_uint("jobs", &jobs,
               "Worker threads (0 = hardware concurrency, 1 = serial; with "
               "--drive: threads per worker process, 0 = 1)");
  cli.add_uint("rep-chunk", &rep_chunk,
               "Replications per sub-job within a point (0 = automatic)");
  cli.add_uint("drive", &drive_workers,
               "Supervise N worker processes with work-stealing leases, "
               "crash recovery, and automatic merge into --out");
  cli.add_flag("resume", &resume,
               "Reload --out (and, with --drive, any .w* part files) and "
               "compute only the missing points");
  cli.add_flag("merge", &merge,
               "Merge finalized shard CSVs (positional args) into --out");
  cli.add_flag("progress", &progress,
               "Periodic one-line status (points done/total, reps/s, ETA) "
               "instead of per-point lines");
  cli.add_flag("quiet", &quiet, "Suppress per-point progress lines");
  cli.add_flag("dry-run", &dry_run,
               "Print the expanded grid and exit without simulating");
  cli.add_flag("list-policies", &list_policies,
               "Print the registered sleeping policies (valid \"policy\" "
               "axis values) and exit");
  cli.add_string("bench-json", &bench_json,
                 "Append a {wall_s, reps_per_s, ...} sample to this file "
                 "after a completed run");
  cli.add_string("metrics", &metrics_path,
                 "Per-point telemetry JSONL: kernel/protocol counters and "
                 "histograms per grid point plus a registry trailer; merges "
                 "byte-identically across --jobs/--shard/--drive/--resume");
  cli.add_string("trace", &trace_path,
                 "Write one grid point's structured event trace as JSONL to "
                 "this path and exit (no campaign output)");
  cli.add_uint("trace-point", &trace_point,
               "Grid point index for --trace (default 0)");
  cli.add_string("serve", &serve_spec,
                 "Serve the live campaign dashboard + HTTP API on host:port "
                 "(e.g. 127.0.0.1:8080; :0 picks a free port) while the "
                 "campaign runs; observe-only, outputs stay byte-identical");
  cli.add_flag("serve-linger", &serve_linger,
               "With --serve: keep serving (and accept POST /api/campaigns "
               "submissions) after the campaign finishes, until SIGINT");
  cli.add_double("hang-timeout", &hang_timeout,
                 "--drive: kill a worker silent for this many seconds and "
                 "reassign its lease (0 disables)");
  cli.add_string("store", &store_spec,
                 "Row-store backing for campaign aggregation: \"on\" "
                 "(default; rows stream through a bounded-memory .pasrows "
                 "store and the CSV materializes at finalize) or \"off\" "
                 "(legacy in-memory rows). Outputs are byte-identical "
                 "either way");
  cli.add_flag("export", &do_export,
               "Render the CSV/JSONL artifacts from an existing --out row "
               "store (e.g. after an interrupted campaign) and exit; "
               "requires --manifest, keeps the store");
  cli.add_uint("agg-synth", &agg_synth,
               "Synthetic aggregation driver: record N fabricated points "
               "through the aggregator and finalize, no simulation (memory "
               "and throughput gating for the aggregation pipeline)");
  cli.add_uint("agg-reps", &agg_reps,
               "Replications per fabricated point for --agg-synth "
               "(default 4)");
  cli.add_flag("worker", &worker,
               "Internal: run as a --drive worker process (protocol on "
               "stdin/stdout)");
  cli.add_uint("worker-id", &worker_id, "Internal: this worker's id");
  if (!cli.parse(argc, argv)) return cli.status();

  try {
    if (list_policies) {
      pas::core::print_policy_registry(stdout);
      return 0;
    }

    if (store_spec != "on" && store_spec != "off") {
      std::fprintf(stderr,
                   "pas-exp: --store expects \"on\" or \"off\" (got "
                   "\"%s\")\n",
                   store_spec.c_str());
      return 2;
    }
    const bool use_store = store_spec == "on";

    if (merge) {
      const auto& inputs = cli.positional();
      if (inputs.empty()) {
        std::fprintf(stderr,
                     "pas-exp: --merge needs shard CSVs as positional "
                     "arguments (try --help)\n");
        return 2;
      }
      // Campaign-execution options have no meaning here; accepting them
      // would let e.g. --json name a file that is never written, or
      // --dry-run suggest no output gets touched when --out is overwritten.
      if (!out_json.empty() || !per_run_csv.empty() || !shard_spec.empty() ||
          resume || dry_run || progress || jobs != 0 || rep_chunk != 0 ||
          drive_workers != 0 || worker || worker_id != 0 ||
          !bench_json.empty() || hang_timeout != 120.0 ||
          !trace_path.empty() || trace_point != 0 || !serve_spec.empty() ||
          serve_linger || store_spec != "on" || do_export ||
          agg_synth != 0 || agg_reps != 4) {
        std::fprintf(stderr,
                     "pas-exp: --merge takes only input CSVs, --out, and "
                     "--manifest (merge per-run shard files in a separate "
                     "--merge invocation)\n");
        return 2;
      }
      if (!metrics_path.empty()) {
        // Telemetry merge: the positional inputs are telemetry JSONL shard
        // files, recombined into --metrics. A separate invocation from the
        // CSV merge, like per-run shard files.
        if (!manifest_path.empty()) {
          std::fprintf(stderr,
                       "pas-exp: a telemetry merge (--merge --metrics) does "
                       "not validate against a manifest; drop --manifest\n");
          return 2;
        }
        const auto rows = pas::exp::merge_telemetry(inputs, metrics_path);
        std::printf("merged %zu telemetry rows from %zu shard files -> %s\n",
                    rows, inputs.size(), metrics_path.c_str());
        return 0;
      }
      pas::exp::Manifest manifest;
      const bool validate = !manifest_path.empty();
      if (validate) manifest = pas::exp::Manifest::load(manifest_path);
      const auto rows = pas::exp::merge_outputs(
          inputs, out_csv, validate ? &manifest : nullptr);
      std::printf("merged %zu rows from %zu shard files -> %s%s\n", rows,
                  inputs.size(), out_csv.c_str(),
                  validate ? " (validated against manifest)" : "");
      return 0;
    }

    if (!cli.positional().empty()) {
      // Without this, a forgotten --merge would silently launch a full
      // campaign over the shard CSVs instead of merging them.
      std::fprintf(stderr,
                   "pas-exp: unexpected positional argument \"%s\" (input "
                   "CSVs are only accepted with --merge)\n",
                   cli.positional().front().c_str());
      return 2;
    }
    if (agg_synth > 0) {
      // Synthetic aggregation driver: pushes N fabricated points through
      // record()/finalize() without simulating anything — the workload the
      // CI max-RSS gate and the aggregation benches measure. Inputs are a
      // pure function of (point, rep), so --store on and --store off must
      // produce byte-identical artifacts.
      if (worker || drive_workers != 0 || do_export || !serve_spec.empty() ||
          !trace_path.empty() || dry_run || !shard_spec.empty() ||
          !metrics_path.empty() || !manifest_path.empty()) {
        std::fprintf(stderr,
                     "pas-exp: --agg-synth drives the aggregator alone; it "
                     "takes only --out/--json/--per-run/--store/--agg-reps/"
                     "--resume\n");
        return 2;
      }
      const auto n_points = static_cast<std::size_t>(agg_synth);
      const auto reps =
          std::max<std::size_t>(1, static_cast<std::size_t>(agg_reps));
      pas::exp::AggregatorOptions agg_options;
      agg_options.csv_path = out_csv;
      agg_options.json_path = out_json;
      agg_options.per_run_path = per_run_csv;
      agg_options.axis_names = {"x"};
      agg_options.total_points = n_points;
      agg_options.replications = reps;
      if (use_store) {
        agg_options.store_path = pas::exp::RowStore::path_for(out_csv);
      }
      pas::exp::Aggregator aggregator(std::move(agg_options));
      if (resume) aggregator.load_existing();
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<pas::metrics::RunMetrics> runs(reps);
      for (std::size_t p = 0; p < n_points; ++p) {
        if (aggregator.is_done(p)) continue;
        for (std::size_t r = 0; r < reps; ++r) {
          auto& run = runs[r];
          run = pas::metrics::RunMetrics{};
          run.node_count = 64;
          run.duration_s = 600.0;
          run.avg_delay_s = 0.25 + 0.001 * static_cast<double>(p % 97) +
                            0.01 * static_cast<double>(r);
          run.p95_delay_s = run.avg_delay_s * 1.7;
          run.max_delay_s = run.avg_delay_s * 2.5;
          run.reached = 64;
          run.detected = 63;
          run.missed = (p + r) % 3 == 0 ? 1 : 0;
          run.avg_energy_j = 1.5 + 0.0005 * static_cast<double>(p % 53);
          run.total_energy_j = run.avg_energy_j * 64.0;
          run.avg_energy_tx_j = run.avg_energy_j * 0.1;
          run.avg_active_fraction =
              0.05 + 0.0001 * static_cast<double>((p + r) % 101);
          run.network.broadcasts = 100 + p % 11;
        }
        aggregator.record(p, 0x9e3779b97f4a7c15ull ^ p, {std::to_string(p)},
                          pas::world::reduce_runs(runs));
      }
      aggregator.finalize();
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      std::printf(
          "agg-synth: %zu points x %zu reps (store %s) in %.2fs "
          "(%.0f points/s) -> %s\n",
          n_points, reps, use_store ? "on" : "off", wall,
          wall > 0.0 ? static_cast<double>(n_points) / wall : 0.0,
          out_csv.c_str());
      return 0;
    }

    if (manifest_path.empty()) {
      std::fprintf(stderr, "pas-exp: --manifest is required (try --help)\n");
      return 2;
    }
    if (serve_linger && serve_spec.empty()) {
      std::fprintf(stderr,
                   "pas-exp: --serve-linger needs --serve <host:port>\n");
      return 2;
    }
    if (!serve_spec.empty() && (worker || dry_run || !trace_path.empty())) {
      std::fprintf(stderr,
                   "pas-exp: --serve watches a running campaign; it is "
                   "incompatible with --worker, --dry-run, and --trace\n");
      return 2;
    }

    if (worker) {
      // Internal child mode of --drive: no human output, protocol only.
      const auto manifest = pas::exp::Manifest::load(manifest_path);
      pas::orch::WorkerOptions options;
      options.out_csv = out_csv;
      options.per_run_csv = per_run_csv;
      options.metrics_csv = metrics_path;
      options.worker_id = static_cast<int>(worker_id);
      options.jobs = std::max<std::size_t>(1, static_cast<std::size_t>(jobs));
      options.store = use_store;
      return pas::orch::run_worker(manifest, options);
    }

    pas::exp::CampaignOptions options;
    if (!shard_spec.empty() &&
        !parse_shard(shard_spec, options.shard_index, options.shard_count)) {
      std::fprintf(stderr,
                   "pas-exp: --shard expects i/N with i < N (got \"%s\")\n",
                   shard_spec.c_str());
      return 2;
    }

    const auto manifest = pas::exp::Manifest::load(manifest_path);
    std::printf("campaign %s: %zu points x %zu replications = %zu runs\n",
                manifest.name.c_str(), manifest.point_count(),
                manifest.replications, manifest.run_count());

    const auto points = pas::exp::expand_grid(manifest);

    if (do_export) {
      // Render the CSV/JSONL artifacts out of an existing row store without
      // running anything — the recovery hatch for an interrupted store-mode
      // campaign whose CSV never materialized. Keeps the store (finalize,
      // not export, is what retires it).
      if (worker || drive_workers != 0 || dry_run || !trace_path.empty() ||
          !serve_spec.empty() || !use_store) {
        std::fprintf(stderr,
                     "pas-exp: --export renders an existing row store; it "
                     "takes only --manifest, --out, --json, and --per-run\n");
        return 2;
      }
      pas::exp::AggregatorOptions agg_options;
      agg_options.csv_path = out_csv;
      agg_options.json_path = out_json;
      agg_options.per_run_path = per_run_csv;
      agg_options.axis_names = pas::exp::axis_columns(manifest);
      agg_options.total_points = points.size();
      agg_options.replications = manifest.replications;
      agg_options.expected_identity = pas::exp::grid_identity(points);
      const std::string store_path = pas::exp::RowStore::path_for(out_csv);
      agg_options.store_path = store_path;
      pas::exp::Aggregator aggregator(std::move(agg_options));
      aggregator.load_existing();
      aggregator.compact();
      std::printf("exported %zu of %zu points from %s -> %s\n",
                  aggregator.done_count(), points.size(), store_path.c_str(),
                  out_csv.c_str());
      return 0;
    }

    if (dry_run) {
      for (const auto& p : points) {
        if (options.shard_count > 1 &&
            p.index % options.shard_count != options.shard_index) {
          continue;
        }
        std::printf("  [%zu] %s (seed %llu)\n", p.index,
                    p.label(manifest).c_str(),
                    static_cast<unsigned long long>(p.seed));
      }
      return 0;
    }

    if (!trace_path.empty()) {
      // Single-point structured trace export: run one grid point with the
      // event trace enabled and dump it as JSONL, then exit — a debugging
      // companion to a campaign, not part of one.
      if (drive_workers > 0 || !shard_spec.empty() || resume ||
          !out_json.empty() || !per_run_csv.empty() || !metrics_path.empty()) {
        std::fprintf(stderr,
                     "pas-exp: --trace runs one point and exits; it is "
                     "incompatible with campaign output options\n");
        return 2;
      }
      if (trace_point >= points.size()) {
        std::fprintf(stderr,
                     "pas-exp: --trace-point %llu is outside the grid "
                     "(%zu points)\n",
                     static_cast<unsigned long long>(trace_point),
                     points.size());
        return 2;
      }
      const auto& point = points[static_cast<std::size_t>(trace_point)];
      auto config = point.config;
      config.enable_trace = true;
      const auto result = pas::world::run_scenario(config);
      std::ofstream out(trace_path);
      if (!out) {
        std::fprintf(stderr, "pas-exp: cannot write %s\n", trace_path.c_str());
        return 1;
      }
      pas::obs::write_trace_jsonl(result.trace, out);
      std::printf("trace: point %zu %s (seed %llu) -> %zu events -> %s\n",
                  point.index, point.label(manifest).c_str(),
                  static_cast<unsigned long long>(point.seed),
                  result.trace.size(), trace_path.c_str());
      return 0;
    }

    // --- live observability: one feed for terminal echo and --serve -------
    // The feed exists for every campaign topology (it renders the classic
    // --progress lines), but only retains point rows when a server will
    // actually read them back out of /api/points.
    const bool serving = !serve_spec.empty();
    pas::serve::CampaignFeed::Options feed_options;
    feed_options.store_points = serving;
    pas::serve::CampaignFeed feed(feed_options);
    std::unique_ptr<pas::serve::Server> server;
    std::thread server_thread;
    // Scope guard: every exit path (drive return, interrupt, exception)
    // announces shutdown to SSE clients, stops the poll loop, and joins the
    // server thread — which is also what flushes the flight-recorder dump.
    struct ServeShutdown {
      pas::serve::CampaignFeed& feed;
      std::unique_ptr<pas::serve::Server>& server;
      std::thread& thread;
      ~ServeShutdown() {
        if (server != nullptr) {
          feed.publish("shutdown", "{}");
          server->stop();
          if (thread.joinable()) thread.join();
        }
      }
    } serve_shutdown{feed, server, server_thread};
    if (serving) {
      pas::serve::Server::Options server_options;
      if (!pas::serve::parse_listen_address(serve_spec, server_options.host,
                                            server_options.port)) {
        std::fprintf(stderr,
                     "pas-exp: --serve expects host:port (got \"%s\")\n",
                     serve_spec.c_str());
        return 2;
      }
      server_options.flightrec_path = out_csv + ".flightrec";
      server_options.manifest_validator =
          [](const std::string& body) -> std::string {
        try {
          pas::exp::Manifest::from_json(pas::io::Json::parse(body)).validate();
          return "";
        } catch (const std::exception& e) {
          return e.what();
        }
      };
      server = std::make_unique<pas::serve::Server>(feed, server_options);
      std::string error;
      if (!server->start(error)) {
        std::fprintf(stderr, "pas-exp: --serve: %s\n", error.c_str());
        return 1;
      }
      std::printf("pas-exp: serving on http://%s:%u/\n",
                  server->host().c_str(),
                  static_cast<unsigned>(server->port()));
      std::fflush(stdout);
      server_thread = std::thread([&server] { server->run(); });
      std::signal(SIGINT, handle_stop_signal);
      std::signal(SIGTERM, handle_stop_signal);
    }
    // Serve loop: after the primary campaign, run queued POST /api/campaigns
    // submissions (each into <out>.c<id>.csv); with --serve-linger, keep
    // waiting for more until SIGINT. `run_one` returns false to stop early
    // (an interrupted submission leaves its outputs resumable).
    const auto drain_submissions = [&](const auto& run_one) {
      while (g_stop_requested == 0) {
        auto submission = feed.pop_submission();
        if (submission.has_value()) {
          if (!run_one(submission->first, submission->second)) break;
          continue;
        }
        if (!serve_linger) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    };

    if (drive_workers > 0) {
      if (!shard_spec.empty() || rep_chunk != 0 || !out_json.empty()) {
        std::fprintf(stderr,
                     "pas-exp: --drive is incompatible with --shard, "
                     "--rep-chunk, and --json (drive owns the process "
                     "split; JSON-lines shards cannot be merged)\n");
        return 2;
      }
      pas::orch::DriveOptions drive_options;
      drive_options.exe_path = pas::orch::self_exe_path(argv[0]);
      drive_options.manifest_path = manifest_path;
      drive_options.out_csv = out_csv;
      drive_options.per_run_csv = per_run_csv;
      drive_options.metrics_path = metrics_path;
      drive_options.workers = static_cast<std::size_t>(drive_workers);
      drive_options.jobs_per_worker =
          std::max<std::size_t>(1, static_cast<std::size_t>(jobs));
      drive_options.resume = resume;
      drive_options.hang_timeout_s = hang_timeout;
      drive_options.store = use_store;
      drive_options.verbosity =
          quiet ? pas::orch::DriveOptions::Verbosity::kQuiet
                : (progress
                       ? pas::orch::DriveOptions::Verbosity::kPeriodic
                       : pas::orch::DriveOptions::Verbosity::kPerPoint);
      drive_options.feed = &feed;

      const auto report = pas::orch::drive(manifest, drive_options);
      if (report.interrupted) {
        // The *exact* command that continues this campaign: every
        // non-default knob the interrupted invocation carried, plus
        // --resume.
        std::string resume_cmd = "pas-exp --drive " +
                                 std::to_string(drive_options.workers) +
                                 " --manifest " + manifest_path + " --out " +
                                 out_csv;
        if (!per_run_csv.empty()) resume_cmd += " --per-run " + per_run_csv;
        if (!metrics_path.empty()) resume_cmd += " --metrics " + metrics_path;
        if (jobs != 0) resume_cmd += " --jobs " + std::to_string(jobs);
        if (hang_timeout != 120.0) {
          char buf[48];
          std::snprintf(buf, sizeof(buf), " --hang-timeout %g", hang_timeout);
          resume_cmd += buf;
        }
        if (!bench_json.empty()) resume_cmd += " --bench-json " + bench_json;
        if (!use_store) resume_cmd += " --store off";
        if (quiet) resume_cmd += " --quiet";
        if (progress) resume_cmd += " --progress";
        std::printf(
            "interrupted: %zu of %zu points on disk; every part file is "
            "resumable\nresume with: %s --resume\n",
            report.computed + report.resumed, report.total_points,
            resume_cmd.c_str());
        return 130;
      }
      std::printf(
          "done: %zu points (%zu computed, %zu resumed) via %zu workers "
          "(%zu crashes, %zu respawns) in %.1fs (%.1f runs/s) -> %s\n",
          report.total_points, report.computed, report.resumed,
          report.workers_spawned, report.crashes, report.respawns,
          report.wall_s,
          report.wall_s > 0.0
              ? static_cast<double>(report.computed * report.replications) /
                    report.wall_s
              : 0.0,
          out_csv.c_str());
      if (!bench_json.empty()) {
        write_bench_json(bench_json, manifest, "drive",
                         drive_options.workers, drive_options.jobs_per_worker,
                         report.computed, report.wall_s);
      }
      if (serving) {
        drain_submissions([&](std::uint64_t id, const std::string& text) {
          try {
            auto sub_manifest =
                pas::exp::Manifest::from_json(pas::io::Json::parse(text));
            sub_manifest.validate();
            // Workers re-load the manifest from disk, so the submitted JSON
            // is written next to its output (and left there as a record).
            const std::string sub_out =
                out_csv + ".c" + std::to_string(id) + ".csv";
            const std::string sub_manifest_path = sub_out + ".manifest.json";
            {
              std::ofstream mf(sub_manifest_path);
              if (!mf) {
                throw std::runtime_error("cannot write " + sub_manifest_path);
              }
              mf << text;
            }
            auto sub_options = drive_options;
            sub_options.manifest_path = sub_manifest_path;
            sub_options.out_csv = sub_out;
            sub_options.per_run_csv.clear();
            sub_options.metrics_path.clear();
            sub_options.resume = false;
            const auto sub_report = pas::orch::drive(sub_manifest, sub_options);
            std::printf("campaign #%llu (%s): %zu points (%zu computed) -> "
                        "%s%s\n",
                        static_cast<unsigned long long>(id),
                        sub_manifest.name.c_str(), sub_report.total_points,
                        sub_report.computed, sub_out.c_str(),
                        sub_report.interrupted ? " [interrupted]" : "");
            return !sub_report.interrupted;
          } catch (const std::exception& e) {
            std::fprintf(stderr,
                         "pas-exp: submitted campaign %llu failed: %s\n",
                         static_cast<unsigned long long>(id), e.what());
            return true;  // a bad submission does not end the serve loop
          }
        });
      }
      return 0;
    }

    options.jobs = static_cast<std::size_t>(jobs);
    options.rep_chunk = static_cast<std::size_t>(rep_chunk);
    options.resume = resume;
    options.out_csv = out_csv;
    options.out_json = out_json;
    options.per_run_csv = per_run_csv;
    options.metrics_path = metrics_path;
    options.use_store = use_store;
    options.feed = &feed;
    if (serving) {
      options.should_stop = [] { return g_stop_requested != 0; };
    }
    // --progress is rendered by the feed (serve/feed.hpp): the terminal
    // line and any SSE "progress" event are two views of the same counters.
    feed.set_echo(progress && !quiet, /*drive_style=*/false, 1.0);
    if (!progress && !quiet) {
      options.progress = [&points, &manifest](
                             const pas::exp::PointSummary& s,
                             std::size_t done, std::size_t total) {
        std::printf("[%zu/%zu] %s delay=%.3fs energy=%.4fJ\n", done, total,
                    points[s.point].label(manifest).c_str(), s.delay_s.mean,
                    s.energy_j.mean);
        std::fflush(stdout);
      };
    }

    const auto report = pas::exp::run_campaign(manifest, options);
    if (report.interrupted) {
      // Mirrors the --drive interrupt path: name the exact command that
      // finishes the campaign. The unfinalized output resumes like a kill.
      std::string resume_cmd =
          "pas-exp --manifest " + manifest_path + " --out " + out_csv;
      if (!out_json.empty()) resume_cmd += " --json " + out_json;
      if (!per_run_csv.empty()) resume_cmd += " --per-run " + per_run_csv;
      if (!metrics_path.empty()) resume_cmd += " --metrics " + metrics_path;
      if (!shard_spec.empty()) resume_cmd += " --shard " + shard_spec;
      if (jobs != 0) resume_cmd += " --jobs " + std::to_string(jobs);
      if (rep_chunk != 0) {
        resume_cmd += " --rep-chunk " + std::to_string(rep_chunk);
      }
      if (!use_store) resume_cmd += " --store off";
      if (quiet) resume_cmd += " --quiet";
      if (progress) resume_cmd += " --progress";
      std::printf(
          "interrupted: %zu of %zu points on disk; the output is resumable\n"
          "resume with: %s --resume\n",
          report.computed + report.skipped, report.owned_points,
          resume_cmd.c_str());
      return 130;
    }
    if (options.shard_count > 1) {
      std::printf("shard %zu/%zu: %zu of %zu points\n", options.shard_index,
                  options.shard_count, report.owned_points,
                  report.total_points);
    }
    std::printf(
        "done: %zu points (%zu computed, %zu resumed) in %.1fs "
        "(%.1f runs/s) -> %s\n",
        report.owned_points, report.computed, report.skipped, report.wall_s,
        report.wall_s > 0.0
            ? static_cast<double>(report.computed * report.replications) /
                  report.wall_s
            : 0.0,
        out_csv.c_str());
    if (!bench_json.empty()) {
      write_bench_json(bench_json, manifest, "single", 1,
                       options.jobs == 0 ? 0 : options.jobs, report.computed,
                       report.wall_s);
    }
    if (serving) {
      drain_submissions([&](std::uint64_t id, const std::string& text) {
        try {
          auto sub_manifest =
              pas::exp::Manifest::from_json(pas::io::Json::parse(text));
          sub_manifest.validate();
          pas::exp::CampaignOptions sub_options;
          sub_options.jobs = static_cast<std::size_t>(jobs);
          sub_options.rep_chunk = static_cast<std::size_t>(rep_chunk);
          sub_options.out_csv = out_csv + ".c" + std::to_string(id) + ".csv";
          sub_options.use_store = use_store;
          sub_options.feed = &feed;
          sub_options.campaign_id = id;
          sub_options.should_stop = [] { return g_stop_requested != 0; };
          const auto sub_report =
              pas::exp::run_campaign(sub_manifest, sub_options);
          std::printf("campaign #%llu (%s): %zu points (%zu computed) -> "
                      "%s%s\n",
                      static_cast<unsigned long long>(id),
                      sub_manifest.name.c_str(), sub_report.owned_points,
                      sub_report.computed, sub_options.out_csv.c_str(),
                      sub_report.interrupted ? " [interrupted]" : "");
          return !sub_report.interrupted;
        } catch (const std::exception& e) {
          std::fprintf(stderr,
                       "pas-exp: submitted campaign %llu failed: %s\n",
                       static_cast<unsigned long long>(id), e.what());
          return true;  // a bad submission does not end the serve loop
        }
      });
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pas-exp: %s\n", e.what());
    return 1;
  }
}

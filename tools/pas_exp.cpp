// pas-exp — run an experiment campaign from a JSON manifest.
//
//   pas-exp --manifest examples/campaign.json --jobs 8 --out out.csv
//   pas-exp --manifest examples/campaign.json --jobs 8 --out out.csv --resume
//
//   # split one manifest across machines, then recombine:
//   pas-exp --manifest c.json --shard 0/2 --out s0.csv     # machine A
//   pas-exp --manifest c.json --shard 1/2 --out s1.csv     # machine B
//   pas-exp --merge s0.csv s1.csv --out full.csv --manifest c.json
//
// The manifest declares the base scenario, the axes to sweep, and the
// replication count (see src/exp/manifest.hpp for the schema). Output is
// one CSV row per grid point (plus optional per-replication rows via
// --per-run); --resume reloads an interrupted campaign's file and computes
// only the missing points. Results are independent of --jobs, --shard, and
// --rep-chunk: the completed (merged) file is byte-identical for any
// parallel schedule.
#include <charconv>
#include <cstdio>
#include <exception>
#include <string>

#include "exp/aggregate.hpp"
#include "exp/grid.hpp"
#include "exp/manifest.hpp"
#include "exp/runner.hpp"
#include "io/cli.hpp"

namespace {

/// Parses "i/N" into shard index + count. Returns false on malformed input.
bool parse_shard(const std::string& spec, std::size_t& index,
                 std::size_t& count) {
  const auto slash = spec.find('/');
  if (slash == std::string::npos) return false;
  const char* begin = spec.data();
  auto r1 = std::from_chars(begin, begin + slash, index);
  if (r1.ec != std::errc{} || r1.ptr != begin + slash) return false;
  auto r2 = std::from_chars(begin + slash + 1, begin + spec.size(), count);
  if (r2.ec != std::errc{} || r2.ptr != begin + spec.size()) return false;
  return count >= 1 && index < count;
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  std::string out_csv = "out.csv";
  std::string out_json;
  std::string per_run_csv;
  std::string shard_spec;
  std::uint64_t jobs = 0;
  std::uint64_t rep_chunk = 0;
  bool resume = false;
  bool quiet = false;
  bool dry_run = false;
  bool merge = false;

  pas::io::Cli cli("pas-exp",
                   "Run a scenario-grid experiment campaign from a JSON "
                   "manifest, sharded across worker threads (and, via "
                   "--shard, across machines), with resumable CSV/JSON "
                   "output. --merge recombines finalized shard outputs.");
  cli.add_string("manifest", &manifest_path,
                 "Path to the campaign manifest (required except --merge, "
                 "where it optionally validates the shard files)");
  cli.add_string("out", &out_csv, "Output CSV path");
  cli.add_string("json", &out_json, "Optional JSON-lines output path");
  cli.add_string("per-run", &per_run_csv,
                 "Optional per-replication CSV (one row per run; enables "
                 "p95/p99 quantile reporting)");
  cli.add_string("shard", &shard_spec,
                 "Run only this shard of the grid, format i/N (points with "
                 "index % N == i)");
  cli.add_uint("jobs", &jobs,
               "Worker threads (0 = hardware concurrency, 1 = serial)");
  cli.add_uint("rep-chunk", &rep_chunk,
               "Replications per sub-job within a point (0 = automatic)");
  cli.add_flag("resume", &resume,
               "Reload --out and compute only the missing points");
  cli.add_flag("merge", &merge,
               "Merge finalized shard CSVs (positional args) into --out");
  cli.add_flag("quiet", &quiet, "Suppress per-point progress lines");
  cli.add_flag("dry-run", &dry_run,
               "Print the expanded grid and exit without simulating");
  if (!cli.parse(argc, argv)) return cli.status();

  try {
    if (merge) {
      const auto& inputs = cli.positional();
      if (inputs.empty()) {
        std::fprintf(stderr,
                     "pas-exp: --merge needs shard CSVs as positional "
                     "arguments (try --help)\n");
        return 2;
      }
      // Campaign-execution options have no meaning here; accepting them
      // would let e.g. --json name a file that is never written, or
      // --dry-run suggest no output gets touched when --out is overwritten.
      if (!out_json.empty() || !per_run_csv.empty() || !shard_spec.empty() ||
          resume || dry_run || jobs != 0 || rep_chunk != 0) {
        std::fprintf(stderr,
                     "pas-exp: --merge takes only input CSVs, --out, and "
                     "--manifest (merge per-run shard files in a separate "
                     "--merge invocation)\n");
        return 2;
      }
      pas::exp::Manifest manifest;
      const bool validate = !manifest_path.empty();
      if (validate) manifest = pas::exp::Manifest::load(manifest_path);
      const auto rows = pas::exp::merge_outputs(
          inputs, out_csv, validate ? &manifest : nullptr);
      std::printf("merged %zu rows from %zu shard files -> %s%s\n", rows,
                  inputs.size(), out_csv.c_str(),
                  validate ? " (validated against manifest)" : "");
      return 0;
    }

    if (!cli.positional().empty()) {
      // Without this, a forgotten --merge would silently launch a full
      // campaign over the shard CSVs instead of merging them.
      std::fprintf(stderr,
                   "pas-exp: unexpected positional argument \"%s\" (input "
                   "CSVs are only accepted with --merge)\n",
                   cli.positional().front().c_str());
      return 2;
    }
    if (manifest_path.empty()) {
      std::fprintf(stderr, "pas-exp: --manifest is required (try --help)\n");
      return 2;
    }
    pas::exp::CampaignOptions options;
    if (!shard_spec.empty() &&
        !parse_shard(shard_spec, options.shard_index, options.shard_count)) {
      std::fprintf(stderr,
                   "pas-exp: --shard expects i/N with i < N (got \"%s\")\n",
                   shard_spec.c_str());
      return 2;
    }

    const auto manifest = pas::exp::Manifest::load(manifest_path);
    std::printf("campaign %s: %zu points x %zu replications = %zu runs\n",
                manifest.name.c_str(), manifest.point_count(),
                manifest.replications, manifest.run_count());

    const auto points = pas::exp::expand_grid(manifest);
    if (dry_run) {
      for (const auto& p : points) {
        if (options.shard_count > 1 &&
            p.index % options.shard_count != options.shard_index) {
          continue;
        }
        std::printf("  [%zu] %s (seed %llu)\n", p.index,
                    p.label(manifest).c_str(),
                    static_cast<unsigned long long>(p.seed));
      }
      return 0;
    }

    options.jobs = static_cast<std::size_t>(jobs);
    options.rep_chunk = static_cast<std::size_t>(rep_chunk);
    options.resume = resume;
    options.out_csv = out_csv;
    options.out_json = out_json;
    options.per_run_csv = per_run_csv;
    if (!quiet) {
      options.progress = [&points, &manifest](
                             const pas::exp::PointSummary& s,
                             std::size_t done, std::size_t total) {
        std::printf("[%zu/%zu] %s delay=%.3fs energy=%.4fJ\n", done, total,
                    points[s.point].label(manifest).c_str(), s.delay_s.mean,
                    s.energy_j.mean);
        std::fflush(stdout);
      };
    }

    const auto report = pas::exp::run_campaign(manifest, options);
    if (options.shard_count > 1) {
      std::printf("shard %zu/%zu: %zu of %zu points\n", options.shard_index,
                  options.shard_count, report.owned_points,
                  report.total_points);
    }
    std::printf(
        "done: %zu points (%zu computed, %zu resumed) in %.1fs "
        "(%.1f runs/s) -> %s\n",
        report.owned_points, report.computed, report.skipped, report.wall_s,
        report.wall_s > 0.0
            ? static_cast<double>(report.computed * report.replications) /
                  report.wall_s
            : 0.0,
        out_csv.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pas-exp: %s\n", e.what());
    return 1;
  }
}

// pas-exp — run an experiment campaign from a JSON manifest.
//
//   pas-exp --manifest examples/campaign.json --jobs 8 --out out.csv
//   pas-exp --manifest examples/campaign.json --jobs 8 --out out.csv --resume
//
// The manifest declares the base scenario, the axes to sweep, and the
// replication count (see src/exp/manifest.hpp for the schema). Output is
// one CSV row per grid point; --resume reloads an interrupted campaign's
// file and computes only the missing points. Results are independent of
// --jobs: the completed file is byte-identical for any worker count.
#include <cstdio>
#include <exception>
#include <string>

#include "exp/grid.hpp"
#include "exp/manifest.hpp"
#include "exp/runner.hpp"
#include "io/cli.hpp"

int main(int argc, char** argv) {
  std::string manifest_path;
  std::string out_csv = "out.csv";
  std::string out_json;
  std::uint64_t jobs = 0;
  bool resume = false;
  bool quiet = false;
  bool dry_run = false;

  pas::io::Cli cli("pas-exp",
                   "Run a scenario-grid experiment campaign from a JSON "
                   "manifest, sharded across worker threads, with resumable "
                   "CSV/JSON output.");
  cli.add_string("manifest", &manifest_path,
                 "Path to the campaign manifest (required)");
  cli.add_string("out", &out_csv, "Output CSV path");
  cli.add_string("json", &out_json, "Optional JSON-lines output path");
  cli.add_uint("jobs", &jobs,
               "Worker threads (0 = hardware concurrency, 1 = serial)");
  cli.add_flag("resume", &resume,
               "Reload --out and compute only the missing points");
  cli.add_flag("quiet", &quiet, "Suppress per-point progress lines");
  cli.add_flag("dry-run", &dry_run,
               "Print the expanded grid and exit without simulating");
  if (!cli.parse(argc, argv)) return cli.status();
  if (manifest_path.empty()) {
    std::fprintf(stderr, "pas-exp: --manifest is required (try --help)\n");
    return 2;
  }

  try {
    const auto manifest = pas::exp::Manifest::load(manifest_path);
    std::printf("campaign %s: %zu points x %zu replications = %zu runs\n",
                manifest.name.c_str(), manifest.point_count(),
                manifest.replications, manifest.run_count());

    const auto points = pas::exp::expand_grid(manifest);
    if (dry_run) {
      for (const auto& p : points) {
        std::printf("  [%zu] %s (seed %llu)\n", p.index,
                    p.label(manifest).c_str(),
                    static_cast<unsigned long long>(p.seed));
      }
      return 0;
    }

    pas::exp::CampaignOptions options;
    options.jobs = static_cast<std::size_t>(jobs);
    options.resume = resume;
    options.out_csv = out_csv;
    options.out_json = out_json;
    if (!quiet) {
      options.progress = [&points, &manifest](
                             const pas::exp::PointSummary& s,
                             std::size_t done, std::size_t total) {
        std::printf("[%zu/%zu] %s delay=%.3fs energy=%.4fJ\n", done, total,
                    points[s.point].label(manifest).c_str(), s.delay_s.mean,
                    s.energy_j.mean);
        std::fflush(stdout);
      };
    }

    const auto report = pas::exp::run_campaign(manifest, options);
    std::printf(
        "done: %zu points (%zu computed, %zu resumed) in %.1fs "
        "(%.1f runs/s) -> %s\n",
        report.total_points, report.computed, report.skipped, report.wall_s,
        report.wall_s > 0.0
            ? static_cast<double>(report.computed * report.replications) /
                  report.wall_s
            : 0.0,
        out_csv.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pas-exp: %s\n", e.what());
    return 1;
  }
}

// Data-parallel helpers on top of ThreadPool.
#pragma once

#include <cstddef>
#include <exception>
#include <future>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace pas::runtime {

/// Runs fn(begin, end) on contiguous chunks covering [0, n) across the
/// pool, blocking until done. Each chunk executes on one worker, so per-task
/// state (a world::Workspace, a scratch buffer) can live across the whole
/// range without synchronization. `chunk` sets the chunk size explicitly —
/// pass ~n/workers when per-chunk state is expensive to rebuild (fewer,
/// larger chunks) — while 0 picks the load-balancing default of ~4 chunks
/// per worker. Exceptions from any chunk are rethrown (first one wins).
template <typename Fn>
void parallel_for_ranges(ThreadPool& pool, std::size_t n, Fn&& fn,
                         std::size_t chunk = 0) {
  if (n == 0) return;
  // Chunk so each worker gets a few contiguous indices; simulations are
  // coarse-grained, so chunks of 1 are fine but chunking limits futures.
  const std::size_t workers = pool.thread_count();
  if (chunk == 0) chunk = std::max<std::size_t>(1, n / (workers * 4));
  std::vector<std::future<void>> futures;
  futures.reserve(n / chunk + 1);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    futures.push_back(
        pool.submit([begin, end, &fn] { fn(begin, end); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Runs fn(i) for i in [0, n) across the pool, blocking until done.
/// Exceptions from any iteration are rethrown (first one wins).
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn) {
  parallel_for_ranges(pool, n, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

/// Maps fn over [0, n) collecting results in index order.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> out(n);
  parallel_for(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace pas::runtime

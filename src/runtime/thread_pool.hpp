// Fixed-size thread pool.
//
// Replicated simulations (same scenario, different seeds) are independent,
// so the sweep layer submits each replication as one task. The pool is a
// classic mutex+condvar work queue: contention is negligible because tasks
// run for milliseconds to seconds each.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pas::runtime {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers after draining queued tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      const std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace pas::runtime

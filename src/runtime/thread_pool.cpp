#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace pas::runtime {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1U, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      const std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

}  // namespace pas::runtime

// Node states (paper §3.2, Fig 3).
#pragma once

#include <cstdint>

namespace pas::core {

/// The three PAS sensor states.
///
///   safe    — far from the front (expected arrival > threshold); sleeps.
///   alert   — expected arrival below the alert-time threshold; active.
///   covered — has detected the stimulus at its own position; active.
enum class NodeState : std::uint8_t {
  kSafe = 0,
  kAlert = 1,
  kCovered = 2,
};

[[nodiscard]] constexpr const char* to_string(NodeState s) noexcept {
  switch (s) {
    case NodeState::kSafe: return "safe";
    case NodeState::kAlert: return "alert";
    case NodeState::kCovered: return "covered";
  }
  return "?";
}

/// On-air encoding used in the RESPONSE state byte.
[[nodiscard]] constexpr std::uint8_t encode(NodeState s) noexcept {
  return static_cast<std::uint8_t>(s);
}

[[nodiscard]] constexpr NodeState decode_state(std::uint8_t b) noexcept {
  return b <= 2 ? static_cast<NodeState>(b) : NodeState::kSafe;
}

}  // namespace pas::core

// Pluggable sleeping policies.
//
// The paper frames PAS, SAS and NS as points in a *family* of sleeping
// strategies (§3.4); related work adds fixed duty-cycling (the classic
// LPL-style baseline) and model-based "dormant sensing" (No-Sense,
// arXiv:1312.3295). SleepingPolicy is that family as an interface: the
// Protocol engine owns the state machine (safe/alert/covered, timers,
// messaging) and delegates every strategy decision to a policy object.
//
// The engine↔policy contract, hook by hook:
//   * sleeps()                — whether safe nodes duty-cycle at all (NS: no);
//   * on_wake()               — what a safe node does after waking and
//                               sensing nothing: broadcast a REQUEST and
//                               evaluate, listen silently and evaluate, or
//                               go straight back to sleep;
//   * on_evaluate()           — whether the current predicted arrival
//                               warrants staying awake in alert state;
//   * next_sleep_interval()   — the interval after an uneventful wake;
//   * prediction_policy()     — how predictions are computed from peers
//                               (which peers count, cosine projection,
//                               overdue tolerance);
//   * wants_alert_participation() — whether alert nodes answer REQUESTs and
//                               push significantly changed predictions;
//   * covered_nodes_estimate() — whether covered nodes run the REQUEST /
//                               velocity-estimation / RESPONSE exchange;
//   * initial_interval() / max_sleep_s() — the schedule's bounds (initial
//                               wake jitter, alert/safe reset, metrics
//                               censoring).
//
// Policies are immutable after construction and hold no per-node data: all
// mutable per-node state lives in PolicyNodeState inside the engine's
// Runtime slab, so adding a policy never adds a per-event allocation (the
// PR 4 slot-map/SmallFn discipline).
//
// New policies register in the name-keyed factory at the bottom of
// policy.cpp; manifests, config JSON, campaign axes, and the CLI all
// resolve names through it. See README "Sleeping policies" for a ~50-LoC
// worked example of adding one.
#pragma once

#include <cstdio>
#include <memory>
#include <span>
#include <string_view>

#include "core/config.hpp"
#include "core/estimation.hpp"
#include "core/state.hpp"
#include "sim/time.hpp"

namespace pas::core {

/// Per-node policy state, owned by the engine's Runtime slab (one entry per
/// node, allocated once at Protocol construction — policies never allocate).
struct PolicyNodeState {
  /// Current sleeping interval; seeded with initial_interval(), advanced by
  /// next_sleep_interval() after each uneventful wake, reset on alert entry
  /// and on demotion back to safe.
  sim::Duration sleep_interval = 0.0;
};

/// What a safe node does right after waking and sensing nothing.
enum class WakeAction : std::uint8_t {
  /// Broadcast a REQUEST, collect RESPONSEs for response_wait_s, evaluate.
  kQueryPeers,
  /// Keep the radio listening for response_wait_s, then evaluate whatever
  /// was overheard — no REQUEST (No-Sense-style passive model update).
  kListenOnly,
  /// Skip evaluation entirely and go straight back to sleep.
  kSleepAgain,
};

class SleepingPolicy {
 public:
  virtual ~SleepingPolicy() = default;
  SleepingPolicy(const SleepingPolicy&) = delete;
  SleepingPolicy& operator=(const SleepingPolicy&) = delete;

  [[nodiscard]] virtual Policy kind() const noexcept = 0;
  [[nodiscard]] std::string_view name() const noexcept {
    return to_string(kind());
  }

  /// Whether safe nodes duty-cycle at all. A non-sleeping policy never arms
  /// wake timers and keeps every radio listening.
  [[nodiscard]] virtual bool sleeps() const noexcept { return true; }

  /// PAS: alert nodes answer REQUESTs and push significantly changed
  /// predictions, spreading stimulus knowledge beyond the covered ring.
  [[nodiscard]] virtual bool wants_alert_participation() const noexcept {
    return false;
  }

  /// Whether sleeping backbone nodes may be used as multihop relays
  /// (net::Collection reaches them through the MAC's LPL rendezvous — the
  /// Sleep-Route scheme). Policies without any coordination machinery
  /// (pure duty-cycling) opt out: their sleeping nodes never serve traffic,
  /// so alerts route through awake nodes only and otherwise fall back to
  /// the backbone's predicted value.
  [[nodiscard]] virtual bool wants_collection_relay() const noexcept {
    return true;
  }

  /// Whether covered nodes run the detection-time exchange: REQUEST on
  /// detection, actual-velocity estimation (formula 1) from the replies,
  /// RESPONSE advertising the result. Policies that return false keep
  /// covered nodes silent (pure local sensing).
  [[nodiscard]] virtual bool covered_nodes_estimate() const noexcept {
    return sleeps();
  }

  /// How a node in `state` turns peer observations into a predicted
  /// arrival. Default: SAS-style (covered peers only, scalar distance,
  /// state-dependent overdue tolerance).
  [[nodiscard]] virtual PredictionPolicy prediction_policy(
      NodeState state) const noexcept;

  /// First sleeping interval after (re-)entering safe state; also the upper
  /// bound of the initial wake jitter.
  [[nodiscard]] virtual sim::Duration initial_interval() const noexcept {
    return config_.sleep.initial_s;
  }

  /// The longest interval this policy ever sleeps — the delay bound for
  /// monotone stimuli and the metrics-censoring horizon.
  [[nodiscard]] virtual sim::Duration max_sleep_s() const noexcept {
    return config_.sleep.max_s;
  }

  /// Decision for a safe node that woke and sensed nothing.
  [[nodiscard]] virtual WakeAction on_wake(PolicyNodeState& ps) const {
    (void)ps;
    return WakeAction::kQueryPeers;
  }

  /// True when `predicted_arrival` (absolute; kNever = no information)
  /// warrants staying awake. Drives both alert entry (safe evaluation) and
  /// alert retention (recheck / new RESPONSE).
  [[nodiscard]] virtual bool on_evaluate(const PolicyNodeState& ps,
                                         sim::Time now,
                                         sim::Time predicted_arrival) const;

  /// The sleeping interval following an uneventful wake. `ps.sleep_interval`
  /// holds the interval just slept; the engine stores the returned value
  /// back into the slab before arming the wake timer.
  [[nodiscard]] virtual sim::Duration next_sleep_interval(
      const PolicyNodeState& ps, sim::Time now,
      sim::Time predicted_arrival) const;

 protected:
  explicit SleepingPolicy(const ProtocolConfig& config) : config_(config) {}
  const ProtocolConfig& config_;
};

// --- The three paper policies (extracted from the old engine branches) ----

/// NS: nodes never sleep; no messaging needed (zero-delay baseline).
class NeverSleepPolicy final : public SleepingPolicy {
 public:
  explicit NeverSleepPolicy(const ProtocolConfig& config)
      : SleepingPolicy(config) {}
  [[nodiscard]] Policy kind() const noexcept override {
    return Policy::kNeverSleep;
  }
  [[nodiscard]] bool sleeps() const noexcept override { return false; }
  [[nodiscard]] WakeAction on_wake(PolicyNodeState&) const override {
    return WakeAction::kSleepAgain;  // unreachable: NS never arms wake timers
  }
};

/// SAS: adaptive sleeping where stimulus information propagates only from
/// covered nodes (one hop) and prediction is the scalar distance/speed
/// estimate.
class SasPolicy final : public SleepingPolicy {
 public:
  explicit SasPolicy(const ProtocolConfig& config) : SleepingPolicy(config) {}
  [[nodiscard]] Policy kind() const noexcept override { return Policy::kSas; }
};

/// PAS: adaptive sleeping with vector velocity estimation, cosine
/// projection, alert-node participation, and re-broadcast of significantly
/// changed predictions.
class PasPolicy final : public SleepingPolicy {
 public:
  explicit PasPolicy(const ProtocolConfig& config) : SleepingPolicy(config) {}
  [[nodiscard]] Policy kind() const noexcept override { return Policy::kPas; }
  [[nodiscard]] bool wants_alert_participation() const noexcept override {
    return true;
  }
  [[nodiscard]] PredictionPolicy prediction_policy(
      NodeState state) const noexcept override;
};

// --- New baselines proving the seam ---------------------------------------

/// Fixed duty-cycling (the classic LPL-style baseline): wake every period_s,
/// sense, go straight back to sleep. No radio traffic at all — detection
/// happens only by local sensing, so delay is uniform in [0, period_s] and
/// energy is the floor any coordination scheme must beat.
class DutyCyclePolicy final : public SleepingPolicy {
 public:
  explicit DutyCyclePolicy(const ProtocolConfig& config)
      : SleepingPolicy(config) {}
  [[nodiscard]] Policy kind() const noexcept override {
    return Policy::kDutyCycle;
  }
  [[nodiscard]] bool covered_nodes_estimate() const noexcept override {
    return false;
  }
  [[nodiscard]] bool wants_collection_relay() const noexcept override {
    return false;  // no coordination: sleeping nodes never relay
  }
  [[nodiscard]] sim::Duration initial_interval() const noexcept override {
    return config_.duty_cycle.period_s;
  }
  [[nodiscard]] sim::Duration max_sleep_s() const noexcept override {
    return config_.duty_cycle.period_s;
  }
  [[nodiscard]] WakeAction on_wake(PolicyNodeState&) const override {
    return WakeAction::kSleepAgain;
  }
  [[nodiscard]] bool on_evaluate(const PolicyNodeState&, sim::Time,
                                 sim::Time) const override {
    return false;  // never evaluates, never alerts
  }
  [[nodiscard]] sim::Duration next_sleep_interval(const PolicyNodeState&,
                                                  sim::Time,
                                                  sim::Time) const override {
    return config_.duty_cycle.period_s;
  }
};

/// No-Sense-style model-based sleeping (arXiv:1312.3295): a safe node never
/// queries peers. On wake it senses, listens passively for response_wait_s
/// (overhearing the detection exchange of covered nodes in earshot), and
/// consults its local model: arrival predicted within hold_window_s → stay
/// awake; predicted beyond it → sleep until the window opens (clamped to
/// the schedule's [initial_s, max_s]); no prediction → fall back to the
/// schedule ramp.
class ThresholdHoldPolicy final : public SleepingPolicy {
 public:
  explicit ThresholdHoldPolicy(const ProtocolConfig& config)
      : SleepingPolicy(config) {}
  [[nodiscard]] Policy kind() const noexcept override {
    return Policy::kThresholdHold;
  }
  [[nodiscard]] PredictionPolicy prediction_policy(
      NodeState state) const noexcept override;
  [[nodiscard]] WakeAction on_wake(PolicyNodeState&) const override {
    return WakeAction::kListenOnly;
  }
  [[nodiscard]] bool on_evaluate(const PolicyNodeState& ps, sim::Time now,
                                 sim::Time predicted_arrival) const override;
  [[nodiscard]] sim::Duration next_sleep_interval(
      const PolicyNodeState& ps, sim::Time now,
      sim::Time predicted_arrival) const override;
};

// --- Name-keyed factory registry ------------------------------------------

struct PolicyInfo {
  Policy kind;
  std::string_view name;     // manifest / CSV / CLI spelling
  std::string_view summary;  // one-liner for --list-policies and errors
  std::unique_ptr<SleepingPolicy> (*make)(const ProtocolConfig&);
};

/// All registered policies, in enum order.
[[nodiscard]] std::span<const PolicyInfo> policy_registry() noexcept;

/// Prints the registry as a "name  summary" table (pas-exp
/// --list-policies, CLI unknown-name errors).
void print_policy_registry(std::FILE* out);

/// Registry entry for `name`, or nullptr when unknown.
[[nodiscard]] const PolicyInfo* find_policy(std::string_view name) noexcept;

/// Resolves a manifest/CLI policy name; throws std::runtime_error listing
/// the registered names on an unknown one.
[[nodiscard]] Policy policy_from_name(std::string_view name);

/// Instantiates the policy selected by `config.policy`. The returned object
/// keeps a reference to `config`, which must outlive it.
[[nodiscard]] std::unique_ptr<SleepingPolicy> make_policy(
    const ProtocolConfig& config);

}  // namespace pas::core

#include "core/analysis.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace pas::core {

double expected_delay_s(sim::Duration interval_s,
                        sim::Duration awake_window_s) {
  if (interval_s < 0.0 || awake_window_s < 0.0) {
    throw std::invalid_argument("expected_delay_s: negative durations");
  }
  const double cycle = interval_s + awake_window_s;
  if (cycle <= 0.0) return 0.0;
  return (interval_s / cycle) * interval_s / 2.0;
}

double duty_cycle_power_w(const energy::PowerProfile& profile,
                          sim::Duration interval_s,
                          sim::Duration awake_window_s,
                          std::size_t request_bits) {
  if (interval_s <= 0.0 || awake_window_s < 0.0) {
    throw std::invalid_argument("duty_cycle_power_w: bad durations");
  }
  const double cycle = interval_s + awake_window_s;
  const double energy_per_cycle =
      profile.sleep_w * interval_s +
      profile.total_active_w() * awake_window_s +
      2.0 * profile.transition_energy() + profile.tx_energy(request_bits);
  return energy_per_cycle / cycle;
}

double lifetime_s(double capacity_j, double power_w) {
  if (capacity_j < 0.0 || power_w < 0.0) {
    throw std::invalid_argument("lifetime_s: negative inputs");
  }
  if (power_w == 0.0) return std::numeric_limits<double>::infinity();
  return capacity_j / power_w;
}

sim::Duration interval_for_delay(sim::Duration target_delay_s,
                                 sim::Duration awake_window_s) {
  if (target_delay_s < 0.0 || awake_window_s < 0.0) {
    throw std::invalid_argument("interval_for_delay: negative inputs");
  }
  if (target_delay_s == 0.0) return 0.0;
  // Solve L²/(2(L+w)) = d  ⇔  L² − 2dL − 2dw = 0 (positive root).
  const double d = target_delay_s, w = awake_window_s;
  return d + std::sqrt(d * d + 2.0 * d * w);
}

sim::Duration interval_at(const node::SleepSchedule& schedule,
                          sim::Duration t_since_safe) {
  schedule.validate();
  if (t_since_safe < 0.0) {
    throw std::invalid_argument("interval_at: negative time");
  }
  sim::Duration interval = schedule.initial_s;
  sim::Duration elapsed = 0.0;
  // Walk the ramp; each interval is slept once before growing.
  for (int guard = 0; guard < 1000000; ++guard) {
    elapsed += interval;
    if (elapsed >= t_since_safe) return interval;
    const sim::Duration nxt = schedule.next(interval);
    if (nxt == interval && interval >= schedule.max_s) return interval;
    interval = nxt;
  }
  return interval;
}

}  // namespace pas::core

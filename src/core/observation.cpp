#include "core/observation.hpp"

#include <algorithm>

namespace pas::core {

std::vector<PeerObservation> PeerTable::snapshot() const {
  std::vector<PeerObservation> out;
  snapshot_into(out);
  return out;
}

void PeerTable::snapshot_into(std::vector<PeerObservation>& out) const {
  out.clear();
  out.reserve(entries_.size());
  for (const auto& [id, obs] : entries_) out.push_back(obs);
  std::sort(out.begin(), out.end(),
            [](const PeerObservation& a, const PeerObservation& b) {
              return a.id < b.id;
            });
}

void PeerTable::expire_older_than(sim::Time cutoff) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.received_at < cutoff) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace pas::core

#include "core/observation.hpp"

#include <algorithm>

namespace pas::core {

std::vector<PeerObservation> PeerTable::snapshot() const {
  std::vector<PeerObservation> out;
  out.reserve(entries_.size());
  for (const auto& [id, obs] : entries_) out.push_back(obs);
  std::sort(out.begin(), out.end(),
            [](const PeerObservation& a, const PeerObservation& b) {
              return a.id < b.id;
            });
  return out;
}

void PeerTable::expire_older_than(sim::Time cutoff) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.received_at < cutoff) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace pas::core

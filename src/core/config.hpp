// Protocol configuration and the evaluated sleeping-policy family.
//
// One engine (core::Protocol) runs every policy; a Policy value selects the
// SleepingPolicy implementation (core/policy.hpp) via the name-keyed
// registry. The evaluated family:
//   * NS  — nodes never sleep; no messaging needed (zero delay baseline).
//   * SAS — adaptive sleeping where stimulus information propagates only
//           from covered nodes (one hop) and prediction is the scalar
//           distance/speed estimate.
//   * PAS — adaptive sleeping with vector velocity estimation, cosine
//           projection, alert-node participation, and re-broadcast of
//           significantly changed predictions.
//   * DutyCycle — fixed wake/sleep period, no radio traffic (the classic
//           LPL-style baseline).
//   * ThresholdHold — No-Sense-style dormant sensing: sleep while the
//           local model predicts no arrival within a hold window; no peer
//           queries (arXiv:1312.3295).
//
// ProtocolConfig carries the shared engine knobs plus one parameter block
// per policy that needs its own (duty_cycle, threshold_hold). All blocks
// are validated unconditionally: a campaign may sweep the policy axis
// across one base config, so every block must be sound regardless of which
// policy a given grid point selects.
#pragma once

#include <cassert>
#include <stdexcept>
#include <string_view>

#include "core/estimation.hpp"
#include "node/sleep_policy.hpp"
#include "sim/time.hpp"

namespace pas::core {

enum class Policy : std::uint8_t {
  kNeverSleep,
  kSas,
  kPas,
  kDutyCycle,
  kThresholdHold,
};

[[nodiscard]] constexpr std::string_view to_string(Policy p) noexcept {
  switch (p) {
    case Policy::kNeverSleep: return "NS";
    case Policy::kSas: return "SAS";
    case Policy::kPas: return "PAS";
    case Policy::kDutyCycle: return "DutyCycle";
    case Policy::kThresholdHold: return "ThresholdHold";
  }
  // A value outside the enum here means corrupted config or a policy added
  // without a name; serializing "?" into campaign CSVs would silently
  // poison resume keys, so fail loudly in debug builds.
  assert(!"to_string(Policy): value outside the enum");
  return "?";
}

/// DutyCycle parameters: the fixed wake period.
struct DutyCycleConfig {
  /// Sleep interval between sensing wake-ups (s). Delay for a front that
  /// arrives mid-sleep is uniform in [0, period_s].
  sim::Duration period_s = 5.0;

  void validate() const {
    if (period_s <= 0.0) {
      throw std::invalid_argument("DutyCycleConfig: period_s must be > 0");
    }
  }
};

/// ThresholdHold parameters: the model-based hold window.
struct ThresholdHoldConfig {
  /// A node whose local model predicts arrival within this window stays
  /// awake; one predicting beyond it sleeps until the window opens.
  sim::Duration hold_window_s = 20.0;

  void validate() const {
    if (hold_window_s < 0.0) {
      throw std::invalid_argument(
          "ThresholdHoldConfig: hold_window_s must be >= 0");
    }
  }
};

struct ProtocolConfig {
  Policy policy = Policy::kPas;

  /// Alert-time threshold T_alert (s): a node with expected arrival closer
  /// than this stays awake in alert state. Figs 5/7 sweep it from 10–30 s.
  sim::Duration alert_threshold_s = 20.0;

  /// Linearly increasing sleeping interval of safe nodes (§3.4). The
  /// maximum is the x-axis of Figs 4/6.
  node::LinearSleepPolicy sleep{};

  /// How long a node collects RESPONSEs after sending a REQUEST before it
  /// evaluates them.
  sim::Duration response_wait_s = 0.06;

  /// Period at which alert nodes re-evaluate their predicted arrival.
  sim::Duration alert_recheck_s = 1.0;

  /// Re-broadcast sensitivity (relative change; see significant_change()).
  double rebroadcast_rel_change = 0.2;
  sim::Duration rebroadcast_abs_floor_s = 0.5;
  /// Minimum gap between a node's pushed RESPONSEs (storm brake).
  sim::Duration min_push_gap_s = 0.5;

  /// A covered node that has not sensed the stimulus for this long returns
  /// to safe state (Fig 3's "detection timeout").
  sim::Duration covered_timeout_s = 20.0;

  /// Peer observations older than this are discarded when predicting; 0
  /// disables expiry. Staleness is mostly harmless because predictions are
  /// absolute times, but bounded memory mirrors a real mote.
  sim::Duration observation_ttl_s = 120.0;

  /// Predictions already overdue by more than this are treated as falsified
  /// (see PredictionPolicy::overdue_tolerance_s). Applies to safe nodes
  /// deciding whether to alert. The tolerance absorbs estimation bias —
  /// formula 1 measures speed along the detection chord, which runs early by
  /// up to a few seconds at one-hop scale — while still expiring genuinely
  /// stale information (a front that stopped long ago).
  sim::Duration prediction_overdue_tolerance_s = 10.0;

  /// Overdue tolerance for nodes already in alert state. An alert node whose
  /// predicted arrival just slipped past is in the most dangerous moment —
  /// the front is presumably imminent — so it holds alert for this long
  /// before treating the prediction as falsified and going back to sleep.
  /// Sized to cover the chord bias of formula 1 (apparent speed runs high by
  /// 1/cos φ, so predictions can run early by several seconds at hop scale);
  /// premature demotion costs exactly the delay the alert state exists to
  /// eliminate.
  sim::Duration alert_overdue_hold_s = 20.0;

  /// First wake-ups are drawn uniformly in [0, the policy's initial
  /// interval] to desynchronise the duty cycles (deterministic per seed).
  bool jitter_initial_wake = true;

  // Per-policy parameter blocks ------------------------------------------

  DutyCycleConfig duty_cycle{};
  ThresholdHoldConfig threshold_hold{};

  void validate() const {
    sleep.validate();
    duty_cycle.validate();
    threshold_hold.validate();
    if (alert_threshold_s < 0.0) {
      throw std::invalid_argument("ProtocolConfig: alert_threshold_s < 0");
    }
    if (response_wait_s <= 0.0) {
      throw std::invalid_argument("ProtocolConfig: response_wait_s must be > 0");
    }
    if (alert_recheck_s <= 0.0) {
      throw std::invalid_argument("ProtocolConfig: alert_recheck_s must be > 0");
    }
    if (covered_timeout_s <= 0.0) {
      throw std::invalid_argument("ProtocolConfig: covered_timeout_s must be > 0");
    }
    if (rebroadcast_rel_change < 0.0) {
      throw std::invalid_argument("ProtocolConfig: rebroadcast_rel_change < 0");
    }
    if (observation_ttl_s < 0.0) {
      throw std::invalid_argument("ProtocolConfig: observation_ttl_s < 0");
    }
  }

  // Presets ----------------------------------------------------------------

  [[nodiscard]] static ProtocolConfig pas() {
    ProtocolConfig c;
    c.policy = Policy::kPas;
    return c;
  }

  [[nodiscard]] static ProtocolConfig sas() {
    ProtocolConfig c;
    c.policy = Policy::kSas;
    return c;
  }

  [[nodiscard]] static ProtocolConfig never_sleep() {
    ProtocolConfig c;
    c.policy = Policy::kNeverSleep;
    return c;
  }

  [[nodiscard]] static ProtocolConfig duty_cycling() {
    ProtocolConfig c;
    c.policy = Policy::kDutyCycle;
    return c;
  }

  [[nodiscard]] static ProtocolConfig threshold_holding() {
    ProtocolConfig c;
    c.policy = Policy::kThresholdHold;
    return c;
  }
};

}  // namespace pas::core

// Closed-form analysis of duty-cycled sensing.
//
// Without alerting, PAS degenerates to pure duty-cycled sampling, for which
// the expected detection delay and power draw have closed forms. The
// formulas here serve two roles: (1) validation — tests compare the
// simulator against them in the no-alert regime; (2) provisioning — given a
// hazard's required detection latency, solve for the sleeping interval and
// predict node lifetime (used by the city_gas_leak example's guidance).
#pragma once

#include "energy/power_profile.hpp"
#include "node/sleep_policy.hpp"
#include "sim/time.hpp"

namespace pas::core {

/// Expected detection delay for a node sampling with a saturated sleeping
/// interval L and an awake window w per cycle: arrivals landing in the
/// sleeping part of the cycle (probability L/(L+w)) wait U(0, L):
///
///     E[delay] = (L / (L + w)) · L / 2.
[[nodiscard]] double expected_delay_s(sim::Duration interval_s,
                                      sim::Duration awake_window_s);

/// Average power of a safe node duty-cycling at interval L with awake
/// window w: sleep draw during L, total-active draw during w, plus two
/// sleep↔active transitions and one REQUEST transmission per cycle.
[[nodiscard]] double duty_cycle_power_w(const energy::PowerProfile& profile,
                                        sim::Duration interval_s,
                                        sim::Duration awake_window_s,
                                        std::size_t request_bits);

/// Node lifetime in seconds on a battery of `capacity_j` joules at the
/// duty-cycle power above (infinite when power is 0).
[[nodiscard]] double lifetime_s(double capacity_j, double power_w);

/// Smallest saturated interval whose expected delay stays at or below
/// `target_delay_s` (the inverse of expected_delay_s in L; awake window w).
[[nodiscard]] sim::Duration interval_for_delay(sim::Duration target_delay_s,
                                               sim::Duration awake_window_s);

/// Mean interval experienced by an arrival at time `t_since_safe` after a
/// node (re-)entered safe state and started ramping: the ramp spends one
/// cycle at each interval until saturating, so early arrivals see shorter
/// intervals. Exact for the linear ramp; used by tests to predict delays in
/// mid-ramp regimes.
[[nodiscard]] sim::Duration interval_at(const node::SleepSchedule& schedule,
                                        sim::Duration t_since_safe);

}  // namespace pas::core

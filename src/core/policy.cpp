#include "core/policy.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace pas::core {

// --- Shared (SAS-shaped) defaults ------------------------------------------

PredictionPolicy SleepingPolicy::prediction_policy(
    NodeState state) const noexcept {
  return PredictionPolicy{
      .use_alert_peers = false,
      .cosine_projection = false,
      .overdue_tolerance_s = state == NodeState::kAlert
                                 ? config_.alert_overdue_hold_s
                                 : config_.prediction_overdue_tolerance_s,
  };
}

bool SleepingPolicy::on_evaluate(const PolicyNodeState& /*ps*/, sim::Time now,
                                 sim::Time predicted_arrival) const {
  return predicted_arrival != sim::kNever &&
         predicted_arrival - now <= config_.alert_threshold_s;
}

sim::Duration SleepingPolicy::next_sleep_interval(
    const PolicyNodeState& ps, sim::Time /*now*/,
    sim::Time /*predicted_arrival*/) const {
  // §3.4: lengthen the sleeping interval after every uneventful wake.
  return config_.sleep.next(ps.sleep_interval);
}

// --- PAS -------------------------------------------------------------------

PredictionPolicy PasPolicy::prediction_policy(NodeState state) const noexcept {
  return PredictionPolicy{
      .use_alert_peers = true,
      .cosine_projection = true,
      .overdue_tolerance_s = state == NodeState::kAlert
                                 ? config_.alert_overdue_hold_s
                                 : config_.prediction_overdue_tolerance_s,
  };
}

// --- ThresholdHold ---------------------------------------------------------

PredictionPolicy ThresholdHoldPolicy::prediction_policy(
    NodeState state) const noexcept {
  // The local model feeds on covered peers only (there are no cooperating
  // alert nodes to listen to), but uses the full vector projection — this is
  // a model-quality policy, not a protocol-simplicity one.
  return PredictionPolicy{
      .use_alert_peers = false,
      .cosine_projection = true,
      .overdue_tolerance_s = state == NodeState::kAlert
                                 ? config_.alert_overdue_hold_s
                                 : config_.prediction_overdue_tolerance_s,
  };
}

bool ThresholdHoldPolicy::on_evaluate(const PolicyNodeState& /*ps*/,
                                      sim::Time now,
                                      sim::Time predicted_arrival) const {
  return predicted_arrival != sim::kNever &&
         predicted_arrival - now <= config_.threshold_hold.hold_window_s;
}

sim::Duration ThresholdHoldPolicy::next_sleep_interval(
    const PolicyNodeState& ps, sim::Time now,
    sim::Time predicted_arrival) const {
  if (predicted_arrival == sim::kNever) {
    // No model yet: ramp like the schedule so an uninformed node is no
    // worse than SAS's sleeper.
    return config_.sleep.next(ps.sleep_interval);
  }
  // Dormant sensing: sleep until the hold window opens. on_evaluate() just
  // declined to alert, so the gap is positive; the schedule bounds keep a
  // wild prediction from parking the node forever.
  const sim::Duration until_window =
      predicted_arrival - now - config_.threshold_hold.hold_window_s;
  return std::clamp(until_window, config_.sleep.initial_s,
                    config_.sleep.max_s);
}

// --- Registry --------------------------------------------------------------

namespace {

template <typename P>
std::unique_ptr<SleepingPolicy> make_impl(const ProtocolConfig& config) {
  return std::make_unique<P>(config);
}

constexpr PolicyInfo kRegistry[] = {
    {Policy::kNeverSleep, "NS",
     "never sleep: zero-delay, maximum-energy baseline",
     &make_impl<NeverSleepPolicy>},
    {Policy::kSas, "SAS",
     "adaptive sleeping, one-hop scalar prediction (paper baseline)",
     &make_impl<SasPolicy>},
    {Policy::kPas, "PAS",
     "prediction-based adaptive sleeping with alert participation (paper)",
     &make_impl<PasPolicy>},
    {Policy::kDutyCycle, "DutyCycle",
     "fixed wake/sleep period, no radio traffic (LPL-style baseline)",
     &make_impl<DutyCyclePolicy>},
    {Policy::kThresholdHold, "ThresholdHold",
     "No-Sense-style: sleep while the local model predicts no arrival "
     "within the hold window; no peer queries",
     &make_impl<ThresholdHoldPolicy>},
};

}  // namespace

std::span<const PolicyInfo> policy_registry() noexcept { return kRegistry; }

void print_policy_registry(std::FILE* out) {
  for (const auto& info : kRegistry) {
    std::fprintf(out, "%-14.*s %.*s\n", static_cast<int>(info.name.size()),
                 info.name.data(), static_cast<int>(info.summary.size()),
                 info.summary.data());
  }
}

const PolicyInfo* find_policy(std::string_view name) noexcept {
  for (const auto& info : kRegistry) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

Policy policy_from_name(std::string_view name) {
  if (const PolicyInfo* info = find_policy(name)) return info->kind;
  std::string known;
  for (const auto& info : kRegistry) {
    if (!known.empty()) known += ", ";
    known += info.name;
  }
  throw std::runtime_error("unknown policy \"" + std::string(name) +
                           "\" (registered: " + known + ")");
}

std::unique_ptr<SleepingPolicy> make_policy(const ProtocolConfig& config) {
  for (const auto& info : kRegistry) {
    if (info.kind == config.policy) return info.make(config);
  }
  throw std::logic_error("make_policy: unregistered Policy enum value");
}

}  // namespace pas::core

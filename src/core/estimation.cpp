#include "core/estimation.hpp"

#include <algorithm>
#include <cmath>

namespace pas::core {

std::optional<geom::Vec2> actual_velocity(
    geom::Vec2 x_position, sim::Time x_detected_at,
    std::span<const PeerObservation> peers, sim::Duration min_dt_s) {
  geom::Vec2 sum{};
  int n = 0;
  for (const PeerObservation& peer : peers) {
    if (peer.state != NodeState::kCovered) continue;
    if (peer.detected_at >= x_detected_at) continue;  // not an earlier front
    if (peer.detected_at == sim::kNever) continue;
    const geom::Vec2 ix = x_position - peer.position;
    if (ix.norm2() == 0.0) continue;  // co-located peer carries no direction
    const sim::Duration dt = x_detected_at - peer.detected_at;
    if (dt < min_dt_s) continue;  // tangential chord: no propagation signal
    sum += ix / dt;
    ++n;
  }
  if (n == 0) return std::nullopt;
  return sum / static_cast<double>(n);
}

std::optional<geom::Vec2> expected_velocity(
    std::span<const PeerObservation> peers) {
  geom::Vec2 sum{};
  int n = 0;
  for (const PeerObservation& peer : peers) {
    if (!peer.velocity_valid) continue;
    if (peer.state == NodeState::kSafe) continue;  // formula 2: covered/alert
    sum += peer.velocity;
    ++n;
  }
  if (n == 0) return std::nullopt;
  return sum / static_cast<double>(n);
}

sim::Time predict_arrival(geom::Vec2 x_position, sim::Time now,
                          std::span<const PeerObservation> peers,
                          const PredictionPolicy& policy) {
  sim::Time best = sim::kNever;
  for (const PeerObservation& peer : peers) {
    const bool covered = peer.state == NodeState::kCovered;
    const bool alert = peer.state == NodeState::kAlert;
    if (!covered && !(alert && policy.use_alert_peers)) continue;
    if (!peer.velocity_valid) continue;
    const double speed = peer.velocity.norm();
    if (speed <= 0.0) continue;

    const geom::Vec2 ix = x_position - peer.position;
    const double dist = ix.norm();
    if (dist == 0.0) {
      // The front is at X's own position right now.
      return now;
    }

    double travel;
    if (policy.cosine_projection) {
      const double cos_phi = geom::cos_included_angle(peer.velocity, ix);
      if (cos_phi <= 0.0) continue;  // front moving away from X
      travel = dist * cos_phi / speed;
    } else {
      travel = dist / speed;
    }

    // When does the front pass the peer? Covered: its detection. Alert: its
    // own prediction, else the time we heard from it.
    sim::Time ref;
    if (covered) {
      ref = peer.detected_at != sim::kNever ? peer.detected_at
                                            : peer.received_at;
    } else {
      ref = peer.predicted_arrival != sim::kNever ? peer.predicted_arrival
                                                  : peer.received_at;
    }
    const sim::Time estimate = ref + travel;
    // Falsified prediction: the front should have arrived well before now
    // but did not (X would have sensed it) — discard rather than treat the
    // stimulus as perpetually imminent.
    if (estimate < now - policy.overdue_tolerance_s) continue;
    best = std::min(best, estimate);
  }
  return best;
}

bool significant_change(sim::Time previous_abs, sim::Time new_abs,
                        sim::Time now, double rel,
                        sim::Duration abs_floor_s) {
  const bool prev_known = previous_abs != sim::kNever;
  const bool new_known = new_abs != sim::kNever;
  if (prev_known != new_known) return true;
  if (!new_known) return false;
  const sim::Duration remaining = std::max(0.0, previous_abs - now);
  const sim::Duration tolerance = std::max(abs_floor_s, rel * remaining);
  return std::abs(new_abs - previous_abs) > tolerance;
}

}  // namespace pas::core

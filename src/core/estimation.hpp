// Velocity estimation and arrival-time prediction (paper §3.3).
//
// Pure functions over peer-observation snapshots — the whole numeric heart
// of PAS lives here so it can be unit- and property-tested without running
// the protocol engine.
//
// Formula 1 (actual velocity, computed by a node X once it detects the
// stimulus at time t_X, from covered peers I that detected at t_I < t_X):
//
//     v_X = (1/n) · Σ_I  vec(I→X) / (t_X − t_I)
//
// Formula 2 (expected velocity, for alert/safe nodes, from peers that carry
// a velocity estimate):
//
//     v_X = (1/n) · Σ_I  v_I
//
// Formula 3 (expected arrival time): the front near peer I is a line through
// I with outward normal v̂_I moving at |v_I|; it reaches X after the normal
// distance |IX|·cos φ_I (φ_I = angle between v_I and vec(I→X)) divided by
// |v_I|. PAS takes the minimum over peers; SAS degenerates to the scalar
// |IX|/|v_I| without the cosine projection and uses covered peers only.
#pragma once

#include <optional>
#include <span>

#include "core/observation.hpp"
#include "geom/vec2.hpp"
#include "sim/time.hpp"

namespace pas::core {

/// Knobs that turn the shared estimator into PAS or SAS.
struct PredictionPolicy {
  /// PAS: alert peers' (expected-velocity) info contributes to predictions.
  /// SAS: only covered peers do — stimulus info stays within one hop.
  bool use_alert_peers = true;
  /// PAS: project distance onto the front normal (|IX|·cosφ). SAS: scalar
  /// distance |IX| (its "simple method for local velocity estimation").
  bool cosine_projection = true;
  /// A contribution whose implied arrival lies more than this far in the
  /// past is falsified — the front demonstrably did not arrive (e.g. the
  /// stimulus stopped growing) — and is skipped, so stale covered-peer info
  /// cannot keep distant nodes alert forever.
  sim::Duration overdue_tolerance_s = 5.0;
};

/// Formula 1. Returns nullopt when no covered peer with an earlier
/// detection exists. Peers detected less than `min_dt_s` earlier are
/// skipped: a near-simultaneous detection means both nodes sat on the same
/// front line, so the chord IX runs *tangential* to the front — formula
/// 1's 1/t_I weighting would otherwise let that huge, wrongly-directed
/// contribution dominate the normal estimate.
[[nodiscard]] std::optional<geom::Vec2> actual_velocity(
    geom::Vec2 x_position, sim::Time x_detected_at,
    std::span<const PeerObservation> peers, sim::Duration min_dt_s = 1.0);

/// Formula 2. Mean of valid peer velocities (covered or alert peers).
/// Returns nullopt when no peer carries a valid velocity.
[[nodiscard]] std::optional<geom::Vec2> expected_velocity(
    std::span<const PeerObservation> peers);

/// Formula 3, in absolute time. For each usable peer the reference time the
/// front passes the peer is its detection time (covered) or its own
/// predicted arrival (alert; falls back to the observation timestamp when
/// the peer reported no prediction). Peers whose front moves away from X
/// (cos φ ≤ 0) predict "never" and are skipped. Returns kNever without
/// usable peers. The result is the *raw* minimum estimate — it may lie up
/// to overdue_tolerance_s in the past (an imminent-but-late front). It is
/// deliberately not clamped to `now`: a clamped estimate re-broadcast by an
/// alert node would look perpetually fresh to its neighbors and a boundary
/// alert belt could then keep itself awake forever after the front stops.
[[nodiscard]] sim::Time predict_arrival(geom::Vec2 x_position, sim::Time now,
                                        std::span<const PeerObservation> peers,
                                        const PredictionPolicy& policy);

/// Re-broadcast trigger (§3.2): a prediction change is significant when it
/// moved by more than `rel` of the previously announced remaining time
/// (floored at `abs_floor_s`), or when it appeared/disappeared entirely.
[[nodiscard]] bool significant_change(sim::Time previous_abs, sim::Time new_abs,
                                      sim::Time now, double rel = 0.2,
                                      sim::Duration abs_floor_s = 0.5);

}  // namespace pas::core

// Neighbor knowledge base.
//
// Each node keeps the most recent RESPONSE from every neighbor. The
// estimation functions (estimation.hpp) consume snapshots of this table;
// the table itself is a thin keyed store.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/state.hpp"
#include "geom/vec2.hpp"
#include "sim/time.hpp"

namespace pas::core {

/// What one node knows about one neighbor, from its latest RESPONSE.
struct PeerObservation {
  std::uint32_t id = 0;
  geom::Vec2 position{};
  NodeState state = NodeState::kSafe;
  /// Estimated front velocity at the peer (valid only when velocity_valid).
  geom::Vec2 velocity{};
  bool velocity_valid = false;
  /// Peer's own predicted arrival time (absolute; kNever when unknown).
  sim::Time predicted_arrival = sim::kNever;
  /// When the peer detected the stimulus (absolute; covered peers only).
  sim::Time detected_at = sim::kNever;
  /// When this observation was received.
  sim::Time received_at = 0.0;
};

class PeerTable {
 public:
  /// Inserts or replaces the entry for `obs.id`.
  void update(const PeerObservation& obs) { entries_[obs.id] = obs; }

  [[nodiscard]] std::optional<PeerObservation> find(std::uint32_t id) const {
    const auto it = entries_.find(id);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  void clear() noexcept { entries_.clear(); }

  /// Snapshot ordered by neighbor id (deterministic iteration for
  /// reproducible estimation regardless of hash order).
  [[nodiscard]] std::vector<PeerObservation> snapshot() const;

  /// snapshot() into a caller-owned buffer (cleared first). The protocol
  /// engine keeps one scratch vector per node in its Runtime slab, so the
  /// per-evaluation allocation of the returning overload disappears once
  /// the buffer has grown to the neighborhood size.
  void snapshot_into(std::vector<PeerObservation>& out) const;

  /// Drops observations received before `cutoff`.
  void expire_older_than(sim::Time cutoff);

 private:
  std::unordered_map<std::uint32_t, PeerObservation> entries_;
};

}  // namespace pas::core

#include "core/protocol.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/estimation.hpp"

namespace pas::core {

void ProtocolStats::add(const ProtocolStats& other) {
  wakeups += other.wakeups;
  requests_sent += other.requests_sent;
  responses_sent += other.responses_sent;
  responses_pushed += other.responses_pushed;
  pushes_suppressed += other.pushes_suppressed;
  messages_received += other.messages_received;
  alert_entries += other.alert_entries;
  alert_exits += other.alert_exits;
  covered_entries += other.covered_entries;
  covered_timeouts += other.covered_timeouts;
  failures += other.failures;
  prediction_hits += other.prediction_hits;
  prediction_misses += other.prediction_misses;
  sleep_s.merge(other.sleep_s);
}

Protocol::Protocol(sim::Simulator& simulator, net::Network& network,
                   std::vector<node::SensorNode>& nodes,
                   const stimulus::StimulusModel& model,
                   const stimulus::ArrivalMap& arrivals,
                   ProtocolConfig config, const sim::SeedSequence& seeds,
                   const node::FailurePlan* failures, sim::TraceLog* trace,
                   net::Collection* collection)
    : simulator_(simulator),
      network_(network),
      nodes_(nodes),
      model_(model),
      arrivals_(arrivals),
      config_(std::move(config)),
      failures_(failures),
      trace_(trace),
      collection_(collection),
      wake_rng_(seeds.stream(sim::SeedSequence::kProtocol)) {
  config_.validate();
  policy_ = make_policy(config_);
  if (nodes_.size() != network_.size() || nodes_.size() != arrivals_.size()) {
    throw std::invalid_argument(
        "Protocol: nodes, network and arrival map sizes must agree");
  }
  runtime_.resize(nodes_.size());
}

void Protocol::trace(sim::TraceCategory cat, std::uint32_t i,
                     sim::TraceKind kind) {
  if (trace_ != nullptr) {
    trace_->record(simulator_.now(), cat, i, kind);
  }
}

void Protocol::start() {
  if (started_) throw std::logic_error("Protocol::start called twice");
  started_ = true;

  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    Runtime& rt = runtime_[i];
    rt.policy.sleep_interval = policy_->initial_interval();

    // Bind each per-node handler exactly once; every later (re-)arm only
    // schedules a trampoline instead of re-capturing a fresh closure.
    rt.wake_timer.bind(simulator_, [this, i] { on_wake(i); });
    rt.eval_timer.bind(simulator_, [this, i] { on_safe_evaluate(i); });
    rt.recheck_timer.bind(simulator_, [this, i] { on_alert_recheck(i); });
    rt.estimate_timer.bind(simulator_, [this, i] { on_covered_estimate(i); });
    rt.covered_check_timer.bind(simulator_, [this, i] { on_covered_check(i); });

    network_.set_rx_handler(
        i, [this, i](const net::Message& msg) { on_message(i, msg); });

    if (policy_->sleeps()) {
      // Enter the duty cycle immediately; first wake is jittered so the
      // network does not sample in lock-step.
      const sim::Duration first =
          config_.jitter_initial_wake
              ? wake_rng_.uniform(0.0, policy_->initial_interval())
              : policy_->initial_interval();
      nodes_[i].asleep = true;
      nodes_[i].meter.set_mode(energy::PowerMode::kSleep, simulator_.now());
      network_.set_listening(i, false);
      rt.wake_timer.arm_in(first);
    } else {
      nodes_[i].asleep = false;
      network_.set_listening(i, true);
    }

    if (const sim::Time arrival = arrivals_.at(i); arrival < sim::kNever) {
      simulator_.schedule_at(arrival, [this, i] { on_arrival(i); });
    }
    if (failures_ != nullptr) {
      if (const sim::Time death = failures_->death_time(i);
          death < sim::kNever) {
        simulator_.schedule_at(death, [this, i] { on_failure(i); });
      }
    }
  }
}

void Protocol::on_arrival(std::uint32_t i) {
  if (nodes_[i].failed) return;
  // Active sensors detect immediately (§4.1); sleeping sensors miss the
  // instant and detect at their next wake-up's sensing step.
  if (!nodes_[i].asleep) detect(i);
}

void Protocol::detect(std::uint32_t i) {
  node::SensorNode& n = nodes_[i];
  Runtime& rt = runtime_[i];
  if (rt.state == NodeState::kCovered) return;

  if (!n.has_detected()) n.detected = simulator_.now();
  // A finite predicted arrival at detection time means the prediction
  // machinery saw this coming; kNever means the front surprised the node.
  if (rt.predicted_arrival < sim::kNever) {
    ++stats_.prediction_hits;
  } else {
    ++stats_.prediction_misses;
  }
  rt.last_seen_covered = simulator_.now();
  cancel_pending(i);
  set_state(i, NodeState::kCovered);
  ++stats_.covered_entries;
  trace(sim::TraceCategory::kDetection, i, sim::TraceKind::kDetected);
  if (collection_ != nullptr) {
    // Raise the multihop alert toward the sink; the backbone's fallback
    // answer is whatever this node predicted before the front hit it.
    collection_->originate(i, simulator_.now(), rt.predicted_arrival);
  }

  if (policy_->covered_nodes_estimate()) {
    // Gather covered neighbors' detection times to compute the actual
    // velocity (formula 1), then advertise the new state.
    send_request(i);
    rt.estimate_timer.arm_in(config_.response_wait_s);
  }
  rt.covered_check_timer.arm_in(config_.covered_timeout_s * 0.5);
}

void Protocol::on_covered_estimate(std::uint32_t i) {
  Runtime& rt = runtime_[i];
  if (nodes_[i].failed || rt.state != NodeState::kCovered) return;

  if (config_.observation_ttl_s > 0.0) {
    rt.table.expire_older_than(simulator_.now() - config_.observation_ttl_s);
  }
  rt.table.snapshot_into(rt.peers);
  if (const auto actual = actual_velocity(nodes_[i].position,
                                          nodes_[i].detected, rt.peers)) {
    rt.velocity = *actual;
    rt.velocity_valid = true;
    if (trace_ != nullptr && trace_->enabled()) {
      sim::TraceEvent e;
      e.time = simulator_.now();
      e.category = sim::TraceCategory::kMisc;
      e.kind = sim::TraceKind::kActualVelocity;
      e.node = i;
      e.x = rt.velocity.x;
      e.y = rt.velocity.y;
      trace_->record(e);
    }
  }
  // else: keep any expected-velocity estimate from the alert phase; the
  // very first covered node (at the source) has neither.
  send_response(i);
}

void Protocol::on_covered_check(std::uint32_t i) {
  Runtime& rt = runtime_[i];
  if (nodes_[i].failed || rt.state != NodeState::kCovered) return;

  if (model_.covered(nodes_[i].position, simulator_.now())) {
    rt.last_seen_covered = simulator_.now();
  } else if (simulator_.now() - rt.last_seen_covered >=
             config_.covered_timeout_s) {
    // Stimulus receded: detection timeout elapsed, back to safe (Fig 3).
    ++stats_.covered_timeouts;
    trace(sim::TraceCategory::kState, i, sim::TraceKind::kCoveredTimeout);
    demote_to_safe(i);
    return;
  }
  rt.covered_check_timer.arm_in(config_.covered_timeout_s * 0.5);
}

void Protocol::on_wake(std::uint32_t i) {
  node::SensorNode& n = nodes_[i];
  Runtime& rt = runtime_[i];
  if (n.failed || rt.state != NodeState::kSafe) return;

  ++stats_.wakeups;
  n.asleep = false;
  n.meter.set_mode(energy::PowerMode::kActive, simulator_.now());
  network_.set_listening(i, true);
  trace(sim::TraceCategory::kSleep, i, sim::TraceKind::kWoke);

  if (model_.covered(n.position, simulator_.now())) {
    detect(i);
    return;
  }

  switch (policy_->on_wake(rt.policy)) {
    case WakeAction::kQueryPeers:
      send_request(i);
      [[fallthrough]];
    case WakeAction::kListenOnly:
      rt.awaiting_eval = true;
      rt.eval_timer.arm_in(config_.response_wait_s);
      break;
    case WakeAction::kSleepAgain:
      // Uneventful by construction: no sensing hit, no evaluation wanted.
      rt.policy.sleep_interval = policy_->next_sleep_interval(
          rt.policy, simulator_.now(), rt.predicted_arrival);
      go_to_sleep(i);
      break;
  }
}

void Protocol::on_safe_evaluate(std::uint32_t i) {
  node::SensorNode& n = nodes_[i];
  Runtime& rt = runtime_[i];
  if (n.failed || rt.state != NodeState::kSafe || n.asleep) return;
  rt.awaiting_eval = false;

  refresh_estimates(i);

  const sim::Time now = simulator_.now();
  if (trace_ != nullptr && trace_->enabled()) {
    sim::TraceEvent e;
    e.time = now;
    e.category = sim::TraceCategory::kMisc;
    e.kind = sim::TraceKind::kEval;
    e.node = i;
    e.x = rt.predicted_arrival;
    e.a = static_cast<std::uint32_t>(rt.table.size());
    trace_->record(e);
  }
  if (policy_->on_evaluate(rt.policy, now, rt.predicted_arrival)) {
    enter_alert(i);
    return;
  }

  // Uneventful wake-up: let the policy lengthen the interval and sleep.
  rt.policy.sleep_interval =
      policy_->next_sleep_interval(rt.policy, now, rt.predicted_arrival);
  go_to_sleep(i);
}

void Protocol::enter_alert(std::uint32_t i) {
  Runtime& rt = runtime_[i];
  set_state(i, NodeState::kAlert);
  ++stats_.alert_entries;
  rt.policy.sleep_interval = policy_->initial_interval();  // restart on return
  rt.recheck_timer.arm_in(config_.alert_recheck_s);
  if (policy_->wants_alert_participation()) maybe_push_response(i);
}

void Protocol::on_alert_recheck(std::uint32_t i) {
  node::SensorNode& n = nodes_[i];
  Runtime& rt = runtime_[i];
  if (n.failed || rt.state != NodeState::kAlert) return;

  refresh_estimates(i);

  const sim::Time now = simulator_.now();
  if (!policy_->on_evaluate(rt.policy, now, rt.predicted_arrival)) {
    ++stats_.alert_exits;
    trace(sim::TraceCategory::kState, i, sim::TraceKind::kArrivalReceded);
    demote_to_safe(i);
    return;
  }
  if (policy_->wants_alert_participation()) maybe_push_response(i);
  rt.recheck_timer.arm_in(config_.alert_recheck_s);
}

void Protocol::demote_to_safe(std::uint32_t i) {
  Runtime& rt = runtime_[i];
  cancel_pending(i);
  set_state(i, NodeState::kSafe);
  rt.predicted_arrival = sim::kNever;
  rt.policy.sleep_interval = policy_->initial_interval();
  if (policy_->sleeps()) {
    go_to_sleep(i);
  }
}

void Protocol::go_to_sleep(std::uint32_t i) {
  node::SensorNode& n = nodes_[i];
  Runtime& rt = runtime_[i];
  n.asleep = true;
  n.meter.set_mode(energy::PowerMode::kSleep, simulator_.now());
  network_.set_listening(i, false);
  stats_.sleep_s.record(rt.policy.sleep_interval);
  if (trace_ != nullptr && trace_->enabled()) {
    sim::TraceEvent e;
    e.time = simulator_.now();
    e.category = sim::TraceCategory::kSleep;
    e.kind = sim::TraceKind::kSleepFor;
    e.node = i;
    e.x = rt.policy.sleep_interval;
    trace_->record(e);
  }
  rt.wake_timer.arm_in(rt.policy.sleep_interval);
}

void Protocol::send_request(std::uint32_t i) {
  net::Message msg;
  msg.type = net::MessageType::kRequest;
  network_.broadcast(i, msg);
  ++stats_.requests_sent;
  trace(sim::TraceCategory::kMessage, i, sim::TraceKind::kRequest);
}

void Protocol::send_response(std::uint32_t i) {
  const Runtime& rt = runtime_[i];
  net::Message msg;
  msg.type = net::MessageType::kResponse;
  msg.payload.position = nodes_[i].position;
  msg.payload.state = encode(rt.state);
  msg.payload.velocity = rt.velocity;
  msg.payload.velocity_valid = rt.velocity_valid;
  msg.payload.predicted_arrival = rt.state == NodeState::kCovered
                                      ? nodes_[i].detected
                                      : rt.predicted_arrival;
  msg.payload.detected_at = nodes_[i].detected;
  network_.broadcast(i, msg);
  ++stats_.responses_sent;
  trace(sim::TraceCategory::kMessage, i, sim::TraceKind::kResponse);
}

void Protocol::maybe_push_response(std::uint32_t i) {
  Runtime& rt = runtime_[i];
  const sim::Time now = simulator_.now();
  if (now - rt.last_push_time < config_.min_push_gap_s) {
    ++stats_.pushes_suppressed;
    return;
  }
  if (!significant_change(rt.last_pushed_prediction, rt.predicted_arrival, now,
                          config_.rebroadcast_rel_change,
                          config_.rebroadcast_abs_floor_s)) {
    ++stats_.pushes_suppressed;
    return;
  }
  rt.last_push_time = now;
  rt.last_pushed_prediction = rt.predicted_arrival;
  send_response(i);
  ++stats_.responses_pushed;
}

void Protocol::refresh_estimates(std::uint32_t i) {
  Runtime& rt = runtime_[i];
  if (config_.observation_ttl_s > 0.0) {
    rt.table.expire_older_than(simulator_.now() - config_.observation_ttl_s);
  }
  rt.table.snapshot_into(rt.peers);
  if (rt.state != NodeState::kCovered) {
    if (const auto expected = expected_velocity(rt.peers)) {
      rt.velocity = *expected;
      rt.velocity_valid = true;
    }
  }
  rt.predicted_arrival =
      predict_arrival(nodes_[i].position, simulator_.now(), rt.peers,
                      policy_->prediction_policy(rt.state));
}

void Protocol::on_message(std::uint32_t i, const net::Message& msg) {
  node::SensorNode& n = nodes_[i];
  Runtime& rt = runtime_[i];
  if (n.failed || n.asleep) return;  // radio is off; network also filters
  ++stats_.messages_received;

  if (msg.type == net::MessageType::kRequest) {
    // §3.2: covered and alert sensors answer REQUESTs. Under SAS only
    // covered sensors carry stimulus information, so alert nodes stay quiet.
    if (rt.state == NodeState::kCovered ||
        (rt.state == NodeState::kAlert &&
         policy_->wants_alert_participation())) {
      send_response(i);
    }
    return;
  }

  // RESPONSE: fold the peer's info into the table.
  PeerObservation obs;
  obs.id = msg.sender;
  obs.position = msg.payload.position;
  obs.state = decode_state(msg.payload.state);
  obs.velocity = msg.payload.velocity;
  obs.velocity_valid = msg.payload.velocity_valid;
  obs.predicted_arrival = msg.payload.predicted_arrival;
  obs.detected_at = msg.payload.detected_at;
  obs.received_at = simulator_.now();
  rt.table.update(obs);

  if (rt.state == NodeState::kCovered && !rt.velocity_valid) {
    // This node detected with no earlier-covered neighbor in earshot (e.g.
    // near-simultaneous detections): keep trying as information arrives —
    // first the paper's formula 1, else adopt the neighborhood's expected
    // velocity so downstream predictions are not starved.
    rt.table.snapshot_into(rt.peers);
    if (const auto actual = actual_velocity(nodes_[i].position,
                                            nodes_[i].detected, rt.peers)) {
      rt.velocity = *actual;
      rt.velocity_valid = true;
    } else if (const auto expected = expected_velocity(rt.peers)) {
      rt.velocity = *expected;
      rt.velocity_valid = true;
    }
    if (rt.velocity_valid && policy_->covered_nodes_estimate()) {
      send_response(i);
    }
    return;
  }

  if (rt.state == NodeState::kAlert) {
    // §3.2 alert behaviour: re-calculate on every RESPONSE; push own update
    // when the expectation changed significantly; fall back to safe when
    // the arrival receded beyond the threshold.
    refresh_estimates(i);
    const sim::Time now = simulator_.now();
    if (!policy_->on_evaluate(rt.policy, now, rt.predicted_arrival)) {
      ++stats_.alert_exits;
      trace(sim::TraceCategory::kState, i, sim::TraceKind::kArrivalReceded);
      demote_to_safe(i);
      return;
    }
    if (policy_->wants_alert_participation()) maybe_push_response(i);
  }
  // Safe nodes awaiting evaluation act at their eval event; covered nodes
  // only use RESPONSEs via the estimate event.
}

void Protocol::on_failure(std::uint32_t i) {
  node::SensorNode& n = nodes_[i];
  if (n.failed) return;
  n.failed = true;
  ++stats_.failures;
  cancel_pending(i);
  network_.set_failed(i);
  // A dead node draws (approximately) nothing; meter it as sleeping, which
  // at 15 µW is negligible over any run we evaluate.
  n.meter.set_mode(energy::PowerMode::kSleep, simulator_.now());
  n.asleep = true;
  trace(sim::TraceCategory::kFailure, i, sim::TraceKind::kNodeFailed);
}

void Protocol::cancel_pending(std::uint32_t i) {
  Runtime& rt = runtime_[i];
  rt.wake_timer.cancel();
  rt.eval_timer.cancel();
  rt.recheck_timer.cancel();
  rt.estimate_timer.cancel();
  rt.covered_check_timer.cancel();
  rt.awaiting_eval = false;
}

void Protocol::set_state(std::uint32_t i, NodeState next) {
  Runtime& rt = runtime_[i];
  if (rt.state == next) return;
  if (trace_ != nullptr && trace_->enabled()) {
    sim::TraceEvent e;
    e.time = simulator_.now();
    e.category = sim::TraceCategory::kState;
    e.kind = sim::TraceKind::kStateChange;
    e.node = i;
    e.s1 = to_string(rt.state);
    e.s2 = to_string(next);
    trace_->record(e);
  }
  rt.state = next;
}

std::uint64_t Protocol::timer_reschedules() const noexcept {
  std::uint64_t total = 0;
  for (const Runtime& rt : runtime_) {
    total += rt.wake_timer.reschedules();
    total += rt.eval_timer.reschedules();
    total += rt.recheck_timer.reschedules();
    total += rt.estimate_timer.reschedules();
    total += rt.covered_check_timer.reschedules();
  }
  return total;
}

std::size_t Protocol::count_in_state(NodeState s) const {
  return static_cast<std::size_t>(
      std::count_if(runtime_.begin(), runtime_.end(),
                    [s](const Runtime& rt) { return rt.state == s; }));
}

}  // namespace pas::core

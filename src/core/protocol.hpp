// The protocol engine (paper §3): one state machine, pluggable sleeping
// policies. The engine owns states, timers, messaging, and detection; every
// strategy decision — whether to sleep at all, what to do on waking, when
// to alert, how long to sleep, how to predict — is delegated to the
// core::SleepingPolicy selected by config.policy (see core/policy.hpp for
// the hook contract and the registry of NS, SAS, PAS, DutyCycle, and
// ThresholdHold).
//
// One Protocol instance drives every node of one simulated network:
//   * safe nodes duty-cycle: wake → sense → (per policy: REQUEST / listen /
//     back to sleep) → evaluate → alert or sleep longer;
//   * alert nodes stay awake, re-evaluate predictions on new RESPONSEs and
//     periodically, and — when the policy participates — answer REQUESTs
//     and push significantly changed predictions;
//   * covered nodes stay awake, estimate the actual front velocity from
//     earlier-covered neighbors (formula 1), advertise it, and fall back to
//     safe after a detection timeout when the stimulus recedes.
//
// Detection semantics follow §4.1: an *active* node detects the stimulus the
// instant it arrives (scheduled from the ground-truth ArrivalMap); a
// sleeping node only detects when it next wakes while the stimulus is
// present. Detection delay is detect − arrival.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/observation.hpp"
#include "core/policy.hpp"
#include "core/state.hpp"
#include "net/collection.hpp"
#include "net/network.hpp"
#include "node/failure_model.hpp"
#include "node/sensor_node.hpp"
#include "obs/histogram.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sim/trace.hpp"
#include "stimulus/arrival_map.hpp"
#include "stimulus/field.hpp"

namespace pas::core {

/// Fixed log-bucket layout for the per-run sleep-interval histogram: first
/// edge 0.25 s, 12 doubling buckets (reaches 512 s, beyond any max_sleep we
/// sweep), plus under/overflow bins.
inline constexpr obs::LogBuckets kSleepHistSpec{0.25, 12};

struct ProtocolStats {
  std::uint64_t wakeups = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t responses_pushed = 0;
  /// Alert-phase pushes skipped by the rate limiter / significance filter —
  /// transmissions the protocol decided not to spend energy on.
  std::uint64_t pushes_suppressed = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t alert_entries = 0;
  std::uint64_t alert_exits = 0;
  std::uint64_t covered_entries = 0;
  std::uint64_t covered_timeouts = 0;
  std::uint64_t failures = 0;
  /// Split of detections by whether the node held a finite predicted
  /// arrival when the stimulus reached it (its prediction machinery was
  /// "on the ball") vs. being surprised.
  std::uint64_t prediction_hits = 0;
  std::uint64_t prediction_misses = 0;
  /// Distribution of chosen sleep intervals (seconds, kSleepHistSpec).
  obs::HistogramData sleep_s{kSleepHistSpec, {}, 0};

  /// Accumulates `other` into this (campaign/replication roll-ups).
  void add(const ProtocolStats& other);
};

class Protocol {
 public:
  /// All referenced objects must outlive the Protocol. `trace` may be null.
  /// `collection` (may be null) receives a multihop alert per detection —
  /// the net::Collection routes it toward the sink (Sleep-Route).
  Protocol(sim::Simulator& simulator, net::Network& network,
           std::vector<node::SensorNode>& nodes,
           const stimulus::StimulusModel& model,
           const stimulus::ArrivalMap& arrivals, ProtocolConfig config,
           const sim::SeedSequence& seeds,
           const node::FailurePlan* failures = nullptr,
           sim::TraceLog* trace = nullptr,
           net::Collection* collection = nullptr);

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  /// Schedules initial wake-ups, stimulus arrivals and failures. Call once,
  /// before Simulator::run_until.
  void start();

  [[nodiscard]] NodeState state_of(std::uint32_t id) const {
    return runtime_.at(id).state;
  }
  [[nodiscard]] sim::Time predicted_arrival_of(std::uint32_t id) const {
    return runtime_.at(id).predicted_arrival;
  }
  [[nodiscard]] bool velocity_valid_of(std::uint32_t id) const {
    return runtime_.at(id).velocity_valid;
  }
  [[nodiscard]] geom::Vec2 velocity_of(std::uint32_t id) const {
    return runtime_.at(id).velocity;
  }

  [[nodiscard]] std::size_t count_in_state(NodeState s) const;

  [[nodiscard]] const ProtocolStats& stats() const noexcept { return stats_; }

  /// Total timer re-arms that displaced a still-pending firing, summed over
  /// every per-node timer — the kernel-facing cost of schedule revisions.
  [[nodiscard]] std::uint64_t timer_reschedules() const noexcept;

  [[nodiscard]] const ProtocolConfig& config() const noexcept { return config_; }
  /// The policy object driving this run (owned; resolved from
  /// config.policy via the registry at construction).
  [[nodiscard]] const SleepingPolicy& sleeping_policy() const noexcept {
    return *policy_;
  }

 private:
  struct Runtime {
    NodeState state = NodeState::kSafe;
    /// Per-node policy state (current sleeping interval, …) — the slab the
    /// SleepingPolicy hooks operate on; no policy-side allocation.
    PolicyNodeState policy;
    PeerTable table;
    /// Scratch for PeerTable::snapshot_into — reused across evaluations so
    /// the estimation path allocates only while a table is still growing.
    std::vector<PeerObservation> peers;
    geom::Vec2 velocity{};
    bool velocity_valid = false;
    sim::Time predicted_arrival = sim::kNever;
    sim::Time last_pushed_prediction = sim::kNever;
    sim::Time last_push_time = sim::kLongAgo;
    sim::Time last_seen_covered = sim::kNever;
    bool awaiting_eval = false;
    // Reusable self-rescheduling handles: each captures its handler once at
    // start(); every re-arm afterwards schedules only an inline trampoline.
    sim::Timer wake_timer;
    sim::Timer eval_timer;
    sim::Timer recheck_timer;
    sim::Timer estimate_timer;
    sim::Timer covered_check_timer;
  };

  // Event handlers.
  void on_arrival(std::uint32_t i);
  void on_wake(std::uint32_t i);
  void on_safe_evaluate(std::uint32_t i);
  void on_alert_recheck(std::uint32_t i);
  void on_covered_estimate(std::uint32_t i);
  void on_covered_check(std::uint32_t i);
  void on_message(std::uint32_t i, const net::Message& msg);
  void on_failure(std::uint32_t i);

  // Actions.
  void detect(std::uint32_t i);
  void enter_alert(std::uint32_t i);
  void demote_to_safe(std::uint32_t i);
  void go_to_sleep(std::uint32_t i);
  void send_request(std::uint32_t i);
  void send_response(std::uint32_t i);
  void maybe_push_response(std::uint32_t i);
  /// Recomputes expected velocity + predicted arrival from the peer table
  /// (snapshots into rt.peers; valid until the table next changes).
  void refresh_estimates(std::uint32_t i);
  void cancel_pending(std::uint32_t i);
  void set_state(std::uint32_t i, NodeState next);

  void trace(sim::TraceCategory cat, std::uint32_t i, sim::TraceKind kind);

  sim::Simulator& simulator_;
  net::Network& network_;
  std::vector<node::SensorNode>& nodes_;
  const stimulus::StimulusModel& model_;
  const stimulus::ArrivalMap& arrivals_;
  ProtocolConfig config_;
  std::unique_ptr<const SleepingPolicy> policy_;  // references config_
  const node::FailurePlan* failures_;
  sim::TraceLog* trace_;
  net::Collection* collection_;
  sim::Pcg32 wake_rng_;
  std::vector<Runtime> runtime_;
  ProtocolStats stats_;
  bool started_ = false;
};

}  // namespace pas::core

// The embedded dashboard served at GET /.
//
// One self-contained HTML page (no external assets, works from file:// or
// behind the embedded server) that subscribes to /api/events with
// EventSource and renders campaign progress, a throughput chart, the
// worker table, the live metrics snapshot, and the event log. Kept in its
// own translation unit so the ~large raw string does not slow down
// rebuilds of the server logic.
#pragma once

#include <string_view>

namespace pas::serve {

[[nodiscard]] std::string_view dashboard_html() noexcept;

}  // namespace pas::serve

#include "serve/feed.hpp"

#include <cstdio>
#include <utility>

#include "orch/supervisor.hpp"

namespace pas::serve {

namespace {

double age_s(FeedClock::time_point now, FeedClock::time_point then) {
  return std::chrono::duration<double>(now - then).count();
}

}  // namespace

CampaignFeed::CampaignFeed(Options options)
    : options_(options),
      t0_(FeedClock::now()),
      last_tick_(t0_),
      campaign_t0_(t0_) {}

void CampaignFeed::set_echo(bool enabled, bool drive_style,
                            double interval_s) {
  const std::lock_guard lock(mutex_);
  echo_ = enabled;
  drive_echo_ = drive_style;
  echo_interval_s_ = interval_s;
}

double CampaignFeed::elapsed_since_start_locked(
    FeedClock::time_point now) const {
  return age_s(now, campaign_t0_);
}

void CampaignFeed::push_event_locked(const std::string& type,
                                     std::string data) {
  Event event;
  event.seq = next_seq_++;
  event.t_s = age_s(FeedClock::now(), t0_);
  event.type = type;
  event.data = std::move(data);
  events_.push_back(std::move(event));
  while (events_.size() > options_.event_capacity) events_.pop_front();
}

void CampaignFeed::begin_campaign(const std::string& name,
                                  std::uint64_t campaign_id,
                                  std::size_t total_points,
                                  std::size_t replications,
                                  std::size_t resumed) {
  const std::lock_guard lock(mutex_);
  state_ = State::kRunning;
  campaign_ = name;
  campaign_id_ = campaign_id;
  campaign_t0_ = FeedClock::now();
  last_tick_ = campaign_t0_;
  total_points_ = total_points;
  done_points_ = resumed;
  computed_ = 0;
  resumed_ = resumed;
  replications_ = replications;
  workers_.clear();
  io::JsonObject data;
  data["event"] = "start";
  data["name"] = name;
  data["id"] = campaign_id;
  data["total_points"] = total_points;
  data["replications"] = replications;
  data["resumed"] = resumed;
  push_event_locked("campaign", io::Json(std::move(data)).dump());
}

void CampaignFeed::end_campaign(bool interrupted) {
  const std::lock_guard lock(mutex_);
  state_ = interrupted ? State::kInterrupted : State::kDone;
  io::JsonObject data;
  data["event"] = interrupted ? "interrupted" : "done";
  data["name"] = campaign_;
  data["id"] = campaign_id_;
  data["done_points"] = done_points_;
  data["total_points"] = total_points_;
  data["computed"] = computed_;
  push_event_locked("campaign", io::Json(std::move(data)).dump());
}

void CampaignFeed::point_done(std::string row_json) {
  const std::lock_guard lock(mutex_);
  ++done_points_;
  ++computed_;
  if (options_.store_points) {
    point_rows_.push_back(row_json);
    while (point_rows_.size() > options_.point_log_capacity) {
      point_rows_.pop_front();
    }
  }
  ++points_logged_;
  push_event_locked("point", std::move(row_json));
}

void CampaignFeed::add_recovered(std::size_t n) {
  const std::lock_guard lock(mutex_);
  done_points_ += n;
  computed_ += n;
}

void CampaignFeed::update_workers(std::vector<WorkerRow> workers) {
  const std::lock_guard lock(mutex_);
  workers_ = std::move(workers);
}

void CampaignFeed::worker_event(const std::string& kind, int worker,
                                const std::string& detail) {
  const std::lock_guard lock(mutex_);
  io::JsonObject data;
  data["event"] = kind;
  data["worker"] = worker;
  if (!detail.empty()) data["detail"] = detail;
  push_event_locked("worker", io::Json(std::move(data)).dump());
}

void CampaignFeed::progress_tick(bool force) {
  const std::lock_guard lock(mutex_);
  const auto now = FeedClock::now();
  if (!force && age_s(now, last_tick_) < echo_interval_s_) return;
  last_tick_ = now;
  const double elapsed = elapsed_since_start_locked(now);
  io::JsonObject data;
  data["done"] = done_points_;
  data["total"] = total_points_;
  data["computed"] = computed_;
  data["replications"] = replications_;
  data["elapsed_s"] = elapsed;
  data["workers"] = workers_.size();
  push_event_locked("progress", io::Json(std::move(data)).dump());
  if (echo_) echo_locked(now);
}

void CampaignFeed::echo_locked(FeedClock::time_point now) {
  const double elapsed = elapsed_since_start_locked(now);
  const std::string line = orch::progress_line(
      done_points_, total_points_, computed_, replications_, elapsed);
  if (drive_echo_) {
    std::printf("%s | %zu workers\n", line.c_str(), workers_.size());
    for (const auto& w : workers_) {
      std::printf("%s\n",
                  orch::worker_status_line(w.id, w.has_lease,
                                           w.lease_points_left, w.points_done,
                                           age_s(now, w.last_line))
                      .c_str());
    }
  } else {
    std::printf("%s\n", line.c_str());
  }
  std::fflush(stdout);
}

void CampaignFeed::publish(const std::string& type, std::string data_json) {
  const std::lock_guard lock(mutex_);
  push_event_locked(type, std::move(data_json));
}

void CampaignFeed::set_metrics_source(std::function<io::Json()> source) {
  const std::lock_guard lock(mutex_);
  metrics_source_ = std::move(source);
}

CampaignFeed::Status CampaignFeed::status() const {
  const std::lock_guard lock(mutex_);
  Status out;
  out.state = state_;
  out.campaign = campaign_;
  out.campaign_id = campaign_id_;
  out.total_points = total_points_;
  out.done_points = done_points_;
  out.computed = computed_;
  out.resumed = resumed_;
  out.replications = replications_;
  const auto now = FeedClock::now();
  out.elapsed_s =
      state_ == State::kIdle ? 0.0 : elapsed_since_start_locked(now);
  out.workers = workers_;
  out.last_seq = next_seq_ - 1;
  out.points_logged = points_logged_;
  out.queued_campaigns = submissions_.size();
  return out;
}

std::vector<CampaignFeed::Event> CampaignFeed::events_since(
    std::uint64_t after_seq, std::size_t max_events) const {
  const std::lock_guard lock(mutex_);
  std::vector<Event> out;
  // The ring holds contiguous sequence numbers, so the start offset is a
  // subtraction, not a scan.
  if (events_.empty()) return out;
  const std::uint64_t first = events_.front().seq;
  std::size_t start = 0;
  if (after_seq + 1 > first) {
    start = static_cast<std::size_t>(after_seq + 1 - first);
    if (start >= events_.size()) return out;
  }
  const std::size_t n = std::min(max_events, events_.size() - start);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(events_[start + i]);
  return out;
}

std::vector<std::string> CampaignFeed::points_since(
    std::size_t after, std::size_t max_rows) const {
  const std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  // The log is bounded: the deque holds indices [base, points_logged_).
  // A cursor inside the dropped prefix resumes at the oldest retained row.
  const std::size_t base = points_logged_ - point_rows_.size();
  const std::size_t start = after > base ? after - base : 0;
  if (start >= point_rows_.size()) return out;
  const std::size_t n = std::min(max_rows, point_rows_.size() - start);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(point_rows_[start + i]);
  return out;
}

io::Json CampaignFeed::metrics() const {
  std::function<io::Json()> source;
  {
    const std::lock_guard lock(mutex_);
    source = metrics_source_;
  }
  // Invoked outside the feed lock: the source snapshots a registry with
  // its own mutex, and producers publish into the feed while holding none.
  if (!source) return io::Json(io::JsonObject{});
  return source();
}

std::uint64_t CampaignFeed::submit(std::string manifest_json) {
  const std::lock_guard lock(mutex_);
  const std::uint64_t id = next_submission_++;
  submissions_.emplace_back(id, std::move(manifest_json));
  io::JsonObject data;
  data["event"] = "submitted";
  data["id"] = id;
  data["queued"] = submissions_.size();
  push_event_locked("campaign", io::Json(std::move(data)).dump());
  return id;
}

std::optional<std::pair<std::uint64_t, std::string>>
CampaignFeed::pop_submission() {
  const std::lock_guard lock(mutex_);
  if (submissions_.empty()) return std::nullopt;
  auto out = std::move(submissions_.front());
  submissions_.pop_front();
  return out;
}

}  // namespace pas::serve

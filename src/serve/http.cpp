#include "serve/http.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace pas::serve {

namespace {

std::string_view strip(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

std::string query_param(const HttpRequest& request, std::string_view key,
                        std::string fallback) {
  std::string_view q = request.query;
  while (!q.empty()) {
    const std::size_t amp = q.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? q : q.substr(0, amp);
    q = amp == std::string_view::npos ? std::string_view{}
                                      : q.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    if (pair.substr(0, eq) == key) return std::string(pair.substr(eq + 1));
  }
  return fallback;
}

bool RequestParser::consume(std::string_view bytes) {
  if (failed()) return false;
  buffer_.append(bytes.data(), bytes.size());
  return parse_available();
}

HttpRequest RequestParser::take_request() {
  HttpRequest out = std::move(complete_.front());
  complete_.pop_front();
  return out;
}

void RequestParser::reset() {
  buffer_.clear();
  complete_.clear();
  pending_ = HttpRequest{};
  pending_body_ = 0;
  in_body_ = false;
  error_status_ = 0;
}

bool RequestParser::parse_available() {
  while (true) {
    if (in_body_) {
      if (buffer_.size() < pending_body_) return true;  // body still arriving
      pending_.body = buffer_.substr(0, pending_body_);
      buffer_.erase(0, pending_body_);
      in_body_ = false;
      complete_.push_back(std::move(pending_));
      pending_ = HttpRequest{};
      continue;  // pipelining: the buffer may already hold the next head
    }
    const std::size_t end = buffer_.find("\r\n\r\n");
    if (end == std::string::npos) {
      // Tolerate bare-LF clients for the head terminator too.
      const std::size_t lf = buffer_.find("\n\n");
      if (lf == std::string::npos) {
        if (buffer_.size() > limits_.max_head_bytes) {
          fail(431);
          return false;
        }
        return true;  // head still arriving
      }
      if (lf + 2 > limits_.max_head_bytes) {
        fail(431);
        return false;
      }
      if (!parse_head(std::string_view(buffer_).substr(0, lf))) return false;
      buffer_.erase(0, lf + 2);
      continue;
    }
    if (end + 4 > limits_.max_head_bytes) {
      fail(431);
      return false;
    }
    if (!parse_head(std::string_view(buffer_).substr(0, end))) return false;
    buffer_.erase(0, end + 4);
  }
}

bool RequestParser::parse_head(std::string_view head) {
  // Request line: METHOD SP TARGET SP HTTP/1.x
  const std::size_t line_end = head.find('\n');
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  line = strip(line);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    fail(400);
    return false;
  }
  HttpRequest request;
  request.method = std::string(line.substr(0, sp1));
  request.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = strip(line.substr(sp2 + 1));
  if (request.method.empty() || request.target.empty() ||
      request.target[0] != '/' ||
      request.target.find(' ') != std::string::npos) {
    fail(400);
    return false;
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    fail(400);
    return false;
  }
  for (const char c : request.method) {
    if (!std::isupper(static_cast<unsigned char>(c))) {
      fail(400);
      return false;
    }
  }
  const std::size_t qmark = request.target.find('?');
  request.path = request.target.substr(0, qmark);
  request.query = qmark == std::string::npos
                      ? std::string()
                      : request.target.substr(qmark + 1);

  // Header fields.
  std::string_view rest = line_end == std::string_view::npos
                              ? std::string_view{}
                              : head.substr(line_end + 1);
  while (!rest.empty()) {
    const std::size_t nl = rest.find('\n');
    std::string_view field =
        nl == std::string_view::npos ? rest : rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view{}
                                        : rest.substr(nl + 1);
    field = strip(field);
    if (field.empty()) continue;
    const std::size_t colon = field.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      fail(400);
      return false;
    }
    request.headers[lower(strip(field.substr(0, colon)))] =
        std::string(strip(field.substr(colon + 1)));
  }

  request.keep_alive = version == "HTTP/1.1";
  if (const auto it = request.headers.find("connection");
      it != request.headers.end()) {
    const std::string value = lower(it->second);
    if (value.find("close") != std::string::npos) {
      request.keep_alive = false;
    } else if (value.find("keep-alive") != std::string::npos) {
      request.keep_alive = true;
    }
  }

  if (request.headers.contains("transfer-encoding")) {
    fail(501);  // chunked uploads are out of scope
    return false;
  }
  pending_body_ = 0;
  if (const auto it = request.headers.find("content-length");
      it != request.headers.end()) {
    const std::string& value = it->second;
    std::size_t length = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), length);
    if (ec != std::errc{} || ptr != value.data() + value.size()) {
      fail(400);
      return false;
    }
    if (length > limits_.max_body_bytes) {
      fail(413);
      return false;
    }
    pending_body_ = length;
  }
  if (pending_body_ > 0) {
    pending_ = std::move(request);
    in_body_ = true;
  } else {
    complete_.push_back(std::move(request));
  }
  return true;
}

const char* status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

std::string http_response(int status, std::string_view content_type,
                          std::string_view body, bool keep_alive) {
  std::string out;
  out.reserve(body.size() + 160);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += status_text(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nCache-Control: no-store\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

std::string sse_preamble() {
  return
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: text/event-stream\r\n"
      "Cache-Control: no-store\r\n"
      "Connection: keep-alive\r\n"
      "\r\n";
}

std::string sse_event(std::uint64_t id, std::string_view type,
                      std::string_view data) {
  std::string out;
  out.reserve(data.size() + 48);
  out += "id: ";
  out += std::to_string(id);
  out += "\nevent: ";
  out += type;
  out += "\ndata: ";
  out += data;
  out += "\n\n";
  return out;
}

std::string sse_comment(std::string_view text) {
  std::string out(": ");
  out += text;
  out += "\n\n";
  return out;
}

}  // namespace pas::serve

// Embedded campaign observability server (pas-exp --serve).
//
// A single-threaded epoll loop serving the live-campaign HTTP API out of
// a serve::CampaignFeed. The structure mirrors the simulation kernel's
// EventQueue discipline: one poll loop, a slot-map connection table with
// an explicit free list (connection objects and their parser/output
// buffers are reused, never reallocated per client), and indices — not
// pointers — in the epoll user data.
//
// Endpoints:
//   GET  /               embedded dashboard (self-contained HTML)
//   GET  /api/status     campaign identity, completion, worker table
//   GET  /api/metrics    live obs::Registry snapshot (quantiles included)
//   GET  /api/points?since=N   completion-ordered point rows, incremental
//   GET  /api/events     SSE stream (campaign/progress/point/worker/...)
//   POST /api/campaigns  submit a manifest into the serve queue
//
// The server is a pure consumer: it reads feed snapshots and never
// touches campaign state, so attaching it cannot perturb results (the
// CSV byte-identity contract). run() blocks and is intended for a
// dedicated thread; stop() is async-signal-safe-adjacent (atomic flag +
// self-pipe write) so the main thread's SIGINT path can end the loop.
//
// An obs::FlightRecorder notes every request and response line; on loop
// exit the window is dumped to `flightrec_path` — the same post-mortem
// idiom the orchestrator uses for worker protocol traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "serve/feed.hpp"
#include "serve/http.hpp"

namespace pas::serve {

class Server {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 lets the kernel pick; port() reports the bound port either way.
    std::uint16_t port = 0;
    /// Connection-table capacity; accepts beyond it get 503 + close.
    std::size_t max_connections = 64;
    /// Poll-loop tick; bounds SSE latency and stop() response time.
    int tick_ms = 200;
    /// SSE keep-alive comment cadence (quiet streams only).
    double keepalive_s = 10.0;
    /// Where the request/response flight-recorder window is appended on
    /// loop exit ("" = skip the dump).
    std::string flightrec_path;
    /// Validates a POST /api/campaigns body; returns "" to accept or an
    /// error message for a 400. Null accepts any body that parses as
    /// JSON. Called on the server thread.
    std::function<std::string(const std::string& body)> manifest_validator;
  };

  Server(CampaignFeed& feed, Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens. Returns false (with `error` set) on failure;
  /// the server owns no descriptors afterwards.
  [[nodiscard]] bool start(std::string& error);

  /// Host/port actually bound (valid after start; resolves port 0).
  [[nodiscard]] const std::string& host() const noexcept {
    return options_.host;
  }
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  /// Runs the poll loop until stop(). Call from a dedicated thread.
  void run();

  /// Ends run() from any thread (atomic flag + wake-pipe write).
  void stop();

  /// Requests served so far (handy for tests; racy reads are fine).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    bool in_use = false;
    RequestParser parser;
    std::string out;          // bytes awaiting write
    bool close_after_write = false;
    bool sse = false;
    std::uint64_t sse_seq = 0;       // last event seq sent
    double last_sse_write_s = 0.0;   // keep-alive bookkeeping
    bool want_write = false;         // EPOLLOUT currently armed
  };

  void accept_ready();
  void conn_readable(std::size_t slot);
  void conn_writable(std::size_t slot);
  void handle_request(std::size_t slot, const HttpRequest& request);
  void queue_response(std::size_t slot, int status,
                      std::string_view content_type, std::string_view body,
                      bool keep_alive);
  void begin_sse(std::size_t slot, const HttpRequest& request);
  void pump_sse(double now_s);
  void flush(std::size_t slot);
  void update_epoll(std::size_t slot);
  void close_conn(std::size_t slot);
  void close_all();
  [[nodiscard]] double now_s() const;

  [[nodiscard]] std::string status_json() const;
  [[nodiscard]] std::string points_json(const HttpRequest& request) const;

  CampaignFeed& feed_;
  Options options_;
  std::uint16_t bound_port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_served_{0};

  std::vector<Conn> conns_;
  std::vector<std::size_t> free_slots_;
  std::chrono::steady_clock::time_point t0_{};

  obs::FlightRecorder recorder_{512};
};

/// Splits "host:port" (e.g. "127.0.0.1:8080", ":0"). Empty host means
/// 127.0.0.1. Returns false on a malformed port.
[[nodiscard]] bool parse_listen_address(const std::string& spec,
                                        std::string& host,
                                        std::uint16_t& port);

}  // namespace pas::serve

#include "serve/dashboard.hpp"

namespace pas::serve {

namespace {

// Single-file dashboard. Colors are the validated reference palette
// (series-1 blue carries the only data series; status colors always ship
// with a text label, never color alone). Light and dark are both
// selected, switched on prefers-color-scheme.
constexpr std::string_view kDashboardHtml = R"__pas(<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>pas-exp campaign</title>
<style>
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --ink-1: #0b0b0b;
  --ink-2: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --series-1-soft: #cde2fb;
  --status-good: #0ca30c;
  --status-warning: #fab219;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --ink-1: #ffffff;
    --ink-2: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --series-1-soft: #184f95;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; background: var(--page); color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 1080px; margin: 0 auto; padding: 20px 16px 48px; }
header { display: flex; align-items: baseline; gap: 12px; flex-wrap: wrap; }
h1 { font-size: 18px; margin: 0; }
h2 { font-size: 13px; margin: 0 0 8px; color: var(--ink-2);
     font-weight: 600; text-transform: uppercase; letter-spacing: .04em; }
#campaign-name { color: var(--ink-2); }
.badge { display: inline-flex; align-items: center; gap: 6px;
         font-size: 12px; color: var(--ink-2); }
.badge .dot { width: 8px; height: 8px; border-radius: 50%;
              background: var(--muted); }
.badge.running .dot { background: var(--status-good); }
.badge.interrupted .dot { background: var(--status-warning); }
.badge.done .dot { background: var(--series-1); }
.card { background: var(--surface-1); border: 1px solid var(--border);
        border-radius: 8px; padding: 14px 16px; }
.grid { display: grid; gap: 12px; margin-top: 16px; }
.tiles { grid-template-columns: repeat(auto-fit, minmax(140px, 1fr)); }
.tile .label { font-size: 12px; color: var(--ink-2); }
.tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
.tile .sub { font-size: 12px; color: var(--muted); }
.cols { grid-template-columns: 1fr 1fr; }
@media (max-width: 760px) { .cols { grid-template-columns: 1fr; } }
#bar-track { height: 10px; border-radius: 5px; background: var(--grid);
             overflow: hidden; margin-top: 10px; }
#bar-fill { height: 100%; width: 0%; border-radius: 5px;
            background: var(--series-1); transition: width .3s; }
table { width: 100%; border-collapse: collapse;
        font-variant-numeric: tabular-nums; }
th { text-align: left; font-size: 12px; color: var(--muted);
     font-weight: 500; padding: 4px 8px 4px 0;
     border-bottom: 1px solid var(--baseline); }
td { padding: 4px 8px 4px 0; border-bottom: 1px solid var(--grid);
     font-size: 13px; }
td.num, th.num { text-align: right; }
.state-label { font-size: 12px; }
.state-label.stale { color: var(--status-critical); font-weight: 600; }
#chart-wrap { position: relative; }
#chart { width: 100%; height: 160px; display: block; }
#tooltip { position: absolute; pointer-events: none; display: none;
           background: var(--surface-1); border: 1px solid var(--border);
           border-radius: 6px; padding: 4px 8px; font-size: 12px;
           color: var(--ink-1); white-space: nowrap;
           box-shadow: 0 2px 8px rgba(0,0,0,.12); }
#events { list-style: none; margin: 0; padding: 0; font-size: 12px; }
#events li { padding: 3px 0; border-bottom: 1px solid var(--grid);
             color: var(--ink-2); }
#events li b { color: var(--ink-1); font-weight: 600; }
footer { margin-top: 20px; font-size: 12px; color: var(--muted); }
a { color: var(--series-1); }
</style>
</head>
<body>
<main>
<header>
  <h1>pas-exp campaign</h1>
  <span id="campaign-name">&mdash;</span>
  <span id="state" class="badge idle"><span class="dot"></span>
    <span id="state-text">connecting&hellip;</span></span>
</header>

<div class="grid tiles">
  <div class="card tile"><div class="label">Points</div>
    <div class="value" id="t-points">&mdash;</div>
    <div class="sub" id="t-points-sub"></div></div>
  <div class="card tile"><div class="label">Throughput</div>
    <div class="value" id="t-rate">&mdash;</div>
    <div class="sub">points / s</div></div>
  <div class="card tile"><div class="label">Elapsed</div>
    <div class="value" id="t-elapsed">&mdash;</div>
    <div class="sub" id="t-eta"></div></div>
  <div class="card tile"><div class="label">Workers</div>
    <div class="value" id="t-workers">&mdash;</div>
    <div class="sub" id="t-queued"></div></div>
</div>

<div class="card" style="margin-top:12px">
  <h2>Progress</h2>
  <div id="bar-track"><div id="bar-fill"></div></div>
  <div id="chart-wrap" style="margin-top:14px">
    <svg id="chart" role="img"
         aria-label="Point completion throughput over time"></svg>
    <div id="tooltip"></div>
  </div>
</div>

<div class="grid cols" style="margin-top:12px">
  <div class="card">
    <h2>Workers</h2>
    <table aria-label="Worker status">
      <thead><tr><th>id</th><th>state</th><th class="num">lease left</th>
        <th class="num">done</th><th class="num">last line</th></tr></thead>
      <tbody id="worker-rows">
        <tr><td colspan="5" style="color:var(--muted)">no workers
          (single-process run)</td></tr>
      </tbody>
    </table>
  </div>
  <div class="card">
    <h2>Events</h2>
    <ul id="events"></ul>
  </div>
</div>

<div class="card" style="margin-top:12px">
  <h2>Metrics</h2>
  <table aria-label="Live instrument registry">
    <thead><tr><th>instrument</th><th class="num">value / count</th>
      <th class="num">p50</th><th class="num">p95</th><th class="num">p99</th>
    </tr></thead>
    <tbody id="metric-rows">
      <tr><td colspan="5" style="color:var(--muted)">no metrics source
        (run with --metrics)</td></tr>
    </tbody>
  </table>
</div>

<footer>
  API: <a href="/api/status">/api/status</a> &middot;
  <a href="/api/metrics">/api/metrics</a> &middot;
  <a href="/api/points?since=0">/api/points</a> &middot;
  <a href="/api/events">/api/events</a> (SSE)
</footer>
</main>

<script>
"use strict";
const $ = (id) => document.getElementById(id);
const fmt = (x) => x.toLocaleString("en-US");
const fmtS = (s) => {
  if (!isFinite(s)) return "—";
  if (s < 90) return s.toFixed(s < 10 ? 1 : 0) + "s";
  const m = Math.floor(s / 60);
  return m + "m" + String(Math.round(s - m * 60)).padStart(2, "0") + "s";
};

// Throughput series: one sample per progress event, rate from the delta
// against the previous sample. Bounded window keeps the SVG cheap.
const samples = [];
let lastProgress = null;
const MAX_SAMPLES = 240;

function setState(name) {
  const badge = $("state");
  badge.className = "badge " + name;
  $("state-text").textContent = name;
}

function onProgress(p) {
  $("t-points").textContent = fmt(p.done) + " / " + fmt(p.total);
  const pct = p.total > 0 ? (100 * p.done / p.total) : 0;
  $("t-points-sub").textContent = pct.toFixed(1) + "% complete";
  $("bar-fill").style.width = pct.toFixed(2) + "%";
  $("t-elapsed").textContent = fmtS(p.elapsed_s);
  $("t-workers").textContent = p.workers > 0 ? String(p.workers) : "1";
  if (lastProgress && p.elapsed_s > lastProgress.elapsed_s) {
    const rate = (p.done - lastProgress.done) /
                 (p.elapsed_s - lastProgress.elapsed_s);
    if (rate >= 0) {
      samples.push({ t: p.elapsed_s, rate: rate });
      if (samples.length > MAX_SAMPLES) samples.shift();
      $("t-rate").textContent =
          rate >= 100 ? fmt(Math.round(rate)) : rate.toFixed(1);
      const left = p.total - p.done;
      $("t-eta").textContent =
          rate > 0 && left > 0 ? "ETA " + fmtS(left / rate) : "";
    }
  }
  lastProgress = p;
  drawChart();
}

function drawChart() {
  const svg = $("chart");
  const W = svg.clientWidth || 600, H = svg.clientHeight || 160;
  svg.setAttribute("viewBox", "0 0 " + W + " " + H);
  if (samples.length < 2) { svg.innerHTML = ""; return; }
  const padL = 38, padR = 8, padT = 8, padB = 18;
  const t0 = samples[0].t, t1 = samples[samples.length - 1].t;
  const rmax = Math.max(1e-9, ...samples.map((s) => s.rate));
  const x = (t) => padL + (W - padL - padR) * (t - t0) / Math.max(1e-9, t1 - t0);
  const y = (r) => padT + (H - padT - padB) * (1 - r / rmax);
  let g = "";
  for (let i = 0; i <= 2; i++) {
    const r = rmax * i / 2, yy = y(r);
    g += '<line x1="' + padL + '" y1="' + yy + '" x2="' + (W - padR) +
         '" y2="' + yy + '" stroke="var(--grid)" stroke-width="1"/>' +
         '<text x="' + (padL - 6) + '" y="' + (yy + 4) +
         '" text-anchor="end" font-size="10" fill="var(--muted)">' +
         (r >= 100 ? Math.round(r) : r.toFixed(1)) + "</text>";
  }
  g += '<line x1="' + padL + '" y1="' + (H - padB) + '" x2="' + (W - padR) +
       '" y2="' + (H - padB) + '" stroke="var(--baseline)"/>';
  const pts = samples.map((s) => x(s.t).toFixed(1) + "," + y(s.rate).toFixed(1))
      .join(" ");
  g += '<polyline points="' + pts + '" fill="none" stroke="var(--series-1)"' +
       ' stroke-width="2" stroke-linejoin="round"/>';
  const last = samples[samples.length - 1];
  g += '<circle cx="' + x(last.t).toFixed(1) + '" cy="' +
       y(last.rate).toFixed(1) +
       '" r="4" fill="var(--series-1)" stroke="var(--surface-1)"' +
       ' stroke-width="2"/>';
  g += '<text x="' + (W - padR) + '" y="' + (H - 4) +
       '" text-anchor="end" font-size="10" fill="var(--muted)">' +
       fmtS(t1) + "</text>";
  svg.innerHTML = g;
}

$("chart-wrap").addEventListener("mousemove", (ev) => {
  if (samples.length < 2) return;
  const rect = $("chart").getBoundingClientRect();
  const W = rect.width, padL = 38, padR = 8;
  const t0 = samples[0].t, t1 = samples[samples.length - 1].t;
  const frac = Math.min(1, Math.max(0,
      (ev.clientX - rect.left - padL) / Math.max(1, W - padL - padR)));
  const t = t0 + frac * (t1 - t0);
  let best = samples[0];
  for (const s of samples) {
    if (Math.abs(s.t - t) < Math.abs(best.t - t)) best = s;
  }
  const tip = $("tooltip");
  tip.style.display = "block";
  tip.textContent = best.rate.toFixed(2) + " pts/s at " + fmtS(best.t);
  tip.style.left = Math.min(ev.clientX - rect.left + 12, W - 150) + "px";
  tip.style.top = "8px";
});
$("chart-wrap").addEventListener("mouseleave", () => {
  $("tooltip").style.display = "none";
});

function logEvent(kind, text) {
  const ul = $("events");
  const li = document.createElement("li");
  const b = document.createElement("b");
  b.textContent = kind + " ";
  li.appendChild(b);
  li.appendChild(document.createTextNode(text));
  ul.insertBefore(li, ul.firstChild);
  while (ul.children.length > 10) ul.removeChild(ul.lastChild);
}

function renderWorkers(workers) {
  const tbody = $("worker-rows");
  if (!workers || workers.length === 0) return;
  tbody.innerHTML = "";
  for (const w of workers) {
    const tr = document.createElement("tr");
    const stale = w.hb_age_s > 5;
    tr.innerHTML =
        "<td>" + w.id + "</td>" +
        '<td><span class="state-label' + (stale ? " stale" : "") + '">' +
        (stale ? "stalled" : (w.has_lease ? "leased" : "idle")) +
        "</span></td>" +
        '<td class="num">' + (w.has_lease ? w.lease_points_left : "—") +
        "</td>" +
        '<td class="num">' + w.points_done + "</td>" +
        '<td class="num">' + w.hb_age_s.toFixed(1) + "s</td>";
    tbody.appendChild(tr);
  }
}

function renderMetrics(m) {
  const inst = m && m.instruments;
  if (!inst || Object.keys(inst).length === 0) return;
  const tbody = $("metric-rows");
  tbody.innerHTML = "";
  for (const name of Object.keys(inst).sort()) {
    const v = inst[name];
    const tr = document.createElement("tr");
    if (typeof v === "object") {
      const q = (k) => k in v ? Number(v[k]).toPrecision(3) : "—";
      tr.innerHTML = "<td>" + name + '</td><td class="num">' + v.total +
          '</td><td class="num">' + q("p50") + '</td><td class="num">' +
          q("p95") + '</td><td class="num">' + q("p99") + "</td>";
    } else {
      tr.innerHTML = "<td>" + name + '</td><td class="num">' + fmt(v) +
          '</td><td class="num">—</td><td class="num">—</td>' +
          '<td class="num">—</td>';
    }
    tbody.appendChild(tr);
  }
}

async function poll() {
  try {
    const status = await (await fetch("/api/status")).json();
    setState(status.state);
    $("campaign-name").textContent = status.campaign || "—";
    $("t-queued").textContent = status.queued_campaigns > 0
        ? status.queued_campaigns + " queued" : "";
    renderWorkers(status.workers);
    if (!lastProgress) {
      onProgress({ done: status.done_points, total: status.total_points,
                   elapsed_s: status.elapsed_s,
                   workers: status.workers.length });
    }
  } catch (e) { /* server restarting; keep trying */ }
  try {
    renderMetrics(await (await fetch("/api/metrics")).json());
  } catch (e) { /* metrics optional */ }
}

const es = new EventSource("/api/events");
es.addEventListener("progress", (ev) => onProgress(JSON.parse(ev.data)));
es.addEventListener("campaign", (ev) => {
  const d = JSON.parse(ev.data);
  logEvent("campaign", d.event + (d.name ? " " + d.name : ""));
  if (d.event === "start") { setState("running"); samples.length = 0;
                             lastProgress = null; }
  if (d.event === "done") setState("done");
  if (d.event === "interrupted") setState("interrupted");
});
es.addEventListener("worker", (ev) => {
  const d = JSON.parse(ev.data);
  logEvent("worker " + d.worker, d.event + (d.detail ? ": " + d.detail : ""));
});
es.addEventListener("shutdown", () => { setState("idle");
                                        logEvent("server", "shutdown"); });
es.onerror = () => setState("idle");

poll();
setInterval(poll, 2000);
window.addEventListener("resize", drawChart);
</script>
</body>
</html>
)__pas";

}  // namespace

std::string_view dashboard_html() noexcept { return kDashboardHtml; }

}  // namespace pas::serve

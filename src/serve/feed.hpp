// serve::CampaignFeed — the single producer behind every live view of a
// running campaign.
//
// The campaign engine (exp::run_campaign) and the orchestrator
// (orch::drive) publish progress, point completions, worker lifecycle
// events, and a live metrics source into one thread-safe feed; consumers
// read from it without ever touching the producers:
//
//  * the --progress stderr/stdout lines are rendered by the feed itself
//    (echo mode), so the terminal and the network stream can never
//    disagree about what the campaign is doing;
//  * the HTTP server (serve/server.hpp) snapshots status(), drains
//    events_since() into per-client SSE streams, and serves the
//    completion-ordered point-row log incrementally;
//  * manifest submissions (POST /api/campaigns) queue here until the
//    serve loop in pas-exp pops them.
//
// Serving is observe-only by construction: the feed owns copies (JSON
// strings, counters, worker rows) and writes no files, so a campaign
// with a feed attached produces byte-identical CSV/JSONL output to one
// without.
//
// Events carry monotonically increasing sequence numbers and live in a
// bounded ring (default 1 << 16). events_since() never invents or
// repeats a sequence number, which is what the SSE soak test's
// "no dropped or duplicated point completions" check leans on; a client
// that falls behind a full ring can detect the gap from the ids and
// re-sync via /api/points.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "io/json.hpp"

namespace pas::serve {

using FeedClock = std::chrono::steady_clock;

class CampaignFeed {
 public:
  struct Options {
    /// Keep the serialized point rows for /api/points. Off for feeds that
    /// only unify progress echo (a plain --drive --progress run), so a
    /// million-point campaign does not grow a row log nobody will read.
    bool store_points = false;
    /// Event-ring capacity (oldest entries drop first).
    std::size_t event_capacity = 1 << 16;
    /// Point-row log capacity (oldest rows drop first), so a 100k-point
    /// campaign bounds the feed's memory like the event ring does.
    /// points_since() callers that fall behind the window re-sync from the
    /// returned log indices; log indices themselves never shift.
    std::size_t point_log_capacity = 1 << 16;
  };

  struct WorkerRow {
    int id = -1;
    bool has_lease = false;
    std::size_t lease_points_left = 0;
    std::size_t points_done = 0;
    /// Time of the worker's last protocol line; ages are computed at
    /// read time so a stalled worker's age climbs between updates.
    FeedClock::time_point last_line{};
  };

  struct Event {
    std::uint64_t seq = 0;
    double t_s = 0.0;  // seconds since feed construction
    /// SSE event type: "campaign", "progress", "point", "worker",
    /// "metrics", "shutdown".
    std::string type;
    /// Compact single-line JSON payload.
    std::string data;
  };

  enum class State { kIdle, kRunning, kDone, kInterrupted };

  struct Status {
    State state = State::kIdle;
    std::string campaign;       // manifest name
    std::uint64_t campaign_id = 0;  // 0 = the CLI campaign, 1+ = submissions
    std::size_t total_points = 0;
    std::size_t done_points = 0;  // includes resumed rows
    std::size_t computed = 0;     // simulated by this invocation
    std::size_t resumed = 0;
    std::size_t replications = 0;
    double elapsed_s = 0.0;  // since begin_campaign
    std::vector<WorkerRow> workers;
    std::uint64_t last_seq = 0;
    std::size_t points_logged = 0;   // rows available to /api/points
    std::size_t queued_campaigns = 0;
  };

  CampaignFeed() : CampaignFeed(Options()) {}
  explicit CampaignFeed(Options options);

  /// Progress echo: when enabled, the feed prints the classic --progress
  /// lines (orch::progress_line, worker_status_line) to stdout at
  /// `interval_s` cadence. `drive_style` appends " | N workers" plus the
  /// per-worker table, matching the supervisor's historical output.
  void set_echo(bool enabled, bool drive_style, double interval_s = 1.0);

  // --- Producer side (campaign engine / orchestrator) ---------------------

  void begin_campaign(const std::string& name, std::uint64_t campaign_id,
                      std::size_t total_points, std::size_t replications,
                      std::size_t resumed);
  void end_campaign(bool interrupted);

  /// One completed point. `row_json` is the compact JSON row exposed via
  /// /api/points and the "point" SSE event (identity + whatever summary
  /// the producer has; the orchestrator knows less than the in-process
  /// engine). Also advances done/computed counters.
  void point_done(std::string row_json);

  /// Rows recovered from disk rather than computed live (drive crash
  /// recovery): advances the done/computed counters without emitting
  /// per-point events — the caller notes the recovery as a worker event.
  void add_recovered(std::size_t n);

  /// Replaces the worker table (drive mode; the supervisor pushes it from
  /// its poll loop).
  void update_workers(std::vector<WorkerRow> workers);

  /// Worker lifecycle: kind in {"spawn", "crash", "respawn",
  /// "recovered"}; detail is free text (crash reason, recovered rows).
  void worker_event(const std::string& kind, int worker,
                    const std::string& detail);

  /// Throttled progress: emits a "progress" SSE event and (echo mode) the
  /// status line at most once per echo interval, always when `force` is
  /// set. Producers call it as often as they like.
  void progress_tick(bool force);

  /// Publishes an already-built event verbatim (the server uses this for
  /// periodic "metrics" delta events, pas-exp for "shutdown").
  void publish(const std::string& type, std::string data_json);

  /// Live metrics provider (a registry-snapshot closure). The producer
  /// must clear it (nullptr) before the registry it captures dies.
  void set_metrics_source(std::function<io::Json()> source);

  // --- Consumer side (HTTP server, serve loop) -----------------------------

  [[nodiscard]] Status status() const;

  /// Events with seq > after_seq, oldest first, at most max_events.
  [[nodiscard]] std::vector<Event> events_since(
      std::uint64_t after_seq, std::size_t max_events = 512) const;

  /// Completion-ordered point rows starting at log index `after`
  /// (0-based), at most max_rows. Empty unless options.store_points. Rows
  /// older than the bounded log window (point_log_capacity) are gone; the
  /// reply then starts at the oldest retained index instead, which a
  /// client detects by comparing its cursor against points_logged.
  [[nodiscard]] std::vector<std::string> points_since(
      std::size_t after, std::size_t max_rows = 1024) const;

  /// Snapshot of the live metrics source ({} when none installed).
  [[nodiscard]] io::Json metrics() const;

  // --- Campaign submissions ------------------------------------------------

  /// Queues a manifest (raw JSON text, already validated by the caller);
  /// returns the submission id (1-based).
  std::uint64_t submit(std::string manifest_json);

  /// Pops the oldest queued submission: {id, manifest JSON}.
  [[nodiscard]] std::optional<std::pair<std::uint64_t, std::string>>
  pop_submission();

 private:
  void push_event_locked(const std::string& type, std::string data);
  void echo_locked(FeedClock::time_point now);
  [[nodiscard]] double elapsed_since_start_locked(
      FeedClock::time_point now) const;

  const Options options_;
  const FeedClock::time_point t0_;

  mutable std::mutex mutex_;
  bool echo_ = false;
  bool drive_echo_ = false;
  double echo_interval_s_ = 1.0;
  FeedClock::time_point last_tick_;

  State state_ = State::kIdle;
  std::string campaign_;
  std::uint64_t campaign_id_ = 0;
  FeedClock::time_point campaign_t0_;
  std::size_t total_points_ = 0;
  std::size_t done_points_ = 0;
  std::size_t computed_ = 0;
  std::size_t resumed_ = 0;
  std::size_t replications_ = 0;
  std::vector<WorkerRow> workers_;

  std::uint64_t next_seq_ = 1;
  std::deque<Event> events_;

  /// Bounded completion-ordered row log: point_rows_ holds log indices
  /// [points_logged_ - size, points_logged_); older rows have been popped.
  std::size_t points_logged_ = 0;
  std::deque<std::string> point_rows_;

  std::function<io::Json()> metrics_source_;

  std::uint64_t next_submission_ = 1;
  std::deque<std::pair<std::uint64_t, std::string>> submissions_;
};

}  // namespace pas::serve

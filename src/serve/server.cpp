#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>

#include "io/json.hpp"
#include "serve/dashboard.hpp"

namespace pas::serve {

namespace {

// epoll user-data tags for the two non-connection descriptors; connection
// events carry their slot index instead.
constexpr std::uint64_t kListenTag = UINT64_MAX;
constexpr std::uint64_t kWakeTag = UINT64_MAX - 1;

const char* state_name(CampaignFeed::State state) noexcept {
  switch (state) {
    case CampaignFeed::State::kIdle: return "idle";
    case CampaignFeed::State::kRunning: return "running";
    case CampaignFeed::State::kDone: return "done";
    case CampaignFeed::State::kInterrupted: return "interrupted";
  }
  return "?";
}

bool parse_size(std::string_view text, std::size_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

}  // namespace

bool parse_listen_address(const std::string& spec, std::string& host,
                          std::uint16_t& port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) return false;
  host = spec.substr(0, colon);
  if (host.empty()) host = "127.0.0.1";
  const std::string_view port_text = std::string_view(spec).substr(colon + 1);
  std::size_t value = 0;
  if (!parse_size(port_text, value) || value > 65535) return false;
  port = static_cast<std::uint16_t>(value);
  return true;
}

Server::Server(CampaignFeed& feed, Options options)
    : feed_(feed), options_(std::move(options)) {}

Server::~Server() {
  close_all();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

bool Server::start(std::string& error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    error = "bad listen address: " + options_.host;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    error = "bind " + options_.host + ":" + std::to_string(options_.port) +
            ": " + std::strerror(errno);
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) < 0) {
    error = std::string("listen: ") + std::strerror(errno);
    return false;
  }

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) < 0) {
    error = std::string("pipe2: ") + std::strerror(errno);
    return false;
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    error = std::string("epoll_create1: ") + std::strerror(errno);
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_, &ev);

  conns_.resize(options_.max_connections);
  free_slots_.clear();
  for (std::size_t i = options_.max_connections; i-- > 0;) {
    free_slots_.push_back(i);
  }
  t0_ = std::chrono::steady_clock::now();
  return true;
}

double Server::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
      .count();
}

void Server::run() {
  epoll_event events[32];
  while (!stop_.load(std::memory_order_relaxed)) {
    const int n =
        ::epoll_wait(epoll_fd_, events, 32, options_.tick_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        accept_ready();
      } else if (tag == kWakeTag) {
        char drain[16];
        while (::read(wake_read_, drain, sizeof(drain)) > 0) {
        }
      } else {
        const auto slot = static_cast<std::size_t>(tag);
        if (slot >= conns_.size() || !conns_[slot].in_use) continue;
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          close_conn(slot);
          continue;
        }
        if ((events[i].events & EPOLLIN) != 0) conn_readable(slot);
        if (slot < conns_.size() && conns_[slot].in_use &&
            (events[i].events & EPOLLOUT) != 0) {
          conn_writable(slot);
        }
      }
    }
    pump_sse(now_s());
  }
  close_all();
  if (!options_.flightrec_path.empty() && recorder_.noted() > 0) {
    std::FILE* f = std::fopen(options_.flightrec_path.c_str(), "a");
    if (f != nullptr) {
      std::fprintf(f, "=== serve shutdown (%llu requests) ===\n",
                   static_cast<unsigned long long>(
                       requests_served_.load(std::memory_order_relaxed)));
      recorder_.dump(f);
      std::fclose(f);
      std::fprintf(stderr,
                   "pas-exp: serve flight recorder appended to %s\n",
                   options_.flightrec_path.c_str());
    }
  }
}

void Server::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (wake_write_ >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t rc = ::write(wake_write_, &byte, 1);
  }
}

void Server::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error; poll again later
    if (free_slots_.empty()) {
      // Table full: best-effort 503 and close. The response is tiny, so
      // a single nonblocking write either lands or the client retries.
      const std::string resp = http_response(
          503, "application/json", "{\"error\":\"too many connections\"}\n",
          false);
      [[maybe_unused]] const ssize_t rc =
          ::write(fd, resp.data(), resp.size());
      ::close(fd);
      continue;
    }
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    Conn& conn = conns_[slot];
    conn.fd = fd;
    conn.in_use = true;
    conn.parser.reset();
    conn.out.clear();
    conn.close_after_write = false;
    conn.sse = false;
    conn.sse_seq = 0;
    conn.last_sse_write_s = 0.0;
    conn.want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = slot;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void Server::conn_readable(std::size_t slot) {
  Conn& conn = conns_[slot];
  char buf[16384];
  while (true) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      if (!conn.parser.consume(std::string_view(buf,
                                                static_cast<std::size_t>(n)))) {
        const int status = conn.parser.error_status();
        recorder_.note('<', static_cast<int>(slot),
                       "malformed request (" + std::to_string(status) + ")");
        queue_response(slot, status, "application/json",
                       "{\"error\":\"" + std::string(status_text(status)) +
                           "\"}\n",
                       false);
        flush(slot);
        return;
      }
      continue;
    }
    if (n == 0) {  // peer closed
      if (conn.out.empty()) {
        close_conn(slot);
      } else {
        conn.close_after_write = true;
        flush(slot);
      }
      return;
    }
    break;  // EAGAIN (or transient error): wait for the next event
  }
  while (conn.parser.has_request()) {
    const HttpRequest request = conn.parser.take_request();
    handle_request(slot, request);
    if (!conns_[slot].in_use) return;  // handler closed the connection
    if (conns_[slot].sse) break;  // stream takes over; ignore pipelined rest
  }
  flush(slot);
}

void Server::conn_writable(std::size_t slot) { flush(slot); }

void Server::handle_request(std::size_t slot, const HttpRequest& request) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  recorder_.note('<', static_cast<int>(slot),
                 request.method + " " + request.target);

  if (request.path == "/api/events") {
    if (request.method != "GET") {
      queue_response(slot, 405, "application/json",
                     "{\"error\":\"Method Not Allowed\"}\n",
                     request.keep_alive);
      return;
    }
    begin_sse(slot, request);
    return;
  }

  std::string body;
  std::string content_type = "application/json";
  int status = 200;
  if (request.path == "/" || request.path == "/index.html") {
    if (request.method != "GET") {
      status = 405;
      body = "{\"error\":\"Method Not Allowed\"}\n";
    } else {
      content_type = "text/html; charset=utf-8";
      body = std::string(dashboard_html());
    }
  } else if (request.path == "/api/status") {
    if (request.method != "GET") {
      status = 405;
      body = "{\"error\":\"Method Not Allowed\"}\n";
    } else {
      body = status_json() + "\n";
    }
  } else if (request.path == "/api/metrics") {
    if (request.method != "GET") {
      status = 405;
      body = "{\"error\":\"Method Not Allowed\"}\n";
    } else {
      body = feed_.metrics().dump() + "\n";
    }
  } else if (request.path == "/api/points") {
    if (request.method != "GET") {
      status = 405;
      body = "{\"error\":\"Method Not Allowed\"}\n";
    } else {
      body = points_json(request) + "\n";
    }
  } else if (request.path == "/api/campaigns") {
    if (request.method != "POST") {
      status = 405;
      body = "{\"error\":\"Method Not Allowed\"}\n";
    } else {
      std::string reason;
      if (options_.manifest_validator) {
        reason = options_.manifest_validator(request.body);
      } else {
        try {
          (void)io::Json::parse(request.body);
        } catch (const std::exception& e) {
          reason = e.what();
        }
      }
      if (!reason.empty()) {
        status = 400;
        io::JsonObject err;
        err["error"] = reason;
        body = io::Json(std::move(err)).dump() + "\n";
      } else {
        const std::uint64_t id = feed_.submit(request.body);
        status = 202;
        io::JsonObject ok;
        ok["id"] = id;
        body = io::Json(std::move(ok)).dump() + "\n";
      }
    }
  } else {
    status = 404;
    body = "{\"error\":\"Not Found\"}\n";
  }
  queue_response(slot, status, content_type, body, request.keep_alive);
}

void Server::queue_response(std::size_t slot, int status,
                            std::string_view content_type,
                            std::string_view body, bool keep_alive) {
  Conn& conn = conns_[slot];
  recorder_.note('>', static_cast<int>(slot),
                 std::to_string(status) + " " + std::to_string(body.size()) +
                     "B");
  conn.out += http_response(status, content_type, body, keep_alive);
  if (!keep_alive) conn.close_after_write = true;
}

void Server::begin_sse(std::size_t slot, const HttpRequest& request) {
  Conn& conn = conns_[slot];
  conn.sse = true;
  conn.out += sse_preamble();
  recorder_.note('>', static_cast<int>(slot), "200 event-stream");
  // Replay position: Last-Event-ID (an EventSource reconnect) wins over
  // ?since=N; the default 0 replays the whole ring, which is how a late
  // consumer catches up on a short campaign.
  std::size_t after = 0;
  if (const auto it = request.headers.find("last-event-id");
      it != request.headers.end()) {
    (void)parse_size(it->second, after);
  } else {
    (void)parse_size(query_param(request, "since", "0"), after);
  }
  conn.sse_seq = after;
  conn.last_sse_write_s = now_s();
}

void Server::pump_sse(double now) {
  for (std::size_t slot = 0; slot < conns_.size(); ++slot) {
    Conn& conn = conns_[slot];
    if (!conn.in_use || !conn.sse) continue;
    bool wrote = false;
    // Cap per tick so one firehose stream cannot starve the loop; the
    // remainder arrives next tick in order.
    for (const auto& event : feed_.events_since(conn.sse_seq, 512)) {
      conn.out += sse_event(event.seq, event.type, event.data);
      conn.sse_seq = event.seq;
      wrote = true;
    }
    if (wrote) {
      conn.last_sse_write_s = now;
    } else if (now - conn.last_sse_write_s >= options_.keepalive_s) {
      conn.out += sse_comment("keep-alive");
      conn.last_sse_write_s = now;
    }
    if (!conn.out.empty()) flush(slot);
  }
}

void Server::flush(std::size_t slot) {
  Conn& conn = conns_[slot];
  while (!conn.out.empty()) {
    const ssize_t n = ::write(conn.fd, conn.out.data(), conn.out.size());
    if (n > 0) {
      conn.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;  // socket full; EPOLLOUT will resume
    }
    close_conn(slot);  // hard write error
    return;
  }
  if (conn.out.empty() && conn.close_after_write) {
    close_conn(slot);
    return;
  }
  update_epoll(slot);
}

void Server::update_epoll(std::size_t slot) {
  Conn& conn = conns_[slot];
  const bool want_write = !conn.out.empty();
  if (want_write == conn.want_write) return;
  conn.want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = slot;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Server::close_conn(std::size_t slot) {
  Conn& conn = conns_[slot];
  if (!conn.in_use) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  conn.fd = -1;
  conn.in_use = false;
  conn.parser.reset();
  conn.out.clear();
  conn.out.shrink_to_fit();
  conn.sse = false;
  free_slots_.push_back(slot);
}

void Server::close_all() {
  for (std::size_t slot = 0; slot < conns_.size(); ++slot) {
    if (conns_[slot].in_use) close_conn(slot);
  }
}

std::string Server::status_json() const {
  const CampaignFeed::Status status = feed_.status();
  const auto now = FeedClock::now();
  io::JsonObject out;
  out["state"] = state_name(status.state);
  out["campaign"] = status.campaign;
  out["campaign_id"] = status.campaign_id;
  out["total_points"] = status.total_points;
  out["done_points"] = status.done_points;
  out["computed"] = status.computed;
  out["resumed"] = status.resumed;
  out["replications"] = status.replications;
  out["elapsed_s"] = status.elapsed_s;
  out["last_seq"] = status.last_seq;
  out["points_logged"] = status.points_logged;
  out["queued_campaigns"] = status.queued_campaigns;
  io::JsonArray workers;
  for (const auto& w : status.workers) {
    io::JsonObject row;
    row["id"] = w.id;
    row["has_lease"] = w.has_lease;
    row["lease_points_left"] = w.lease_points_left;
    row["points_done"] = w.points_done;
    row["hb_age_s"] =
        std::chrono::duration<double>(now - w.last_line).count();
    workers.push_back(io::Json(std::move(row)));
  }
  out["workers"] = std::move(workers);
  return io::Json(std::move(out)).dump();
}

std::string Server::points_json(const HttpRequest& request) const {
  std::size_t since = 0;
  (void)parse_size(query_param(request, "since", "0"), since);
  const std::vector<std::string> rows = feed_.points_since(since);
  const CampaignFeed::Status status = feed_.status();
  // Rows are already compact JSON objects; splice them in verbatim rather
  // than re-parsing through io::Json.
  std::string out = "{\"since\":" + std::to_string(since) +
                    ",\"count\":" + std::to_string(rows.size()) +
                    ",\"next\":" + std::to_string(since + rows.size()) +
                    ",\"total\":" + std::to_string(status.points_logged) +
                    ",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out += ',';
    out += rows[i];
  }
  out += "]}";
  return out;
}

}  // namespace pas::serve

// Minimal HTTP/1.1 request parsing and response/SSE formatting for the
// embedded campaign server (src/serve/server.hpp).
//
// RequestParser is incremental: the server feeds it whatever recv()
// returned — half a request line, three pipelined requests, or a body
// split across ten segments — and drains completed requests as they
// become available. Parsing is defensive the same way the orchestrator's
// protocol parser is: a malformed request line, an oversized header
// block, or an over-limit body flips the parser into a sticky error
// state with the HTTP status the connection should die with (400/431/
// 413/501), and nothing after the poisoned bytes is ever interpreted.
//
// Scope is deliberately the slice the dashboard needs: GET/POST,
// Content-Length bodies (no chunked uploads), no multipart, no
// compression. The response side is plain helpers returning wire-ready
// strings; Server-Sent Events frames (`id:`/`event:`/`data:`) are
// formatted here too so the framing is unit-testable without a socket.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

namespace pas::serve {

struct HttpRequest {
  std::string method;  // uppercase as sent: "GET", "POST", ...
  std::string target;  // raw request target, e.g. "/api/points?since=4"
  std::string path;    // target before '?'
  std::string query;   // target after '?' (no '?'), may be empty
  /// Header field names lower-cased; values stripped of surrounding
  /// whitespace. Duplicate fields keep the last value (none of the
  /// headers this server reads are list-valued).
  std::map<std::string, std::string> headers;
  std::string body;
  /// HTTP/1.1 defaults to keep-alive; "Connection: close" (or HTTP/1.0
  /// without "keep-alive") turns it off.
  bool keep_alive = true;
};

/// One query parameter ("since=12&x=y" style); `fallback` when absent or
/// valueless. No %-decoding — the API's parameters are numeric.
[[nodiscard]] std::string query_param(const HttpRequest& request,
                                      std::string_view key,
                                      std::string fallback = "");

class RequestParser {
 public:
  struct Limits {
    /// Request line + headers, including the blank line.
    std::size_t max_head_bytes = 8192;
    /// Content-Length cap (manifest submissions are small JSON files).
    std::size_t max_body_bytes = 1 << 20;
  };

  RequestParser() : RequestParser(Limits()) {}
  explicit RequestParser(Limits limits) : limits_(limits) {}

  /// Appends bytes from the connection and parses as far as possible.
  /// Returns false once the parser is in the error state (the caller
  /// should answer `error_status()` and close).
  bool consume(std::string_view bytes);

  [[nodiscard]] bool has_request() const noexcept {
    return !complete_.empty();
  }
  /// Pops the oldest completed request (FIFO across pipelined requests).
  [[nodiscard]] HttpRequest take_request();

  [[nodiscard]] bool failed() const noexcept { return error_status_ != 0; }
  /// 400 bad request / 431 headers too large / 413 body too large /
  /// 501 unsupported (chunked bodies); 0 while healthy.
  [[nodiscard]] int error_status() const noexcept { return error_status_; }

  /// Forgets buffered bytes, queued requests, and any error — the server
  /// reuses parser objects across connections, slot-map style.
  void reset();

 private:
  bool parse_available();
  bool parse_head(std::string_view head);
  void fail(int status) { error_status_ = status; }

  Limits limits_;
  std::string buffer_;
  std::deque<HttpRequest> complete_;
  /// Request whose head parsed but whose body is still arriving.
  HttpRequest pending_{};
  std::size_t pending_body_ = 0;
  bool in_body_ = false;
  int error_status_ = 0;
};

[[nodiscard]] const char* status_text(int status) noexcept;

/// A complete response with Content-Length and Connection headers.
[[nodiscard]] std::string http_response(int status,
                                        std::string_view content_type,
                                        std::string_view body,
                                        bool keep_alive);

/// Response head opening a Server-Sent Events stream (no Content-Length;
/// the connection stays open and frames follow).
[[nodiscard]] std::string sse_preamble();

/// One SSE frame: "id: <id>\nevent: <type>\ndata: <data>\n\n". `data`
/// must be newline-free (the server sends compact single-line JSON).
[[nodiscard]] std::string sse_event(std::uint64_t id, std::string_view type,
                                    std::string_view data);

/// SSE comment frame used as a keep-alive tick.
[[nodiscard]] std::string sse_comment(std::string_view text);

}  // namespace pas::serve

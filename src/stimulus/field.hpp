// Stimulus model interface.
//
// A stimulus model answers, for any position and simulation time, whether
// the diffusion stimulus (DS) has reached that position, and provides the
// ground-truth *arrival time* used both to schedule detection events and to
// score detection delay. The paper's §3.3 assumption — the front spreads
// along the outward normal of its boundary — holds for every model here.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "geom/vec2.hpp"
#include "sim/time.hpp"

namespace pas::stimulus {

class StimulusModel {
 public:
  virtual ~StimulusModel() = default;

  /// True when the stimulus covers position `p` at time `t`.
  [[nodiscard]] virtual bool covered(geom::Vec2 p, sim::Time t) const = 0;

  /// Scalar intensity at (p, t) in model units. Default: 1 inside, 0 outside.
  [[nodiscard]] virtual double concentration(geom::Vec2 p, sim::Time t) const;

  /// Location the stimulus emanates from.
  [[nodiscard]] virtual geom::Vec2 source() const noexcept = 0;

  /// First time within [0, horizon] at which `p` becomes covered, or
  /// sim::kNever if the stimulus never reaches `p` by `horizon`.
  [[nodiscard]] virtual sim::Time arrival_time(geom::Vec2 p,
                                               sim::Time horizon) const;

  /// True front velocity (direction + magnitude, m/s) at position `p` and
  /// time `t`, when the model can provide it analytically; estimators are
  /// validated against this in tests. std::nullopt when unavailable.
  [[nodiscard]] virtual std::optional<geom::Vec2> front_velocity(
      geom::Vec2 p, sim::Time t) const;

  // Batch sampling ---------------------------------------------------------
  //
  // One virtual dispatch for a whole position set (every node of a world at
  // one tick, or a render grid row). The defaults loop over the scalar
  // calls; grid-backed and closed-form models override with tight loops the
  // compiler can vectorize. `out.size()` must equal `ps.size()`; results
  // are bit-identical to the scalar calls.

  /// out[i] = concentration(ps[i], t).
  virtual void sample_many(std::span<const geom::Vec2> ps, sim::Time t,
                           std::span<double> out) const;

  /// out[i] = covered(ps[i], t) as 0/1.
  virtual void covered_many(std::span<const geom::Vec2> ps, sim::Time t,
                            std::span<std::uint8_t> out) const;

  /// out[i] = arrival_time(ps[i], horizon).
  virtual void arrival_many(std::span<const geom::Vec2> ps, sim::Time horizon,
                            std::span<sim::Time> out) const;

  /// Short identifier for reports ("radial", "pde", "plume").
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

 protected:
  /// Generic earliest-crossing search: scans [0, horizon] in `coarse_step`
  /// increments for the first covered sample, then bisects the bracketing
  /// interval down to `tol`. Exact only for coverage that, once gained, is
  /// not lost within a coarse step — true for all models in this library.
  [[nodiscard]] sim::Time first_crossing(geom::Vec2 p, sim::Time horizon,
                                         sim::Duration coarse_step,
                                         sim::Duration tol = 1e-4) const;
};

}  // namespace pas::stimulus

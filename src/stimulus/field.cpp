#include "stimulus/field.hpp"

#include <algorithm>
#include <cassert>

namespace pas::stimulus {

double StimulusModel::concentration(geom::Vec2 p, sim::Time t) const {
  return covered(p, t) ? 1.0 : 0.0;
}

std::optional<geom::Vec2> StimulusModel::front_velocity(geom::Vec2,
                                                        sim::Time) const {
  return std::nullopt;
}

sim::Time StimulusModel::arrival_time(geom::Vec2 p, sim::Time horizon) const {
  // Default: numeric first-crossing; models with closed forms override.
  return first_crossing(p, horizon, horizon / 512.0);
}

void StimulusModel::sample_many(std::span<const geom::Vec2> ps, sim::Time t,
                                std::span<double> out) const {
  assert(ps.size() == out.size());
  for (std::size_t i = 0; i < ps.size(); ++i) out[i] = concentration(ps[i], t);
}

void StimulusModel::covered_many(std::span<const geom::Vec2> ps, sim::Time t,
                                 std::span<std::uint8_t> out) const {
  assert(ps.size() == out.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    out[i] = covered(ps[i], t) ? 1 : 0;
  }
}

void StimulusModel::arrival_many(std::span<const geom::Vec2> ps,
                                 sim::Time horizon,
                                 std::span<sim::Time> out) const {
  assert(ps.size() == out.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    out[i] = arrival_time(ps[i], horizon);
  }
}

sim::Time StimulusModel::first_crossing(geom::Vec2 p, sim::Time horizon,
                                        sim::Duration coarse_step,
                                        sim::Duration tol) const {
  if (horizon <= 0.0) return sim::kNever;
  if (coarse_step <= 0.0) coarse_step = horizon / 512.0;

  if (covered(p, 0.0)) return 0.0;
  sim::Time lo = 0.0;
  sim::Time hi = sim::kNever;
  for (sim::Time t = coarse_step; t <= horizon + 0.5 * coarse_step;
       t += coarse_step) {
    const sim::Time probe = std::min(t, horizon);
    if (covered(p, probe)) {
      hi = probe;
      break;
    }
    lo = probe;
  }
  if (hi == sim::kNever) return sim::kNever;

  while (hi - lo > tol) {
    const sim::Time mid = 0.5 * (lo + hi);
    if (covered(p, mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace pas::stimulus

#include "stimulus/advection_diffusion.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pas::stimulus {

namespace {
constexpr float kNeverF = std::numeric_limits<float>::infinity();
}

AdvectionDiffusionModel::AdvectionDiffusionModel(
    AdvectionDiffusionConfig config)
    : cfg_(std::move(config)) {
  if (cfg_.nx < 4 || cfg_.ny < 4) {
    throw std::invalid_argument("AdvectionDiffusionModel: grid too small");
  }
  if (cfg_.diffusivity <= 0.0) {
    throw std::invalid_argument("AdvectionDiffusionModel: diffusivity must be > 0");
  }
  if (cfg_.threshold <= 0.0) {
    throw std::invalid_argument("AdvectionDiffusionModel: threshold must be > 0");
  }
  if (cfg_.horizon <= cfg_.start_time) {
    throw std::invalid_argument("AdvectionDiffusionModel: horizon before start");
  }
  if (!cfg_.region.contains(cfg_.source)) {
    throw std::invalid_argument("AdvectionDiffusionModel: source outside region");
  }
  dx_ = cfg_.region.width() / cfg_.nx;
  dy_ = cfg_.region.height() / cfg_.ny;

  // Explicit-scheme stability: diffusion needs dt ≤ dx²/(4D); upwind
  // advection needs the CFL dt ≤ dx/|u|. Take 40% of the binding limit.
  const double diff_limit =
      std::min(dx_ * dx_, dy_ * dy_) / (4.0 * cfg_.diffusivity);
  const double speed = cfg_.wind.norm();
  const double adv_limit =
      speed > 0.0 ? std::min(dx_, dy_) / speed : std::numeric_limits<double>::infinity();
  dt_ = 0.4 * std::min(diff_limit, adv_limit);

  integrate();
}

int AdvectionDiffusionModel::cell_x(double x) const noexcept {
  const int c = static_cast<int>(std::floor((x - cfg_.region.lo.x) / dx_));
  return std::clamp(c, 0, cfg_.nx - 1);
}

int AdvectionDiffusionModel::cell_y(double y) const noexcept {
  const int c = static_cast<int>(std::floor((y - cfg_.region.lo.y) / dy_));
  return std::clamp(c, 0, cfg_.ny - 1);
}

void AdvectionDiffusionModel::step(std::vector<double>& next,
                                   const std::vector<double>& cur,
                                   sim::Time t) {
  const double D = cfg_.diffusivity;
  const double ux = cfg_.wind.x, uy = cfg_.wind.y;
  const double inv_dx2 = 1.0 / (dx_ * dx_), inv_dy2 = 1.0 / (dy_ * dy_);

  for (int iy = 0; iy < cfg_.ny; ++iy) {
    for (int ix = 0; ix < cfg_.nx; ++ix) {
      const std::size_t c = idx(ix, iy);
      // Zero-flux (Neumann) boundaries: mirror the edge cell.
      const double cc = cur[c];
      const double cl = ix > 0 ? cur[idx(ix - 1, iy)] : cc;
      const double cr = ix < cfg_.nx - 1 ? cur[idx(ix + 1, iy)] : cc;
      const double cd = iy > 0 ? cur[idx(ix, iy - 1)] : cc;
      const double cu = iy < cfg_.ny - 1 ? cur[idx(ix, iy + 1)] : cc;

      const double lap = (cl - 2.0 * cc + cr) * inv_dx2 +
                         (cd - 2.0 * cc + cu) * inv_dy2;
      // First-order upwind advection.
      const double dcdx = ux >= 0.0 ? (cc - cl) / dx_ : (cr - cc) / dx_;
      const double dcdy = uy >= 0.0 ? (cc - cd) / dy_ : (cu - cc) / dy_;

      next[c] = cc + dt_ * (D * lap - ux * dcdx - uy * dcdy);
    }
  }

  // Source injection: rate is in units·m²/s, spread over one cell's area.
  const sim::Time since_start = t - cfg_.start_time;
  if (since_start >= 0.0 && since_start < cfg_.source_duration) {
    const std::size_t sc = idx(cell_x(cfg_.source.x), cell_y(cfg_.source.y));
    next[sc] += cfg_.source_rate * dt_ / (dx_ * dy_);
  }
}

void AdvectionDiffusionModel::integrate() {
  const std::size_t n =
      static_cast<std::size_t>(cfg_.nx) * static_cast<std::size_t>(cfg_.ny);
  field_.assign(n, 0.0);
  first_cross_.assign(n, kNeverF);
  std::vector<double> next(n, 0.0);

  const auto total_steps = static_cast<std::size_t>(
      std::ceil((cfg_.horizon - cfg_.start_time) / dt_));
  sim::Time next_snapshot = cfg_.start_time;

  sim::Time t = cfg_.start_time;
  for (std::size_t s = 0; s <= total_steps; ++s) {
    if (t >= next_snapshot) {
      snapshots_.emplace_back(field_.begin(), field_.end());
      next_snapshot += cfg_.snapshot_interval;
    }
    step(next, field_, t);
    std::swap(next, field_);
    t += dt_;
    for (std::size_t c = 0; c < n; ++c) {
      if (first_cross_[c] == kNeverF && field_[c] >= cfg_.threshold) {
        first_cross_[c] = static_cast<float>(t);
      }
    }
  }
  snapshots_.emplace_back(field_.begin(), field_.end());

  mass_at_horizon_ = 0.0;
  for (const double c : field_) mass_at_horizon_ += c;
  mass_at_horizon_ *= dx_ * dy_;
}

sim::Time AdvectionDiffusionModel::cell_arrival(geom::Vec2 p) const noexcept {
  if (!cfg_.region.contains(p)) return sim::kNever;
  const float v = first_cross_[idx(cell_x(p.x), cell_y(p.y))];
  return v == kNeverF ? sim::kNever : static_cast<sim::Time>(v);
}

bool AdvectionDiffusionModel::covered(geom::Vec2 p, sim::Time t) const {
  return cell_arrival(p) <= t;
}

double AdvectionDiffusionModel::concentration(geom::Vec2 p,
                                              sim::Time t) const {
  if (!cfg_.region.contains(p) || snapshots_.empty()) return 0.0;
  const double rel = (t - cfg_.start_time) / cfg_.snapshot_interval;
  const auto frame = static_cast<std::size_t>(
      std::clamp(rel, 0.0, static_cast<double>(snapshots_.size() - 1)));
  return static_cast<double>(
      snapshots_[frame][idx(cell_x(p.x), cell_y(p.y))]);
}

sim::Time AdvectionDiffusionModel::arrival_time(geom::Vec2 p,
                                                sim::Time horizon) const {
  const sim::Time t = cell_arrival(p);
  return t <= horizon ? t : sim::kNever;
}

void AdvectionDiffusionModel::arrival_many(std::span<const geom::Vec2> ps,
                                           sim::Time horizon,
                                           std::span<sim::Time> out) const {
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const sim::Time t = cell_arrival(ps[i]);
    out[i] = t <= horizon ? t : sim::kNever;
  }
}

void AdvectionDiffusionModel::sample_many(std::span<const geom::Vec2> ps,
                                          sim::Time t,
                                          std::span<double> out) const {
  if (snapshots_.empty()) {
    for (std::size_t i = 0; i < ps.size(); ++i) out[i] = 0.0;
    return;
  }
  // Resolve the snapshot frame once for the whole batch.
  const double rel = (t - cfg_.start_time) / cfg_.snapshot_interval;
  const auto frame = static_cast<std::size_t>(
      std::clamp(rel, 0.0, static_cast<double>(snapshots_.size() - 1)));
  const std::vector<float>& snap = snapshots_[frame];
  for (std::size_t i = 0; i < ps.size(); ++i) {
    out[i] = cfg_.region.contains(ps[i])
                 ? static_cast<double>(
                       snap[idx(cell_x(ps[i].x), cell_y(ps[i].y))])
                 : 0.0;
  }
}

void AdvectionDiffusionModel::covered_many(std::span<const geom::Vec2> ps,
                                           sim::Time t,
                                           std::span<std::uint8_t> out) const {
  for (std::size_t i = 0; i < ps.size(); ++i) {
    out[i] = cell_arrival(ps[i]) <= t ? 1 : 0;
  }
}

std::optional<geom::Vec2> AdvectionDiffusionModel::front_velocity(
    geom::Vec2 p, sim::Time /*t*/) const {
  if (!cfg_.region.contains(p)) return std::nullopt;
  const int ix = cell_x(p.x), iy = cell_y(p.y);
  if (ix < 1 || ix >= cfg_.nx - 1 || iy < 1 || iy >= cfg_.ny - 1) {
    return std::nullopt;
  }
  const float txm = first_cross_[idx(ix - 1, iy)];
  const float txp = first_cross_[idx(ix + 1, iy)];
  const float tym = first_cross_[idx(ix, iy - 1)];
  const float typ = first_cross_[idx(ix, iy + 1)];
  if (txm == kNeverF || txp == kNeverF || tym == kNeverF || typ == kNeverF) {
    return std::nullopt;
  }
  // Eikonal: |∇T| = 1/speed; front moves along +∇T (later arrivals outward).
  const geom::Vec2 grad{
      (static_cast<double>(txp) - static_cast<double>(txm)) / (2.0 * dx_),
      (static_cast<double>(typ) - static_cast<double>(tym)) / (2.0 * dy_)};
  const double g = grad.norm();
  if (g <= 1e-12) return std::nullopt;
  return grad / (g * g);
}

double AdvectionDiffusionModel::total_mass_at_horizon() const noexcept {
  return mass_at_horizon_;
}

}  // namespace pas::stimulus

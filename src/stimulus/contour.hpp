// Iso-contour extraction (marching squares).
//
// Renders stimulus boundaries for the example applications and lets tests
// check geometric invariants (front area grows, boundary stays near the
// analytic radius). Works on any scalar function sampled over a region.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec2.hpp"
#include "sim/time.hpp"
#include "stimulus/field.hpp"

namespace pas::stimulus {

using Segment = std::pair<geom::Vec2, geom::Vec2>;

/// Extracts line segments of the iso-line f(p) = iso over `region` sampled
/// on an (nx+1)×(ny+1) lattice. Standard marching-squares with linear
/// interpolation along cell edges; the ambiguous saddle cases (5, 10) are
/// resolved by the cell-center sample.
[[nodiscard]] std::vector<Segment> extract_iso_segments(
    const std::function<double(geom::Vec2)>& f, geom::Aabb region, int nx,
    int ny, double iso);

/// Same, sampling `model.concentration(·, t)` — the lattice is evaluated
/// with one batched StimulusModel::sample_many call, so grid-backed and
/// closed-form models run a tight loop instead of a virtual call per cell.
/// Results are identical to the callback overload.
[[nodiscard]] std::vector<Segment> extract_iso_segments(
    const StimulusModel& model, sim::Time t, geom::Aabb region, int nx,
    int ny, double iso);

/// Total length of a segment soup (cheap proxy for boundary perimeter).
[[nodiscard]] double total_length(const std::vector<Segment>& segments);

/// ASCII rendering of a scalar field: rows top-to-bottom, one char per cell
/// from ' ' (below lo) through the ramp " .:-=+*#%@" to '@' (above hi).
/// Used by the examples to draw the plume in a terminal.
[[nodiscard]] std::string render_ascii(
    const std::function<double(geom::Vec2)>& f, geom::Aabb region, int cols,
    int rows, double lo, double hi);

/// Same, sampling `model.concentration(·, t)` through one batched
/// sample_many call over the whole grid.
[[nodiscard]] std::string render_ascii(const StimulusModel& model, sim::Time t,
                                       geom::Aabb region, int cols, int rows,
                                       double lo, double hi);

}  // namespace pas::stimulus

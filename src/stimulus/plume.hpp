// Gaussian puff plume stimulus.
//
// Closed-form solution of 2-D diffusion of an instantaneous release of mass
// Q, optionally advected by a constant wind w:
//   c(p, t) = Q / (4πDτ) · exp(−|p − src − w·τ|² / (4Dτ)),  τ = t − t₀.
// The covered region (c ≥ threshold) grows while the puff is concentrated
// and eventually *recedes* as it dilutes — which exercises the paper's
// covered → (detection timeout) → safe transition that the monotone models
// never trigger.
#pragma once

#include "geom/vec2.hpp"
#include "stimulus/field.hpp"

namespace pas::stimulus {

struct GaussianPlumeConfig {
  geom::Vec2 source{0.0, 0.0};
  /// Released mass Q (concentration-units·m²).
  double mass = 400.0;
  /// Diffusivity D, m²/s.
  double diffusivity = 1.0;
  /// Advection velocity, m/s.
  geom::Vec2 wind{0.0, 0.0};
  /// Coverage threshold on c.
  double threshold = 0.05;
  sim::Time start_time = 0.0;

  // Equality keys world::Workspace's stimulus-model cache.
  constexpr bool operator==(const GaussianPlumeConfig&) const noexcept = default;
};

class GaussianPlumeModel final : public StimulusModel {
 public:
  explicit GaussianPlumeModel(GaussianPlumeConfig config);

  [[nodiscard]] bool covered(geom::Vec2 p, sim::Time t) const override;
  [[nodiscard]] double concentration(geom::Vec2 p, sim::Time t) const override;
  [[nodiscard]] geom::Vec2 source() const noexcept override { return cfg_.source; }
  [[nodiscard]] sim::Time arrival_time(geom::Vec2 p,
                                       sim::Time horizon) const override;
  /// Closed-form Gaussian evaluated in one vectorizable loop: the advected
  /// center and 1/(4Dτ) terms are hoisted out of the per-point work.
  void sample_many(std::span<const geom::Vec2> ps, sim::Time t,
                   std::span<double> out) const override;
  void covered_many(std::span<const geom::Vec2> ps, sim::Time t,
                    std::span<std::uint8_t> out) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "plume"; }

  /// Time at which the whole covered region has dissolved (c < threshold
  /// everywhere): when 4πDτ ≥ Q/threshold the peak is below threshold.
  [[nodiscard]] sim::Time dissolve_time() const noexcept;

  /// Radius of the covered disk around the (advected) center at time t;
  /// 0 when nothing is covered.
  [[nodiscard]] double covered_radius(sim::Time t) const noexcept;

  [[nodiscard]] const GaussianPlumeConfig& config() const noexcept { return cfg_; }

 private:
  GaussianPlumeConfig cfg_;
};

}  // namespace pas::stimulus

// Composite stimulus: the union of several independent stimuli.
//
// Environment-monitoring deployments routinely face multiple simultaneous
// releases (two leaks, a spill plus a plume). The composite is covered
// wherever any part is covered, concentrations add, and the arrival time is
// the earliest part arrival — all of which preserve the outward-spreading
// assumption PAS relies on, per part.
#pragma once

#include <memory>
#include <vector>

#include "stimulus/field.hpp"

namespace pas::stimulus {

class CompositeModel final : public StimulusModel {
 public:
  /// Takes ownership of the parts; at least one is required.
  explicit CompositeModel(std::vector<std::unique_ptr<StimulusModel>> parts);

  [[nodiscard]] bool covered(geom::Vec2 p, sim::Time t) const override;
  [[nodiscard]] double concentration(geom::Vec2 p, sim::Time t) const override;
  /// Source of the first part (the composite has no single source).
  [[nodiscard]] geom::Vec2 source() const noexcept override;
  [[nodiscard]] sim::Time arrival_time(geom::Vec2 p,
                                       sim::Time horizon) const override;
  /// Front velocity of the part that reaches `p` first (nullopt when no
  /// part ever reaches it or that part cannot provide one).
  [[nodiscard]] std::optional<geom::Vec2> front_velocity(
      geom::Vec2 p, sim::Time t) const override;
  /// Batch forwards: each part evaluates the whole position set in its own
  /// tight loop, then the union/sum folds across parts.
  void sample_many(std::span<const geom::Vec2> ps, sim::Time t,
                   std::span<double> out) const override;
  void covered_many(std::span<const geom::Vec2> ps, sim::Time t,
                    std::span<std::uint8_t> out) const override;
  void arrival_many(std::span<const geom::Vec2> ps, sim::Time horizon,
                    std::span<sim::Time> out) const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "composite";
  }

  [[nodiscard]] std::size_t part_count() const noexcept { return parts_.size(); }
  [[nodiscard]] const StimulusModel& part(std::size_t i) const {
    return *parts_.at(i);
  }

 private:
  std::vector<std::unique_ptr<StimulusModel>> parts_;
};

}  // namespace pas::stimulus

// Advection–diffusion PDE stimulus.
//
// Solves ∂c/∂t = D ∇²c − u·∇c + s(x, t) on a regular grid with an explicit
// scheme (FTCS diffusion + first-order upwind advection, zero-flux
// boundaries) and records, per cell, the first time the concentration
// crosses the coverage threshold. This is the "liquid pollutant" substrate
// the paper's introduction motivates; the radial model is its idealisation.
//
// Coverage is defined as "the threshold has been crossed at or before t",
// i.e. once covered a cell stays covered, matching the paper's continuously
// enlarging stimulus.
#pragma once

#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec2.hpp"
#include "stimulus/field.hpp"

namespace pas::stimulus {

struct AdvectionDiffusionConfig {
  geom::Aabb region = geom::Aabb::square(40.0);
  int nx = 96;
  int ny = 96;
  /// Diffusivity D in m²/s.
  double diffusivity = 1.0;
  /// Advection (wind/current) velocity u in m/s.
  geom::Vec2 wind{0.0, 0.0};
  geom::Vec2 source{2.0, 2.0};
  /// Source emission rate, concentration-units·m²/s injected at the source.
  double source_rate = 60.0;
  /// Emission stops after this long (kNever-like large default).
  sim::Duration source_duration = 1e9;
  /// Coverage threshold on concentration.
  double threshold = 1.0;
  sim::Time start_time = 0.0;
  /// The solver integrates eagerly to this horizon at construction.
  sim::Time horizon = 300.0;
  /// Spacing of stored concentration snapshots for concentration() queries.
  sim::Duration snapshot_interval = 2.0;

  // Equality keys world::Workspace's stimulus-model cache: two equal
  // configs integrate to bit-identical fields, so the solve is shareable.
  bool operator==(const AdvectionDiffusionConfig&) const noexcept = default;
};

class AdvectionDiffusionModel final : public StimulusModel {
 public:
  /// Runs the solver to config.horizon; cost ~ nx·ny·steps (milliseconds to
  /// a few hundred ms for default sizes). Throws on invalid config.
  explicit AdvectionDiffusionModel(AdvectionDiffusionConfig config);

  [[nodiscard]] bool covered(geom::Vec2 p, sim::Time t) const override;
  [[nodiscard]] double concentration(geom::Vec2 p, sim::Time t) const override;
  [[nodiscard]] geom::Vec2 source() const noexcept override { return cfg_.source; }
  [[nodiscard]] sim::Time arrival_time(geom::Vec2 p,
                                       sim::Time horizon) const override;
  /// Batch lookups straight out of the integrated first-crossing / snapshot
  /// grids: one virtual call, then pure array indexing per point.
  void arrival_many(std::span<const geom::Vec2> ps, sim::Time horizon,
                    std::span<sim::Time> out) const override;
  void sample_many(std::span<const geom::Vec2> ps, sim::Time t,
                   std::span<double> out) const override;
  void covered_many(std::span<const geom::Vec2> ps, sim::Time t,
                    std::span<std::uint8_t> out) const override;
  /// Estimated from the first-crossing time field T(x): the front normal is
  /// ∇T/|∇T| and the speed 1/|∇T| (eikonal relation).
  [[nodiscard]] std::optional<geom::Vec2> front_velocity(
      geom::Vec2 p, sim::Time t) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "pde"; }

  [[nodiscard]] const AdvectionDiffusionConfig& config() const noexcept { return cfg_; }

  /// The time step actually used (after the stability clamp).
  [[nodiscard]] double dt() const noexcept { return dt_; }
  /// Total mass currently on the grid (∫c dA) at the horizon — conservation
  /// diagnostics for tests.
  [[nodiscard]] double total_mass_at_horizon() const noexcept;

 private:
  [[nodiscard]] std::size_t idx(int ix, int iy) const noexcept {
    return static_cast<std::size_t>(iy) * static_cast<std::size_t>(cfg_.nx) +
           static_cast<std::size_t>(ix);
  }
  [[nodiscard]] int cell_x(double x) const noexcept;
  [[nodiscard]] int cell_y(double y) const noexcept;
  [[nodiscard]] sim::Time cell_arrival(geom::Vec2 p) const noexcept;

  void integrate();
  void step(std::vector<double>& next, const std::vector<double>& cur,
            sim::Time t);

  AdvectionDiffusionConfig cfg_;
  double dx_ = 1.0;
  double dy_ = 1.0;
  double dt_ = 0.0;
  std::vector<double> field_;                  // scratch: final state
  std::vector<float> first_cross_;             // per-cell crossing time, inf if never
  std::vector<std::vector<float>> snapshots_;  // every snapshot_interval
  double mass_at_horizon_ = 0.0;
};

}  // namespace pas::stimulus

#include "stimulus/plume.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pas::stimulus {

GaussianPlumeModel::GaussianPlumeModel(GaussianPlumeConfig config)
    : cfg_(config) {
  if (cfg_.mass <= 0.0) {
    throw std::invalid_argument("GaussianPlumeModel: mass must be > 0");
  }
  if (cfg_.diffusivity <= 0.0) {
    throw std::invalid_argument("GaussianPlumeModel: diffusivity must be > 0");
  }
  if (cfg_.threshold <= 0.0) {
    throw std::invalid_argument("GaussianPlumeModel: threshold must be > 0");
  }
}

double GaussianPlumeModel::concentration(geom::Vec2 p, sim::Time t) const {
  const double tau = t - cfg_.start_time;
  if (tau <= 0.0) return 0.0;
  const double denom = 4.0 * std::numbers::pi * cfg_.diffusivity * tau;
  const geom::Vec2 center = cfg_.source + cfg_.wind * tau;
  const double r2 = geom::distance2(p, center);
  return cfg_.mass / denom * std::exp(-r2 / (4.0 * cfg_.diffusivity * tau));
}

bool GaussianPlumeModel::covered(geom::Vec2 p, sim::Time t) const {
  return concentration(p, t) >= cfg_.threshold;
}

void GaussianPlumeModel::sample_many(std::span<const geom::Vec2> ps,
                                     sim::Time t,
                                     std::span<double> out) const {
  // The exact arithmetic of concentration() with the loop-invariant pieces
  // (denominator, advected center) hoisted; results stay bit-identical to
  // the scalar call.
  const double tau = t - cfg_.start_time;
  if (tau <= 0.0) {
    for (std::size_t i = 0; i < ps.size(); ++i) out[i] = 0.0;
    return;
  }
  const double denom = 4.0 * std::numbers::pi * cfg_.diffusivity * tau;
  const double four_d_tau = 4.0 * cfg_.diffusivity * tau;
  const geom::Vec2 center = cfg_.source + cfg_.wind * tau;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double r2 = geom::distance2(ps[i], center);
    out[i] = cfg_.mass / denom * std::exp(-r2 / four_d_tau);
  }
}

void GaussianPlumeModel::covered_many(std::span<const geom::Vec2> ps,
                                      sim::Time t,
                                      std::span<std::uint8_t> out) const {
  const double tau = t - cfg_.start_time;
  if (tau <= 0.0) {
    for (std::size_t i = 0; i < ps.size(); ++i) out[i] = 0;
    return;
  }
  const double denom = 4.0 * std::numbers::pi * cfg_.diffusivity * tau;
  const double four_d_tau = 4.0 * cfg_.diffusivity * tau;
  const geom::Vec2 center = cfg_.source + cfg_.wind * tau;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double r2 = geom::distance2(ps[i], center);
    const double c = cfg_.mass / denom * std::exp(-r2 / four_d_tau);
    out[i] = c >= cfg_.threshold ? 1 : 0;
  }
}

sim::Time GaussianPlumeModel::dissolve_time() const noexcept {
  // Peak concentration Q/(4πDτ) falls below threshold at this τ.
  return cfg_.start_time +
         cfg_.mass / (4.0 * std::numbers::pi * cfg_.diffusivity * cfg_.threshold);
}

double GaussianPlumeModel::covered_radius(sim::Time t) const noexcept {
  const double tau = t - cfg_.start_time;
  if (tau <= 0.0) return 0.0;
  const double peak =
      cfg_.mass / (4.0 * std::numbers::pi * cfg_.diffusivity * tau);
  if (peak < cfg_.threshold) return 0.0;
  // c(r) = peak · exp(−r²/(4Dτ)) = threshold  ⇒  r² = 4Dτ ln(peak/threshold).
  return std::sqrt(4.0 * cfg_.diffusivity * tau * std::log(peak / cfg_.threshold));
}

sim::Time GaussianPlumeModel::arrival_time(geom::Vec2 p,
                                           sim::Time horizon) const {
  // Coverage is not monotone (the puff recedes), so use the generic scan
  // with a step fine enough to catch the growth phase.
  const sim::Duration window = dissolve_time() - cfg_.start_time;
  const sim::Duration step = std::max(1e-3, window / 2048.0);
  return first_crossing(p, horizon, step);
}

}  // namespace pas::stimulus

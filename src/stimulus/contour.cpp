#include "stimulus/contour.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

namespace pas::stimulus {

namespace {

// Linear interpolation of the iso crossing between lattice corners a and b.
geom::Vec2 edge_point(geom::Vec2 pa, geom::Vec2 pb, double va, double vb,
                      double iso) {
  const double denom = vb - va;
  double t = denom != 0.0 ? (iso - va) / denom : 0.5;
  if (t < 0.0) t = 0.0;
  if (t > 1.0) t = 1.0;
  return geom::lerp(pa, pb, t);
}

// Positions of the (nx+1)x(ny+1) sampling lattice, row-major.
std::vector<geom::Vec2> lattice_positions(geom::Aabb region, int nx, int ny) {
  const double dx = region.width() / nx;
  const double dy = region.height() / ny;
  std::vector<geom::Vec2> ps;
  ps.reserve(static_cast<std::size_t>(nx + 1) * static_cast<std::size_t>(ny + 1));
  for (int iy = 0; iy <= ny; ++iy) {
    for (int ix = 0; ix <= nx; ++ix) {
      ps.push_back({region.lo.x + ix * dx, region.lo.y + iy * dy});
    }
  }
  return ps;
}

// Marching-squares core over a pre-sampled lattice; `center_sample` supplies
// the cell-center value needed to disambiguate saddle cells.
std::vector<Segment> march_squares(
    const std::vector<double>& samples,
    const std::function<double(geom::Vec2)>& center_sample, geom::Aabb region,
    int nx, int ny, double iso) {
  const double dx = region.width() / nx;
  const double dy = region.height() / ny;
  const auto sample_idx = [nx](int ix, int iy) {
    return static_cast<std::size_t>(iy) * static_cast<std::size_t>(nx + 1) +
           static_cast<std::size_t>(ix);
  };

  std::vector<Segment> out;
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      // Corners: 0 = (ix,iy), 1 = (ix+1,iy), 2 = (ix+1,iy+1), 3 = (ix,iy+1).
      const std::array<geom::Vec2, 4> corner{
          geom::Vec2{region.lo.x + ix * dx, region.lo.y + iy * dy},
          geom::Vec2{region.lo.x + (ix + 1) * dx, region.lo.y + iy * dy},
          geom::Vec2{region.lo.x + (ix + 1) * dx, region.lo.y + (iy + 1) * dy},
          geom::Vec2{region.lo.x + ix * dx, region.lo.y + (iy + 1) * dy}};
      const std::array<double, 4> value{
          samples[sample_idx(ix, iy)], samples[sample_idx(ix + 1, iy)],
          samples[sample_idx(ix + 1, iy + 1)], samples[sample_idx(ix, iy + 1)]};

      int mask = 0;
      for (int k = 0; k < 4; ++k) {
        if (value[static_cast<std::size_t>(k)] >= iso) mask |= 1 << k;
      }
      if (mask == 0 || mask == 15) continue;

      // Edge k connects corner k and corner (k+1)%4.
      const auto ep = [&](int k) {
        const auto a = static_cast<std::size_t>(k);
        const auto b = static_cast<std::size_t>((k + 1) % 4);
        return edge_point(corner[a], corner[b], value[a], value[b], iso);
      };

      switch (mask) {
        case 1: case 14: out.emplace_back(ep(3), ep(0)); break;
        case 2: case 13: out.emplace_back(ep(0), ep(1)); break;
        case 3: case 12: out.emplace_back(ep(3), ep(1)); break;
        case 4: case 11: out.emplace_back(ep(1), ep(2)); break;
        case 6: case 9:  out.emplace_back(ep(0), ep(2)); break;
        case 7: case 8:  out.emplace_back(ep(2), ep(3)); break;
        case 5: case 10: {
          // Saddle: disambiguate with the center sample.
          const geom::Vec2 c = {corner[0].x + 0.5 * dx, corner[0].y + 0.5 * dy};
          const bool center_in = center_sample(c) >= iso;
          const bool connect_03 = (mask == 5) == center_in;
          if (connect_03) {
            out.emplace_back(ep(3), ep(0));
            out.emplace_back(ep(1), ep(2));
          } else {
            out.emplace_back(ep(0), ep(1));
            out.emplace_back(ep(2), ep(3));
          }
          break;
        }
        default: break;
      }
    }
  }
  return out;
}

}  // namespace

std::vector<Segment> extract_iso_segments(
    const std::function<double(geom::Vec2)>& f, geom::Aabb region, int nx,
    int ny, double iso) {
  if (nx < 1 || ny < 1) {
    throw std::invalid_argument("extract_iso_segments: grid must be >= 1x1");
  }
  const auto ps = lattice_positions(region, nx, ny);
  std::vector<double> samples(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) samples[i] = f(ps[i]);
  return march_squares(samples, f, region, nx, ny, iso);
}

std::vector<Segment> extract_iso_segments(const StimulusModel& model,
                                          sim::Time t, geom::Aabb region,
                                          int nx, int ny, double iso) {
  if (nx < 1 || ny < 1) {
    throw std::invalid_argument("extract_iso_segments: grid must be >= 1x1");
  }
  const auto ps = lattice_positions(region, nx, ny);
  std::vector<double> samples(ps.size());
  model.sample_many(ps, t, samples);
  return march_squares(
      samples, [&model, t](geom::Vec2 p) { return model.concentration(p, t); },
      region, nx, ny, iso);
}

double total_length(const std::vector<Segment>& segments) {
  double sum = 0.0;
  for (const auto& [a, b] : segments) sum += geom::distance(a, b);
  return sum;
}

namespace {

/// Cell-center positions in output order: row 0 is the top of the region
/// (max y) so the picture is upright.
std::vector<geom::Vec2> cell_centers(geom::Aabb region, int cols, int rows) {
  std::vector<geom::Vec2> ps;
  ps.reserve(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  for (int r = 0; r < rows; ++r) {
    const double y = region.hi.y - (r + 0.5) * region.height() / rows;
    for (int c = 0; c < cols; ++c) {
      ps.push_back({region.lo.x + (c + 0.5) * region.width() / cols, y});
    }
  }
  return ps;
}

/// Maps row-major cell values onto the ASCII ramp.
std::string shade(const std::vector<double>& values, int cols, int rows,
                  double lo, double hi) {
  static constexpr std::string_view ramp = " .:-=+*#%@";
  std::string out;
  out.reserve(static_cast<std::size_t>(rows) *
              (static_cast<std::size_t>(cols) + 1));
  std::size_t i = 0;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      double t = (values[i++] - lo) / (hi - lo);
      if (t < 0.0) t = 0.0;
      if (t > 1.0) t = 1.0;
      const auto k = static_cast<std::size_t>(
          std::lround(t * static_cast<double>(ramp.size() - 1)));
      out.push_back(ramp[k]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace

std::string render_ascii(const std::function<double(geom::Vec2)>& f,
                         geom::Aabb region, int cols, int rows, double lo,
                         double hi) {
  if (cols < 1 || rows < 1 || hi <= lo) {
    throw std::invalid_argument("render_ascii: bad grid or range");
  }
  const auto ps = cell_centers(region, cols, rows);
  std::vector<double> values(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) values[i] = f(ps[i]);
  return shade(values, cols, rows, lo, hi);
}

std::string render_ascii(const StimulusModel& model, sim::Time t,
                         geom::Aabb region, int cols, int rows, double lo,
                         double hi) {
  if (cols < 1 || rows < 1 || hi <= lo) {
    throw std::invalid_argument("render_ascii: bad grid or range");
  }
  // One batched sample_many call instead of a virtual call per cell.
  const auto ps = cell_centers(region, cols, rows);
  std::vector<double> values(ps.size());
  model.sample_many(ps, t, values);
  return shade(values, cols, rows, lo, hi);
}

}  // namespace pas::stimulus

// Ground-truth arrival schedule for a set of node positions.
//
// The world builder evaluates the stimulus model once per node and caches
// first-arrival times; the simulator schedules per-node arrival events from
// this map and the metrics layer scores detection delay against it.
#pragma once

#include <span>
#include <vector>

#include "geom/vec2.hpp"
#include "sim/time.hpp"
#include "stimulus/field.hpp"

namespace pas::stimulus {

class ArrivalMap {
 public:
  ArrivalMap() = default;
  ArrivalMap(const StimulusModel& model, std::span<const geom::Vec2> positions,
             sim::Time horizon);

  /// Recomputes the map in place (one batched arrival_many call, reusing
  /// the times buffer) — the world::Workspace path between replications.
  void assign(const StimulusModel& model, std::span<const geom::Vec2> positions,
              sim::Time horizon);

  [[nodiscard]] std::size_t size() const noexcept { return times_.size(); }

  /// Arrival time of node `i`; sim::kNever if unreached by the horizon.
  [[nodiscard]] sim::Time at(std::size_t i) const { return times_.at(i); }

  [[nodiscard]] const std::vector<sim::Time>& times() const noexcept {
    return times_;
  }

  /// Number of nodes covered at or before `t`.
  [[nodiscard]] std::size_t covered_count(sim::Time t) const noexcept;

  /// Earliest finite arrival; kNever when no node is ever reached.
  [[nodiscard]] sim::Time first_arrival() const noexcept;

  /// Latest finite arrival; kNever when no node is ever reached.
  [[nodiscard]] sim::Time last_arrival() const noexcept;

  /// Count of nodes that are eventually reached.
  [[nodiscard]] std::size_t reached_count() const noexcept;

 private:
  std::vector<sim::Time> times_;
};

}  // namespace pas::stimulus

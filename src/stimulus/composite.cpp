#include "stimulus/composite.hpp"

#include <stdexcept>

namespace pas::stimulus {

CompositeModel::CompositeModel(
    std::vector<std::unique_ptr<StimulusModel>> parts)
    : parts_(std::move(parts)) {
  if (parts_.empty()) {
    throw std::invalid_argument("CompositeModel: needs at least one part");
  }
  for (const auto& p : parts_) {
    if (!p) throw std::invalid_argument("CompositeModel: null part");
  }
}

bool CompositeModel::covered(geom::Vec2 p, sim::Time t) const {
  for (const auto& part : parts_) {
    if (part->covered(p, t)) return true;
  }
  return false;
}

double CompositeModel::concentration(geom::Vec2 p, sim::Time t) const {
  double sum = 0.0;
  for (const auto& part : parts_) sum += part->concentration(p, t);
  return sum;
}

geom::Vec2 CompositeModel::source() const noexcept {
  return parts_.front()->source();
}

sim::Time CompositeModel::arrival_time(geom::Vec2 p, sim::Time horizon) const {
  sim::Time best = sim::kNever;
  for (const auto& part : parts_) {
    best = std::min(best, part->arrival_time(p, horizon));
  }
  return best;
}

std::optional<geom::Vec2> CompositeModel::front_velocity(geom::Vec2 p,
                                                         sim::Time t) const {
  // Attribute the front to whichever part gets to p first.
  const StimulusModel* first = nullptr;
  sim::Time best = sim::kNever;
  for (const auto& part : parts_) {
    const sim::Time a = part->arrival_time(p, 1e12);
    if (a < best) {
      best = a;
      first = part.get();
    }
  }
  if (first == nullptr) return std::nullopt;
  return first->front_velocity(p, t);
}

}  // namespace pas::stimulus

#include "stimulus/composite.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace pas::stimulus {

CompositeModel::CompositeModel(
    std::vector<std::unique_ptr<StimulusModel>> parts)
    : parts_(std::move(parts)) {
  if (parts_.empty()) {
    throw std::invalid_argument("CompositeModel: needs at least one part");
  }
  for (const auto& p : parts_) {
    if (!p) throw std::invalid_argument("CompositeModel: null part");
  }
}

bool CompositeModel::covered(geom::Vec2 p, sim::Time t) const {
  for (const auto& part : parts_) {
    if (part->covered(p, t)) return true;
  }
  return false;
}

double CompositeModel::concentration(geom::Vec2 p, sim::Time t) const {
  double sum = 0.0;
  for (const auto& part : parts_) sum += part->concentration(p, t);
  return sum;
}

geom::Vec2 CompositeModel::source() const noexcept {
  return parts_.front()->source();
}

sim::Time CompositeModel::arrival_time(geom::Vec2 p, sim::Time horizon) const {
  sim::Time best = sim::kNever;
  for (const auto& part : parts_) {
    best = std::min(best, part->arrival_time(p, horizon));
  }
  return best;
}

void CompositeModel::sample_many(std::span<const geom::Vec2> ps, sim::Time t,
                                 std::span<double> out) const {
  parts_.front()->sample_many(ps, t, out);
  if (parts_.size() == 1) return;
  std::vector<double> scratch(ps.size());
  for (std::size_t k = 1; k < parts_.size(); ++k) {
    parts_[k]->sample_many(ps, t, scratch);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += scratch[i];
  }
}

void CompositeModel::covered_many(std::span<const geom::Vec2> ps, sim::Time t,
                                  std::span<std::uint8_t> out) const {
  parts_.front()->covered_many(ps, t, out);
  if (parts_.size() == 1) return;
  std::vector<std::uint8_t> scratch(ps.size());
  for (std::size_t k = 1; k < parts_.size(); ++k) {
    parts_[k]->covered_many(ps, t, scratch);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = (out[i] != 0 || scratch[i] != 0) ? 1 : 0;
    }
  }
}

void CompositeModel::arrival_many(std::span<const geom::Vec2> ps,
                                  sim::Time horizon,
                                  std::span<sim::Time> out) const {
  parts_.front()->arrival_many(ps, horizon, out);
  if (parts_.size() == 1) return;
  std::vector<sim::Time> scratch(ps.size());
  for (std::size_t k = 1; k < parts_.size(); ++k) {
    parts_[k]->arrival_many(ps, horizon, scratch);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = std::min(out[i], scratch[i]);
    }
  }
}

std::optional<geom::Vec2> CompositeModel::front_velocity(geom::Vec2 p,
                                                         sim::Time t) const {
  // Attribute the front to whichever part gets to p first.
  const StimulusModel* first = nullptr;
  sim::Time best = sim::kNever;
  for (const auto& part : parts_) {
    const sim::Time a = part->arrival_time(p, 1e12);
    if (a < best) {
      best = a;
      first = part.get();
    }
  }
  if (first == nullptr) return std::nullopt;
  return first->front_velocity(p, t);
}

}  // namespace pas::stimulus

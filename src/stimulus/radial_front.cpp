#include "stimulus/radial_front.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pas::stimulus {

RadialFrontModel::RadialFrontModel(RadialFrontConfig config)
    : cfg_(std::move(config)) {
  if (cfg_.base_speed <= 0.0) {
    throw std::invalid_argument("RadialFrontModel: base_speed must be > 0");
  }
  if (cfg_.accel < 0.0) {
    throw std::invalid_argument("RadialFrontModel: accel must be >= 0");
  }
  if (cfg_.max_radius <= 0.0) {
    throw std::invalid_argument("RadialFrontModel: max_radius must be > 0");
  }
  double total = 0.0;
  for (const auto& h : cfg_.harmonics) total += std::abs(h.amplitude);
  if (total >= 0.9) {
    throw std::invalid_argument(
        "RadialFrontModel: harmonic amplitudes sum to >= 0.9; speed profile "
        "could become non-positive");
  }
}

double RadialFrontModel::speed_at(double theta) const noexcept {
  double factor = 1.0;
  for (const auto& h : cfg_.harmonics) {
    factor += h.amplitude * std::cos(h.k * theta + h.phase);
  }
  return cfg_.base_speed * factor;
}

double RadialFrontModel::growth(double tau) const noexcept {
  return tau + 0.5 * cfg_.accel * tau * tau;
}

double RadialFrontModel::inverse_growth(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  if (cfg_.accel == 0.0) return x;
  // τ + a/2 τ² = x  ⇒  τ = (−1 + sqrt(1 + 2 a x)) / a, the positive root.
  return (-1.0 + std::sqrt(1.0 + 2.0 * cfg_.accel * x)) / cfg_.accel;
}

double RadialFrontModel::radius_at(double theta, sim::Time t) const noexcept {
  const double tau = t - cfg_.start_time;
  if (tau <= 0.0) return 0.0;
  return std::min(cfg_.max_radius, speed_at(theta) * growth(tau));
}

bool RadialFrontModel::covered(geom::Vec2 p, sim::Time t) const {
  const geom::Vec2 d = p - cfg_.source;
  const double r = d.norm();
  if (r == 0.0) return t >= cfg_.start_time;
  return r <= radius_at(d.angle(), t);
}

double RadialFrontModel::concentration(geom::Vec2 p, sim::Time t) const {
  // Simple interior profile decaying toward the front: 1 at source, 0 at
  // the boundary; gives examples something smooth to visualise.
  const geom::Vec2 d = p - cfg_.source;
  const double r = d.norm();
  const double radius = r == 0.0
                            ? radius_at(0.0, t)
                            : radius_at(d.angle(), t);
  if (radius <= 0.0 || r > radius) return 0.0;
  return 1.0 - r / radius;
}

sim::Time RadialFrontModel::arrival_time(geom::Vec2 p,
                                         sim::Time horizon) const {
  const geom::Vec2 d = p - cfg_.source;
  const double r = d.norm();
  if (r == 0.0) {
    return cfg_.start_time <= horizon ? cfg_.start_time : sim::kNever;
  }
  if (r > cfg_.max_radius) return sim::kNever;
  const double v = speed_at(d.angle());
  const sim::Time t = cfg_.start_time + inverse_growth(r / v);
  return t <= horizon ? t : sim::kNever;
}

void RadialFrontModel::arrival_many(std::span<const geom::Vec2> ps,
                                    sim::Time horizon,
                                    std::span<sim::Time> out) const {
  // Same closed form as arrival_time, devirtualized into one loop.
  for (std::size_t i = 0; i < ps.size(); ++i) {
    out[i] = arrival_time(ps[i], horizon);
  }
}

std::optional<geom::Vec2> RadialFrontModel::front_velocity(geom::Vec2 p,
                                                           sim::Time t) const {
  const geom::Vec2 d = p - cfg_.source;
  const double r = d.norm();
  if (r == 0.0) return std::nullopt;
  const double tau = t - cfg_.start_time;
  if (tau < 0.0) return std::nullopt;
  // dR/dt along direction θ: v(θ) · g'(τ), pointing radially outward.
  const double speed = speed_at(d.angle()) * (1.0 + cfg_.accel * tau);
  return d.normalized() * speed;
}

geom::Polyline RadialFrontModel::boundary(sim::Time t, int samples) const {
  geom::Polyline line;
  line.closed = true;
  if (samples < 3 || t <= cfg_.start_time) return line;
  line.points.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const double theta =
        2.0 * std::numbers::pi * static_cast<double>(i) / samples;
    line.points.push_back(
        cfg_.source + geom::Vec2::from_polar(radius_at(theta, t), theta));
  }
  return line;
}

}  // namespace pas::stimulus

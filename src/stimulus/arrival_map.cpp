#include "stimulus/arrival_map.hpp"

#include <algorithm>

namespace pas::stimulus {

ArrivalMap::ArrivalMap(const StimulusModel& model,
                       std::span<const geom::Vec2> positions,
                       sim::Time horizon) {
  assign(model, positions, horizon);
}

void ArrivalMap::assign(const StimulusModel& model,
                        std::span<const geom::Vec2> positions,
                        sim::Time horizon) {
  times_.resize(positions.size());
  model.arrival_many(positions, horizon, times_);
}

std::size_t ArrivalMap::covered_count(sim::Time t) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(times_.begin(), times_.end(),
                    [t](sim::Time a) { return a <= t; }));
}

sim::Time ArrivalMap::first_arrival() const noexcept {
  sim::Time best = sim::kNever;
  for (const sim::Time t : times_) best = std::min(best, t);
  return best;
}

sim::Time ArrivalMap::last_arrival() const noexcept {
  sim::Time best = sim::kNever;
  for (const sim::Time t : times_) {
    if (t < sim::kNever) {
      best = best == sim::kNever ? t : std::max(best, t);
    }
  }
  return best;
}

std::size_t ArrivalMap::reached_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(times_.begin(), times_.end(),
                    [](sim::Time a) { return a < sim::kNever; }));
}

}  // namespace pas::stimulus

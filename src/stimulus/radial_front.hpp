// Anisotropic radial-front stimulus.
//
// The boundary is a star-shaped curve around the source: R(θ, t) =
// v(θ) · g(t − t₀), where v(θ) is a strictly positive angular speed profile
// built from cosine harmonics (the "irregular alert area" of the paper's
// Fig 2) and g(τ) = τ + ½·accel·τ² allows a uniformly accelerating or
// constant-speed front. Arrival times invert g in closed form, which makes
// this the reference model for unit-testing estimators.
#pragma once

#include <vector>

#include "geom/polyline.hpp"
#include "geom/vec2.hpp"
#include "stimulus/field.hpp"

namespace pas::stimulus {

struct RadialFrontConfig {
  geom::Vec2 source{0.0, 0.0};
  /// Mean outward speed in m/s.
  double base_speed = 0.5;
  /// Fractional acceleration a in g(τ) = τ + 0.5·a·τ² (0 = constant speed).
  double accel = 0.0;
  /// Release time of the stimulus.
  sim::Time start_time = 0.0;
  /// Growth stops at this radius (e.g. the monitored region's extent).
  double max_radius = 1e9;

  /// v(θ) = base_speed · (1 + Σ amplitude·cos(k·θ + phase)). The config is
  /// rejected unless Σ|amplitude| < 0.9 so the speed stays positive.
  struct Harmonic {
    int k = 1;
    double amplitude = 0.0;
    double phase = 0.0;

    constexpr bool operator==(const Harmonic&) const noexcept = default;
  };
  std::vector<Harmonic> harmonics;

  // Equality keys world::Workspace's stimulus-model cache.
  bool operator==(const RadialFrontConfig&) const noexcept = default;
};

class RadialFrontModel final : public StimulusModel {
 public:
  /// Throws std::invalid_argument on non-positive speed or |harmonics| ≥ 0.9.
  explicit RadialFrontModel(RadialFrontConfig config);

  [[nodiscard]] bool covered(geom::Vec2 p, sim::Time t) const override;
  [[nodiscard]] double concentration(geom::Vec2 p, sim::Time t) const override;
  [[nodiscard]] geom::Vec2 source() const noexcept override { return cfg_.source; }
  [[nodiscard]] sim::Time arrival_time(geom::Vec2 p,
                                       sim::Time horizon) const override;
  /// Closed-form arrival per point in one tight loop (no per-point virtual
  /// dispatch; the world builder feeds every node position through here).
  void arrival_many(std::span<const geom::Vec2> ps, sim::Time horizon,
                    std::span<sim::Time> out) const override;
  [[nodiscard]] std::optional<geom::Vec2> front_velocity(
      geom::Vec2 p, sim::Time t) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "radial"; }

  /// Angular speed profile v(θ), m/s.
  [[nodiscard]] double speed_at(double theta) const noexcept;

  /// Front radius along direction θ at time t (0 before start_time).
  [[nodiscard]] double radius_at(double theta, sim::Time t) const noexcept;

  /// Boundary sampled as a closed polyline (for contour rendering/tests).
  [[nodiscard]] geom::Polyline boundary(sim::Time t, int samples = 256) const;

  [[nodiscard]] const RadialFrontConfig& config() const noexcept { return cfg_; }

 private:
  /// g(τ) for τ ≥ 0.
  [[nodiscard]] double growth(double tau) const noexcept;
  /// Inverse of g: smallest τ ≥ 0 with g(τ) = x.
  [[nodiscard]] double inverse_growth(double x) const noexcept;

  RadialFrontConfig cfg_;
};

}  // namespace pas::stimulus

// Post-mortem ring buffer for the orchestrator's protocol traffic.
//
// The driver notes every line it sends to or receives from a worker; the
// recorder keeps only the most recent `capacity` entries. When a worker
// crashes, hangs, or the drive aborts, dump() writes the window — exactly
// the context a post-mortem needs ("what was in flight when worker 3 went
// silent?") without paying for a full protocol log on healthy runs.
//
// Timestamps are seconds since construction (wall clock): the recorder
// lives outside the simulation and never touches simulated time or RNG.
// Not thread-safe; the driver's poll loop is single-threaded.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace pas::obs {

class FlightRecorder {
 public:
  struct Entry {
    double t_s = 0.0;  // seconds since recorder construction
    char direction = '?';  // '>' driver→worker, '<' worker→driver
    int worker = -1;
    std::string line;
  };

  explicit FlightRecorder(std::size_t capacity = 256);

  /// Records one protocol line (overwrites the oldest entry when full).
  void note(char direction, int worker, std::string line);

  /// Entries in arrival order, oldest first.
  [[nodiscard]] std::vector<Entry> entries() const;

  [[nodiscard]] std::size_t size() const noexcept {
    return ring_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Total lines ever noted (>= size() once the ring has wrapped).
  [[nodiscard]] std::uint64_t noted() const noexcept { return noted_; }

  /// Writes the window as "  +12.345s > w3 | lease 7 0 1 2" lines.
  void dump(std::FILE* out) const;

 private:
  std::chrono::steady_clock::time_point t0_;
  std::size_t capacity_;
  std::size_t next_ = 0;  // ring write position once full
  std::uint64_t noted_ = 0;
  std::vector<Entry> ring_;
};

}  // namespace pas::obs

#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstdint>

namespace pas::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : t0_(std::chrono::steady_clock::now()),
      capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void FlightRecorder::note(char direction, int worker, std::string line) {
  Entry entry;
  entry.t_s = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0_)
                  .count();
  entry.direction = direction;
  entry.worker = worker;
  entry.line = std::move(line);
  ++noted_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
    return;
  }
  ring_[next_] = std::move(entry);
  next_ = (next_ + 1) % capacity_;
}

std::vector<FlightRecorder::Entry> FlightRecorder::entries() const {
  std::vector<Entry> out;
  out.reserve(ring_.size());
  // Before wrapping, `next_` stays 0 and the ring is already in order;
  // after wrapping, `next_` points at the oldest entry.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::dump(std::FILE* out) const {
  std::fprintf(out,
               "flight recorder: last %zu of %llu protocol lines\n",
               ring_.size(), static_cast<unsigned long long>(noted_));
  for (const auto& entry : entries()) {
    std::fprintf(out, "  +%.3fs %c w%d | %s\n", entry.t_s, entry.direction,
                 entry.worker, entry.line.c_str());
  }
}

}  // namespace pas::obs

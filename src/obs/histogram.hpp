// Fixed log-bucket histogram data.
//
// Telemetry histograms (sleep intervals, lease latencies) span several
// orders of magnitude, so buckets double: bin 0 collects everything at or
// below `lo` (and non-finite garbage), bin i (1..count) covers
// (lo*2^(i-1), lo*2^i], and bin count+1 is the overflow. The bucket layout
// is a pure function of the spec — two histograms with the same spec merge
// bin-by-bin, which is what lets per-run records sum into per-point rows
// and thread shards sum into one snapshot without losing anything but
// intra-bucket resolution.
//
// HistogramData is the plain (non-atomic) value type; the concurrent
// registry (obs/registry.hpp) keeps per-thread atomic bins and merges them
// into this shape on snapshot.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace pas::obs {

struct LogBuckets {
  /// Upper edge of the underflow bucket (> 0).
  double lo = 0.001;
  /// Number of doubling buckets between underflow and overflow.
  std::size_t count = 24;

  [[nodiscard]] constexpr bool operator==(const LogBuckets&) const noexcept =
      default;

  /// Total bins including underflow (0) and overflow (count + 1).
  [[nodiscard]] constexpr std::size_t bins() const noexcept {
    return count + 2;
  }

  /// Bin index of `v`. NaN and anything <= lo land in the underflow bin;
  /// values beyond lo*2^count in the overflow bin. Upper edges are
  /// inclusive: lo*2^i belongs to bin i.
  [[nodiscard]] std::size_t index(double v) const noexcept {
    if (!(v > lo)) return 0;  // also catches NaN
    const int k = std::ilogb(v / lo);  // floor(log2(v / lo)), >= 0 here
    const std::size_t bin = std::ldexp(lo, k) >= v
                                ? static_cast<std::size_t>(k)
                                : static_cast<std::size_t>(k) + 1;
    return bin > count ? count + 1 : bin;
  }

  /// Upper edge of bin i (inclusive); bin 0's edge is lo, the overflow
  /// bin's edge is +infinity.
  [[nodiscard]] double upper_edge(std::size_t i) const noexcept {
    if (i > count) return std::numeric_limits<double>::infinity();
    return std::ldexp(lo, static_cast<int>(i));
  }
};

struct HistogramData {
  LogBuckets spec{};
  /// Bin counts; empty until the first record()/merge() (a run that never
  /// sleeps pays no allocation). When non-empty, size() == spec.bins().
  std::vector<std::uint64_t> bin_counts;
  /// Total recorded values (== sum of bin_counts; kept explicit so empty
  /// histograms stay allocation-free and summaries need no re-scan).
  std::uint64_t count = 0;

  void record(double v) {
    if (bin_counts.empty()) bin_counts.assign(spec.bins(), 0);
    ++bin_counts[spec.index(v)];
    ++count;
  }

  /// Adds `other`'s counts into this histogram; the specs must match (the
  /// caller controls both sides — mismatch is a programming error).
  void merge(const HistogramData& other) {
    if (other.count == 0) return;
    if (bin_counts.empty()) bin_counts.assign(spec.bins(), 0);
    for (std::size_t i = 0; i < bin_counts.size(); ++i) {
      bin_counts[i] += other.bin_counts[i];
    }
    count += other.count;
  }
};

/// Quantile estimate (q in [0, 1]) interpolated within log buckets: the
/// bucket holding the target rank contributes linearly by the fraction of
/// its count below the rank, so the error is bounded by one bucket's width
/// instead of a whole doubling step. The telemetry values recorded here
/// are non-negative durations, so the underflow bucket interpolates over
/// [0, lo]; the unbounded overflow bucket reports its lower edge
/// (lo * 2^count) — a deliberate under-estimate rather than a made-up
/// extrapolation. An empty histogram reports 0.
[[nodiscard]] inline double quantile(const HistogramData& data,
                                     double q) noexcept {
  if (data.count == 0 || data.bin_counts.empty()) return 0.0;
  if (!(q > 0.0)) q = 0.0;  // also catches NaN
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(data.count);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < data.bin_counts.size(); ++i) {
    const std::uint64_t in_bin = data.bin_counts[i];
    if (in_bin == 0) continue;
    if (static_cast<double>(below + in_bin) >= target) {
      const double lower = i == 0 ? 0.0 : data.spec.upper_edge(i - 1);
      if (i == data.spec.count + 1) return lower;  // overflow bucket
      const double upper = data.spec.upper_edge(i);
      double frac = (target - static_cast<double>(below)) /
                    static_cast<double>(in_bin);
      if (frac < 0.0) frac = 0.0;
      if (frac > 1.0) frac = 1.0;
      return lower + frac * (upper - lower);
    }
    below += in_bin;
  }
  // Unreachable while count == sum(bin_counts); degrade to the top edge.
  return data.spec.upper_edge(data.spec.count);
}

}  // namespace pas::obs

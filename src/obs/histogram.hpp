// Fixed log-bucket histogram data.
//
// Telemetry histograms (sleep intervals, lease latencies) span several
// orders of magnitude, so buckets double: bin 0 collects everything at or
// below `lo` (and non-finite garbage), bin i (1..count) covers
// (lo*2^(i-1), lo*2^i], and bin count+1 is the overflow. The bucket layout
// is a pure function of the spec — two histograms with the same spec merge
// bin-by-bin, which is what lets per-run records sum into per-point rows
// and thread shards sum into one snapshot without losing anything but
// intra-bucket resolution.
//
// HistogramData is the plain (non-atomic) value type; the concurrent
// registry (obs/registry.hpp) keeps per-thread atomic bins and merges them
// into this shape on snapshot.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace pas::obs {

struct LogBuckets {
  /// Upper edge of the underflow bucket (> 0).
  double lo = 0.001;
  /// Number of doubling buckets between underflow and overflow.
  std::size_t count = 24;

  [[nodiscard]] constexpr bool operator==(const LogBuckets&) const noexcept =
      default;

  /// Total bins including underflow (0) and overflow (count + 1).
  [[nodiscard]] constexpr std::size_t bins() const noexcept {
    return count + 2;
  }

  /// Bin index of `v`. NaN and anything <= lo land in the underflow bin;
  /// values beyond lo*2^count in the overflow bin. Upper edges are
  /// inclusive: lo*2^i belongs to bin i.
  [[nodiscard]] std::size_t index(double v) const noexcept {
    if (!(v > lo)) return 0;  // also catches NaN
    const int k = std::ilogb(v / lo);  // floor(log2(v / lo)), >= 0 here
    const std::size_t bin = std::ldexp(lo, k) >= v
                                ? static_cast<std::size_t>(k)
                                : static_cast<std::size_t>(k) + 1;
    return bin > count ? count + 1 : bin;
  }

  /// Upper edge of bin i (inclusive); bin 0's edge is lo, the overflow
  /// bin's edge is +infinity.
  [[nodiscard]] double upper_edge(std::size_t i) const noexcept {
    if (i > count) return std::numeric_limits<double>::infinity();
    return std::ldexp(lo, static_cast<int>(i));
  }
};

struct HistogramData {
  LogBuckets spec{};
  /// Bin counts; empty until the first record()/merge() (a run that never
  /// sleeps pays no allocation). When non-empty, size() == spec.bins().
  std::vector<std::uint64_t> bin_counts;
  /// Total recorded values (== sum of bin_counts; kept explicit so empty
  /// histograms stay allocation-free and summaries need no re-scan).
  std::uint64_t count = 0;

  void record(double v) {
    if (bin_counts.empty()) bin_counts.assign(spec.bins(), 0);
    ++bin_counts[spec.index(v)];
    ++count;
  }

  /// Adds `other`'s counts into this histogram; the specs must match (the
  /// caller controls both sides — mismatch is a programming error).
  void merge(const HistogramData& other) {
    if (other.count == 0) return;
    if (bin_counts.empty()) bin_counts.assign(spec.bins(), 0);
    for (std::size_t i = 0; i < bin_counts.size(); ++i) {
      bin_counts[i] += other.bin_counts[i];
    }
    count += other.count;
  }
};

}  // namespace pas::obs

#include "obs/export.hpp"

namespace pas::obs {

io::Json histogram_json(const HistogramData& data) {
  io::JsonObject hist;
  hist["lo"] = data.spec.lo;
  hist["count"] = data.spec.count;
  io::JsonArray bins;
  bins.reserve(data.bin_counts.size());
  for (const auto n : data.bin_counts) bins.push_back(io::Json(n));
  hist["bins"] = std::move(bins);
  hist["total"] = data.count;
  return io::Json(std::move(hist));
}

io::Json snapshot_json(const Snapshot& snapshot) {
  io::JsonObject out;
  for (const auto& scalar : snapshot.scalars) {
    out[scalar.name] = scalar.value;
  }
  for (const auto& hist : snapshot.hists) {
    out[hist.name] = histogram_json(hist.data);
  }
  return io::Json(std::move(out));
}

std::size_t write_trace_jsonl(const sim::TraceLog& trace, std::ostream& out) {
  std::size_t lines = 0;
  for (const auto& e : trace.events()) {
    io::JsonObject row;
    row["t"] = e.time;
    row["cat"] = sim::to_string(e.category);
    row["kind"] = sim::to_string(e.kind);
    row["node"] = static_cast<std::size_t>(e.node);
    switch (e.kind) {
      case sim::TraceKind::kSleepFor:
        row["x"] = e.x;
        break;
      case sim::TraceKind::kActualVelocity:
        row["x"] = e.x;
        row["y"] = e.y;
        break;
      case sim::TraceKind::kEval:
        row["x"] = e.x;
        row["a"] = static_cast<std::size_t>(e.a);
        break;
      case sim::TraceKind::kStateChange:
        if (e.s1 != nullptr) row["from"] = e.s1;
        if (e.s2 != nullptr) row["to"] = e.s2;
        break;
      default:
        break;
    }
    row["text"] = sim::format_event(e);
    out << io::Json(std::move(row)).dump() << '\n';
    ++lines;
  }
  return lines;
}

}  // namespace pas::obs

#include "obs/export.hpp"

namespace pas::obs {

io::Json histogram_json(const HistogramData& data) {
  io::JsonObject hist;
  hist["lo"] = data.spec.lo;
  hist["count"] = data.spec.count;
  io::JsonArray bins;
  bins.reserve(data.bin_counts.size());
  for (const auto n : data.bin_counts) bins.push_back(io::Json(n));
  hist["bins"] = std::move(bins);
  hist["total"] = data.count;
  if (data.count > 0) {
    hist["p50"] = quantile(data, 0.50);
    hist["p95"] = quantile(data, 0.95);
    hist["p99"] = quantile(data, 0.99);
  }
  return io::Json(std::move(hist));
}

io::Json snapshot_json(const Snapshot& snapshot) {
  io::JsonObject out;
  for (const auto& scalar : snapshot.scalars) {
    out[scalar.name] = scalar.value;
  }
  for (const auto& hist : snapshot.hists) {
    out[hist.name] = histogram_json(hist.data);
  }
  return io::Json(std::move(out));
}

Snapshot snapshot_delta(const Snapshot& prev, const Snapshot& cur) {
  Snapshot out;
  out.scalars.reserve(cur.scalars.size());
  for (const auto& scalar : cur.scalars) {
    Snapshot::Scalar d = scalar;
    if (scalar.kind == InstrumentKind::kCounter) {
      for (const auto& p : prev.scalars) {
        if (p.name == scalar.name) {
          d.value = scalar.value >= p.value ? scalar.value - p.value : 0;
          break;
        }
      }
    }
    out.scalars.push_back(std::move(d));
  }
  out.hists.reserve(cur.hists.size());
  for (const auto& hist : cur.hists) {
    Snapshot::Hist d;
    d.name = hist.name;
    d.data = hist.data;
    for (const auto& p : prev.hists) {
      if (p.name != hist.name || p.data.count == 0) continue;
      for (std::size_t i = 0; i < d.data.bin_counts.size() &&
                              i < p.data.bin_counts.size();
           ++i) {
        const std::uint64_t sub = p.data.bin_counts[i];
        d.data.bin_counts[i] -= sub <= d.data.bin_counts[i]
                                    ? sub
                                    : d.data.bin_counts[i];
      }
      d.data.count -= p.data.count <= d.data.count ? p.data.count
                                                   : d.data.count;
      break;
    }
    out.hists.push_back(std::move(d));
  }
  return out;
}

io::Json snapshot_delta_json(const Snapshot& prev, const Snapshot& cur) {
  const Snapshot delta = snapshot_delta(prev, cur);
  io::JsonObject out;
  for (const auto& scalar : delta.scalars) {
    if (scalar.kind == InstrumentKind::kCounter && scalar.value == 0) continue;
    out[scalar.name] = scalar.value;
  }
  for (const auto& hist : delta.hists) {
    if (hist.data.count == 0) continue;
    out[hist.name] = histogram_json(hist.data);
  }
  return io::Json(std::move(out));
}

std::size_t write_trace_jsonl(const sim::TraceLog& trace, std::ostream& out) {
  std::size_t lines = 0;
  for (const auto& e : trace.events()) {
    io::JsonObject row;
    row["t"] = e.time;
    row["cat"] = sim::to_string(e.category);
    row["kind"] = sim::to_string(e.kind);
    row["node"] = static_cast<std::size_t>(e.node);
    switch (e.kind) {
      case sim::TraceKind::kSleepFor:
        row["x"] = e.x;
        break;
      case sim::TraceKind::kActualVelocity:
        row["x"] = e.x;
        row["y"] = e.y;
        break;
      case sim::TraceKind::kEval:
        row["x"] = e.x;
        row["a"] = static_cast<std::size_t>(e.a);
        break;
      case sim::TraceKind::kStateChange:
        if (e.s1 != nullptr) row["from"] = e.s1;
        if (e.s2 != nullptr) row["to"] = e.s2;
        break;
      default:
        break;
    }
    row["text"] = sim::format_event(e);
    out << io::Json(std::move(row)).dump() << '\n';
    ++lines;
  }
  return lines;
}

}  // namespace pas::obs

// Named-instrument telemetry registry.
//
// The observability substrate shared by the campaign engine and the
// orchestrator: Counter / Gauge / Histogram instruments are registered by
// name once at setup (like the sleeping-policy registry, resolution happens
// before the hot path) and handed out as stable slot handles — an 8-byte
// pointer plus a cell index that stays valid for the registry's lifetime,
// across any number of snapshots.
//
// Hot-path writes go to thread_local shards of relaxed atomics, so campaign
// pool workers never contend on a shared cache line; snapshot() merges the
// shards (counters and histogram bins sum, gauges take the max). A disabled
// registry hands out inert handles whose record calls are a null check —
// and compiling with PAS_OBS_OFF removes even that, which is what the CI
// perf gate's "telemetry costs ~nothing when off" claim is checked against.
//
// Registration is not thread-safe and must finish before the first write:
// the first shard acquisition freezes the instrument table (a frozen
// registry throws on new names), because shards size their cell arrays from
// it. Handles may outlive nothing: never use a handle after its Registry is
// destroyed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"

namespace pas::obs {

class Registry;

enum class InstrumentKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] constexpr const char* to_string(InstrumentKind k) noexcept {
  switch (k) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "?";
}

/// Monotonically increasing event count.
class Counter {
 public:
  Counter() = default;
  inline void add(std::uint64_t n = 1) const;

 private:
  friend class Registry;
  Counter(Registry* registry, std::uint32_t cell)
      : registry_(registry), cell_(cell) {}
  Registry* registry_ = nullptr;
  std::uint32_t cell_ = 0;
};

/// High-water mark: snapshot reports the maximum value ever recorded.
class Gauge {
 public:
  Gauge() = default;
  inline void record_max(std::uint64_t v) const;

 private:
  friend class Registry;
  Gauge(Registry* registry, std::uint32_t cell)
      : registry_(registry), cell_(cell) {}
  Registry* registry_ = nullptr;
  std::uint32_t cell_ = 0;
};

/// Fixed log-bucket histogram (see obs/histogram.hpp for the layout).
class Histogram {
 public:
  Histogram() = default;
  inline void record(double v) const;
  /// Folds an already-aggregated HistogramData in (per-run telemetry rolled
  /// into a campaign-level instrument). The specs must match.
  inline void merge(const HistogramData& data) const;

 private:
  friend class Registry;
  Histogram(Registry* registry, std::uint32_t index, LogBuckets spec)
      : registry_(registry), index_(index), spec_(spec) {}
  Registry* registry_ = nullptr;
  std::uint32_t index_ = 0;
  LogBuckets spec_{};
};

/// Merged view of every instrument at one point in time.
struct Snapshot {
  struct Scalar {
    std::string name;
    InstrumentKind kind = InstrumentKind::kCounter;
    std::uint64_t value = 0;
  };
  struct Hist {
    std::string name;
    HistogramData data;
  };
  std::vector<Scalar> scalars;  // registration order
  std::vector<Hist> hists;      // registration order
};

class Registry {
 public:
  /// A disabled registry hands out inert handles and snapshots empty.
  explicit Registry(bool enabled = true);
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Registration: the same name always returns the same handle; a name
  /// re-registered as a different kind (or a histogram with a different
  /// bucket spec) throws std::logic_error, as does any new name once the
  /// registry is frozen by its first recorded value.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name, LogBuckets spec = {});

  /// Merges all thread shards into one consistent view. Safe to call
  /// concurrently with writers (relaxed atomics: a snapshot taken mid-run
  /// may miss in-flight increments, never corrupt).
  [[nodiscard]] Snapshot snapshot() const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Instrument {
    std::string name;
    InstrumentKind kind = InstrumentKind::kCounter;
    std::uint32_t cell = 0;  // scalar cell, or histogram index
    LogBuckets spec{};       // kHistogram only
  };

  /// One thread's private cells. Atomics only because snapshot() reads
  /// while the owning thread writes; writers never share a shard.
  struct Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> scalars;
    std::vector<std::unique_ptr<std::atomic<std::uint64_t>[]>> hist_bins;
  };

  [[nodiscard]] Shard& shard();
  Shard& acquire_shard();

  void bump(std::uint32_t cell, std::uint64_t n) {
    shard().scalars[cell].fetch_add(n, std::memory_order_relaxed);
  }
  void bump_max(std::uint32_t cell, std::uint64_t v) {
    auto& a = shard().scalars[cell];
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    while (cur < v && !a.compare_exchange_weak(cur, v,
                                               std::memory_order_relaxed)) {
    }
  }
  void bump_hist(std::uint32_t index, std::size_t bin, std::uint64_t n) {
    shard().hist_bins[index][bin].fetch_add(n, std::memory_order_relaxed);
  }

  const Instrument& register_instrument(std::string_view name,
                                        InstrumentKind kind, LogBuckets spec);

  const bool enabled_;
  /// Process-unique id; the thread_local shard cache keys on it so a cached
  /// pointer can never alias a destroyed-and-reallocated registry.
  const std::uint64_t id_;

  mutable std::mutex mutex_;
  std::vector<Instrument> instruments_;
  std::uint32_t scalar_cells_ = 0;
  std::uint32_t hist_count_ = 0;
  std::vector<LogBuckets> hist_specs_;
  bool frozen_ = false;
  std::vector<std::pair<std::thread::id, std::unique_ptr<Shard>>> shards_;
};

// --- Hot-path handle bodies -------------------------------------------------
//
// PAS_OBS_OFF compiles every record call to nothing — the switch the perf
// harness can flip to prove the enabled-but-null-registry path costs only
// its branch.

inline void Counter::add(std::uint64_t n) const {
#if !defined(PAS_OBS_OFF)
  if (registry_ != nullptr) registry_->bump(cell_, n);
#else
  (void)n;
#endif
}

inline void Gauge::record_max(std::uint64_t v) const {
#if !defined(PAS_OBS_OFF)
  if (registry_ != nullptr) registry_->bump_max(cell_, v);
#else
  (void)v;
#endif
}

inline void Histogram::record(double v) const {
#if !defined(PAS_OBS_OFF)
  if (registry_ != nullptr) registry_->bump_hist(index_, spec_.index(v), 1);
#else
  (void)v;
#endif
}

inline void Histogram::merge(const HistogramData& data) const {
#if !defined(PAS_OBS_OFF)
  if (registry_ == nullptr || data.count == 0) return;
  for (std::size_t i = 0; i < data.bin_counts.size(); ++i) {
    if (data.bin_counts[i] != 0) {
      registry_->bump_hist(index_, i, data.bin_counts[i]);
    }
  }
#else
  (void)data;
#endif
}

}  // namespace pas::obs

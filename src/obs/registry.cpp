#include "obs/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace pas::obs {

namespace {
std::atomic<std::uint64_t> g_next_registry_id{1};
}  // namespace

Registry::Registry(bool enabled)
    : enabled_(enabled),
      id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

const Registry::Instrument& Registry::register_instrument(
    std::string_view name, InstrumentKind kind, LogBuckets spec) {
  const std::lock_guard lock(mutex_);
  for (const auto& instrument : instruments_) {
    if (instrument.name != name) continue;
    if (instrument.kind != kind) {
      throw std::logic_error("obs::Registry: \"" + std::string(name) +
                             "\" already registered as a " +
                             to_string(instrument.kind));
    }
    if (kind == InstrumentKind::kHistogram &&
        !(instrument.spec == spec)) {
      throw std::logic_error("obs::Registry: histogram \"" +
                             std::string(name) +
                             "\" re-registered with a different bucket spec");
    }
    return instrument;
  }
  if (frozen_) {
    throw std::logic_error(
        "obs::Registry: cannot register \"" + std::string(name) +
        "\" after the first recorded value froze the instrument table");
  }
  Instrument instrument;
  instrument.name = std::string(name);
  instrument.kind = kind;
  instrument.spec = spec;
  if (kind == InstrumentKind::kHistogram) {
    instrument.cell = hist_count_++;
    hist_specs_.push_back(spec);
  } else {
    instrument.cell = scalar_cells_++;
  }
  instruments_.push_back(std::move(instrument));
  return instruments_.back();
}

Counter Registry::counter(std::string_view name) {
  if (!enabled_) return Counter{};
  const auto& instrument =
      register_instrument(name, InstrumentKind::kCounter, {});
  return Counter{this, instrument.cell};
}

Gauge Registry::gauge(std::string_view name) {
  if (!enabled_) return Gauge{};
  const auto& instrument =
      register_instrument(name, InstrumentKind::kGauge, {});
  return Gauge{this, instrument.cell};
}

Histogram Registry::histogram(std::string_view name, LogBuckets spec) {
  if (!enabled_) return Histogram{};
  const auto& instrument =
      register_instrument(name, InstrumentKind::kHistogram, spec);
  return Histogram{this, instrument.cell, spec};
}

Registry::Shard& Registry::shard() {
  // The cache keys on the process-unique registry id, not the pointer:
  // after this registry dies, a successor allocated at the same address
  // draws a fresh id and misses, instead of scribbling into a stale shard.
  thread_local std::uint64_t cached_id = 0;
  thread_local Shard* cached = nullptr;
  if (cached_id != id_) {
    cached = &acquire_shard();
    cached_id = id_;
  }
  return *cached;
}

Registry::Shard& Registry::acquire_shard() {
  const std::lock_guard lock(mutex_);
  // Sizing the cell arrays pins the instrument table: registration after
  // this point would hand out cells no shard has.
  frozen_ = true;
  const auto me = std::this_thread::get_id();
  for (auto& [tid, shard] : shards_) {
    if (tid == me) return *shard;
  }
  auto shard = std::make_unique<Shard>();
  shard->scalars =
      std::make_unique<std::atomic<std::uint64_t>[]>(scalar_cells_);
  for (std::uint32_t c = 0; c < scalar_cells_; ++c) {
    shard->scalars[c].store(0, std::memory_order_relaxed);
  }
  shard->hist_bins.reserve(hist_specs_.size());
  for (const auto& spec : hist_specs_) {
    auto bins = std::make_unique<std::atomic<std::uint64_t>[]>(spec.bins());
    for (std::size_t b = 0; b < spec.bins(); ++b) {
      bins[b].store(0, std::memory_order_relaxed);
    }
    shard->hist_bins.push_back(std::move(bins));
  }
  shards_.emplace_back(me, std::move(shard));
  return *shards_.back().second;
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  const std::lock_guard lock(mutex_);
  for (const auto& instrument : instruments_) {
    if (instrument.kind == InstrumentKind::kHistogram) {
      Snapshot::Hist hist;
      hist.name = instrument.name;
      hist.data.spec = instrument.spec;
      for (const auto& [tid, shard] : shards_) {
        const auto& bins = shard->hist_bins[instrument.cell];
        for (std::size_t b = 0; b < instrument.spec.bins(); ++b) {
          const std::uint64_t n = bins[b].load(std::memory_order_relaxed);
          if (n == 0) continue;
          if (hist.data.bin_counts.empty()) {
            hist.data.bin_counts.assign(instrument.spec.bins(), 0);
          }
          hist.data.bin_counts[b] += n;
          hist.data.count += n;
        }
      }
      out.hists.push_back(std::move(hist));
    } else {
      Snapshot::Scalar scalar;
      scalar.name = instrument.name;
      scalar.kind = instrument.kind;
      for (const auto& [tid, shard] : shards_) {
        const std::uint64_t v =
            shard->scalars[instrument.cell].load(std::memory_order_relaxed);
        scalar.value = instrument.kind == InstrumentKind::kGauge
                           ? std::max(scalar.value, v)
                           : scalar.value + v;
      }
      out.scalars.push_back(std::move(scalar));
    }
  }
  return out;
}

}  // namespace pas::obs

// Telemetry serialization: registry snapshots and structured traces out to
// JSON / JSONL through io/json.
//
// Conventions shared with the campaign telemetry file (exp/telemetry.hpp):
//  * 64-bit counts are emitted as JSON numbers (telemetry counts stay far
//    below 2^53, the double-exact integer range io::Json preserves);
//  * seeds are emitted as strings (they use all 64 bits);
//  * histogram objects carry {lo, count, bins, total} so the fixed
//    log-bucket layout reconstructs without out-of-band schema.
#pragma once

#include <ostream>

#include "io/json.hpp"
#include "obs/registry.hpp"
#include "sim/trace.hpp"

namespace pas::obs {

/// {"lo": ..., "count": N, "bins": [...], "total": M}; `bins` is empty for
/// a histogram that never recorded. Non-empty histograms additionally carry
/// "p50"/"p95"/"p99": quantile estimates interpolated within the log
/// buckets (obs::quantile) — a pure function of the bins, so the keys never
/// break byte-identity across schedules.
[[nodiscard]] io::Json histogram_json(const HistogramData& data);

/// One object mapping instrument name → value (counters/gauges) or
/// histogram object. Key order is io::Json's (sorted), so serialization is
/// deterministic for a given snapshot.
[[nodiscard]] io::Json snapshot_json(const Snapshot& snapshot);

/// Instrument-wise difference `cur - prev` for two snapshots of the same
/// registry (prev may be older and therefore missing instruments; missing
/// means 0). Counters and histogram bins subtract; gauges are high-water
/// marks, so the delta reports the current max. Used by the live server's
/// incremental SSE metrics events.
[[nodiscard]] Snapshot snapshot_delta(const Snapshot& prev,
                                      const Snapshot& cur);

/// snapshot_json of snapshot_delta, with unchanged instruments (zero
/// counters, histograms with no new samples) omitted — the compact shape
/// pushed to dashboard clients between full /api/metrics polls.
[[nodiscard]] io::Json snapshot_delta_json(const Snapshot& prev,
                                           const Snapshot& cur);

/// Writes one JSONL line per trace event: structured fields plus the
/// rendered text, e.g.
///   {"t":12.5,"cat":"sleep","kind":"sleep_for","node":3,"x":10.0,
///    "text":"sleeping for 10s"}
/// Numeric args are included only when the kind uses them. Returns the
/// number of lines written.
std::size_t write_trace_jsonl(const sim::TraceLog& trace, std::ostream& out);

}  // namespace pas::obs

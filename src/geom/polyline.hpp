// Polyline / closed-contour utilities.
//
// Stimulus models expose their boundary as a polyline (e.g. extracted by
// marching squares); examples render it, and tests check geometric
// invariants (front grows outward, area is monotone).
#pragma once

#include <vector>

#include "geom/vec2.hpp"

namespace pas::geom {

struct Polyline {
  std::vector<Vec2> points;
  bool closed = false;

  [[nodiscard]] std::size_t size() const noexcept { return points.size(); }
  [[nodiscard]] bool empty() const noexcept { return points.empty(); }

  /// Total arc length (including the closing segment when closed).
  [[nodiscard]] double length() const noexcept;

  /// Signed area by the shoelace formula (only meaningful when closed).
  /// Positive for counter-clockwise winding.
  [[nodiscard]] double signed_area() const noexcept;

  /// Point-in-polygon by ray casting (only meaningful when closed).
  [[nodiscard]] bool contains(Vec2 p) const noexcept;

  /// Minimum distance from `p` to any segment of the polyline.
  [[nodiscard]] double distance_to(Vec2 p) const noexcept;
};

/// Distance from point `p` to segment [a, b].
[[nodiscard]] double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) noexcept;

}  // namespace pas::geom

// 2-D vector/point type used throughout the library.
//
// Positions are in meters; velocities in meters/second. Vec2 is a value type
// with constexpr arithmetic so geometry-heavy code (arrival prediction,
// §3.3 of the paper) stays allocation-free and inlineable.
#pragma once

#include <cmath>
#include <ostream>

namespace pas::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() noexcept = default;
  constexpr Vec2(double px, double py) noexcept : x(px), y(py) {}

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const noexcept { return {x / s, y / s}; }
  constexpr Vec2 operator-() const noexcept { return {-x, -y}; }

  constexpr Vec2& operator+=(Vec2 o) noexcept { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) noexcept { x -= o.x; y -= o.y; return *this; }
  constexpr Vec2& operator*=(double s) noexcept { x *= s; y *= s; return *this; }
  constexpr Vec2& operator/=(double s) noexcept { x /= s; y /= s; return *this; }

  constexpr bool operator==(const Vec2&) const noexcept = default;

  [[nodiscard]] constexpr double dot(Vec2 o) const noexcept { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product (signed parallelogram area).
  [[nodiscard]] constexpr double cross(Vec2 o) const noexcept { return x * o.y - y * o.x; }
  [[nodiscard]] constexpr double norm2() const noexcept { return x * x + y * y; }
  [[nodiscard]] double norm() const noexcept { return std::sqrt(norm2()); }

  /// Unit vector; returns (0,0) for the zero vector.
  [[nodiscard]] Vec2 normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }

  /// Angle from +x axis in (-pi, pi].
  [[nodiscard]] double angle() const noexcept { return std::atan2(y, x); }

  /// Counter-clockwise rotation by `radians`.
  [[nodiscard]] Vec2 rotated(double radians) const noexcept {
    const double c = std::cos(radians), s = std::sin(radians);
    return {x * c - y * s, x * s + y * c};
  }

  [[nodiscard]] static Vec2 from_polar(double r, double theta) noexcept {
    return {r * std::cos(theta), r * std::sin(theta)};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) noexcept { return v * s; }

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) noexcept { return (a - b).norm(); }
[[nodiscard]] constexpr double distance2(Vec2 a, Vec2 b) noexcept { return (a - b).norm2(); }

/// Included angle between two vectors in [0, pi]; 0 if either is zero.
[[nodiscard]] inline double included_angle(Vec2 a, Vec2 b) noexcept {
  const double na = a.norm(), nb = b.norm();
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  double c = a.dot(b) / (na * nb);
  if (c > 1.0) c = 1.0;
  if (c < -1.0) c = -1.0;
  return std::acos(c);
}

/// cos of the included angle; 0 if either vector is zero.
[[nodiscard]] inline double cos_included_angle(Vec2 a, Vec2 b) noexcept {
  const double na = a.norm(), nb = b.norm();
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  double c = a.dot(b) / (na * nb);
  if (c > 1.0) c = 1.0;
  if (c < -1.0) c = -1.0;
  return c;
}

/// Linear interpolation a + t*(b-a).
[[nodiscard]] constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) noexcept {
  return a + (b - a) * t;
}

inline std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace pas::geom

#include "geom/kdtree.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace pas::geom {

KdTree::KdTree(std::vector<Vec2> points) : points_(std::move(points)) {
  if (points_.empty()) return;
  std::vector<std::uint32_t> ids(points_.size());
  std::iota(ids.begin(), ids.end(), 0U);
  nodes_.reserve(points_.size());
  root_ = build(ids, 0, ids.size(), 0);
}

std::int32_t KdTree::build(std::vector<std::uint32_t>& ids, std::size_t lo,
                           std::size_t hi, int depth) {
  if (lo >= hi) return -1;
  const std::uint8_t axis = static_cast<std::uint8_t>(depth % 2);
  const std::size_t mid = lo + (hi - lo) / 2;
  std::nth_element(ids.begin() + static_cast<std::ptrdiff_t>(lo),
                   ids.begin() + static_cast<std::ptrdiff_t>(mid),
                   ids.begin() + static_cast<std::ptrdiff_t>(hi),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return axis == 0 ? points_[a].x < points_[b].x
                                      : points_[a].y < points_[b].y;
                   });
  const auto self = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{ids[mid], -1, -1, axis});
  const std::int32_t l = build(ids, lo, mid, depth + 1);
  const std::int32_t r = build(ids, mid + 1, hi, depth + 1);
  nodes_[static_cast<std::size_t>(self)].left = l;
  nodes_[static_cast<std::size_t>(self)].right = r;
  return self;
}

std::uint32_t KdTree::nearest(Vec2 q) const {
  if (points_.empty()) throw std::logic_error("KdTree::nearest on empty tree");
  double best_d2 = std::numeric_limits<double>::infinity();
  std::uint32_t best = 0;
  nearest_impl(root_, q, best_d2, best);
  return best;
}

void KdTree::nearest_impl(std::int32_t node, Vec2 q, double& best_d2,
                          std::uint32_t& best) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const Vec2 p = points_[n.point];
  const double d2 = distance2(p, q);
  if (d2 < best_d2) {
    best_d2 = d2;
    best = n.point;
  }
  const double delta = n.axis == 0 ? q.x - p.x : q.y - p.y;
  const std::int32_t near = delta < 0.0 ? n.left : n.right;
  const std::int32_t far = delta < 0.0 ? n.right : n.left;
  nearest_impl(near, q, best_d2, best);
  if (delta * delta < best_d2) nearest_impl(far, q, best_d2, best);
}

std::vector<std::uint32_t> KdTree::knearest(Vec2 q, std::size_t k) const {
  std::vector<std::pair<double, std::uint32_t>> heap;  // max-heap on distance
  if (k == 0 || points_.empty()) return {};
  heap.reserve(k + 1);
  knearest_impl(root_, q, k, heap);
  std::sort_heap(heap.begin(), heap.end());
  std::vector<std::uint32_t> out;
  out.reserve(heap.size());
  for (const auto& [d2, id] : heap) out.push_back(id);
  return out;
}

void KdTree::knearest_impl(
    std::int32_t node, Vec2 q, std::size_t k,
    std::vector<std::pair<double, std::uint32_t>>& heap) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const Vec2 p = points_[n.point];
  const double d2 = distance2(p, q);
  if (heap.size() < k) {
    heap.emplace_back(d2, n.point);
    std::push_heap(heap.begin(), heap.end());
  } else if (d2 < heap.front().first) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = {d2, n.point};
    std::push_heap(heap.begin(), heap.end());
  }
  const double delta = n.axis == 0 ? q.x - p.x : q.y - p.y;
  const std::int32_t near = delta < 0.0 ? n.left : n.right;
  const std::int32_t far = delta < 0.0 ? n.right : n.left;
  knearest_impl(near, q, k, heap);
  const double worst =
      heap.size() < k ? std::numeric_limits<double>::infinity() : heap.front().first;
  if (delta * delta < worst) knearest_impl(far, q, k, heap);
}

std::vector<std::uint32_t> KdTree::query_radius(Vec2 q, double radius) const {
  std::vector<std::uint32_t> out;
  if (radius < 0.0 || points_.empty()) return out;
  radius_impl(root_, q, radius * radius, out);
  std::sort(out.begin(), out.end());
  return out;
}

void KdTree::radius_impl(std::int32_t node, Vec2 q, double r2,
                         std::vector<std::uint32_t>& out) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const Vec2 p = points_[n.point];
  if (distance2(p, q) <= r2) out.push_back(n.point);
  const double delta = n.axis == 0 ? q.x - p.x : q.y - p.y;
  const std::int32_t near = delta < 0.0 ? n.left : n.right;
  const std::int32_t far = delta < 0.0 ? n.right : n.left;
  radius_impl(near, q, r2, out);
  if (delta * delta <= r2) radius_impl(far, q, r2, out);
}

}  // namespace pas::geom

#include "geom/polyline.hpp"

#include <cmath>
#include <limits>

namespace pas::geom {

double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) noexcept {
  const Vec2 ab = b - a;
  const double len2 = ab.norm2();
  if (len2 <= 0.0) return distance(p, a);
  double t = (p - a).dot(ab) / len2;
  if (t < 0.0) t = 0.0;
  if (t > 1.0) t = 1.0;
  return distance(p, a + ab * t);
}

double Polyline::length() const noexcept {
  if (points.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    total += distance(points[i - 1], points[i]);
  }
  if (closed) total += distance(points.back(), points.front());
  return total;
}

double Polyline::signed_area() const noexcept {
  if (points.size() < 3) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Vec2 a = points[i];
    const Vec2 b = points[(i + 1) % points.size()];
    sum += a.cross(b);
  }
  return 0.5 * sum;
}

bool Polyline::contains(Vec2 p) const noexcept {
  if (points.size() < 3) return false;
  bool inside = false;
  for (std::size_t i = 0, j = points.size() - 1; i < points.size(); j = i++) {
    const Vec2 a = points[i], b = points[j];
    const bool crosses = (a.y > p.y) != (b.y > p.y);
    if (crosses) {
      const double x_at = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

double Polyline::distance_to(Vec2 p) const noexcept {
  if (points.empty()) return std::numeric_limits<double>::infinity();
  if (points.size() == 1) return distance(p, points.front());
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < points.size(); ++i) {
    best = std::min(best, point_segment_distance(p, points[i - 1], points[i]));
  }
  if (closed) {
    best = std::min(best, point_segment_distance(p, points.back(), points.front()));
  }
  return best;
}

}  // namespace pas::geom

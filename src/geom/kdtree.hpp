// Static k-d tree over a fixed 2-D point set.
//
// Complements GridIndex: the grid wins for fixed-radius radio queries, the
// k-d tree wins for nearest-neighbor and k-NN queries used by deployment
// diagnostics (connectivity, coverage spacing) where radii vary widely.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"

namespace pas::geom {

class KdTree {
 public:
  explicit KdTree(std::vector<Vec2> points);

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] const std::vector<Vec2>& points() const noexcept { return points_; }

  /// Index of the nearest point to `q`. Pre: size() > 0.
  [[nodiscard]] std::uint32_t nearest(Vec2 q) const;

  /// Indices of the k nearest points, closest first.
  [[nodiscard]] std::vector<std::uint32_t> knearest(Vec2 q, std::size_t k) const;

  /// Indices (ascending) of points within `radius` of `q`.
  [[nodiscard]] std::vector<std::uint32_t> query_radius(Vec2 q, double radius) const;

 private:
  struct Node {
    std::uint32_t point = 0;   // index into points_
    std::int32_t left = -1;    // child node indices, -1 = leaf edge
    std::int32_t right = -1;
    std::uint8_t axis = 0;     // 0 = x, 1 = y
  };

  std::int32_t build(std::vector<std::uint32_t>& ids, std::size_t lo,
                     std::size_t hi, int depth);
  void nearest_impl(std::int32_t node, Vec2 q, double& best_d2,
                    std::uint32_t& best) const;
  void knearest_impl(std::int32_t node, Vec2 q, std::size_t k,
                     std::vector<std::pair<double, std::uint32_t>>& heap) const;
  void radius_impl(std::int32_t node, Vec2 q, double r2,
                   std::vector<std::uint32_t>& out) const;

  std::vector<Vec2> points_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace pas::geom

// Axis-aligned bounding box (the monitored region).
#pragma once

#include <algorithm>

#include "geom/vec2.hpp"

namespace pas::geom {

struct Aabb {
  Vec2 lo{0.0, 0.0};
  Vec2 hi{0.0, 0.0};

  constexpr Aabb() noexcept = default;
  constexpr Aabb(Vec2 low, Vec2 high) noexcept : lo(low), hi(high) {}

  constexpr bool operator==(const Aabb&) const noexcept = default;

  [[nodiscard]] static constexpr Aabb square(double side) noexcept {
    return Aabb{{0.0, 0.0}, {side, side}};
  }

  [[nodiscard]] constexpr double width() const noexcept { return hi.x - lo.x; }
  [[nodiscard]] constexpr double height() const noexcept { return hi.y - lo.y; }
  [[nodiscard]] constexpr double area() const noexcept { return width() * height(); }
  [[nodiscard]] constexpr Vec2 center() const noexcept {
    return {(lo.x + hi.x) * 0.5, (lo.y + hi.y) * 0.5};
  }

  [[nodiscard]] constexpr bool contains(Vec2 p) const noexcept {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  /// Closest point inside the box to `p`.
  [[nodiscard]] constexpr Vec2 clamp(Vec2 p) const noexcept {
    return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y)};
  }

  /// Squared distance from `p` to the box (0 when inside).
  [[nodiscard]] constexpr double distance2(Vec2 p) const noexcept {
    const Vec2 c = clamp(p);
    return geom::distance2(p, c);
  }

  /// Grows the box by `margin` on every side.
  [[nodiscard]] constexpr Aabb inflated(double margin) const noexcept {
    return Aabb{{lo.x - margin, lo.y - margin}, {hi.x + margin, hi.y + margin}};
  }

  /// Diagonal length — an upper bound on any in-region distance.
  [[nodiscard]] double diagonal() const noexcept { return (hi - lo).norm(); }
};

}  // namespace pas::geom

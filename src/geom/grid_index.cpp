#include "geom/grid_index.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pas::geom {

GridIndex::GridIndex(const std::vector<Vec2>& points, Aabb bounds,
                     double cell_size)
    : points_(points), bounds_(bounds), cell_(cell_size) {
  if (cell_size <= 0.0) {
    throw std::invalid_argument("GridIndex: cell_size must be positive");
  }
  nx_ = std::max(1, static_cast<int>(std::ceil(bounds_.width() / cell_)));
  ny_ = std::max(1, static_cast<int>(std::ceil(bounds_.height() / cell_)));

  const std::size_t ncells = static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  std::vector<std::uint32_t> counts(ncells, 0);
  for (const Vec2& p : points_) {
    ++counts[cell_of(cell_x(p.x), cell_y(p.y))];
  }
  cell_start_.assign(ncells + 1, 0);
  for (std::size_t c = 0; c < ncells; ++c) {
    cell_start_[c + 1] = cell_start_[c] + counts[c];
  }
  point_ids_.resize(points_.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::uint32_t i = 0; i < points_.size(); ++i) {
    const Vec2& p = points_[i];
    point_ids_[cursor[cell_of(cell_x(p.x), cell_y(p.y))]++] = i;
  }
}

int GridIndex::cell_x(double x) const noexcept {
  const int c = static_cast<int>(std::floor((x - bounds_.lo.x) / cell_));
  return std::clamp(c, 0, nx_ - 1);
}

int GridIndex::cell_y(double y) const noexcept {
  const int c = static_cast<int>(std::floor((y - bounds_.lo.y) / cell_));
  return std::clamp(c, 0, ny_ - 1);
}

void GridIndex::for_each_in_radius(
    Vec2 p, double radius, const std::function<void(std::uint32_t)>& fn) const {
  if (radius < 0.0) return;
  const double r2 = radius * radius;
  const int cx0 = cell_x(p.x - radius), cx1 = cell_x(p.x + radius);
  const int cy0 = cell_y(p.y - radius), cy1 = cell_y(p.y + radius);
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      const std::size_t c = cell_of(cx, cy);
      for (std::uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        const std::uint32_t id = point_ids_[k];
        if (distance2(points_[id], p) <= r2) fn(id);
      }
    }
  }
}

std::vector<std::uint32_t> GridIndex::query_radius(Vec2 p, double radius) const {
  std::vector<std::uint32_t> out;
  for_each_in_radius(p, radius, [&out](std::uint32_t id) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

std::uint32_t GridIndex::nearest(Vec2 p) const {
  if (points_.empty()) {
    throw std::logic_error("GridIndex::nearest on empty point set");
  }
  // Expanding ring search over cells, falling back to brute force for the
  // final verification ring. Point sets here are small (tens to thousands),
  // so clarity beats micro-optimisation.
  double best_d2 = std::numeric_limits<double>::infinity();
  std::uint32_t best = 0;
  for (std::uint32_t i = 0; i < points_.size(); ++i) {
    const double d2 = distance2(points_[i], p);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

}  // namespace pas::geom

// Uniform-grid spatial index over a fixed point set.
//
// The radio layer asks "which nodes are within range R of p" once per
// broadcast; with cell size ~R this is O(neighbors). Points are fixed after
// build (sensor nodes do not move), so the index is immutable.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec2.hpp"

namespace pas::geom {

class GridIndex {
 public:
  /// Builds an index over `points` covering `bounds` with the given cell
  /// size. Points outside bounds are clamped into the edge cells.
  GridIndex(const std::vector<Vec2>& points, Aabb bounds, double cell_size);

  /// Indices of points with distance(p, point) <= radius.
  [[nodiscard]] std::vector<std::uint32_t> query_radius(Vec2 p, double radius) const;

  /// Visits each point within `radius` of `p` without allocating.
  void for_each_in_radius(Vec2 p, double radius,
                          const std::function<void(std::uint32_t)>& fn) const;

  /// Index of the nearest point to `p` (the point set must be non-empty).
  [[nodiscard]] std::uint32_t nearest(Vec2 p) const;

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] const std::vector<Vec2>& points() const noexcept { return points_; }

 private:
  [[nodiscard]] int cell_x(double x) const noexcept;
  [[nodiscard]] int cell_y(double y) const noexcept;
  [[nodiscard]] std::size_t cell_of(int cx, int cy) const noexcept {
    return static_cast<std::size_t>(cy) * static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(cx);
  }

  std::vector<Vec2> points_;
  Aabb bounds_;
  double cell_ = 1.0;
  int nx_ = 1;
  int ny_ = 1;
  // CSR layout: cell_start_[c]..cell_start_[c+1] indexes into point_ids_.
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> point_ids_;
};

}  // namespace pas::geom

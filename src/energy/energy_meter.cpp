#include "energy/energy_meter.hpp"

#include <cassert>

namespace pas::energy {

void EnergyMeter::accrue(sim::Time now) {
  assert(now >= last_change_ && "EnergyMeter: time went backwards");
  const sim::Duration dt = now - last_change_;
  if (dt > 0.0) {
    switch (mode_) {
      case PowerMode::kSleep:
        sleep_j_ += profile_.sleep_w * dt;
        sleep_s_ += dt;
        break;
      case PowerMode::kActive:
        active_j_ += profile_.total_active_w() * dt;
        active_s_ += dt;
        break;
    }
  }
  last_change_ = now;
}

void EnergyMeter::set_mode(PowerMode mode, sim::Time now) {
  accrue(now);
  if (mode != mode_) {
    transition_j_ += profile_.transition_energy();
    ++transitions_;
    mode_ = mode;
  }
}

void EnergyMeter::add_tx(std::size_t bits) {
  tx_j_ += profile_.tx_energy(bits);
  ++tx_count_;
}

void EnergyMeter::add_rx(std::size_t bits) {
  rx_j_ += profile_.rx_energy(bits);
  ++rx_count_;
}

void EnergyMeter::add_cca(sim::Duration seconds) {
  cca_j_ += profile_.radio_rx_w * seconds;
  ++cca_count_;
}

void EnergyMeter::add_preamble(sim::Duration seconds) {
  preamble_j_ += profile_.radio_tx_w * seconds;
  preamble_s_ += seconds;
}

void EnergyMeter::add_listen(sim::Duration seconds) {
  listen_j_ += profile_.total_active_w() * seconds;
  listen_s_ += seconds;
}

double EnergyMeter::total_j(sim::Time now) const {
  double open = 0.0;
  if (now > last_change_) {
    const sim::Duration dt = now - last_change_;
    open = mode_ == PowerMode::kSleep ? profile_.sleep_w * dt
                                      : profile_.total_active_w() * dt;
  }
  return sleep_j_ + active_j_ + tx_j_ + rx_j_ + transition_j_ + cca_j_ +
         preamble_j_ + listen_j_ + open;
}

}  // namespace pas::energy

// Hardware power profile.
//
// Constants come straight from the paper's Table 1, which itself reflects
// the Telos mote (Polastre et al., IPSN'06):
//
//   Active power      3 mW     (MCU running, radio off)
//   Sleep power       15 µW    (everything ducked)
//   Receive power     38 mW    (radio listening/receiving)
//   Transition power  35 mW    (radio transmit / state-transition draw)
//   Data rate         250 kbps
//   Total active      41 mW    (= MCU active + receive)
//
// The paper's "Transition power" row is the only ambiguous one; we use it
// both as the transmit draw (35 mW ≈ CC2420 at reduced output power) and as
// the draw during sleep↔active transitions, whose duration is configurable
// (default 2.45 ms, the commonly cited Telos radio+oscillator startup time).
#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace pas::energy {

struct PowerProfile {
  /// MCU running, radio off (W).
  double mcu_active_w = 3e-3;
  /// Deep sleep draw (W).
  double sleep_w = 15e-6;
  /// Radio receiving / idle listening (W).
  double radio_rx_w = 38e-3;
  /// Radio transmitting (W).
  double radio_tx_w = 35e-3;
  /// Draw while switching between sleep and active (W).
  double transition_w = 35e-3;
  /// How long one sleep↔active switch takes (s).
  sim::Duration transition_time_s = 2.45e-3;
  /// Radio data rate (bits/s).
  double data_rate_bps = 250e3;

  /// The paper's Table 1 values (defaults above).
  [[nodiscard]] static constexpr PowerProfile telos() noexcept { return {}; }

  /// MCU + listening radio — the paper's "total active power" (41 mW).
  [[nodiscard]] constexpr double total_active_w() const noexcept {
    return mcu_active_w + radio_rx_w;
  }

  /// Time on air for a message of `bits` (s).
  [[nodiscard]] constexpr sim::Duration tx_duration(std::size_t bits) const noexcept {
    return static_cast<double>(bits) / data_rate_bps;
  }

  /// Energy to transmit `bits` (J).
  [[nodiscard]] constexpr double tx_energy(std::size_t bits) const noexcept {
    return radio_tx_w * tx_duration(bits);
  }

  /// Energy to receive `bits` (J) — used for nodes whose idle listening is
  /// not already charged (a sleeping radio never receives, so in practice
  /// this prices the marginal receive cost in reports).
  [[nodiscard]] constexpr double rx_energy(std::size_t bits) const noexcept {
    return radio_rx_w * tx_duration(bits);
  }

  /// Energy of one sleep↔active transition (J).
  [[nodiscard]] constexpr double transition_energy() const noexcept {
    return transition_w * transition_time_s;
  }
};

}  // namespace pas::energy

// Per-node energy accounting.
//
// The meter integrates power over time across mode changes (sleep vs
// active/idle-listen) and adds per-event energies for transmissions and
// sleep↔active transitions. "Active" charges the paper's 41 mW total-active
// power, which already includes idle listening, so packet reception while
// active is not double-charged; transmissions add TX energy on top (the
// ~3 mW MCU overlap during the sub-millisecond TX window is negligible and
// documented here rather than modelled).
#pragma once

#include <cstddef>
#include <cstdint>

#include "energy/power_profile.hpp"
#include "sim/time.hpp"

namespace pas::energy {

enum class PowerMode : std::uint8_t {
  kSleep,
  kActive,  // MCU on + radio listening (41 mW)
};

class EnergyMeter {
 public:
  EnergyMeter() = default;
  EnergyMeter(PowerProfile profile, sim::Time start, PowerMode initial)
      : profile_(profile), mode_(initial), last_change_(start) {}

  /// Switches mode at `now`, accruing the elapsed interval at the old mode's
  /// power. A sleep↔active switch also books one transition's energy.
  void set_mode(PowerMode mode, sim::Time now);

  [[nodiscard]] PowerMode mode() const noexcept { return mode_; }

  /// Books a transmission of `bits`.
  void add_tx(std::size_t bits);

  /// Books an explicit reception of `bits` (only for accounting variants
  /// that price receives separately; the default pipeline does not call it).
  void add_rx(std::size_t bits);

  // MAC line items (net::SlottedLplMac hooks; all zero when the MAC is off).

  /// One clear-channel assessment of `seconds` — radio briefly up at RX
  /// power. Charged to sleeping nodes (LPL slot samples, relay CCAs); an
  /// awake radio's listening is already inside the active-mode power.
  void add_cca(sim::Duration seconds);
  /// Preamble of `seconds` at TX power (rendezvous preambles dominate).
  void add_preamble(sim::Duration seconds);
  /// Idle-listen extension of `seconds` at total-active power: a sleeping
  /// node that detected a preamble holds its radio up through the data.
  void add_listen(sim::Duration seconds);

  /// Total energy including the open interval [last_change, now] (J).
  [[nodiscard]] double total_j(sim::Time now) const;

  /// Closes accounting at `now` (e.g. end of simulation).
  void finalize(sim::Time now) { accrue(now); }

  // Breakdown (closed intervals only; call finalize() first for full runs).
  [[nodiscard]] double sleep_j() const noexcept { return sleep_j_; }
  [[nodiscard]] double active_j() const noexcept { return active_j_; }
  [[nodiscard]] double tx_j() const noexcept { return tx_j_; }
  [[nodiscard]] double rx_j() const noexcept { return rx_j_; }
  [[nodiscard]] double transition_j() const noexcept { return transition_j_; }
  [[nodiscard]] double cca_j() const noexcept { return cca_j_; }
  [[nodiscard]] double preamble_j() const noexcept { return preamble_j_; }
  [[nodiscard]] double listen_j() const noexcept { return listen_j_; }

  [[nodiscard]] double sleep_s() const noexcept { return sleep_s_; }
  [[nodiscard]] double active_s() const noexcept { return active_s_; }
  [[nodiscard]] double preamble_s() const noexcept { return preamble_s_; }
  [[nodiscard]] double listen_s() const noexcept { return listen_s_; }
  [[nodiscard]] std::uint64_t transitions() const noexcept { return transitions_; }
  [[nodiscard]] std::uint64_t tx_count() const noexcept { return tx_count_; }
  [[nodiscard]] std::uint64_t rx_count() const noexcept { return rx_count_; }
  [[nodiscard]] std::uint64_t cca_count() const noexcept { return cca_count_; }

  [[nodiscard]] const PowerProfile& profile() const noexcept { return profile_; }

 private:
  void accrue(sim::Time now);

  PowerProfile profile_{};
  PowerMode mode_ = PowerMode::kActive;
  sim::Time last_change_ = 0.0;

  double sleep_j_ = 0.0;
  double active_j_ = 0.0;
  double tx_j_ = 0.0;
  double rx_j_ = 0.0;
  double transition_j_ = 0.0;
  double cca_j_ = 0.0;
  double preamble_j_ = 0.0;
  double listen_j_ = 0.0;
  double sleep_s_ = 0.0;
  double active_s_ = 0.0;
  double preamble_s_ = 0.0;
  double listen_s_ = 0.0;
  std::uint64_t transitions_ = 0;
  std::uint64_t tx_count_ = 0;
  std::uint64_t rx_count_ = 0;
  std::uint64_t cca_count_ = 0;
};

}  // namespace pas::energy

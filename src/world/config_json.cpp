#include "world/config_json.hpp"

#include <stdexcept>
#include <string>

#include "core/policy.hpp"

namespace pas::world {

namespace {

io::Json vec_json(geom::Vec2 v) {
  io::Json j;
  j["x"] = v.x;
  j["y"] = v.y;
  return j;
}

io::Json radial_json(const stimulus::RadialFrontConfig& r) {
  io::Json j;
  j["source"] = vec_json(r.source);
  j["base_speed_mps"] = r.base_speed;
  j["accel"] = r.accel;
  j["start_time_s"] = r.start_time;
  j["max_radius_m"] = r.max_radius;
  io::Json harmonics;
  for (const auto& h : r.harmonics) {
    io::Json hj;
    hj["k"] = h.k;
    hj["amplitude"] = h.amplitude;
    hj["phase"] = h.phase;
    harmonics.push_back(std::move(hj));
  }
  j["harmonics"] = harmonics.is_null() ? io::Json(io::JsonArray{}) : harmonics;
  return j;
}

}  // namespace

io::Json to_json(const ScenarioConfig& config) {
  io::Json j;
  j["seed"] = static_cast<double>(config.seed);
  j["duration_s"] = config.duration_s;

  io::Json dep;
  dep["kind"] = to_string(config.deployment.kind);
  dep["count"] = config.deployment.count;
  dep["region_m"] = config.deployment.region.width();
  dep["grid_jitter"] = config.deployment.grid_jitter;
  dep["min_separation"] = config.deployment.min_separation;
  j["deployment"] = std::move(dep);

  io::Json radio;
  radio["range_m"] = config.radio.range_m;
  radio["data_rate_bps"] = config.radio.data_rate_bps;
  radio["max_jitter_s"] = config.radio.max_jitter_s;
  radio["propagation_s"] = config.radio.propagation_s;
  j["radio"] = std::move(radio);

  io::Json power;
  power["mcu_active_w"] = config.power.mcu_active_w;
  power["sleep_w"] = config.power.sleep_w;
  power["radio_rx_w"] = config.power.radio_rx_w;
  power["radio_tx_w"] = config.power.radio_tx_w;
  power["transition_w"] = config.power.transition_w;
  power["transition_time_s"] = config.power.transition_time_s;
  power["data_rate_bps"] = config.power.data_rate_bps;
  j["power"] = std::move(power);

  io::Json proto;
  proto["policy"] = std::string(core::to_string(config.protocol.policy));
  proto["alert_threshold_s"] = config.protocol.alert_threshold_s;
  proto["sleep_ramp"] = node::to_string(config.protocol.sleep.kind);
  proto["sleep_initial_s"] = config.protocol.sleep.initial_s;
  proto["sleep_increment_s"] = config.protocol.sleep.increment_s;
  proto["sleep_max_s"] = config.protocol.sleep.max_s;
  proto["response_wait_s"] = config.protocol.response_wait_s;
  proto["covered_timeout_s"] = config.protocol.covered_timeout_s;
  io::Json duty;
  duty["period_s"] = config.protocol.duty_cycle.period_s;
  proto["duty_cycle"] = std::move(duty);
  io::Json hold;
  hold["hold_window_s"] = config.protocol.threshold_hold.hold_window_s;
  proto["threshold_hold"] = std::move(hold);
  j["protocol"] = std::move(proto);

  io::Json stim;
  stim["kind"] = to_string(config.stimulus);
  switch (config.stimulus) {
    case StimulusKind::kRadial:
      stim["radial"] = radial_json(config.radial);
      break;
    case StimulusKind::kTwoSources:
      stim["radial"] = radial_json(config.radial);
      stim["radial_second"] = radial_json(config.radial_second);
      break;
    case StimulusKind::kPde: {
      io::Json p;
      p["source"] = vec_json(config.pde.source);
      p["diffusivity"] = config.pde.diffusivity;
      p["wind"] = vec_json(config.pde.wind);
      p["source_rate"] = config.pde.source_rate;
      p["threshold"] = config.pde.threshold;
      p["grid"] = config.pde.nx;
      stim["pde"] = std::move(p);
      break;
    }
    case StimulusKind::kPlume: {
      io::Json p;
      p["source"] = vec_json(config.plume.source);
      p["mass"] = config.plume.mass;
      p["diffusivity"] = config.plume.diffusivity;
      p["wind"] = vec_json(config.plume.wind);
      p["threshold"] = config.plume.threshold;
      stim["plume"] = std::move(p);
      break;
    }
  }
  j["stimulus"] = std::move(stim);

  io::Json chan;
  chan["kind"] = to_string(config.channel);
  switch (config.channel) {
    case ChannelKind::kPerfect: break;
    case ChannelKind::kBernoulli:
      chan["loss"] = config.channel_loss;
      break;
    case ChannelKind::kGilbertElliott:
      chan["p_good_to_bad"] = config.gilbert.p_good_to_bad;
      chan["p_bad_to_good"] = config.gilbert.p_bad_to_good;
      chan["loss_good"] = config.gilbert.loss_good;
      chan["loss_bad"] = config.gilbert.loss_bad;
      break;
  }
  j["channel"] = std::move(chan);

  io::Json fail;
  fail["fraction"] = config.failures.fraction;
  fail["window_start_s"] = config.failures.window_start_s;
  fail["window_end_s"] = config.failures.window_end_s;
  j["failures"] = std::move(fail);

  io::Json mac;
  mac["enabled"] = config.mac.enabled;
  mac["slot_period_s"] = config.mac.slot_period_s;
  mac["cca_s"] = config.mac.cca_s;
  mac["backoff_unit_s"] = config.mac.backoff_unit_s;
  mac["max_backoff_exponent"] = config.mac.max_backoff_exponent;
  mac["max_attempts"] = config.mac.max_attempts;
  mac["ack_wait_s"] = config.mac.ack_wait_s;
  mac["capture_margin_s"] = config.mac.capture_margin_s;
  j["mac"] = std::move(mac);

  io::Json coll;
  coll["sink_placement"] = std::string(net::to_string(config.collection.sink_placement));
  coll["max_hops"] = static_cast<double>(config.collection.max_hops);
  coll["node_queue_limit"] =
      static_cast<double>(config.collection.node_queue_limit);
  j["collection"] = std::move(coll);
  return j;
}

io::Json to_json(const metrics::RunMetrics& m) {
  io::Json j;
  j["node_count"] = m.node_count;
  j["duration_s"] = m.duration_s;
  j["avg_delay_s"] = m.avg_delay_s;
  j["p95_delay_s"] = m.p95_delay_s;
  j["max_delay_s"] = m.max_delay_s;
  j["reached"] = m.reached;
  j["detected"] = m.detected;
  j["missed"] = m.missed;
  j["censored"] = m.censored;
  j["avg_energy_j"] = m.avg_energy_j;
  j["total_energy_j"] = m.total_energy_j;
  j["avg_active_fraction"] = m.avg_active_fraction;
  j["broadcasts"] = m.network.broadcasts;
  j["deliveries"] = m.network.deliveries;
  j["dropped_channel"] = m.network.dropped_channel;
  j["wakeups"] = m.protocol.wakeups;
  j["alert_entries"] = m.protocol.alert_entries;
  j["responses_pushed"] = m.protocol.responses_pushed;
  j["failures"] = m.protocol.failures;
  return j;
}

io::Json to_json(const metrics::NodeOutcome& o) {
  io::Json j;
  j["id"] = static_cast<double>(o.id);
  j["position"] = vec_json(o.position);
  j["arrival_s"] = o.arrival;     // NaN/inf render as null
  j["detected_s"] = o.detected;
  j["delay_s"] = o.was_detected ? io::Json(o.delay_s) : io::Json(nullptr);
  j["reached"] = o.was_reached;
  j["failed"] = o.failed;
  j["energy_j"] = o.energy_j;
  j["energy_tx_j"] = o.energy_tx_j;
  j["active_s"] = o.active_s;
  j["transitions"] = static_cast<double>(o.transitions);
  return j;
}

io::Json run_record(const ScenarioConfig& config, const RunResult& result) {
  io::Json j;
  j["config"] = to_json(config);
  j["metrics"] = to_json(result.metrics);
  io::Json outcomes{io::JsonArray{}};
  for (const auto& o : result.outcomes) outcomes.push_back(to_json(o));
  j["outcomes"] = std::move(outcomes);
  return j;
}

// --- Deserialisation --------------------------------------------------------

namespace {

[[noreturn]] void unknown_value(const char* what, std::string_view s) {
  throw std::runtime_error(std::string("scenario_from_json: unknown ") + what +
                           " \"" + std::string(s) + "\"");
}

void read_known_keys(const io::Json& j, const char* context,
                     std::initializer_list<std::string_view> known) {
  for (const auto& [key, value] : j.as_object()) {
    (void)value;
    bool ok = false;
    for (const auto k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw std::runtime_error(std::string("scenario_from_json: unknown key \"") +
                               key + "\" in " + context);
    }
  }
}

geom::Vec2 vec_from_json(const io::Json& j) {
  read_known_keys(j, "vector", {"x", "y"});
  return geom::Vec2{j.number_or("x", 0.0), j.number_or("y", 0.0)};
}

stimulus::RadialFrontConfig radial_from_json(
    const io::Json& j, stimulus::RadialFrontConfig base) {
  read_known_keys(j, "radial", {"source", "base_speed_mps", "accel",
                                "start_time_s", "max_radius_m", "harmonics"});
  if (j.contains("source")) base.source = vec_from_json(j.at("source"));
  base.base_speed = j.number_or("base_speed_mps", base.base_speed);
  base.accel = j.number_or("accel", base.accel);
  base.start_time = j.number_or("start_time_s", base.start_time);
  base.max_radius = j.number_or("max_radius_m", base.max_radius);
  if (j.contains("harmonics")) {
    base.harmonics.clear();
    for (const auto& h : j.at("harmonics").as_array()) {
      read_known_keys(h, "harmonic", {"k", "amplitude", "phase"});
      base.harmonics.push_back(stimulus::RadialFrontConfig::Harmonic{
          .k = static_cast<int>(h.number_or("k", 1)),
          .amplitude = h.number_or("amplitude", 0.0),
          .phase = h.number_or("phase", 0.0),
      });
    }
  }
  return base;
}

}  // namespace

StimulusKind stimulus_kind_from_string(std::string_view s) {
  if (s == "radial") return StimulusKind::kRadial;
  if (s == "pde") return StimulusKind::kPde;
  if (s == "plume") return StimulusKind::kPlume;
  if (s == "two-sources") return StimulusKind::kTwoSources;
  unknown_value("stimulus kind", s);
}

ChannelKind channel_kind_from_string(std::string_view s) {
  if (s == "perfect") return ChannelKind::kPerfect;
  if (s == "bernoulli") return ChannelKind::kBernoulli;
  if (s == "gilbert-elliott") return ChannelKind::kGilbertElliott;
  unknown_value("channel kind", s);
}

DeploymentKind deployment_kind_from_string(std::string_view s) {
  if (s == "grid") return DeploymentKind::kGrid;
  if (s == "uniform") return DeploymentKind::kUniform;
  if (s == "poisson-disk") return DeploymentKind::kPoissonDisk;
  unknown_value("deployment kind", s);
}

core::Policy policy_from_string(std::string_view s) {
  // The registry is the single source of policy names; its error message
  // already lists the registered ones.
  return core::policy_from_name(s);
}

node::RampKind ramp_kind_from_string(std::string_view s) {
  if (s == "linear") return node::RampKind::kLinear;
  if (s == "exponential") return node::RampKind::kExponential;
  if (s == "fixed") return node::RampKind::kFixed;
  unknown_value("ramp kind", s);
}

ScenarioConfig scenario_from_json(const io::Json& j, ScenarioConfig base) {
  read_known_keys(j, "scenario",
                  {"seed", "duration_s", "deployment", "radio", "power",
                   "protocol", "stimulus", "channel", "failures", "mac",
                   "collection"});

  const double seed = j.number_or("seed", static_cast<double>(base.seed));
  if (seed < 0.0) {
    throw std::runtime_error("scenario_from_json: seed must be >= 0");
  }
  base.seed = static_cast<std::uint64_t>(seed);
  base.duration_s = j.number_or("duration_s", base.duration_s);

  if (j.contains("deployment")) {
    const auto& d = j.at("deployment");
    read_known_keys(d, "deployment",
                    {"kind", "count", "region_m", "grid_jitter",
                     "min_separation"});
    if (d.contains("kind")) {
      base.deployment.kind = deployment_kind_from_string(d.at("kind").as_string());
    }
    const double count =
        d.number_or("count", static_cast<double>(base.deployment.count));
    if (count < 0.0) {
      throw std::runtime_error(
          "scenario_from_json: deployment count must be >= 0");
    }
    base.deployment.count = static_cast<std::size_t>(count);
    if (d.contains("region_m")) {
      base.deployment.region = geom::Aabb::square(d.at("region_m").as_double());
    }
    base.deployment.grid_jitter =
        d.number_or("grid_jitter", base.deployment.grid_jitter);
    base.deployment.min_separation =
        d.number_or("min_separation", base.deployment.min_separation);
  }

  if (j.contains("radio")) {
    const auto& r = j.at("radio");
    read_known_keys(r, "radio",
                    {"range_m", "data_rate_bps", "max_jitter_s",
                     "propagation_s"});
    base.radio.range_m = r.number_or("range_m", base.radio.range_m);
    base.radio.data_rate_bps =
        r.number_or("data_rate_bps", base.radio.data_rate_bps);
    base.radio.max_jitter_s =
        r.number_or("max_jitter_s", base.radio.max_jitter_s);
    base.radio.propagation_s =
        r.number_or("propagation_s", base.radio.propagation_s);
  }

  if (j.contains("power")) {
    const auto& p = j.at("power");
    read_known_keys(p, "power",
                    {"mcu_active_w", "sleep_w", "radio_rx_w", "radio_tx_w",
                     "transition_w", "transition_time_s", "data_rate_bps"});
    base.power.mcu_active_w = p.number_or("mcu_active_w", base.power.mcu_active_w);
    base.power.sleep_w = p.number_or("sleep_w", base.power.sleep_w);
    base.power.radio_rx_w = p.number_or("radio_rx_w", base.power.radio_rx_w);
    base.power.radio_tx_w = p.number_or("radio_tx_w", base.power.radio_tx_w);
    base.power.transition_w = p.number_or("transition_w", base.power.transition_w);
    base.power.transition_time_s =
        p.number_or("transition_time_s", base.power.transition_time_s);
    base.power.data_rate_bps =
        p.number_or("data_rate_bps", base.power.data_rate_bps);
  }

  if (j.contains("protocol")) {
    const auto& p = j.at("protocol");
    read_known_keys(
        p, "protocol",
        {"policy", "alert_threshold_s", "sleep_ramp", "sleep_initial_s",
         "sleep_increment_s", "sleep_factor", "sleep_max_s", "response_wait_s",
         "covered_timeout_s", "duty_cycle", "threshold_hold"});
    if (p.contains("policy")) {
      base.protocol.policy = policy_from_string(p.at("policy").as_string());
    }
    base.protocol.alert_threshold_s =
        p.number_or("alert_threshold_s", base.protocol.alert_threshold_s);
    if (p.contains("sleep_ramp")) {
      base.protocol.sleep.kind =
          ramp_kind_from_string(p.at("sleep_ramp").as_string());
    }
    base.protocol.sleep.initial_s =
        p.number_or("sleep_initial_s", base.protocol.sleep.initial_s);
    base.protocol.sleep.increment_s =
        p.number_or("sleep_increment_s", base.protocol.sleep.increment_s);
    base.protocol.sleep.factor =
        p.number_or("sleep_factor", base.protocol.sleep.factor);
    base.protocol.sleep.max_s =
        p.number_or("sleep_max_s", base.protocol.sleep.max_s);
    base.protocol.response_wait_s =
        p.number_or("response_wait_s", base.protocol.response_wait_s);
    base.protocol.covered_timeout_s =
        p.number_or("covered_timeout_s", base.protocol.covered_timeout_s);
    // Per-policy parameter blocks; present or not independently of which
    // policy is selected (a campaign may sweep the policy axis).
    if (p.contains("duty_cycle")) {
      const auto& d = p.at("duty_cycle");
      read_known_keys(d, "duty_cycle", {"period_s"});
      base.protocol.duty_cycle.period_s =
          d.number_or("period_s", base.protocol.duty_cycle.period_s);
    }
    if (p.contains("threshold_hold")) {
      const auto& t = p.at("threshold_hold");
      read_known_keys(t, "threshold_hold", {"hold_window_s"});
      base.protocol.threshold_hold.hold_window_s = t.number_or(
          "hold_window_s", base.protocol.threshold_hold.hold_window_s);
    }
  }

  if (j.contains("stimulus")) {
    const auto& s = j.at("stimulus");
    read_known_keys(s, "stimulus",
                    {"kind", "radial", "radial_second", "pde", "plume"});
    if (s.contains("kind")) {
      base.stimulus = stimulus_kind_from_string(s.at("kind").as_string());
    }
    if (s.contains("radial")) {
      base.radial = radial_from_json(s.at("radial"), base.radial);
    }
    if (s.contains("radial_second")) {
      base.radial_second =
          radial_from_json(s.at("radial_second"), base.radial_second);
    }
    if (s.contains("pde")) {
      const auto& p = s.at("pde");
      read_known_keys(p, "pde", {"source", "diffusivity", "wind",
                                 "source_rate", "threshold", "grid"});
      if (p.contains("source")) base.pde.source = vec_from_json(p.at("source"));
      base.pde.diffusivity = p.number_or("diffusivity", base.pde.diffusivity);
      if (p.contains("wind")) base.pde.wind = vec_from_json(p.at("wind"));
      base.pde.source_rate = p.number_or("source_rate", base.pde.source_rate);
      base.pde.threshold = p.number_or("threshold", base.pde.threshold);
      if (p.contains("grid")) {
        base.pde.nx = static_cast<int>(p.at("grid").as_double());
        base.pde.ny = base.pde.nx;
      }
    }
    if (s.contains("plume")) {
      const auto& p = s.at("plume");
      read_known_keys(p, "plume",
                      {"source", "mass", "diffusivity", "wind", "threshold"});
      if (p.contains("source")) base.plume.source = vec_from_json(p.at("source"));
      base.plume.mass = p.number_or("mass", base.plume.mass);
      base.plume.diffusivity = p.number_or("diffusivity", base.plume.diffusivity);
      if (p.contains("wind")) base.plume.wind = vec_from_json(p.at("wind"));
      base.plume.threshold = p.number_or("threshold", base.plume.threshold);
    }
  }

  if (j.contains("channel")) {
    const auto& c = j.at("channel");
    read_known_keys(c, "channel",
                    {"kind", "loss", "p_good_to_bad", "p_bad_to_good",
                     "loss_good", "loss_bad"});
    if (c.contains("kind")) {
      base.channel = channel_kind_from_string(c.at("kind").as_string());
    }
    base.channel_loss = c.number_or("loss", base.channel_loss);
    base.gilbert.p_good_to_bad =
        c.number_or("p_good_to_bad", base.gilbert.p_good_to_bad);
    base.gilbert.p_bad_to_good =
        c.number_or("p_bad_to_good", base.gilbert.p_bad_to_good);
    base.gilbert.loss_good = c.number_or("loss_good", base.gilbert.loss_good);
    base.gilbert.loss_bad = c.number_or("loss_bad", base.gilbert.loss_bad);
  }

  if (j.contains("failures")) {
    const auto& f = j.at("failures");
    read_known_keys(f, "failures",
                    {"fraction", "window_start_s", "window_end_s"});
    base.failures.fraction = f.number_or("fraction", base.failures.fraction);
    base.failures.window_start_s =
        f.number_or("window_start_s", base.failures.window_start_s);
    base.failures.window_end_s =
        f.number_or("window_end_s", base.failures.window_end_s);
  }

  if (j.contains("mac")) {
    const auto& m = j.at("mac");
    read_known_keys(m, "mac",
                    {"enabled", "slot_period_s", "cca_s", "backoff_unit_s",
                     "max_backoff_exponent", "max_attempts", "ack_wait_s",
                     "capture_margin_s"});
    base.mac.enabled = m.bool_or("enabled", base.mac.enabled);
    base.mac.slot_period_s =
        m.number_or("slot_period_s", base.mac.slot_period_s);
    base.mac.cca_s = m.number_or("cca_s", base.mac.cca_s);
    base.mac.backoff_unit_s =
        m.number_or("backoff_unit_s", base.mac.backoff_unit_s);
    base.mac.max_backoff_exponent = static_cast<int>(m.number_or(
        "max_backoff_exponent", base.mac.max_backoff_exponent));
    base.mac.max_attempts =
        static_cast<int>(m.number_or("max_attempts", base.mac.max_attempts));
    base.mac.ack_wait_s = m.number_or("ack_wait_s", base.mac.ack_wait_s);
    base.mac.capture_margin_s =
        m.number_or("capture_margin_s", base.mac.capture_margin_s);
  }

  if (j.contains("collection")) {
    const auto& c = j.at("collection");
    read_known_keys(c, "collection",
                    {"sink_placement", "max_hops", "node_queue_limit"});
    if (c.contains("sink_placement")) {
      base.collection.sink_placement =
          net::sink_placement_from_string(c.at("sink_placement").as_string());
    }
    base.collection.max_hops = static_cast<std::uint32_t>(
        c.number_or("max_hops", base.collection.max_hops));
    base.collection.node_queue_limit = static_cast<std::uint32_t>(
        c.number_or("node_queue_limit", base.collection.node_queue_limit));
  }

  return base;
}

}  // namespace pas::world

#include "world/config_json.hpp"

namespace pas::world {

namespace {

io::Json vec_json(geom::Vec2 v) {
  io::Json j;
  j["x"] = v.x;
  j["y"] = v.y;
  return j;
}

io::Json radial_json(const stimulus::RadialFrontConfig& r) {
  io::Json j;
  j["source"] = vec_json(r.source);
  j["base_speed_mps"] = r.base_speed;
  j["accel"] = r.accel;
  j["start_time_s"] = r.start_time;
  j["max_radius_m"] = r.max_radius;
  io::Json harmonics;
  for (const auto& h : r.harmonics) {
    io::Json hj;
    hj["k"] = h.k;
    hj["amplitude"] = h.amplitude;
    hj["phase"] = h.phase;
    harmonics.push_back(std::move(hj));
  }
  j["harmonics"] = harmonics.is_null() ? io::Json(io::JsonArray{}) : harmonics;
  return j;
}

}  // namespace

io::Json to_json(const ScenarioConfig& config) {
  io::Json j;
  j["seed"] = static_cast<double>(config.seed);
  j["duration_s"] = config.duration_s;

  io::Json dep;
  dep["kind"] = to_string(config.deployment.kind);
  dep["count"] = config.deployment.count;
  dep["region_m"] = config.deployment.region.width();
  j["deployment"] = std::move(dep);

  io::Json radio;
  radio["range_m"] = config.radio.range_m;
  radio["data_rate_bps"] = config.radio.data_rate_bps;
  radio["max_jitter_s"] = config.radio.max_jitter_s;
  j["radio"] = std::move(radio);

  io::Json power;
  power["mcu_active_w"] = config.power.mcu_active_w;
  power["sleep_w"] = config.power.sleep_w;
  power["radio_rx_w"] = config.power.radio_rx_w;
  power["radio_tx_w"] = config.power.radio_tx_w;
  power["transition_w"] = config.power.transition_w;
  power["data_rate_bps"] = config.power.data_rate_bps;
  j["power"] = std::move(power);

  io::Json proto;
  proto["policy"] = std::string(core::to_string(config.protocol.policy));
  proto["alert_threshold_s"] = config.protocol.alert_threshold_s;
  proto["sleep_ramp"] = node::to_string(config.protocol.sleep.kind);
  proto["sleep_initial_s"] = config.protocol.sleep.initial_s;
  proto["sleep_increment_s"] = config.protocol.sleep.increment_s;
  proto["sleep_max_s"] = config.protocol.sleep.max_s;
  proto["response_wait_s"] = config.protocol.response_wait_s;
  proto["covered_timeout_s"] = config.protocol.covered_timeout_s;
  j["protocol"] = std::move(proto);

  io::Json stim;
  stim["kind"] = to_string(config.stimulus);
  switch (config.stimulus) {
    case StimulusKind::kRadial:
      stim["radial"] = radial_json(config.radial);
      break;
    case StimulusKind::kTwoSources:
      stim["radial"] = radial_json(config.radial);
      stim["radial_second"] = radial_json(config.radial_second);
      break;
    case StimulusKind::kPde: {
      io::Json p;
      p["source"] = vec_json(config.pde.source);
      p["diffusivity"] = config.pde.diffusivity;
      p["wind"] = vec_json(config.pde.wind);
      p["source_rate"] = config.pde.source_rate;
      p["threshold"] = config.pde.threshold;
      p["grid"] = config.pde.nx;
      stim["pde"] = std::move(p);
      break;
    }
    case StimulusKind::kPlume: {
      io::Json p;
      p["source"] = vec_json(config.plume.source);
      p["mass"] = config.plume.mass;
      p["diffusivity"] = config.plume.diffusivity;
      p["wind"] = vec_json(config.plume.wind);
      p["threshold"] = config.plume.threshold;
      stim["plume"] = std::move(p);
      break;
    }
  }
  j["stimulus"] = std::move(stim);

  io::Json chan;
  switch (config.channel) {
    case ChannelKind::kPerfect: chan["kind"] = "perfect"; break;
    case ChannelKind::kBernoulli:
      chan["kind"] = "bernoulli";
      chan["loss"] = config.channel_loss;
      break;
    case ChannelKind::kGilbertElliott:
      chan["kind"] = "gilbert-elliott";
      chan["p_good_to_bad"] = config.gilbert.p_good_to_bad;
      chan["p_bad_to_good"] = config.gilbert.p_bad_to_good;
      chan["loss_good"] = config.gilbert.loss_good;
      chan["loss_bad"] = config.gilbert.loss_bad;
      break;
  }
  j["channel"] = std::move(chan);

  io::Json fail;
  fail["fraction"] = config.failures.fraction;
  fail["window_start_s"] = config.failures.window_start_s;
  fail["window_end_s"] = config.failures.window_end_s;
  j["failures"] = std::move(fail);
  return j;
}

io::Json to_json(const metrics::RunMetrics& m) {
  io::Json j;
  j["node_count"] = m.node_count;
  j["duration_s"] = m.duration_s;
  j["avg_delay_s"] = m.avg_delay_s;
  j["p95_delay_s"] = m.p95_delay_s;
  j["max_delay_s"] = m.max_delay_s;
  j["reached"] = m.reached;
  j["detected"] = m.detected;
  j["missed"] = m.missed;
  j["censored"] = m.censored;
  j["avg_energy_j"] = m.avg_energy_j;
  j["total_energy_j"] = m.total_energy_j;
  j["avg_active_fraction"] = m.avg_active_fraction;
  j["broadcasts"] = m.network.broadcasts;
  j["deliveries"] = m.network.deliveries;
  j["dropped_channel"] = m.network.dropped_channel;
  j["wakeups"] = m.protocol.wakeups;
  j["alert_entries"] = m.protocol.alert_entries;
  j["responses_pushed"] = m.protocol.responses_pushed;
  j["failures"] = m.protocol.failures;
  return j;
}

io::Json to_json(const metrics::NodeOutcome& o) {
  io::Json j;
  j["id"] = static_cast<double>(o.id);
  j["position"] = vec_json(o.position);
  j["arrival_s"] = o.arrival;     // NaN/inf render as null
  j["detected_s"] = o.detected;
  j["delay_s"] = o.was_detected ? io::Json(o.delay_s) : io::Json(nullptr);
  j["reached"] = o.was_reached;
  j["failed"] = o.failed;
  j["energy_j"] = o.energy_j;
  j["energy_tx_j"] = o.energy_tx_j;
  j["active_s"] = o.active_s;
  j["transitions"] = static_cast<double>(o.transitions);
  return j;
}

io::Json run_record(const ScenarioConfig& config, const RunResult& result) {
  io::Json j;
  j["config"] = to_json(config);
  j["metrics"] = to_json(result.metrics);
  io::Json outcomes{io::JsonArray{}};
  for (const auto& o : result.outcomes) outcomes.push_back(to_json(o));
  j["outcomes"] = std::move(outcomes);
  return j;
}

}  // namespace pas::world

#include "world/sweep.hpp"

#include "runtime/parallel_for.hpp"

namespace pas::world {

metrics::RunMetrics run_replication(Workspace& workspace,
                                    const ScenarioConfig& base,
                                    std::size_t r) {
  ScenarioConfig cfg = base;
  cfg.seed = base.seed + r;
  cfg.enable_trace = false;  // traces are per-run debugging, not sweeps
  return workspace.run_metrics(cfg);
}

metrics::RunMetrics run_replication(const ScenarioConfig& base,
                                    std::size_t r) {
  Workspace workspace;
  return run_replication(workspace, base, r);
}

ReplicatedMetrics reduce_runs(std::vector<metrics::RunMetrics> runs) {
  if (runs.empty()) {
    throw std::invalid_argument("reduce_runs: need >= 1 replication");
  }
  ReplicatedMetrics out;
  std::vector<double> delays, energies, fractions;
  delays.reserve(runs.size());
  energies.reserve(runs.size());
  fractions.reserve(runs.size());
  double missed = 0.0, broadcasts = 0.0;
  for (const auto& m : runs) {
    delays.push_back(m.avg_delay_s);
    energies.push_back(m.avg_energy_j);
    fractions.push_back(m.avg_active_fraction);
    missed += static_cast<double>(m.missed);
    broadcasts += static_cast<double>(m.network.broadcasts);
  }
  out.delay_s = metrics::Summary::of(delays);
  for (const double d : delays) out.delay_digest.add(d);
  out.energy_j = metrics::Summary::of(energies);
  out.active_fraction = metrics::Summary::of(fractions);
  out.mean_missed = missed / static_cast<double>(runs.size());
  out.mean_broadcasts = broadcasts / static_cast<double>(runs.size());
  out.runs = std::move(runs);
  return out;
}

ReplicatedMetrics run_replicated(const ScenarioConfig& base,
                                 std::size_t replications,
                                 runtime::ThreadPool* pool) {
  if (replications == 0) {
    throw std::invalid_argument("run_replicated: need >= 1 replication");
  }

  std::vector<metrics::RunMetrics> runs(replications);
  if (pool != nullptr) {
    // One workspace per contiguous chunk: each worker re-seeds its own
    // world instead of rebuilding one per replication. Chunk by worker
    // count (replications are homogeneous, so balance is unaffected) so
    // the workspace's cached stimulus model actually gets hits — the
    // default ~4-chunks-per-worker split would rebuild it per chunk,
    // which for the PDE model means re-running the whole solver.
    const std::size_t chunk =
        (replications + pool->thread_count() - 1) / pool->thread_count();
    runtime::parallel_for_ranges(
        *pool, replications,
        [&base, &runs](std::size_t begin, std::size_t end) {
          Workspace workspace;
          for (std::size_t r = begin; r < end; ++r) {
            runs[r] = run_replication(workspace, base, r);
          }
        },
        chunk);
  } else {
    Workspace workspace;
    for (std::size_t r = 0; r < replications; ++r) {
      runs[r] = run_replication(workspace, base, r);
    }
  }

  return reduce_runs(std::move(runs));
}

}  // namespace pas::world

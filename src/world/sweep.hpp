// Replicated scenario execution.
//
// One simulation run is single-threaded by construction; a sweep point is
// averaged over R replications (same scenario, seeds base..base+R−1), and
// replications run concurrently on a ThreadPool — the HPC shape of this
// library: embarrassingly parallel replications around a serial kernel.
#pragma once

#include <optional>
#include <vector>

#include "metrics/stats.hpp"
#include "metrics/tdigest.hpp"
#include "runtime/thread_pool.hpp"
#include "world/scenario.hpp"
#include "world/workspace.hpp"

namespace pas::world {

struct ReplicatedMetrics {
  metrics::Summary delay_s;       // of per-run average detection delay
  metrics::Summary energy_j;      // of per-run average per-node energy
  metrics::Summary active_fraction;
  double mean_missed = 0.0;       // reached-but-undetected nodes per run
  double mean_broadcasts = 0.0;
  /// Streaming sketch over per-run average delays, fed in replication
  /// order by reduce_runs. The Aggregator reads p50/p95/p99 from it for
  /// large replication counts instead of sorting the full sample (exact
  /// quantiles are kept for small counts, so golden CSVs don't move).
  metrics::TDigest delay_digest;
  std::vector<metrics::RunMetrics> runs;
};

/// Runs replication `r` of `base` — seed base.seed + r, traces disabled —
/// the unit of work the campaign runner schedules. Exposed so the engine's
/// replication-split path and run_replicated share one definition of what
/// "replication r" means. The workspace overload reuses `workspace`'s
/// buffers and cached stimulus model (identical results); the plain
/// overload builds a throwaway workspace per call.
[[nodiscard]] metrics::RunMetrics run_replication(Workspace& workspace,
                                                  const ScenarioConfig& base,
                                                  std::size_t r);
[[nodiscard]] metrics::RunMetrics run_replication(const ScenarioConfig& base,
                                                  std::size_t r);

/// Reduces per-run metrics (indexed by replication) into the replicated
/// aggregate. Order-independent by construction: `runs` is already in
/// replication order no matter which thread produced which entry, so any
/// parallel schedule yields the same numbers as the serial loop.
[[nodiscard]] ReplicatedMetrics reduce_runs(
    std::vector<metrics::RunMetrics> runs);

/// Runs `replications` copies of `base` with seeds base.seed + r. When
/// `pool` is non-null the replications execute in parallel (results are
/// ordered by replication index either way, so output is deterministic).
[[nodiscard]] ReplicatedMetrics run_replicated(
    const ScenarioConfig& base, std::size_t replications,
    runtime::ThreadPool* pool = nullptr);

}  // namespace pas::world

// The canonical experiment setup of the paper's §4.
//
// "We set up 30 nodes; and each node has a transmission range of 10 m."
// The paper does not publish the field size or front speed; we fix a
// 40 m × 40 m region with the stimulus released near one corner and an
// anisotropic front of ~0.5 m/s mean speed, which reaches the far corner
// well inside the simulated 150 s. Every bench and integration test builds
// on this so the figures share one world.
#pragma once

#include <cstdint>

#include "world/scenario.hpp"

namespace pas::world {

struct PaperSetupOverrides {
  core::Policy policy = core::Policy::kPas;
  /// Maximum sleeping interval (Figs 4/6 x-axis).
  sim::Duration max_sleep_s = 20.0;
  /// Alert-time threshold T_alert (Figs 5/7 x-axis).
  sim::Duration alert_threshold_s = 20.0;
  std::uint64_t seed = 1;
  StimulusKind stimulus = StimulusKind::kRadial;
};

/// 30 nodes, 10 m range, 40×40 m field, anisotropic radial front from the
/// corner, Telos power numbers, 150 s horizon.
[[nodiscard]] ScenarioConfig paper_scenario(const PaperSetupOverrides& o = {});

}  // namespace pas::world

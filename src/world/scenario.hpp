// Scenario assembly and execution — the library's top-level API.
//
// A ScenarioConfig fully describes one simulated run (deployment, stimulus,
// radio/channel, protocol policy, failures, duration); run_scenario()
// builds the world, drives the simulation, and returns metrics + per-node
// outcomes. Identical configs (same seed) produce identical results.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "energy/power_profile.hpp"
#include "geom/aabb.hpp"
#include "metrics/report.hpp"
#include "net/collection.hpp"
#include "net/mac.hpp"
#include "net/network.hpp"
#include "node/failure_model.hpp"
#include "sim/trace.hpp"
#include "stimulus/advection_diffusion.hpp"
#include "stimulus/arrival_map.hpp"
#include "stimulus/composite.hpp"
#include "stimulus/plume.hpp"
#include "stimulus/radial_front.hpp"
#include "world/deployment.hpp"

namespace pas::world {

enum class StimulusKind : std::uint8_t {
  kRadial,
  kPde,
  kPlume,
  /// Two simultaneous radial releases (config.radial + config.radial_second)
  /// merged by stimulus::CompositeModel.
  kTwoSources,
};

[[nodiscard]] constexpr const char* to_string(StimulusKind k) noexcept {
  switch (k) {
    case StimulusKind::kRadial: return "radial";
    case StimulusKind::kPde: return "pde";
    case StimulusKind::kPlume: return "plume";
    case StimulusKind::kTwoSources: return "two-sources";
  }
  return "?";
}

enum class ChannelKind : std::uint8_t {
  kPerfect,
  kBernoulli,
  kGilbertElliott,
};

struct ScenarioConfig {
  std::uint64_t seed = 1;

  DeploymentConfig deployment{};
  /// Deployments whose disk graph is disconnected are redrawn up to this
  /// many times (each attempt advances the deployment RNG stream).
  std::size_t max_deployment_attempts = 64;

  net::RadioConfig radio{};
  energy::PowerProfile power = energy::PowerProfile::telos();
  core::ProtocolConfig protocol{};

  StimulusKind stimulus = StimulusKind::kRadial;
  stimulus::RadialFrontConfig radial{};
  /// Second release for StimulusKind::kTwoSources.
  stimulus::RadialFrontConfig radial_second{};
  stimulus::AdvectionDiffusionConfig pde{};
  stimulus::GaussianPlumeConfig plume{};

  ChannelKind channel = ChannelKind::kPerfect;
  double channel_loss = 0.0;  // Bernoulli loss probability
  net::GilbertElliottChannel::Params gilbert{};

  node::FailureConfig failures{};

  /// Slotted LPL MAC (off by default — the coin-flip single-hop path; runs
  /// are byte-identical to pre-MAC builds while disabled).
  net::MacConfig mac{};
  /// Multihop collection tree (only active when mac.enabled).
  net::CollectionConfig collection{};

  /// Simulated duration (s).
  sim::Duration duration_s = 150.0;

  bool enable_trace = false;
};

/// Structured run telemetry: kernel and protocol counters accumulated over
/// one or more runs. A single RunResult carries runs == 1; campaign code
/// add()s every replication's RunMetrics into one of these per point. All
/// fields are pure functions of the configs + seeds involved, so telemetry
/// is byte-reproducible however the runs were scheduled.
struct RunTelemetry {
  std::size_t runs = 0;
  metrics::KernelStats kernel{};
  core::ProtocolStats protocol{};
  net::MacStats mac{};
  net::CollectionStats collection{};

  void add(const metrics::RunMetrics& m) {
    ++runs;
    kernel.add(m.kernel);
    protocol.add(m.protocol);
    mac.add(m.mac);
    collection.add(m.collection);
  }
};

struct RunResult {
  metrics::RunMetrics metrics{};
  std::vector<metrics::NodeOutcome> outcomes;
  std::vector<geom::Vec2> positions;
  sim::TraceLog trace;
  RunTelemetry telemetry{};
  /// Deployment attempts consumed before a connected layout was found.
  std::size_t deployment_attempts = 1;
};

/// Builds the stimulus model configured by `config` (exposed for tests and
/// examples that want the model without running a scenario).
[[nodiscard]] std::unique_ptr<stimulus::StimulusModel> make_stimulus(
    const ScenarioConfig& config);

/// Runs one complete simulation.
[[nodiscard]] RunResult run_scenario(const ScenarioConfig& config);

}  // namespace pas::world

// Node deployment generators.
//
// Three layouts: a jittered grid (planned installations), uniform random
// (aerial scattering — the paper's implied setup), and Poisson-disk (random
// but with a minimum spacing). Deployments are drawn from the dedicated
// deployment RNG stream so the same seed yields the same field.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec2.hpp"
#include "sim/rng.hpp"

namespace pas::world {

enum class DeploymentKind : std::uint8_t {
  kGrid,
  kUniform,
  kPoissonDisk,
};

[[nodiscard]] constexpr const char* to_string(DeploymentKind k) noexcept {
  switch (k) {
    case DeploymentKind::kGrid: return "grid";
    case DeploymentKind::kUniform: return "uniform";
    case DeploymentKind::kPoissonDisk: return "poisson-disk";
  }
  return "?";
}

struct DeploymentConfig {
  DeploymentKind kind = DeploymentKind::kUniform;
  std::size_t count = 30;
  geom::Aabb region = geom::Aabb::square(40.0);
  /// Grid: per-node jitter as a fraction of the cell pitch, in [0, 0.5].
  double grid_jitter = 0.2;
  /// Poisson-disk: minimum pairwise separation (m).
  double min_separation = 4.0;
};

/// `count` positions inside `region` per the configured layout.
/// Poisson-disk throws std::runtime_error if the spacing cannot fit `count`
/// points after a bounded number of dart throws.
[[nodiscard]] std::vector<geom::Vec2> generate_deployment(
    const DeploymentConfig& config, sim::Pcg32& rng);

/// Individual generators (also used directly by tests).
[[nodiscard]] std::vector<geom::Vec2> grid_deployment(std::size_t count,
                                                      geom::Aabb region,
                                                      double jitter,
                                                      sim::Pcg32& rng);
[[nodiscard]] std::vector<geom::Vec2> uniform_deployment(std::size_t count,
                                                         geom::Aabb region,
                                                         sim::Pcg32& rng);
[[nodiscard]] std::vector<geom::Vec2> poisson_disk_deployment(
    std::size_t count, geom::Aabb region, double min_separation,
    sim::Pcg32& rng);

/// True if the disk graph over `positions` with radius `range` is connected.
[[nodiscard]] bool is_connected(const std::vector<geom::Vec2>& positions,
                                double range);

}  // namespace pas::world

#include "world/paper_setup.hpp"

namespace pas::world {

ScenarioConfig paper_scenario(const PaperSetupOverrides& o) {
  ScenarioConfig cfg;
  cfg.seed = o.seed;

  cfg.deployment.kind = DeploymentKind::kUniform;
  cfg.deployment.count = 30;
  cfg.deployment.region = geom::Aabb::square(40.0);

  cfg.radio.range_m = 10.0;
  cfg.radio.data_rate_bps = cfg.power.data_rate_bps;

  cfg.protocol.policy = o.policy;
  cfg.protocol.alert_threshold_s = o.alert_threshold_s;
  cfg.protocol.sleep.initial_s = 1.0;
  cfg.protocol.sleep.increment_s = 1.0;
  cfg.protocol.sleep.max_s = o.max_sleep_s;

  cfg.stimulus = o.stimulus;

  // Anisotropic front from near the corner, mean 0.5 m/s, stopping at a
  // 34 m extent (a spill reaching its final size). The tuning serves three
  // properties the paper's evaluation depends on:
  //  * belt depth T_alert·v ≈ 10 m ≈ one radio hop, so PAS's beyond-one-hop
  //    information propagation actually matters versus SAS;
  //  * the spill covers only ~half the field, so the run measures the
  //    spreading phase rather than a steady state where every (always
  //    active) covered node drags sleeper energy toward NS;
  //  * mild anisotropy (Σ|amp| = 0.22) keeps the alert area irregular (the
  //    paper's Fig 2) while leaving formula 1's chord-based velocity
  //    estimates meaningful — under violent anisotropy the chords between
  //    detection points stop approximating the front normal and *both*
  //    schemes degrade into noise.
  cfg.radial.source = {3.0, 3.0};
  cfg.radial.base_speed = 0.5;
  cfg.radial.start_time = 5.0;
  cfg.radial.max_radius = 28.0;
  cfg.radial.harmonics = {{.k = 1, .amplitude = 0.10, .phase = 2.1},
                          {.k = 3, .amplitude = 0.12, .phase = 0.7}};

  // PDE variant: same region/source, diffusion-dominated spreading with a
  // light northeast drift.
  cfg.pde.region = cfg.deployment.region;
  cfg.pde.source = cfg.radial.source;
  cfg.pde.diffusivity = 1.2;
  cfg.pde.wind = {0.08, 0.06};
  cfg.pde.source_rate = 80.0;
  cfg.pde.threshold = 0.8;
  cfg.pde.start_time = 5.0;
  cfg.pde.horizon = 160.0;

  // Two-source variant: the corner spill plus a smaller, later release in
  // the opposite corner — fronts meet mid-field.
  cfg.radial_second = cfg.radial;
  cfg.radial_second.source = {36.0, 36.0};
  cfg.radial_second.base_speed = 0.35;
  cfg.radial_second.start_time = 30.0;
  cfg.radial_second.max_radius = 20.0;
  cfg.radial_second.harmonics = {{.k = 2, .amplitude = 0.15, .phase = 1.0}};

  // Plume variant: a large instantaneous release that covers most of the
  // field before dissolving (exercises covered→safe timeouts).
  cfg.plume.source = cfg.radial.source;
  cfg.plume.mass = 3000.0;
  cfg.plume.diffusivity = 1.5;
  cfg.plume.wind = {0.05, 0.05};
  cfg.plume.threshold = 0.35;
  cfg.plume.start_time = 5.0;

  cfg.duration_s = 150.0;
  return cfg;
}

}  // namespace pas::world

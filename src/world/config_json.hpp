// JSON serialisation of scenario configurations and run metrics.
//
// Examples emit these so downstream tooling (plotting scripts, experiment
// trackers) can consume runs without parsing tables; the JSON also serves
// as a complete, human-readable record of every parameter that shaped a
// result.
#pragma once

#include "io/json.hpp"
#include "metrics/report.hpp"
#include "world/scenario.hpp"

namespace pas::world {

/// Full dump of a scenario configuration (every field that affects the
/// simulation, grouped by subsystem).
[[nodiscard]] io::Json to_json(const ScenarioConfig& config);

/// Run-level metrics as JSON.
[[nodiscard]] io::Json to_json(const metrics::RunMetrics& metrics);

/// One node's outcome row.
[[nodiscard]] io::Json to_json(const metrics::NodeOutcome& outcome);

/// Complete run record: {"config": ..., "metrics": ..., "outcomes": [...]}.
[[nodiscard]] io::Json run_record(const ScenarioConfig& config,
                                  const RunResult& result);

}  // namespace pas::world

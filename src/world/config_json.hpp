// JSON serialisation (and scenario deserialisation) of configurations and
// run metrics.
//
// Examples emit these so downstream tooling (plotting scripts, experiment
// trackers) can consume runs without parsing tables; the JSON also serves
// as a complete, human-readable record of every parameter that shaped a
// result. The experiment engine parses the same shape back to build the
// base scenario of a campaign manifest (see src/exp/manifest.hpp).
#pragma once

#include "io/json.hpp"
#include "metrics/report.hpp"
#include "world/scenario.hpp"

namespace pas::world {

/// Full dump of a scenario configuration (every field that affects the
/// simulation, grouped by subsystem).
[[nodiscard]] io::Json to_json(const ScenarioConfig& config);

/// Run-level metrics as JSON.
[[nodiscard]] io::Json to_json(const metrics::RunMetrics& metrics);

/// One node's outcome row.
[[nodiscard]] io::Json to_json(const metrics::NodeOutcome& outcome);

/// Complete run record: {"config": ..., "metrics": ..., "outcomes": [...]}.
[[nodiscard]] io::Json run_record(const ScenarioConfig& config,
                                  const RunResult& result);

/// Applies the fields present in `j` (the to_json(ScenarioConfig) shape,
/// all fields optional) on top of `base` and returns the result. Unknown
/// keys throw std::runtime_error so manifest typos fail loudly instead of
/// silently running the default scenario.
[[nodiscard]] ScenarioConfig scenario_from_json(const io::Json& j,
                                                ScenarioConfig base = {});

/// String → enum helpers shared by JSON parsing and the experiment axes.
[[nodiscard]] StimulusKind stimulus_kind_from_string(std::string_view s);
[[nodiscard]] ChannelKind channel_kind_from_string(std::string_view s);
[[nodiscard]] DeploymentKind deployment_kind_from_string(std::string_view s);
[[nodiscard]] core::Policy policy_from_string(std::string_view s);
[[nodiscard]] node::RampKind ramp_kind_from_string(std::string_view s);

[[nodiscard]] constexpr const char* to_string(ChannelKind k) noexcept {
  switch (k) {
    case ChannelKind::kPerfect: return "perfect";
    case ChannelKind::kBernoulli: return "bernoulli";
    case ChannelKind::kGilbertElliott: return "gilbert-elliott";
  }
  return "?";
}

}  // namespace pas::world

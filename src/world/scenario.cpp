#include "world/scenario.hpp"

#include <stdexcept>

#include "core/protocol.hpp"
#include "node/sensor_node.hpp"
#include "sim/simulator.hpp"

namespace pas::world {

std::unique_ptr<stimulus::StimulusModel> make_stimulus(
    const ScenarioConfig& config) {
  switch (config.stimulus) {
    case StimulusKind::kRadial:
      return std::make_unique<stimulus::RadialFrontModel>(config.radial);
    case StimulusKind::kPde:
      return std::make_unique<stimulus::AdvectionDiffusionModel>(config.pde);
    case StimulusKind::kPlume:
      return std::make_unique<stimulus::GaussianPlumeModel>(config.plume);
    case StimulusKind::kTwoSources: {
      std::vector<std::unique_ptr<stimulus::StimulusModel>> parts;
      parts.push_back(
          std::make_unique<stimulus::RadialFrontModel>(config.radial));
      parts.push_back(
          std::make_unique<stimulus::RadialFrontModel>(config.radial_second));
      return std::make_unique<stimulus::CompositeModel>(std::move(parts));
    }
  }
  throw std::logic_error("make_stimulus: unknown stimulus kind");
}

namespace {

std::shared_ptr<net::Channel> make_channel(const ScenarioConfig& config) {
  switch (config.channel) {
    case ChannelKind::kPerfect:
      return std::make_shared<net::PerfectChannel>();
    case ChannelKind::kBernoulli:
      return std::make_shared<net::BernoulliLossChannel>(config.channel_loss);
    case ChannelKind::kGilbertElliott:
      return std::make_shared<net::GilbertElliottChannel>(config.gilbert);
  }
  throw std::logic_error("make_channel: unknown channel kind");
}

std::vector<geom::Vec2> draw_connected_deployment(const ScenarioConfig& config,
                                                  const sim::SeedSequence& seeds,
                                                  std::size_t& attempts_used) {
  for (std::size_t attempt = 0; attempt < config.max_deployment_attempts;
       ++attempt) {
    sim::Pcg32 rng = seeds.stream(sim::SeedSequence::kDeployment, attempt);
    auto positions = generate_deployment(config.deployment, rng);
    if (is_connected(positions, config.radio.range_m)) {
      attempts_used = attempt + 1;
      return positions;
    }
  }
  throw std::runtime_error(
      "run_scenario: no connected deployment found; increase density, range, "
      "or max_deployment_attempts");
}

}  // namespace

RunResult run_scenario(const ScenarioConfig& config) {
  config.protocol.validate();
  if (config.duration_s <= 0.0) {
    throw std::invalid_argument("run_scenario: duration must be > 0");
  }

  const sim::SeedSequence seeds(config.seed);
  RunResult result;
  result.trace.enable(config.enable_trace);

  result.positions =
      draw_connected_deployment(config, seeds, result.deployment_attempts);

  const auto model = make_stimulus(config);
  const stimulus::ArrivalMap arrivals(*model, result.positions,
                                      config.duration_s);

  sim::Simulator simulator;
  net::Network network(simulator, result.positions, config.radio,
                       make_channel(config), seeds);

  std::vector<node::SensorNode> nodes(result.positions.size());
  for (std::uint32_t i = 0; i < nodes.size(); ++i) {
    nodes[i].id = i;
    nodes[i].position = result.positions[i];
    nodes[i].meter =
        energy::EnergyMeter(config.power, 0.0, energy::PowerMode::kActive);
    nodes[i].arrival = arrivals.at(i);
  }

  network.set_tx_hook([&nodes](std::uint32_t id, std::size_t bits) {
    nodes[id].meter.add_tx(bits);
  });
  // Reception while active is already covered by the 41 mW idle-listen
  // power (see EnergyMeter docs); no rx hook in the default accounting.

  node::FailurePlan failures(nodes.size(), config.failures,
                             seeds.stream(sim::SeedSequence::kFailure));

  core::Protocol protocol(simulator, network, nodes, *model, arrivals,
                          config.protocol, seeds, &failures, &result.trace);
  protocol.start();
  simulator.run_until(config.duration_s);

  for (auto& n : nodes) n.meter.finalize(config.duration_s);

  result.outcomes = metrics::collect_outcomes(nodes);
  // A sleeping node reached within its last possible sleep interval may not
  // have woken before the horizon; count those as censored, not missed.
  const double censor_cutoff =
      config.protocol.sleeps()
          ? config.duration_s - config.protocol.sleep.max_s - 1.0
          : config.duration_s;
  result.metrics =
      metrics::summarize(result.outcomes, config.duration_s, censor_cutoff,
                         network.stats(), protocol.stats());
  return result;
}

}  // namespace pas::world

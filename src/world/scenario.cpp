#include "world/scenario.hpp"

#include <stdexcept>

#include "world/workspace.hpp"

namespace pas::world {

std::unique_ptr<stimulus::StimulusModel> make_stimulus(
    const ScenarioConfig& config) {
  switch (config.stimulus) {
    case StimulusKind::kRadial:
      return std::make_unique<stimulus::RadialFrontModel>(config.radial);
    case StimulusKind::kPde:
      return std::make_unique<stimulus::AdvectionDiffusionModel>(config.pde);
    case StimulusKind::kPlume:
      return std::make_unique<stimulus::GaussianPlumeModel>(config.plume);
    case StimulusKind::kTwoSources: {
      std::vector<std::unique_ptr<stimulus::StimulusModel>> parts;
      parts.push_back(
          std::make_unique<stimulus::RadialFrontModel>(config.radial));
      parts.push_back(
          std::make_unique<stimulus::RadialFrontModel>(config.radial_second));
      return std::make_unique<stimulus::CompositeModel>(std::move(parts));
    }
  }
  throw std::logic_error("make_stimulus: unknown stimulus kind");
}

RunResult run_scenario(const ScenarioConfig& config) {
  // One-shot convenience: build a world, run it, discard the scaffolding.
  // Replicated execution goes through a long-lived Workspace instead, which
  // runs the same code with its buffers and stimulus model kept warm.
  Workspace workspace;
  return workspace.run(config);
}

}  // namespace pas::world

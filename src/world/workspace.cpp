#include "world/workspace.hpp"

#include <stdexcept>
#include <utility>

#include "core/protocol.hpp"
#include "node/failure_model.hpp"

namespace pas::world {

bool same_stimulus(const ScenarioConfig& a, const ScenarioConfig& b) noexcept {
  if (a.stimulus != b.stimulus) return false;
  switch (a.stimulus) {
    case StimulusKind::kRadial:
      return a.radial == b.radial;
    case StimulusKind::kPde:
      return a.pde == b.pde;
    case StimulusKind::kPlume:
      return a.plume == b.plume;
    case StimulusKind::kTwoSources:
      return a.radial == b.radial && a.radial_second == b.radial_second;
  }
  return false;
}

namespace {

std::shared_ptr<net::Channel> make_channel(const ScenarioConfig& config) {
  switch (config.channel) {
    case ChannelKind::kPerfect:
      return std::make_shared<net::PerfectChannel>();
    case ChannelKind::kBernoulli:
      return std::make_shared<net::BernoulliLossChannel>(config.channel_loss);
    case ChannelKind::kGilbertElliott:
      return std::make_shared<net::GilbertElliottChannel>(config.gilbert);
  }
  throw std::logic_error("make_channel: unknown channel kind");
}

}  // namespace

const stimulus::StimulusModel& Workspace::model_for(
    const ScenarioConfig& config) {
  // The model is a pure function of the config's stimulus section — seeds
  // never enter it — so replications of one sweep point always hit. For the
  // PDE model a hit skips a full solver integration.
  if (!model_valid_ || !same_stimulus(model_key_, config)) {
    model_ = make_stimulus(config);
    model_key_ = config;
    model_valid_ = true;
  }
  return *model_;
}

void Workspace::execute(const ScenarioConfig& config,
                        sim::TraceLog* trace_log) {
  config.protocol.validate();
  if (config.duration_s <= 0.0) {
    throw std::invalid_argument("run_scenario: duration must be > 0");
  }

  const sim::SeedSequence seeds(config.seed);

  // Deployment: redraw until the disk graph is connected, exactly like a
  // fresh run (each attempt advances the dedicated deployment stream).
  bool connected = false;
  for (std::size_t attempt = 0; attempt < config.max_deployment_attempts;
       ++attempt) {
    sim::Pcg32 rng = seeds.stream(sim::SeedSequence::kDeployment, attempt);
    positions_ = generate_deployment(config.deployment, rng);
    if (is_connected(positions_, config.radio.range_m)) {
      deployment_attempts_ = attempt + 1;
      connected = true;
      break;
    }
  }
  if (!connected) {
    throw std::runtime_error(
        "run_scenario: no connected deployment found; increase density, "
        "range, or max_deployment_attempts");
  }

  const stimulus::StimulusModel& model = model_for(config);
  arrivals_.assign(model, positions_, config.duration_s);

  simulator_.reset();
  if (network_.has_value()) {
    network_->reset(positions_, config.radio, make_channel(config), seeds);
  } else {
    network_.emplace(simulator_, positions_, config.radio,
                     make_channel(config), seeds);
  }

  nodes_.resize(positions_.size());
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    node::SensorNode fresh;
    fresh.id = i;
    fresh.position = positions_[i];
    fresh.meter =
        energy::EnergyMeter(config.power, 0.0, energy::PowerMode::kActive);
    fresh.arrival = arrivals_.at(i);
    nodes_[i] = fresh;
  }

  network_->set_tx_hook([this](std::uint32_t id, std::size_t bits) {
    nodes_[id].meter.add_tx(bits);
  });
  // Reception while active is already covered by the 41 mW idle-listen
  // power (see EnergyMeter docs); no rx hook in the default accounting.

  // Slotted LPL MAC + multihop collection (off by default). The MAC consumes
  // the dedicated kMacSlot/kMacBackoff seed domains only when enabled, so a
  // mac-off run stays byte-identical to pre-MAC builds.
  if (config.mac.enabled) {
    config.mac.validate();
    config.collection.validate();
    if (mac_.has_value()) {
      mac_->reset(config.mac, seeds);
    } else {
      mac_.emplace(simulator_, *network_);
      mac_->reset(config.mac, seeds);
    }
    network_->attach_mac(&*mac_);
    mac_->set_cca_hook([this](std::uint32_t id, sim::Duration s) {
      nodes_[id].meter.add_cca(s);
    });
    mac_->set_preamble_hook([this](std::uint32_t id, sim::Duration s) {
      nodes_[id].meter.add_preamble(s);
    });
    mac_->set_listen_hook([this](std::uint32_t id, sim::Duration s) {
      nodes_[id].meter.add_listen(s);
    });
    mac_->set_tx_hook([this](std::uint32_t id, std::size_t bits) {
      nodes_[id].meter.add_tx(bits);
    });
    mac_->set_trace(trace_log);
  } else {
    network_->attach_mac(nullptr);
  }

  net::Collection* collection = nullptr;
  if (config.mac.enabled) {
    // The relay decision is the policy's; instantiate it briefly to ask
    // (the Protocol below builds its own copy from the same config).
    const auto policy = core::make_policy(config.protocol);
    if (!collection_.has_value()) {
      collection_.emplace(simulator_, *network_, *mac_);
    }
    collection_->reset(config.collection, policy->wants_collection_relay(),
                       config.deployment.region, trace_log);
    collection = &*collection_;
  }

  node::FailurePlan failures(nodes_.size(), config.failures,
                             seeds.stream(sim::SeedSequence::kFailure));

  core::Protocol protocol(simulator_, *network_, nodes_, model, arrivals_,
                          config.protocol, seeds, &failures, trace_log,
                          collection);
  protocol.start();
  simulator_.run_until(config.duration_s);

  for (auto& n : nodes_) n.meter.finalize(config.duration_s);

  metrics::collect_outcomes(nodes_, outcomes_);
  // A sleeping node reached within its last possible sleep interval may not
  // have woken before the horizon; count those as censored, not missed. The
  // policy knows its own worst-case interval (sleep.max_s for the ramping
  // policies, period_s for DutyCycle, nothing for NS).
  const core::SleepingPolicy& policy = protocol.sleeping_policy();
  const double censor_cutoff =
      policy.sleeps() ? config.duration_s - policy.max_sleep_s() - 1.0
                      : config.duration_s;
  metrics_ = metrics::summarize(outcomes_, config.duration_s, censor_cutoff,
                                network_->stats(), protocol.stats());

  // Kernel counters are lifted here, not in summarize(): only the workspace
  // holds the simulator, and reset() above re-zeroed them for this run.
  const sim::EventQueue::Stats& queue = simulator_.queue_stats();
  metrics_.kernel.events_scheduled = queue.pushed;
  metrics_.kernel.events_dispatched = simulator_.executed_events();
  metrics_.kernel.events_cancelled = queue.cancelled;
  metrics_.kernel.max_pending = queue.max_live;
  metrics_.kernel.timer_reschedules = protocol.timer_reschedules();
  metrics_.kernel.rung_spawns = queue.rung_spawns;
  metrics_.kernel.bucket_resizes = queue.bucket_resizes;
  metrics_.kernel.max_bucket = queue.max_bucket;
  metrics_.kernel.dead_skips = queue.dead_skips;

  // Net-layer counters, same pattern: the summarizer never sees the MAC.
  metrics_.mac = config.mac.enabled ? mac_->stats() : net::MacStats{};
  metrics_.collection =
      config.mac.enabled ? collection_->stats() : net::CollectionStats{};
}

RunResult Workspace::run(const ScenarioConfig& config) {
  RunResult result;
  result.trace.enable(config.enable_trace);
  execute(config, &result.trace);
  result.positions = positions_;
  result.outcomes = outcomes_;
  result.metrics = metrics_;
  result.telemetry.add(metrics_);
  result.deployment_attempts = deployment_attempts_;
  return result;
}

const metrics::RunMetrics& Workspace::run_metrics(
    const ScenarioConfig& config) {
  execute(config, nullptr);
  return metrics_;
}

}  // namespace pas::world

// Reusable scenario workspace.
//
// run_scenario() builds a whole world — stimulus model, arrival map,
// simulator, radio fabric, node table — and throws it away after one run.
// Campaigns run thousands of replications whose configs differ only by
// seed, so nearly all of that construction repeats byte-identical work:
// the stimulus model does not depend on the seed at all (for the PDE model
// that is a full solver integration), and every buffer can be re-seeded in
// place instead of reallocated.
//
// A Workspace owns the world's storage across runs: the simulator's event
// slab, the network's neighbor lists, the node and outcome tables, the
// arrival-map buffer, and a stimulus-model cache keyed by the config's
// stimulus section. Each run() re-seeds and resets them. Results are
// guaranteed byte-identical to a fresh run_scenario() — the reuse is purely
// allocational — and tests/world/test_workspace.cpp enforces it.
//
// A Workspace is single-threaded like the simulations it hosts; give each
// worker thread its own (exp::run_campaign and world::run_replicated do).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "metrics/report.hpp"
#include "net/network.hpp"
#include "node/sensor_node.hpp"
#include "sim/simulator.hpp"
#include "stimulus/arrival_map.hpp"
#include "world/scenario.hpp"

namespace pas::world {

/// True when `a` and `b` configure the same stimulus (kind plus the
/// sub-config that kind reads) — the condition under which a built stimulus
/// model can be shared between runs. Exposed for tests.
[[nodiscard]] bool same_stimulus(const ScenarioConfig& a,
                                 const ScenarioConfig& b) noexcept;

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Runs one complete simulation; equivalent to run_scenario(config), but
  /// reusing this workspace's storage and cached stimulus model.
  [[nodiscard]] RunResult run(const ScenarioConfig& config);

  /// The campaign hot path: like run() but without copying positions,
  /// outcomes or trace into a result (traces are disabled). The reference
  /// is valid until the next run on this workspace.
  [[nodiscard]] const metrics::RunMetrics& run_metrics(
      const ScenarioConfig& config);

  /// Deployment attempts consumed by the most recent run.
  [[nodiscard]] std::size_t deployment_attempts() const noexcept {
    return deployment_attempts_;
  }

 private:
  /// Returns the cached stimulus model, rebuilding it when the stimulus
  /// section of `config` differs from the cached key.
  const stimulus::StimulusModel& model_for(const ScenarioConfig& config);

  /// Builds the world for `config` and runs it to the horizon; fills
  /// positions_/nodes_/outcomes_/metrics_. `trace_log` may be null.
  void execute(const ScenarioConfig& config, sim::TraceLog* trace_log);

  sim::Simulator simulator_;
  std::optional<net::Network> network_;
  std::optional<net::SlottedLplMac> mac_;
  std::optional<net::Collection> collection_;

  std::unique_ptr<stimulus::StimulusModel> model_;
  ScenarioConfig model_key_;
  bool model_valid_ = false;

  std::vector<geom::Vec2> positions_;
  stimulus::ArrivalMap arrivals_;
  std::vector<node::SensorNode> nodes_;
  std::vector<metrics::NodeOutcome> outcomes_;
  metrics::RunMetrics metrics_;
  std::size_t deployment_attempts_ = 1;
};

}  // namespace pas::world

#include "world/deployment.hpp"

#include <cmath>
#include <queue>
#include <stdexcept>

#include "geom/grid_index.hpp"

namespace pas::world {

std::vector<geom::Vec2> grid_deployment(std::size_t count, geom::Aabb region,
                                        double jitter, sim::Pcg32& rng) {
  if (count == 0) return {};
  if (jitter < 0.0 || jitter > 0.5) {
    throw std::invalid_argument("grid_deployment: jitter must be in [0, 0.5]");
  }
  // Smallest near-square grid holding `count` nodes.
  const auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(count))));
  const auto rows = (count + cols - 1) / cols;
  const double dx = region.width() / static_cast<double>(cols);
  const double dy = region.height() / static_cast<double>(rows);

  std::vector<geom::Vec2> out;
  out.reserve(count);
  for (std::size_t r = 0; r < rows && out.size() < count; ++r) {
    for (std::size_t c = 0; c < cols && out.size() < count; ++c) {
      const double cx = region.lo.x + (static_cast<double>(c) + 0.5) * dx;
      const double cy = region.lo.y + (static_cast<double>(r) + 0.5) * dy;
      const double jx = rng.uniform(-jitter, jitter) * dx;
      const double jy = rng.uniform(-jitter, jitter) * dy;
      out.push_back(region.clamp({cx + jx, cy + jy}));
    }
  }
  return out;
}

std::vector<geom::Vec2> uniform_deployment(std::size_t count, geom::Aabb region,
                                           sim::Pcg32& rng) {
  std::vector<geom::Vec2> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({rng.uniform(region.lo.x, region.hi.x),
                   rng.uniform(region.lo.y, region.hi.y)});
  }
  return out;
}

std::vector<geom::Vec2> poisson_disk_deployment(std::size_t count,
                                                geom::Aabb region,
                                                double min_separation,
                                                sim::Pcg32& rng) {
  if (min_separation <= 0.0) {
    throw std::invalid_argument(
        "poisson_disk_deployment: min_separation must be > 0");
  }
  std::vector<geom::Vec2> out;
  out.reserve(count);
  const double sep2 = min_separation * min_separation;
  const std::size_t max_attempts = count * 2000 + 1000;
  std::size_t attempts = 0;
  while (out.size() < count) {
    if (++attempts > max_attempts) {
      throw std::runtime_error(
          "poisson_disk_deployment: could not place all nodes; reduce "
          "min_separation or count");
    }
    const geom::Vec2 candidate{rng.uniform(region.lo.x, region.hi.x),
                               rng.uniform(region.lo.y, region.hi.y)};
    bool ok = true;
    for (const geom::Vec2 p : out) {
      if (geom::distance2(p, candidate) < sep2) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(candidate);
  }
  return out;
}

std::vector<geom::Vec2> generate_deployment(const DeploymentConfig& config,
                                            sim::Pcg32& rng) {
  switch (config.kind) {
    case DeploymentKind::kGrid:
      return grid_deployment(config.count, config.region, config.grid_jitter,
                             rng);
    case DeploymentKind::kUniform:
      return uniform_deployment(config.count, config.region, rng);
    case DeploymentKind::kPoissonDisk:
      return poisson_disk_deployment(config.count, config.region,
                                     config.min_separation, rng);
  }
  throw std::logic_error("generate_deployment: unknown kind");
}

bool is_connected(const std::vector<geom::Vec2>& positions, double range) {
  if (positions.empty()) return true;
  geom::Aabb bounds{positions.front(), positions.front()};
  for (const auto& p : positions) {
    bounds.lo.x = std::min(bounds.lo.x, p.x);
    bounds.lo.y = std::min(bounds.lo.y, p.y);
    bounds.hi.x = std::max(bounds.hi.x, p.x);
    bounds.hi.y = std::max(bounds.hi.y, p.y);
  }
  const geom::GridIndex index(positions, bounds.inflated(1.0), range);
  std::vector<char> seen(positions.size(), 0);
  std::queue<std::uint32_t> frontier;
  frontier.push(0);
  seen[0] = 1;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const std::uint32_t cur = frontier.front();
    frontier.pop();
    index.for_each_in_radius(positions[cur], range, [&](std::uint32_t next) {
      if (seen[next] == 0) {
        seen[next] = 1;
        ++visited;
        frontier.push(next);
      }
    });
  }
  return visited == positions.size();
}

}  // namespace pas::world

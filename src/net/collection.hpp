// Tree-based multihop alert collection (the Sleep-Route scheme).
//
// A sink is chosen near a configured placement point and a shortest-path
// (BFS) collection tree is built over the radio range graph. When a node
// detects the stimulus it originates an ALERT that is routed hop-by-hop
// toward the sink through *uphill* neighbors (strictly smaller tree depth).
// The next hop must be reachable: awake, or — when the sleeping policy
// permits relay participation — a sleeping *backbone* node (an internal
// tree node), which the MAC reaches via LPL rendezvous. When no uphill
// neighbor is reachable, the alert falls back to the Sleep-Route answer:
// the backbone reports the *predicted* arrival time instead of the
// measured one (delivered_predicted).
//
// The collection layer sits above SlottedLplMac (acknowledged unicasts,
// retries, rendezvous cost) and below pas::core (the protocol calls
// originate(); policies only gate relay participation). Delivery records
// keep full per-alert paths so tests can assert the multihop invariant:
// every delivered alert followed a connected, strictly-uphill path.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geom/aabb.hpp"
#include "net/mac.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace pas::net {

class Network;

enum class SinkPlacement : std::uint8_t {
  kCenter,  // region center
  kCorner,  // region.lo corner
  kEdge,    // midpoint of the bottom edge
};

[[nodiscard]] constexpr const char* to_string(SinkPlacement p) noexcept {
  switch (p) {
    case SinkPlacement::kCenter: return "center";
    case SinkPlacement::kCorner: return "corner";
    case SinkPlacement::kEdge: return "edge";
  }
  return "?";
}

/// Parses "center" / "corner" / "edge"; throws std::invalid_argument.
[[nodiscard]] SinkPlacement sink_placement_from_string(std::string_view s);

struct CollectionConfig {
  SinkPlacement sink_placement = SinkPlacement::kCenter;
  /// Alerts are dropped after this many hops (routing-loop backstop; the
  /// uphill rule makes loops impossible, so this only bounds pathologies).
  std::uint32_t max_hops = 16;
  /// A holder refuses to queue an alert when its MAC send queue is at least
  /// this deep (backpressure under contention).
  std::uint32_t node_queue_limit = 8;

  /// Throws std::invalid_argument on zero limits.
  void validate() const;

  bool operator==(const CollectionConfig&) const noexcept = default;
};

struct CollectionStats {
  std::uint64_t originated = 0;           // alerts created at detectors
  std::uint64_t forwarded = 0;            // hop receptions (incl. at sink)
  std::uint64_t delivered = 0;            // measured alerts reaching the sink
  std::uint64_t delivered_predicted = 0;  // Sleep-Route fallback answers
  std::uint64_t dropped_ttl = 0;          // exceeded max_hops
  std::uint64_t dropped_queue = 0;        // holder queue over node_queue_limit
  double sum_delay_s = 0.0;               // Σ (delivered_at − detected_at)
  std::uint64_t sum_hops = 0;             // Σ hops over delivered alerts

  void add(const CollectionStats& other);

  bool operator==(const CollectionStats&) const noexcept = default;
};

class Collection {
 public:
  /// One completed alert. `delivered` distinguishes a measured delivery at
  /// the sink from the predicted-value fallback; `path` lists every holder
  /// in order (origin first; sink last when delivered).
  struct DeliveryRecord {
    std::uint32_t alert_id = 0;
    std::uint32_t origin = 0;
    bool delivered = false;
    std::uint32_t hops = 0;
    sim::Time detected_at = 0.0;
    sim::Time completed_at = 0.0;
    sim::Time predicted_arrival = 0.0;
    std::vector<std::uint32_t> path;
  };

  Collection(sim::Simulator& simulator, Network& network, SlottedLplMac& mac);

  /// Rebuilds the collection tree for a new run: picks the sink nearest the
  /// placement point (ties to the lowest id), BFS depths/parents over the
  /// current neighbor lists, uphill candidate lists sorted by (depth, id),
  /// and the backbone set (sink + internal tree nodes). Call after
  /// Network::reset and SlottedLplMac::reset. Installs itself as the
  /// Network's alert handler.
  void reset(const CollectionConfig& config, bool relay_through_sleeping,
             const geom::Aabb& region, sim::TraceLog* trace);

  /// A detector raises an alert carrying the measured detection time plus
  /// the predicted arrival the backbone would answer with on fallback.
  void originate(std::uint32_t node, sim::Time detected_at,
                 sim::Time predicted_arrival);

  [[nodiscard]] std::uint32_t sink() const noexcept { return sink_; }
  [[nodiscard]] std::uint32_t depth(std::uint32_t id) const {
    return depth_.at(id);
  }
  [[nodiscard]] bool is_backbone(std::uint32_t id) const {
    return backbone_.at(id) != 0;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& uphill(
      std::uint32_t id) const {
    return uphill_.at(id);
  }
  /// Nodes with no route to the sink (disconnected component).
  [[nodiscard]] std::size_t unreachable_count() const noexcept;

  [[nodiscard]] const CollectionStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const CollectionConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const std::vector<DeliveryRecord>& records() const noexcept {
    return records_;
  }
  /// Alerts still traveling (or stranded on failed holders) at end of run.
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_.size();
  }

  static constexpr std::uint32_t kNoDepth = 0xffffffffu;

 private:
  struct InFlight {
    std::uint32_t origin = 0;
    std::uint32_t hops = 0;
    sim::Time detected_at = 0.0;
    sim::Time predicted_arrival = 0.0;
    std::uint32_t holder = 0;
    std::uint32_t next_candidate = 0;  // index into uphill_[holder]
    std::vector<std::uint32_t> path;
  };

  void build_tree(const geom::Aabb& region);
  void forward(std::uint32_t alert_id);
  void on_send_result(std::uint32_t alert_id, std::uint32_t from,
                      bool delivered);
  void on_receive(const Message& msg, std::uint32_t at_node);
  void complete(std::uint32_t alert_id, InFlight& alert, bool delivered);
  [[nodiscard]] bool reachable(std::uint32_t id) const;
  void trace(sim::TraceKind kind, std::uint32_t node, double x = 0.0);

  sim::Simulator& simulator_;
  Network& network_;
  SlottedLplMac& mac_;
  CollectionConfig config_{};
  bool relay_through_sleeping_ = true;
  std::uint32_t sink_ = 0;
  std::vector<std::uint32_t> depth_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::vector<std::uint32_t>> uphill_;
  std::vector<char> backbone_;
  std::unordered_map<std::uint32_t, InFlight> in_flight_;
  std::vector<DeliveryRecord> records_;
  std::uint32_t next_id_ = 0;
  CollectionStats stats_;
  sim::TraceLog* trace_ = nullptr;
};

}  // namespace pas::net

#include "net/network.hpp"

#include <queue>
#include <stdexcept>

#include "geom/aabb.hpp"
#include "net/mac.hpp"

namespace pas::net {

Network::Network(sim::Simulator& simulator, std::vector<geom::Vec2> positions,
                 RadioConfig config, std::shared_ptr<Channel> channel,
                 const sim::SeedSequence& seeds)
    : simulator_(simulator) {
  reset(std::move(positions), config, std::move(channel), seeds);
}

void Network::reset(std::vector<geom::Vec2> positions, RadioConfig config,
                    std::shared_ptr<Channel> channel,
                    const sim::SeedSequence& seeds) {
  if (positions.empty()) {
    throw std::invalid_argument("Network: need at least one node");
  }
  if (config.range_m <= 0.0 || config.data_rate_bps <= 0.0) {
    throw std::invalid_argument("Network: range and data rate must be > 0");
  }
  if (!channel) {
    throw std::invalid_argument("Network: channel must not be null");
  }
  positions_ = std::move(positions);
  config_ = config;
  channel_ = std::move(channel);
  jitter_rng_ = seeds.stream(sim::SeedSequence::kMacJitter);
  stats_ = Stats{};
  // Hooks capture the previous world's state; a fresh Network has none.
  tx_hook_ = EnergyHook{};
  rx_hook_ = EnergyHook{};
  alert_handler_ = AlertHandler{};
  mac_ = nullptr;

  // Precompute the neighbor lists once; nodes are static for a run. The
  // per-node vectors keep their capacity across resets.
  geom::Aabb bounds{positions_.front(), positions_.front()};
  for (const auto& p : positions_) {
    bounds.lo.x = std::min(bounds.lo.x, p.x);
    bounds.lo.y = std::min(bounds.lo.y, p.y);
    bounds.hi.x = std::max(bounds.hi.x, p.x);
    bounds.hi.y = std::max(bounds.hi.y, p.y);
  }
  const geom::GridIndex index(positions_, bounds.inflated(1.0), config_.range_m);
  neighbors_.resize(positions_.size());
  for (std::uint32_t i = 0; i < positions_.size(); ++i) {
    neighbors_[i].clear();
    for (const std::uint32_t j : index.query_radius(positions_[i], config_.range_m)) {
      if (j != i) neighbors_[i].push_back(j);
    }
  }

  handlers_.clear();
  handlers_.resize(positions_.size());
  listening_.assign(positions_.size(), 1);
  failed_.assign(positions_.size(), 0);
  link_rng_.clear();
  link_rng_.reserve(positions_.size());
  for (std::uint32_t i = 0; i < positions_.size(); ++i) {
    link_rng_.push_back(seeds.stream(sim::SeedSequence::kChannel, i));
  }
}

void Network::set_rx_handler(std::uint32_t id, RxHandler handler) {
  handlers_.at(id) = std::move(handler);
}

void Network::set_listening(std::uint32_t id, bool listening) {
  listening_.at(id) = listening ? 1 : 0;
  if (mac_ != nullptr) mac_->on_listening_changed(id, listening);
}

void Network::set_failed(std::uint32_t id) {
  failed_.at(id) = 1;
  listening_.at(id) = 0;
  if (mac_ != nullptr) mac_->on_failed(id);
}

void Network::attach_mac(SlottedLplMac* mac) {
  mac_ = mac;
  if (mac_ != nullptr) {
    mac_->set_deliver([this](const Message& msg, std::uint32_t to) {
      deliver_from_mac(msg, to);
    });
  }
}

bool Network::channel_roll(std::uint32_t from, std::uint32_t to) {
  if (channel_->deliver(from, to, link_rng_.at(to))) return true;
  ++stats_.dropped_channel;
  return false;
}

void Network::deliver_from_mac(const Message& msg, std::uint32_t to) {
  ++stats_.deliveries;
  if (rx_hook_) rx_hook_(to, msg.size_bits());
  if (msg.type == MessageType::kAlert) {
    if (alert_handler_) alert_handler_(msg, to);
    return;
  }
  if (handlers_.at(to)) handlers_[to](msg);
}

void Network::broadcast(std::uint32_t from, Message msg) {
  if (from >= positions_.size()) {
    throw std::out_of_range("Network::broadcast: unknown sender");
  }
  if (failed_[from] != 0) {
    ++stats_.blocked_sender_failed;
    return;
  }
  msg.sender = from;
  msg.sent_at = simulator_.now();
  ++stats_.broadcasts;
  if (mac_ != nullptr) {
    // The MAC owns the medium: CCA, backoff, preamble and collision
    // resolution replace the jitter model, and it charges tx energy through
    // its own hook (tx_hook_ here stays silent to avoid double billing).
    mac_->broadcast(from, msg);
    return;
  }
  if (tx_hook_) tx_hook_(from, msg.size_bits());

  const sim::Duration backoff = jitter_rng_.uniform(0.0, config_.max_jitter_s);
  const sim::Duration on_air =
      static_cast<double>(msg.size_bits()) / config_.data_rate_bps;
  const sim::Duration delay = backoff + on_air + config_.propagation_s;

  for (const std::uint32_t to : neighbors_[from]) {
    simulator_.schedule_in(delay, [this, to, msg] {
      if (failed_[to] != 0) {
        ++stats_.dropped_failed;
        return;
      }
      if (listening_[to] == 0) {
        ++stats_.dropped_not_listening;
        return;
      }
      if (!channel_->deliver(msg.sender, to, link_rng_[to])) {
        ++stats_.dropped_channel;
        return;
      }
      ++stats_.deliveries;
      if (rx_hook_) rx_hook_(to, msg.size_bits());
      if (handlers_[to]) handlers_[to](msg);
    });
  }
}

double Network::mean_degree() const noexcept {
  if (neighbors_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& n : neighbors_) total += n.size();
  return static_cast<double>(total) / static_cast<double>(neighbors_.size());
}

bool Network::connected() const {
  std::vector<char> seen(positions_.size(), 0);
  std::queue<std::uint32_t> frontier;
  frontier.push(0);
  seen[0] = 1;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const std::uint32_t cur = frontier.front();
    frontier.pop();
    for (const std::uint32_t next : neighbors_[cur]) {
      if (seen[next] == 0) {
        seen[next] = 1;
        ++visited;
        frontier.push(next);
      }
    }
  }
  return visited == positions_.size();
}

}  // namespace pas::net

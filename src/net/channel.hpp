// Wireless channel models.
//
// The paper's evaluation assumes a perfect channel and names "imperfect
// communication channel" as future work; we ship three models so the
// robustness ablation (bench A2) can exercise that future work:
//   * PerfectChannel       — every in-range packet arrives.
//   * BernoulliLossChannel — i.i.d. loss with probability p.
//   * GilbertElliottChannel— two-state bursty loss (good/bad link states).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "sim/rng.hpp"

namespace pas::net {

class Channel {
 public:
  virtual ~Channel() = default;

  /// Decides whether one unicast copy of a broadcast from `from` reaches
  /// `to`. `rng` is the receiver-link's dedicated stream.
  [[nodiscard]] virtual bool deliver(std::uint32_t from, std::uint32_t to,
                                     sim::Pcg32& rng) = 0;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

class PerfectChannel final : public Channel {
 public:
  [[nodiscard]] bool deliver(std::uint32_t, std::uint32_t, sim::Pcg32&) override {
    return true;
  }
  [[nodiscard]] const char* name() const noexcept override { return "perfect"; }
};

class BernoulliLossChannel final : public Channel {
 public:
  /// `loss` in [0, 1): probability an individual delivery is dropped.
  explicit BernoulliLossChannel(double loss);

  [[nodiscard]] bool deliver(std::uint32_t from, std::uint32_t to,
                             sim::Pcg32& rng) override;
  [[nodiscard]] const char* name() const noexcept override { return "bernoulli"; }
  [[nodiscard]] double loss() const noexcept { return loss_; }

 private:
  double loss_;
};

/// Two-state Markov loss: links flip between a good state (low loss) and a
/// bad state (high loss) at per-delivery transition probabilities, giving
/// bursty outages typical of real low-power links.
class GilbertElliottChannel final : public Channel {
 public:
  struct Params {
    double p_good_to_bad = 0.05;
    double p_bad_to_good = 0.2;
    double loss_good = 0.01;
    double loss_bad = 0.6;
  };

  explicit GilbertElliottChannel(Params params);

  [[nodiscard]] bool deliver(std::uint32_t from, std::uint32_t to,
                             sim::Pcg32& rng) override;
  [[nodiscard]] const char* name() const noexcept override { return "gilbert-elliott"; }

 private:
  Params params_;
  // Per directed link: true = bad state.
  std::unordered_map<std::uint64_t, bool> link_bad_;
};

}  // namespace pas::net

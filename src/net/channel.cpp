#include "net/channel.hpp"

#include <stdexcept>

namespace pas::net {

BernoulliLossChannel::BernoulliLossChannel(double loss) : loss_(loss) {
  if (loss < 0.0 || loss >= 1.0) {
    throw std::invalid_argument("BernoulliLossChannel: loss must be in [0,1)");
  }
}

bool BernoulliLossChannel::deliver(std::uint32_t, std::uint32_t,
                                   sim::Pcg32& rng) {
  return !rng.bernoulli(loss_);
}

GilbertElliottChannel::GilbertElliottChannel(Params params) : params_(params) {
  const auto bad_prob = [](double p) { return p < 0.0 || p > 1.0; };
  if (bad_prob(params.p_good_to_bad) || bad_prob(params.p_bad_to_good) ||
      bad_prob(params.loss_good) || bad_prob(params.loss_bad)) {
    throw std::invalid_argument(
        "GilbertElliottChannel: probabilities must be in [0,1]");
  }
}

bool GilbertElliottChannel::deliver(std::uint32_t from, std::uint32_t to,
                                    sim::Pcg32& rng) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from) << 32U) | static_cast<std::uint64_t>(to);
  bool& bad = link_bad_[key];
  // Evolve the link state once per delivery attempt.
  if (bad) {
    if (rng.bernoulli(params_.p_bad_to_good)) bad = false;
  } else {
    if (rng.bernoulli(params_.p_good_to_bad)) bad = true;
  }
  const double loss = bad ? params_.loss_bad : params_.loss_good;
  return !rng.bernoulli(loss);
}

}  // namespace pas::net

// Protocol messages (§3.2 of the paper).
//
//   REQUEST  — no payload; asks neighbors for stimulus information.
//   RESPONSE — sender's location, state, estimated spread velocity, predicted
//              arrival time, and (for covered nodes) its detection time.
//
// The net layer is protocol-agnostic: the node state travels as a raw byte
// that pas::core maps to its NodeState enum; this keeps net below core in
// the layering.
#pragma once

#include <cstddef>
#include <cstdint>

#include "geom/vec2.hpp"
#include "sim/time.hpp"

namespace pas::net {

enum class MessageType : std::uint8_t {
  kRequest,
  kResponse,
  kAlert,
};

[[nodiscard]] constexpr const char* to_string(MessageType t) noexcept {
  switch (t) {
    case MessageType::kRequest: return "REQUEST";
    case MessageType::kResponse: return "RESPONSE";
    case MessageType::kAlert: return "ALERT";
  }
  return "?";
}

/// RESPONSE payload. Sizes below follow a plausible on-air encoding; they
/// only matter through tx-time and energy, not through parsing (messages are
/// passed in-memory inside the simulator).
struct ResponsePayload {
  geom::Vec2 position{};           // 8 B (two half-precision-ish fixed point)
  std::uint8_t state = 0;          // 1 B
  geom::Vec2 velocity{};           // 8 B estimated spread velocity vector
  bool velocity_valid = false;     // (flag bit inside state byte on air)
  sim::Time predicted_arrival = sim::kNever;  // 4 B
  sim::Time detected_at = sim::kNever;        // 4 B (covered nodes only)
};

/// ALERT payload (multihop collection, net/collection.hpp): the alert id,
/// the originating detector, the hop count so far, the measured detection
/// time, and the predicted arrival the backbone would answer with on a
/// Sleep-Route fallback.
struct AlertPayload {
  std::uint32_t id = 0;                       // 4 B
  std::uint32_t origin = 0;                   // 2 B on air (node id)
  std::uint8_t hops = 0;                      // 1 B
  sim::Time detected_at = sim::kNever;        // 4 B
  sim::Time predicted_arrival = sim::kNever;  // 4 B
};

struct Message {
  MessageType type = MessageType::kRequest;
  std::uint32_t sender = 0;
  sim::Time sent_at = 0.0;
  ResponsePayload payload{};  // meaningful only for kResponse
  AlertPayload alert{};       // meaningful only for kAlert

  /// 802.15.4-style MAC/PHY framing overhead per packet.
  static constexpr std::size_t kHeaderBytes = 12;
  /// Encoded RESPONSE payload size.
  static constexpr std::size_t kResponsePayloadBytes = 25;
  /// Encoded ALERT payload size (per-field sizes above).
  static constexpr std::size_t kAlertPayloadBytes = 15;

  [[nodiscard]] constexpr std::size_t size_bits() const noexcept {
    std::size_t bytes = kHeaderBytes;
    switch (type) {
      case MessageType::kRequest: break;
      case MessageType::kResponse: bytes += kResponsePayloadBytes; break;
      case MessageType::kAlert: bytes += kAlertPayloadBytes; break;
    }
    return bytes * 8;
  }
};

}  // namespace pas::net

#include "net/mac.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/network.hpp"

namespace pas::net {

void MacConfig::validate() const {
  if (slot_period_s <= 0.0) {
    throw std::invalid_argument("MacConfig: slot_period_s must be > 0");
  }
  if (cca_s <= 0.0 || cca_s >= slot_period_s) {
    throw std::invalid_argument(
        "MacConfig: cca_s must be in (0, slot_period_s)");
  }
  if (backoff_unit_s <= 0.0) {
    throw std::invalid_argument("MacConfig: backoff_unit_s must be > 0");
  }
  if (max_backoff_exponent < 0 || max_backoff_exponent > 16) {
    throw std::invalid_argument(
        "MacConfig: max_backoff_exponent must be in [0, 16]");
  }
  if (max_attempts < 1) {
    throw std::invalid_argument("MacConfig: max_attempts must be >= 1");
  }
  if (ack_wait_s < 0.0 || capture_margin_s < 0.0) {
    throw std::invalid_argument(
        "MacConfig: ack_wait_s and capture_margin_s must be >= 0");
  }
}

void MacStats::add(const MacStats& other) {
  unicasts += other.unicasts;
  broadcasts += other.broadcasts;
  data_tx += other.data_tx;
  rendezvous_tx += other.rendezvous_tx;
  cca_busy += other.cca_busy;
  backoffs += other.backoffs;
  retries += other.retries;
  collisions += other.collisions;
  captures += other.captures;
  delivered += other.delivered;
  acks += other.acks;
  drops_cca += other.drops_cca;
  drops_retry += other.drops_retry;
  lpl_samples += other.lpl_samples;
  lpl_wakeups += other.lpl_wakeups;
  overhears += other.overhears;
}

SlottedLplMac::SlottedLplMac(sim::Simulator& simulator, Network& network)
    : simulator_(simulator), network_(network) {}

void SlottedLplMac::reset(const MacConfig& config,
                          const sim::SeedSequence& seeds) {
  config.validate();
  config_ = config;
  stats_ = MacStats{};
  trace_ = nullptr;
  // Hooks capture the previous world's state; a fresh MAC has none.
  deliver_ = DeliverFn{};
  cca_hook_ = EnergyTimeHook{};
  preamble_hook_ = EnergyTimeHook{};
  listen_hook_ = EnergyTimeHook{};
  tx_hook_ = EnergyBitsHook{};

  // clear() before resize(): stale timers must be destroyed in place, never
  // moved (their pending trampolines from a previous run are dead anyway —
  // the simulator was reset — but Timer's move contract is strict).
  nodes_.clear();
  nodes_.resize(network_.size());
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    NodeState& n = nodes_[i];
    // Dedicated streams: drawn only here, so a mac-off run consumes nothing
    // from them and stays byte-identical (SeedSequence domain contract).
    n.phase = seeds.stream(sim::SeedSequence::kMacSlot, i)
                  .uniform(0.0, config_.slot_period_s);
    n.backoff_rng = seeds.stream(sim::SeedSequence::kMacBackoff, i);
    n.sample_timer.bind(simulator_, [this, i] { on_sample(i); });
    n.retry_timer.bind(simulator_, [this, i] { try_send(i); });
  }
}

sim::Time SlottedLplMac::next_sample_time(std::uint32_t id,
                                          sim::Time after) const {
  const NodeState& n = nodes_.at(id);
  const double per = config_.slot_period_s;
  // `after` is usually a grid point itself (the sample that just fired);
  // phase + k*per recomputed from the division can land one ulp past it,
  // which without the epsilon would schedule a duplicate sample ~1e-15 s
  // later instead of a full period later.
  const double eps = per * 1e-9;
  double k = std::floor((after + eps - n.phase) / per) + 1.0;
  if (k < 0.0) k = 0.0;
  sim::Time t = n.phase + k * per;
  while (t <= after + eps) t += per;
  return t;
}

void SlottedLplMac::on_listening_changed(std::uint32_t id, bool listening) {
  NodeState& n = nodes_.at(id);
  if (n.failed) return;
  if (listening) {
    if (n.sampling) {
      n.sample_timer.cancel();
      n.sampling = false;
    }
  } else if (!n.sampling) {
    n.sampling = true;
    n.sample_timer.arm_at(next_sample_time(id, simulator_.now()));
  }
}

void SlottedLplMac::on_failed(std::uint32_t id) {
  NodeState& n = nodes_.at(id);
  n.failed = true;
  n.sampling = false;
  n.sample_timer.cancel();
  n.retry_timer.cancel();
  n.rx = Rx{};
  // A transmission already on air is cleaned up by its own data-end event
  // (which sees `failed` and drops the queue); otherwise drop queued frames
  // now. Either way no callbacks fire — a dead node reports nothing.
  if (!n.tx_active) n.queue.clear();
}

void SlottedLplMac::broadcast(std::uint32_t from, const Message& msg) {
  ++stats_.broadcasts;
  Frame frame;
  frame.msg = msg;
  frame.is_unicast = false;
  submit(from, std::move(frame));
}

void SlottedLplMac::unicast(std::uint32_t from, std::uint32_t to,
                            const Message& msg, SendCallback cb) {
  if (to >= nodes_.size() || from == to) {
    throw std::invalid_argument("SlottedLplMac::unicast: bad receiver");
  }
  ++stats_.unicasts;
  Frame frame;
  frame.msg = msg;
  frame.msg.sender = from;
  frame.msg.sent_at = simulator_.now();
  frame.to = to;
  frame.is_unicast = true;
  frame.cb = std::move(cb);
  submit(from, std::move(frame));
}

std::size_t SlottedLplMac::queue_depth(std::uint32_t id) const {
  return nodes_.at(id).queue.size();
}

void SlottedLplMac::submit(std::uint32_t from, Frame frame) {
  NodeState& n = nodes_.at(from);
  if (n.failed) {
    if (frame.is_unicast && frame.cb) frame.cb(false);
    return;
  }
  n.queue.push_back(std::move(frame));
  // Only kick the queue when idle: an active transmission or a pending
  // backoff/retry continues the chain from its own completion.
  if (n.queue.size() == 1 && !n.tx_active && !n.retry_timer.pending()) {
    try_send(from);
  }
}

bool SlottedLplMac::medium_busy_for(std::uint32_t i) const {
  const sim::Time now = simulator_.now();
  for (const std::uint32_t j : network_.neighbors_of(i)) {
    if (transmitting(nodes_[j], now)) return true;
  }
  return false;
}

void SlottedLplMac::backoff(std::uint32_t i, sim::Duration extra) {
  NodeState& n = nodes_[i];
  const int exponent =
      std::min(n.queue.front().attempts, config_.max_backoff_exponent);
  const auto window = static_cast<std::int64_t>(1) << exponent;
  const std::int64_t units = 1 + n.backoff_rng.uniform_int(0, window - 1);
  ++stats_.backoffs;
  n.retry_timer.arm_in(extra +
                       config_.backoff_unit_s * static_cast<double>(units));
}

void SlottedLplMac::try_send(std::uint32_t i) {
  NodeState& n = nodes_[i];
  if (n.failed || n.queue.empty()) return;
  Frame& f = n.queue.front();
  // A sleeping node pays for the CCA sample; an awake radio's listen power
  // already covers it (the EnergyMeter active-mode contract).
  if (!network_.listening(i) && cca_hook_) cca_hook_(i, config_.cca_s);
  // Half-duplex: a radio locked onto a reception defers like a busy medium.
  if (n.rx.active || medium_busy_for(i)) {
    ++stats_.cca_busy;
    ++f.attempts;
    if (f.attempts >= config_.max_attempts) {
      ++stats_.drops_cca;
      finish_frame(i, false);
      return;
    }
    backoff(i, 0.0);
    return;
  }
  start_tx(i);
}

void SlottedLplMac::start_tx(std::uint32_t i) {
  NodeState& n = nodes_[i];
  Frame& f = n.queue.front();
  const sim::Time now = simulator_.now();

  // Preamble: short (one CCA) when the receiver's radio is already on;
  // stretched past the receiver's next wake slot when it sleeps — the LPL
  // rendezvous. Broadcasts always use the short preamble (they rendezvous
  // with nobody; sleeping neighbors catch them only by slot luck).
  sim::Time data_start = now + config_.cca_s;
  if (f.is_unicast) {
    const NodeState& r = nodes_[f.to];
    if (!r.failed && !network_.listening(f.to)) {
      data_start = next_sample_time(f.to, now) + config_.cca_s;
      ++stats_.rendezvous_tx;
    }
  }
  const sim::Duration on_air = static_cast<double>(f.msg.size_bits()) /
                               network_.radio_config().data_rate_bps;
  const sim::Time data_end = data_start + on_air;

  n.tx_active = true;
  n.tx_start = now;
  n.tx_data_start = data_start;
  n.tx_data_end = data_end;
  ++stats_.data_tx;
  if (preamble_hook_) preamble_hook_(i, data_start - now);
  if (tx_hook_) tx_hook_(i, f.msg.size_bits());
  trace(sim::TraceKind::kMacDataTx, i, data_end - now);

  // Carrier starting now corrupts receptions already in progress at shared
  // receivers (hidden terminals got past their sender's CCA).
  for (const std::uint32_t to : network_.neighbors_of(i)) {
    NodeState& r = nodes_[to];
    if (!r.rx.active || r.rx.sender == i) continue;
    if (now - r.rx.data_start >= config_.capture_margin_s) {
      ++stats_.captures;  // established reception survives (capture effect)
    } else if (!r.rx.corrupted) {
      r.rx.corrupted = true;
      ++stats_.collisions;
      trace(sim::TraceKind::kMacCollision, to);
    }
  }

  simulator_.schedule_at(data_start, [this, i] { on_data_start(i); });
  simulator_.schedule_at(data_end, [this, i] { on_data_end(i); });
}

void SlottedLplMac::on_data_start(std::uint32_t i) {
  NodeState& n = nodes_[i];
  if (!n.tx_active || n.failed || n.queue.empty()) return;
  const Frame& f = n.queue.front();
  const sim::Time now = simulator_.now();

  for (const std::uint32_t to : network_.neighbors_of(i)) {
    NodeState& r = nodes_[to];
    if (r.failed || transmitting(r, now)) continue;  // dead or half-duplex
    if (r.rx.active) {
      if (r.rx.sender == i) continue;  // slot sample locked onto us already
      // Our data portion interferes with their established reception; a
      // busy radio cannot additionally lock onto us.
      if (now - r.rx.data_start >= config_.capture_margin_s) {
        ++stats_.captures;
      } else if (!r.rx.corrupted) {
        r.rx.corrupted = true;
        ++stats_.collisions;
        trace(sim::TraceKind::kMacCollision, to);
      }
      continue;
    }
    if (!network_.listening(to)) continue;  // asleep: slot samples only
    Rx lock;
    lock.active = true;
    lock.sender = i;
    lock.data_start = now;
    lock.data_end = n.tx_data_end;
    // Contended at birth: another in-range carrier is already up.
    for (const std::uint32_t j : network_.neighbors_of(to)) {
      if (j != i && transmitting(nodes_[j], now)) {
        lock.corrupted = true;
        ++stats_.collisions;
        trace(sim::TraceKind::kMacCollision, to);
        break;
      }
    }
    r.rx = lock;
    (void)f;
  }
}

void SlottedLplMac::on_data_end(std::uint32_t i) {
  NodeState& n = nodes_[i];
  if (!n.tx_active) return;
  n.tx_active = false;
  if (n.queue.empty()) return;
  Frame& f = n.queue.front();

  if (n.failed) {
    // Died mid-air: strand nothing — clear every lock held on this carrier.
    for (const std::uint32_t to : network_.neighbors_of(i)) {
      NodeState& r = nodes_[to];
      if (r.rx.active && r.rx.sender == i) r.rx = Rx{};
    }
    n.queue.clear();
    return;
  }

  if (f.is_unicast) {
    NodeState& r = nodes_[f.to];
    const bool locked = r.rx.active && r.rx.sender == i;
    const bool mac_ok = locked && !r.rx.corrupted && !r.failed;
    // The carrier is down: release every lock it held — overhearing
    // neighbors included, or they would stay "busy receiving" forever.
    for (const std::uint32_t to : network_.neighbors_of(i)) {
      NodeState& nb = nodes_[to];
      if (nb.rx.active && nb.rx.sender == i) nb.rx = Rx{};
    }
    // Collision resolution first, then the link's fading/loss model — two
    // independent ways to lose the frame, both ending in a missing ACK.
    const bool ok = mac_ok && network_.channel_roll(i, f.to);
    if (ok) {
      ++stats_.delivered;
      ++stats_.acks;
      deliver_(f.msg, f.to);
      finish_frame(i, true);
      return;
    }
    ++f.attempts;
    if (f.attempts >= config_.max_attempts) {
      ++stats_.drops_retry;
      finish_frame(i, false);
      return;
    }
    ++stats_.retries;
    backoff(i, config_.ack_wait_s);
    return;
  }

  for (const std::uint32_t to : network_.neighbors_of(i)) {
    NodeState& r = nodes_[to];
    if (!r.rx.active || r.rx.sender != i) continue;
    const bool ok = !r.rx.corrupted && !r.failed;
    r.rx = Rx{};
    if (ok && network_.channel_roll(i, to)) {
      ++stats_.delivered;
      deliver_(f.msg, to);
    }
  }
  finish_frame(i, true);
}

void SlottedLplMac::finish_frame(std::uint32_t i, bool delivered) {
  NodeState& n = nodes_[i];
  Frame done = std::move(n.queue.front());
  n.queue.pop_front();
  if (done.is_unicast && done.cb) done.cb(delivered);
  // The callback may have submitted (and started) a new frame; only kick
  // the queue when it is still idle.
  if (!n.queue.empty() && !n.failed && !n.tx_active &&
      !n.retry_timer.pending()) {
    try_send(i);
  }
}

void SlottedLplMac::on_sample(std::uint32_t i) {
  NodeState& n = nodes_[i];
  if (n.failed || !n.sampling) return;
  const sim::Time now = simulator_.now();
  ++stats_.lpl_samples;
  if (cca_hook_) cca_hook_(i, config_.cca_s);

  // Busy with our own radio work (forwarding while asleep): skip the scan.
  if (n.rx.active || n.tx_active) {
    n.sample_timer.arm_at(next_sample_time(i, now));
    return;
  }

  // Scan the neighborhood: a decodable preamble (unicast addressed here, or
  // a broadcast) locks the radio until its data ends; anything else busy is
  // overheard — energy spent holding the radio up with nothing to show.
  sim::Time busy_until = now;
  std::uint32_t decodable = nodes_.size();  // sentinel: none
  for (const std::uint32_t j : network_.neighbors_of(i)) {
    const NodeState& t = nodes_[j];
    if (!transmitting(t, now)) continue;
    busy_until = std::max(busy_until, t.tx_data_end);
    if (now < t.tx_data_start && !t.queue.empty()) {
      const Frame& f = t.queue.front();
      if (!f.is_unicast || f.to == i) decodable = j;
    }
  }

  if (decodable < nodes_.size()) {
    const NodeState& t = nodes_[decodable];
    ++stats_.lpl_wakeups;
    Rx lock;
    lock.active = true;
    lock.sender = decodable;
    lock.data_start = t.tx_data_start;
    lock.data_end = t.tx_data_end;
    for (const std::uint32_t j : network_.neighbors_of(i)) {
      if (j != decodable && transmitting(nodes_[j], now)) {
        lock.corrupted = true;
        ++stats_.collisions;
        trace(sim::TraceKind::kMacCollision, i);
        break;
      }
    }
    n.rx = lock;
    if (listen_hook_) listen_hook_(i, t.tx_data_end - now);
    n.sample_timer.arm_at(next_sample_time(i, t.tx_data_end));
    return;
  }
  if (busy_until > now) {
    ++stats_.overhears;
    if (listen_hook_) listen_hook_(i, busy_until - now);
    n.sample_timer.arm_at(next_sample_time(i, busy_until));
    return;
  }
  n.sample_timer.arm_at(next_sample_time(i, now));
}

void SlottedLplMac::trace(sim::TraceKind kind, std::uint32_t node, double x) {
  if (trace_ == nullptr || !trace_->enabled()) return;
  sim::TraceEvent e;
  e.time = simulator_.now();
  e.category = sim::TraceCategory::kNet;
  e.kind = kind;
  e.node = node;
  e.x = x;
  trace_->record(e);
}

}  // namespace pas::net

// Broadcast radio fabric.
//
// Nodes communicate by local broadcast within a fixed disk range (the
// paper's experiments use 10 m). A transmission reaches every in-range,
// listening, non-failed neighbor after MAC jitter + time-on-air; each
// (link, packet) pair independently consults the channel model. Energy is
// reported through hooks so the net layer stays independent of the energy
// layer's bookkeeping.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geom/grid_index.hpp"
#include "geom/vec2.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace pas::net {

class SlottedLplMac;

struct RadioConfig {
  /// Transmission/reception disk radius (m).
  double range_m = 10.0;
  /// On-air bit rate (bits/s) — paper Table 1: 250 kbps.
  double data_rate_bps = 250e3;
  /// Random CSMA-style backoff drawn uniformly from [0, max_jitter_s].
  sim::Duration max_jitter_s = 5e-3;
  /// Fixed propagation delay (effectively 0 at WSN scales).
  sim::Duration propagation_s = 1e-6;
};

class Network {
 public:
  using RxHandler = std::function<void(const Message&)>;
  using EnergyHook = std::function<void(std::uint32_t node, std::size_t bits)>;

  Network(sim::Simulator& simulator, std::vector<geom::Vec2> positions,
          RadioConfig config, std::shared_ptr<Channel> channel,
          const sim::SeedSequence& seeds);

  /// Rebuilds the fabric for a new world (positions/config/channel/seeds)
  /// while reusing neighbor-list, handler and RNG storage — the
  /// world::Workspace path between replications. Equivalent to constructing
  /// a fresh Network with the same arguments (the bound simulator stays).
  void reset(std::vector<geom::Vec2> positions, RadioConfig config,
             std::shared_ptr<Channel> channel, const sim::SeedSequence& seeds);

  [[nodiscard]] std::size_t size() const noexcept { return positions_.size(); }
  [[nodiscard]] const RadioConfig& radio_config() const noexcept {
    return config_;
  }
  [[nodiscard]] geom::Vec2 position(std::uint32_t id) const {
    return positions_.at(id);
  }

  /// Neighbor ids within radio range (excluding `id` itself), ascending.
  [[nodiscard]] const std::vector<std::uint32_t>& neighbors_of(
      std::uint32_t id) const {
    return neighbors_.at(id);
  }

  /// Handler invoked on successful packet reception.
  void set_rx_handler(std::uint32_t id, RxHandler handler);

  /// A node only receives while listening (asleep nodes have the radio off).
  void set_listening(std::uint32_t id, bool listening);
  [[nodiscard]] bool listening(std::uint32_t id) const {
    return listening_.at(id);
  }

  /// A failed node neither sends nor receives, permanently.
  void set_failed(std::uint32_t id);
  [[nodiscard]] bool failed(std::uint32_t id) const { return failed_.at(id); }

  /// Queues a local broadcast. Stamps msg.sender/sent_at. No-op (counted)
  /// when the sender has failed.
  void broadcast(std::uint32_t from, Message msg);

  /// Energy hooks: tx fires once per broadcast, rx once per delivery.
  /// (With a MAC attached, tx energy is charged by the MAC instead.)
  void set_tx_hook(EnergyHook hook) { tx_hook_ = std::move(hook); }
  void set_rx_hook(EnergyHook hook) { rx_hook_ = std::move(hook); }

  /// Attaches (or detaches, with nullptr) a slotted LPL MAC. While attached,
  /// broadcast() routes through the MAC's CCA/backoff/preamble machinery and
  /// listening/failed transitions are forwarded to it; the MAC hands
  /// successful receptions back through deliver_from_mac(). reset() detaches.
  void attach_mac(SlottedLplMac* mac);
  [[nodiscard]] SlottedLplMac* mac() const noexcept { return mac_; }

  /// ALERT messages (multihop collection) bypass per-node rx handlers and go
  /// to this handler with the receiving node's id.
  using AlertHandler = std::function<void(const Message&, std::uint32_t to)>;
  void set_alert_handler(AlertHandler handler) {
    alert_handler_ = std::move(handler);
  }

  /// One independent channel-model draw for the (from, to) link, consuming
  /// the receiver's kChannel stream. Counts dropped_channel on loss. The
  /// attached MAC consults this after collision resolution.
  [[nodiscard]] bool channel_roll(std::uint32_t from, std::uint32_t to);

  /// MAC-successful reception: runs stats/rx-hook/handler dispatch for `to`.
  void deliver_from_mac(const Message& msg, std::uint32_t to);

  struct Stats {
    std::uint64_t broadcasts = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t dropped_channel = 0;
    std::uint64_t dropped_not_listening = 0;
    std::uint64_t dropped_failed = 0;
    std::uint64_t blocked_sender_failed = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Mean neighbor count — deployment density diagnostic.
  [[nodiscard]] double mean_degree() const noexcept;

  /// True when the range graph is connected (BFS from node 0).
  [[nodiscard]] bool connected() const;

 private:
  sim::Simulator& simulator_;
  std::vector<geom::Vec2> positions_;
  RadioConfig config_;
  std::shared_ptr<Channel> channel_;
  std::vector<std::vector<std::uint32_t>> neighbors_;
  std::vector<RxHandler> handlers_;
  AlertHandler alert_handler_;
  SlottedLplMac* mac_ = nullptr;
  std::vector<char> listening_;
  std::vector<char> failed_;
  std::vector<sim::Pcg32> link_rng_;  // per receiver
  sim::Pcg32 jitter_rng_;
  EnergyHook tx_hook_;
  EnergyHook rx_hook_;
  Stats stats_;
};

}  // namespace pas::net

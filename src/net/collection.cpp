#include "net/collection.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <string>

#include "net/network.hpp"

namespace pas::net {

SinkPlacement sink_placement_from_string(std::string_view s) {
  if (s == "center") return SinkPlacement::kCenter;
  if (s == "corner") return SinkPlacement::kCorner;
  if (s == "edge") return SinkPlacement::kEdge;
  throw std::invalid_argument("unknown sink_placement: " + std::string(s));
}

void CollectionConfig::validate() const {
  if (max_hops == 0) {
    throw std::invalid_argument("CollectionConfig: max_hops must be >= 1");
  }
  if (node_queue_limit == 0) {
    throw std::invalid_argument(
        "CollectionConfig: node_queue_limit must be >= 1");
  }
}

void CollectionStats::add(const CollectionStats& other) {
  originated += other.originated;
  forwarded += other.forwarded;
  delivered += other.delivered;
  delivered_predicted += other.delivered_predicted;
  dropped_ttl += other.dropped_ttl;
  dropped_queue += other.dropped_queue;
  sum_delay_s += other.sum_delay_s;
  sum_hops += other.sum_hops;
}

Collection::Collection(sim::Simulator& simulator, Network& network,
                       SlottedLplMac& mac)
    : simulator_(simulator), network_(network), mac_(mac) {}

void Collection::reset(const CollectionConfig& config,
                       bool relay_through_sleeping, const geom::Aabb& region,
                       sim::TraceLog* trace) {
  config.validate();
  config_ = config;
  relay_through_sleeping_ = relay_through_sleeping;
  trace_ = trace;
  stats_ = CollectionStats{};
  in_flight_.clear();
  records_.clear();
  next_id_ = 0;
  build_tree(region);
  network_.set_alert_handler(
      [this](const Message& msg, std::uint32_t to) { on_receive(msg, to); });
}

void Collection::build_tree(const geom::Aabb& region) {
  const std::size_t n = network_.size();
  geom::Vec2 target = region.center();
  switch (config_.sink_placement) {
    case SinkPlacement::kCenter: break;
    case SinkPlacement::kCorner: target = region.lo; break;
    case SinkPlacement::kEdge:
      target = {(region.lo.x + region.hi.x) * 0.5, region.lo.y};
      break;
  }
  sink_ = 0;
  double best = geom::distance2(network_.position(0), target);
  for (std::uint32_t i = 1; i < n; ++i) {
    const double d = geom::distance2(network_.position(i), target);
    if (d < best) {
      best = d;
      sink_ = i;
    }
  }

  depth_.assign(n, kNoDepth);
  parent_.assign(n, kNoDepth);
  backbone_.assign(n, 0);
  depth_[sink_] = 0;
  std::deque<std::uint32_t> frontier{sink_};
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop_front();
    for (const std::uint32_t v : network_.neighbors_of(u)) {
      if (depth_[v] != kNoDepth) continue;
      depth_[v] = depth_[u] + 1;
      parent_[v] = u;
      frontier.push_back(v);
    }
  }

  uphill_.assign(n, {});
  for (std::uint32_t i = 0; i < n; ++i) {
    if (depth_[i] == kNoDepth) continue;
    auto& up = uphill_[i];
    for (const std::uint32_t j : network_.neighbors_of(i)) {
      if (depth_[j] != kNoDepth && depth_[j] < depth_[i]) up.push_back(j);
    }
    // Neighbor lists are ascending by id, so a stable sort on depth yields
    // the deterministic (depth, id) order the routing contract promises.
    std::stable_sort(up.begin(), up.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                       return depth_[a] < depth_[b];
                     });
  }

  backbone_[sink_] = 1;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (parent_[i] != kNoDepth) backbone_[parent_[i]] = 1;
  }
}

std::size_t Collection::unreachable_count() const noexcept {
  std::size_t count = 0;
  for (const std::uint32_t d : depth_) {
    if (d == kNoDepth) ++count;
  }
  return count;
}

bool Collection::reachable(std::uint32_t id) const {
  if (network_.failed(id)) return false;
  if (network_.listening(id)) return true;
  return relay_through_sleeping_ && backbone_[id] != 0;
}

void Collection::originate(std::uint32_t node, sim::Time detected_at,
                           sim::Time predicted_arrival) {
  const std::uint32_t id = next_id_++;
  ++stats_.originated;
  trace(sim::TraceKind::kAlertOriginated, node);
  InFlight alert;
  alert.origin = node;
  alert.detected_at = detected_at;
  alert.predicted_arrival = predicted_arrival;
  alert.holder = node;
  alert.path.push_back(node);
  if (node == sink_) {
    complete(id, alert, /*delivered=*/true);
    return;
  }
  auto [it, inserted] = in_flight_.emplace(id, std::move(alert));
  (void)inserted;
  forward(it->first);
}

void Collection::forward(std::uint32_t alert_id) {
  auto it = in_flight_.find(alert_id);
  if (it == in_flight_.end()) return;
  InFlight& alert = it->second;
  const std::uint32_t holder = alert.holder;

  if (mac_.queue_depth(holder) >= config_.node_queue_limit) {
    ++stats_.dropped_queue;
    in_flight_.erase(it);
    return;
  }

  const auto& candidates = uphill_.at(holder);
  while (alert.next_candidate < candidates.size()) {
    const std::uint32_t next = candidates[alert.next_candidate++];
    if (!reachable(next)) continue;
    Message msg;
    msg.type = MessageType::kAlert;
    msg.alert.id = alert_id;
    msg.alert.origin = alert.origin;
    msg.alert.hops = alert.hops;
    msg.alert.detected_at = alert.detected_at;
    msg.alert.predicted_arrival = alert.predicted_arrival;
    mac_.unicast(holder, next, msg,
                 [this, alert_id, holder](bool delivered) {
                   on_send_result(alert_id, holder, delivered);
                 });
    return;
  }

  // Sleep-Route fallback: no uphill neighbor is awake or backbone, so the
  // backbone answers with the predicted arrival instead of the measurement.
  InFlight finished = std::move(alert);
  in_flight_.erase(it);
  complete(alert_id, finished, /*delivered=*/false);
}

void Collection::on_send_result(std::uint32_t alert_id, std::uint32_t from,
                                bool delivered) {
  if (delivered) return;  // receipt already advanced the alert via on_receive
  auto it = in_flight_.find(alert_id);
  if (it == in_flight_.end() || it->second.holder != from) return;
  forward(alert_id);  // MAC gave up on that hop: try the next candidate
}

void Collection::on_receive(const Message& msg, std::uint32_t at_node) {
  auto it = in_flight_.find(msg.alert.id);
  if (it == in_flight_.end()) return;
  InFlight& alert = it->second;
  ++stats_.forwarded;
  alert.hops = static_cast<std::uint32_t>(msg.alert.hops) + 1;
  alert.holder = at_node;
  alert.next_candidate = 0;
  alert.path.push_back(at_node);
  trace(sim::TraceKind::kAlertForwarded, at_node,
        static_cast<double>(alert.hops));
  if (at_node == sink_) {
    InFlight finished = std::move(alert);
    in_flight_.erase(it);
    complete(msg.alert.id, finished, /*delivered=*/true);
    return;
  }
  if (alert.hops >= config_.max_hops) {
    ++stats_.dropped_ttl;
    in_flight_.erase(it);
    return;
  }
  forward(msg.alert.id);
}

void Collection::complete(std::uint32_t alert_id, InFlight& alert,
                          bool delivered) {
  const sim::Time now = simulator_.now();
  if (delivered) {
    ++stats_.delivered;
    stats_.sum_delay_s += now - alert.detected_at;
    stats_.sum_hops += alert.hops;
    trace(sim::TraceKind::kAlertDelivered, alert.holder,
          now - alert.detected_at);
  } else {
    ++stats_.delivered_predicted;
    trace(sim::TraceKind::kAlertPredicted, alert.holder,
          alert.predicted_arrival);
  }
  DeliveryRecord record;
  record.alert_id = alert_id;
  record.origin = alert.origin;
  record.delivered = delivered;
  record.hops = alert.hops;
  record.detected_at = alert.detected_at;
  record.completed_at = now;
  record.predicted_arrival = alert.predicted_arrival;
  record.path = std::move(alert.path);
  records_.push_back(std::move(record));
}

void Collection::trace(sim::TraceKind kind, std::uint32_t node, double x) {
  if (trace_ == nullptr || !trace_->enabled()) return;
  sim::TraceEvent e;
  e.time = simulator_.now();
  e.category = sim::TraceCategory::kNet;
  e.kind = kind;
  e.node = node;
  e.x = x;
  trace_->record(e);
}

}  // namespace pas::net

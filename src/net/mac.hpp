// Slotted low-power-listening MAC.
//
// The default Network path models delivery as jitter + time-on-air + a
// channel coin flip — fine for the paper's single-hop exchanges, wrong for
// multihop energy accounting, where what duty-cycled radios actually pay is
// rendezvous, contention, and collisions. SlottedLplMac models that cost:
//
//   * every node owns a wake-slot phase in [0, slot_period): while
//     protocol-asleep it wakes each slot for one clear-channel assessment
//     (CCA) sample and goes back down unless it detects a preamble;
//   * a sender performs CCA before transmitting and retreats into binary
//     exponential backoff while the medium is busy;
//   * a unicast to a sleeping receiver pays the rendezvous cost: the
//     preamble stretches until the receiver's next wake slot (LPL), so
//     sleeping nodes stay reachable without synchronized schedules;
//   * concurrent transmissions overlapping at a receiver collide; the
//     earlier one survives (capture) only when it led by at least
//     capture_margin_s — hidden terminals collide despite CCA;
//   * unicasts are acknowledged and retried; broadcasts are best-effort
//     short-preamble sends that reach only radios already listening.
//
// Every energy consequence (CCA samples, preamble, idle-listen extension,
// data TX) is reported through hooks charged to energy::EnergyMeter line
// items; the MAC itself holds no meters. Determinism: slot phases and
// backoff draws come from dedicated SeedSequence domains (kMacSlot,
// kMacBackoff) consumed only when the MAC is enabled, so a mac-off run
// never observes a different RNG stream — the golden-seed byte-identity
// contract (docs/ARCHITECTURE.md).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/message.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sim/trace.hpp"

namespace pas::net {

class Network;

struct MacConfig {
  /// Master switch. Off: Network keeps its single-hop jitter model and no
  /// MAC state (or RNG stream) exists — byte-identical to pre-MAC builds.
  bool enabled = false;
  /// LPL wake-slot period: a sleeping node samples the channel once per
  /// period. Bounds the rendezvous preamble (and so the worst-case unicast
  /// latency and preamble energy per hop).
  sim::Duration slot_period_s = 0.1;
  /// One clear-channel assessment sample (also the short-preamble length).
  sim::Duration cca_s = 2e-3;
  /// Binary exponential backoff unit: attempt k waits
  /// backoff_unit_s × uniform{1 … 2^min(k, max_backoff_exponent)}.
  sim::Duration backoff_unit_s = 1e-3;
  int max_backoff_exponent = 5;
  /// CCA-busy rounds or unacknowledged data attempts before a frame is
  /// dropped (unicasts report failure to the caller).
  int max_attempts = 5;
  /// ACK turnaround waited out before a retry's CCA.
  sim::Duration ack_wait_s = 2e-3;
  /// A reception survives an interferer only when its data portion started
  /// at least this much earlier (capture effect without a power model).
  sim::Duration capture_margin_s = 1e-3;

  /// Throws std::invalid_argument on non-positive durations or attempts.
  void validate() const;

  bool operator==(const MacConfig&) const noexcept = default;
};

struct MacStats {
  std::uint64_t unicasts = 0;       // unicast frames submitted
  std::uint64_t broadcasts = 0;     // broadcast frames submitted
  std::uint64_t data_tx = 0;        // data frames put on air
  std::uint64_t rendezvous_tx = 0;  // of which used a long (LPL) preamble
  std::uint64_t cca_busy = 0;       // sender CCA rounds that found traffic
  std::uint64_t backoffs = 0;       // backoff waits (CCA-busy or retry)
  std::uint64_t retries = 0;        // unacknowledged data attempts retried
  std::uint64_t collisions = 0;     // receptions corrupted by interference
  std::uint64_t captures = 0;       // receptions that survived interference
  std::uint64_t delivered = 0;      // frames handed up to the Network layer
  std::uint64_t acks = 0;           // unicast acknowledgements
  std::uint64_t drops_cca = 0;      // frames abandoned: channel never clear
  std::uint64_t drops_retry = 0;    // unicasts abandoned after max_attempts
  std::uint64_t lpl_samples = 0;    // sleeping-node channel samples
  std::uint64_t lpl_wakeups = 0;    // samples that locked onto a preamble
  std::uint64_t overhears = 0;      // samples that found undecodable traffic

  /// Accumulates `other` into this (campaign/replication roll-ups).
  void add(const MacStats& other);

  bool operator==(const MacStats&) const noexcept = default;
};

/// The slotted LPL MAC for one Network. Owned by world::Workspace and
/// attached to the Network (Network::attach_mac) only when enabled; the
/// Network then routes broadcast() through it and forwards listening/failed
/// transitions. All referenced objects must outlive the Mac.
class SlottedLplMac {
 public:
  /// Successful reception: hand `msg` up for receiver `to`. The Network
  /// installs this to run its channel/stats/handler path.
  using DeliverFn = std::function<void(const Message& msg, std::uint32_t to)>;
  /// Unicast outcome: true when the frame was delivered and acknowledged.
  using SendCallback = std::function<void(bool delivered)>;
  /// Time-priced energy hooks (seconds of CCA / preamble / idle listen).
  using EnergyTimeHook =
      std::function<void(std::uint32_t node, sim::Duration seconds)>;
  /// Data transmission hook (bits on air).
  using EnergyBitsHook =
      std::function<void(std::uint32_t node, std::size_t bits)>;

  SlottedLplMac(sim::Simulator& simulator, Network& network);

  /// Rebuilds MAC state for a new run: draws per-node slot phases and
  /// backoff streams, clears queues and medium state. Call after
  /// Network::reset (the node count and neighbor lists come from there).
  void reset(const MacConfig& config, const sim::SeedSequence& seeds);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_cca_hook(EnergyTimeHook h) { cca_hook_ = std::move(h); }
  void set_preamble_hook(EnergyTimeHook h) { preamble_hook_ = std::move(h); }
  void set_listen_hook(EnergyTimeHook h) { listen_hook_ = std::move(h); }
  void set_tx_hook(EnergyBitsHook h) { tx_hook_ = std::move(h); }
  void set_trace(sim::TraceLog* trace) { trace_ = trace; }

  /// Network notifications (radio on/off follows the protocol sleep state).
  void on_listening_changed(std::uint32_t id, bool listening);
  void on_failed(std::uint32_t id);

  /// Queues a best-effort broadcast (short preamble: reaches listening
  /// radios, plus any sleeping neighbor whose slot sample caught it).
  void broadcast(std::uint32_t from, const Message& msg);

  /// Queues an acknowledged unicast. `cb` (may be empty) fires exactly once
  /// with the outcome after delivery or after the frame is dropped.
  void unicast(std::uint32_t from, std::uint32_t to, const Message& msg,
               SendCallback cb);

  /// Outbound frames queued or in flight at `id` (collection backpressure).
  [[nodiscard]] std::size_t queue_depth(std::uint32_t id) const;

  /// The node's first slot-sample time strictly after `after` — also the
  /// rendezvous point a sender's preamble must cover.
  [[nodiscard]] sim::Time next_sample_time(std::uint32_t id,
                                           sim::Time after) const;
  [[nodiscard]] sim::Duration slot_phase(std::uint32_t id) const {
    return nodes_.at(id).phase;
  }

  [[nodiscard]] const MacStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const MacConfig& config() const noexcept { return config_; }

 private:
  struct Frame {
    Message msg;
    std::uint32_t to = 0;
    bool is_unicast = false;
    int attempts = 0;
    SendCallback cb;
  };
  /// An in-progress reception lock: set when the receiver's radio catches a
  /// preamble (awake at data start, or a slot sample during the preamble).
  struct Rx {
    bool active = false;
    std::uint32_t sender = 0;
    sim::Time data_start = 0.0;
    sim::Time data_end = 0.0;
    bool corrupted = false;
  };
  struct NodeState {
    sim::Duration phase = 0.0;
    sim::Pcg32 backoff_rng;
    bool sampling = false;  // slot-sample timer armed (protocol asleep)
    bool failed = false;
    // Current transmission (valid while tx_active).
    bool tx_active = false;
    sim::Time tx_start = 0.0;
    sim::Time tx_data_start = 0.0;
    sim::Time tx_data_end = 0.0;
    Rx rx;
    std::deque<Frame> queue;
    sim::Timer sample_timer;
    sim::Timer retry_timer;
  };

  void submit(std::uint32_t from, Frame frame);
  void try_send(std::uint32_t i);
  void start_tx(std::uint32_t i);
  void on_data_start(std::uint32_t i);
  void on_data_end(std::uint32_t i);
  void on_sample(std::uint32_t i);
  void finish_frame(std::uint32_t i, bool delivered);
  void backoff(std::uint32_t i, sim::Duration extra);
  [[nodiscard]] bool medium_busy_for(std::uint32_t i) const;
  [[nodiscard]] bool transmitting(const NodeState& n,
                                  sim::Time now) const noexcept {
    return n.tx_active && now < n.tx_data_end;
  }
  void trace(sim::TraceKind kind, std::uint32_t node, double x = 0.0);

  sim::Simulator& simulator_;
  Network& network_;
  MacConfig config_{};
  std::vector<NodeState> nodes_;
  DeliverFn deliver_;
  EnergyTimeHook cca_hook_;
  EnergyTimeHook preamble_hook_;
  EnergyTimeHook listen_hook_;
  EnergyBitsHook tx_hook_;
  sim::TraceLog* trace_ = nullptr;
  MacStats stats_;
};

}  // namespace pas::net

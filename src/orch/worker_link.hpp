// Driver↔worker protocol and the worker-side main loop.
//
// The orchestrator's child processes (`pas-exp --worker`, fork/exec'd by
// the supervisor) talk to the driver over their inherited stdin/stdout
// with a line-oriented text protocol:
//
//   worker → driver                      driver → worker
//   ---------------------------------    -------------------------
//   hello <worker_id> <recovered>        lease <id> <p1> <p2> ...
//   hb                                   quit
//   point_done <point>
//   lease_done <lease_id>
//   fail <message...>
//
// `hb` heartbeats flow from a small side thread even while the worker is
// deep inside a simulation, so the driver can tell "slow point" from
// "hung worker". Parsing is strict — trailing tokens, missing fields, or
// non-numeric ids make a line malformed (std::nullopt), and the supervisor
// treats a malformed line as a crashed worker rather than guessing.
//
// The worker writes results to its own part file through the standard
// identity-checked exp::Aggregator resume path: every completed point is
// appended + flushed before `point_done` is sent, so the part file (not
// the protocol stream) is the ground truth the supervisor re-reads when a
// worker dies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/manifest.hpp"

namespace pas::orch {

// --- Protocol messages ------------------------------------------------------

struct WorkerMsg {
  enum class Kind { kHello, kHeartbeat, kPointDone, kLeaseDone, kFail };
  Kind kind = Kind::kHeartbeat;
  int worker = -1;            // kHello
  std::size_t recovered = 0;  // kHello: rows resumed from the part file
  std::size_t point = 0;      // kPointDone
  std::uint64_t lease = 0;    // kLeaseDone
  std::string message;        // kFail
};

struct DriverCmd {
  enum class Kind { kLease, kQuit };
  Kind kind = Kind::kQuit;
  std::uint64_t lease = 0;           // kLease
  std::vector<std::size_t> points;   // kLease, non-empty
};

/// Strict parsers: std::nullopt on any malformed line.
[[nodiscard]] std::optional<WorkerMsg> parse_worker_line(
    const std::string& line);
[[nodiscard]] std::optional<DriverCmd> parse_driver_line(
    const std::string& line);

[[nodiscard]] std::string format_hello(int worker, std::size_t recovered);
[[nodiscard]] std::string format_heartbeat();
[[nodiscard]] std::string format_point_done(std::size_t point);
[[nodiscard]] std::string format_lease_done(std::uint64_t lease);
[[nodiscard]] std::string format_fail(const std::string& message);
[[nodiscard]] std::string format_lease(std::uint64_t lease,
                                       const std::vector<std::size_t>& points);
[[nodiscard]] std::string format_quit();

/// Writes `line` + '\n' to `fd` in full (EINTR-retried). False when the
/// peer is gone (EPIPE with SIGPIPE ignored) — both protocol ends use this
/// to detect the other side's death. Not serialized; callers with
/// concurrent writers (the worker's heartbeat thread) must hold their own
/// lock so lines stay atomic on the pipe.
bool write_line(int fd, const std::string& line);

// --- Worker main loop -------------------------------------------------------

struct WorkerOptions {
  /// Part files this worker owns (the driver derives them from --out).
  std::string out_csv;
  std::string per_run_csv;
  /// Telemetry JSONL part file (empty = no telemetry). Rows are appended +
  /// flushed before `point_done`, mirroring the CSV, so the driver's crash
  /// merge never sees a point whose telemetry is missing.
  std::string metrics_csv;
  int worker_id = 0;
  /// Threads for replication-parallel execution inside a point (>=1).
  std::size_t jobs = 1;
  /// Back the part file with the binary row store (`<out>.pasrows`); rows
  /// are appended + flushed to the store before `point_done`, and the CSV
  /// materializes on compact() (quit/EPIPE). The supervisor's crash merge
  /// reads store-only parts just as well. Off = legacy in-memory rows.
  bool store = true;
  /// Heartbeat period; tests may shrink it.
  double heartbeat_s = 0.5;
};

/// Runs the `pas-exp --worker` protocol loop until `quit` or stdin EOF
/// (driver death): resume the part file, announce `hello`, then execute
/// leases from stdin, reporting each completed point. Returns the process
/// exit code (0 on clean shutdown). On an execution error it sends `fail`
/// and returns 1; completed points stay on disk either way.
///
/// Test hook: if the environment variable PAS_ORCH_TEST_CRASH is set to
/// "<worker_id>:<n>", a worker with that id whose part file was empty at
/// startup raises SIGKILL after its n-th point_done — the deterministic
/// mid-campaign crash the recovery tests inject. A respawned or resumed
/// worker recovers rows at startup, so the hook disarms itself.
int run_worker(const exp::Manifest& manifest, const WorkerOptions& options);

}  // namespace pas::orch

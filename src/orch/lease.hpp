// Lease bookkeeping for the campaign orchestrator.
//
// A lease is the driver's record that one worker currently owns a batch of
// grid points. The table enforces the invariants the work-stealing
// scheduler rests on:
//  * a point is in at most one active lease (duplicate-lease rejection —
//    two workers computing the same point would produce duplicate rows
//    that merge_outputs() rejects),
//  * progress (`point_done`) is only accepted for a point actually pending
//    in that lease (a worker reporting foreign points is a protocol
//    violation, not progress),
//  * a lease completes only when every point in it is done.
//
// Liveness: every protocol line from a worker renews its lease timestamp;
// expired() lists leases whose holder has been silent longer than the hang
// timeout so the supervisor can kill and reassign. Time is passed in
// explicitly (steady_clock time points) so expiry is unit-testable.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace pas::orch {

using Clock = std::chrono::steady_clock;

struct Lease {
  std::uint64_t id = 0;
  int worker = -1;
  /// Every point in the lease, issue order.
  std::vector<std::size_t> points;
  /// Points not yet reported done.
  std::set<std::size_t> pending;
  Clock::time_point issued{};
  Clock::time_point renewed{};
};

class LeaseTable {
 public:
  /// Issues a new lease of `points` to `worker`. Throws std::logic_error
  /// if `points` is empty, contains a duplicate, or contains a point that
  /// is already part of another active lease.
  std::uint64_t issue(int worker, const std::vector<std::size_t>& points,
                      Clock::time_point now);

  /// Refreshes the lease's liveness timestamp. Throws std::logic_error for
  /// an unknown lease id.
  void renew(std::uint64_t id, Clock::time_point now);

  /// Marks one leased point finished (and renews the lease). Throws
  /// std::logic_error if the lease is unknown or the point is not pending
  /// in it — including a second point_done for the same point.
  void mark_done(std::uint64_t id, std::size_t point, Clock::time_point now);

  /// True once every point of the lease is done.
  [[nodiscard]] bool is_complete(std::uint64_t id) const;

  /// Retires a fully-done lease. Throws std::logic_error if the lease is
  /// unknown or still has pending points (a lying `lease_done`).
  void complete(std::uint64_t id);

  /// Drops the lease and returns its unfinished points (for put_back).
  /// Throws std::logic_error for an unknown lease id.
  std::vector<std::size_t> revoke(std::uint64_t id);

  /// The active lease held by `worker`, if any (workers hold at most one).
  [[nodiscard]] std::optional<std::uint64_t> lease_of(int worker) const;

  /// Leases whose last renewal is more than `timeout_s` seconds before
  /// `now` — crashed-silent or hung holders.
  [[nodiscard]] std::vector<std::uint64_t> expired(Clock::time_point now,
                                                   double timeout_s) const;

  [[nodiscard]] const Lease* find(std::uint64_t id) const;
  [[nodiscard]] std::size_t active() const noexcept { return leases_.size(); }

 private:
  Lease& get(std::uint64_t id, const char* op);

  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Lease> leases_;
  /// Points currently under any active lease (duplicate rejection).
  std::set<std::size_t> leased_points_;
};

}  // namespace pas::orch

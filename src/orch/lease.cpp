#include "orch/lease.hpp"

#include <stdexcept>
#include <string>

namespace pas::orch {

Lease& LeaseTable::get(std::uint64_t id, const char* op) {
  const auto it = leases_.find(id);
  if (it == leases_.end()) {
    throw std::logic_error(std::string("LeaseTable: ") + op +
                           " for unknown lease " + std::to_string(id));
  }
  return it->second;
}

std::uint64_t LeaseTable::issue(int worker,
                                const std::vector<std::size_t>& points,
                                Clock::time_point now) {
  if (points.empty()) {
    throw std::logic_error("LeaseTable: cannot issue an empty lease");
  }
  std::set<std::size_t> pending;
  for (const auto p : points) {
    if (leased_points_.count(p) > 0) {
      throw std::logic_error("LeaseTable: point " + std::to_string(p) +
                             " is already under an active lease");
    }
    if (!pending.insert(p).second) {
      throw std::logic_error("LeaseTable: duplicate point " +
                             std::to_string(p) + " within one lease");
    }
  }
  Lease lease;
  lease.id = next_id_++;
  lease.worker = worker;
  lease.points = points;
  lease.pending = std::move(pending);
  lease.issued = now;
  lease.renewed = now;
  leased_points_.insert(points.begin(), points.end());
  const auto id = lease.id;
  leases_.emplace(id, std::move(lease));
  return id;
}

void LeaseTable::renew(std::uint64_t id, Clock::time_point now) {
  get(id, "renew").renewed = now;
}

void LeaseTable::mark_done(std::uint64_t id, std::size_t point,
                           Clock::time_point now) {
  Lease& lease = get(id, "mark_done");
  if (lease.pending.erase(point) == 0) {
    throw std::logic_error("LeaseTable: point " + std::to_string(point) +
                           " is not pending in lease " + std::to_string(id));
  }
  leased_points_.erase(point);
  lease.renewed = now;
}

bool LeaseTable::is_complete(std::uint64_t id) const {
  const auto it = leases_.find(id);
  return it != leases_.end() && it->second.pending.empty();
}

void LeaseTable::complete(std::uint64_t id) {
  const Lease& lease = get(id, "complete");
  if (!lease.pending.empty()) {
    throw std::logic_error("LeaseTable: lease " + std::to_string(id) +
                           " still has " +
                           std::to_string(lease.pending.size()) +
                           " pending points");
  }
  leases_.erase(id);
}

std::vector<std::size_t> LeaseTable::revoke(std::uint64_t id) {
  Lease& lease = get(id, "revoke");
  // Preserve issue order for put_back, skipping finished points.
  std::vector<std::size_t> unfinished;
  unfinished.reserve(lease.pending.size());
  for (const auto p : lease.points) {
    if (lease.pending.count(p) > 0) {
      unfinished.push_back(p);
      leased_points_.erase(p);
    }
  }
  leases_.erase(id);
  return unfinished;
}

std::optional<std::uint64_t> LeaseTable::lease_of(int worker) const {
  for (const auto& [id, lease] : leases_) {
    if (lease.worker == worker) return id;
  }
  return std::nullopt;
}

std::vector<std::uint64_t> LeaseTable::expired(Clock::time_point now,
                                               double timeout_s) const {
  std::vector<std::uint64_t> out;
  if (timeout_s <= 0.0) return out;  // disabled
  for (const auto& [id, lease] : leases_) {
    const double silent =
        std::chrono::duration<double>(now - lease.renewed).count();
    if (silent > timeout_s) out.push_back(id);
  }
  return out;
}

const Lease* LeaseTable::find(std::uint64_t id) const {
  const auto it = leases_.find(id);
  return it == leases_.end() ? nullptr : &it->second;
}

}  // namespace pas::orch

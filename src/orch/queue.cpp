#include "orch/queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace pas::orch {

WorkQueue::WorkQueue(std::vector<std::size_t> points, std::size_t max_lease)
    : points_(points.begin(), points.end()), max_lease_(max_lease) {
  if (max_lease_ == 0) {
    throw std::invalid_argument("WorkQueue: max_lease must be >= 1");
  }
}

std::vector<std::size_t> WorkQueue::take(std::size_t workers) {
  if (workers == 0) {
    throw std::invalid_argument("WorkQueue: workers must be >= 1");
  }
  const std::size_t guided = points_.size() / (2 * workers);
  const std::size_t n = std::min(
      {std::max<std::size_t>(1, guided), max_lease_, points_.size()});
  std::vector<std::size_t> lease(points_.begin(), points_.begin() + n);
  points_.erase(points_.begin(), points_.begin() + n);
  return lease;
}

void WorkQueue::put_back(const std::vector<std::size_t>& points) {
  points_.insert(points_.begin(), points.begin(), points.end());
}

}  // namespace pas::orch

#include "orch/worker_link.hpp"

#include <unistd.h>

#include <charconv>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "exp/aggregate.hpp"
#include "exp/grid.hpp"
#include "exp/row_store.hpp"
#include "exp/runner.hpp"
#include "exp/telemetry.hpp"
#include "runtime/thread_pool.hpp"

namespace pas::orch {

namespace {

/// Splits on single spaces; empty tokens (leading/double/trailing spaces)
/// make the line malformed.
std::optional<std::vector<std::string>> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string token;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ' ') {
      if (token.empty()) return std::nullopt;
      tokens.push_back(std::move(token));
      token.clear();
    } else if (line[i] == '\r' || line[i] == '\n') {
      return std::nullopt;
    } else {
      token.push_back(line[i]);
    }
  }
  return tokens;
}

template <typename T>
bool parse_number(const std::string& token, T& out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

/// Serialized line writer shared by the worker's main loop and its
/// heartbeat thread; one write() per line keeps lines atomic on the pipe
/// (they are far below PIPE_BUF).
class LineWriter {
 public:
  explicit LineWriter(int fd) : fd_(fd) {}

  /// Returns false when the peer is gone (EPIPE with SIGPIPE ignored).
  bool send(const std::string& line) {
    const std::lock_guard lock(mutex_);
    return write_line(fd_, line);
  }

 private:
  int fd_;
  std::mutex mutex_;
};

/// Emits `hb` every period until stopped, so the driver's hang detector
/// sees liveness even while the main thread is inside a long simulation.
class HeartbeatThread {
 public:
  HeartbeatThread(LineWriter& out, double period_s)
      : out_(out), period_s_(period_s), thread_([this] { loop(); }) {}

  ~HeartbeatThread() { stop(); }

  void stop() {
    {
      const std::lock_guard lock(mutex_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void loop() {
    std::unique_lock lock(mutex_);
    while (!stopped_) {
      cv_.wait_for(lock, std::chrono::duration<double>(period_s_));
      if (stopped_) break;
      lock.unlock();
      out_.send(format_heartbeat());
      lock.lock();
    }
  }

  LineWriter& out_;
  double period_s_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::thread thread_;
};

/// Parses PAS_ORCH_TEST_CRASH ("<worker_id>:<n>"); 0 when unset/foreign.
std::size_t crash_after_points(int worker_id) {
  const char* spec = std::getenv("PAS_ORCH_TEST_CRASH");
  if (spec == nullptr) return 0;
  const std::string s(spec);
  const auto colon = s.find(':');
  if (colon == std::string::npos) return 0;
  int id = -1;
  std::size_t after = 0;
  if (!parse_number(s.substr(0, colon), id) ||
      !parse_number(s.substr(colon + 1), after)) {
    return 0;
  }
  return id == worker_id ? after : 0;
}

}  // namespace

bool write_line(int fd, const std::string& line) {
  std::string buf = line;
  buf.push_back('\n');
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// --- Parsing / formatting ---------------------------------------------------

std::optional<WorkerMsg> parse_worker_line(const std::string& line) {
  // `fail` carries free text (whatever e.what() said, flattened to one
  // line); validate only the prefix so spacing in the message cannot turn
  // a real error report into a "malformed line" protocol violation.
  if (line.rfind("fail ", 0) == 0) {
    if (line.size() == 5 ||
        line.find_first_of("\r\n") != std::string::npos) {
      return std::nullopt;
    }
    WorkerMsg msg;
    msg.kind = WorkerMsg::Kind::kFail;
    msg.message = line.substr(5);
    return msg;
  }
  const auto tokens = tokenize(line);
  if (!tokens) return std::nullopt;
  WorkerMsg msg;
  const auto& t = *tokens;
  if (t[0] == "hb") {
    if (t.size() != 1) return std::nullopt;
    msg.kind = WorkerMsg::Kind::kHeartbeat;
  } else if (t[0] == "hello") {
    if (t.size() != 3 || !parse_number(t[1], msg.worker) || msg.worker < 0 ||
        !parse_number(t[2], msg.recovered)) {
      return std::nullopt;
    }
    msg.kind = WorkerMsg::Kind::kHello;
  } else if (t[0] == "point_done") {
    if (t.size() != 2 || !parse_number(t[1], msg.point)) return std::nullopt;
    msg.kind = WorkerMsg::Kind::kPointDone;
  } else if (t[0] == "lease_done") {
    if (t.size() != 2 || !parse_number(t[1], msg.lease)) return std::nullopt;
    msg.kind = WorkerMsg::Kind::kLeaseDone;
  } else {
    return std::nullopt;  // includes a bare "fail" with no message
  }
  return msg;
}

std::optional<DriverCmd> parse_driver_line(const std::string& line) {
  const auto tokens = tokenize(line);
  if (!tokens) return std::nullopt;
  DriverCmd cmd;
  const auto& t = *tokens;
  if (t[0] == "quit") {
    if (t.size() != 1) return std::nullopt;
    cmd.kind = DriverCmd::Kind::kQuit;
  } else if (t[0] == "lease") {
    if (t.size() < 3 || !parse_number(t[1], cmd.lease)) return std::nullopt;
    cmd.kind = DriverCmd::Kind::kLease;
    cmd.points.reserve(t.size() - 2);
    for (std::size_t i = 2; i < t.size(); ++i) {
      std::size_t point = 0;
      if (!parse_number(t[i], point)) return std::nullopt;
      cmd.points.push_back(point);
    }
  } else {
    return std::nullopt;
  }
  return cmd;
}

std::string format_hello(int worker, std::size_t recovered) {
  return "hello " + std::to_string(worker) + ' ' + std::to_string(recovered);
}

std::string format_heartbeat() { return "hb"; }

std::string format_point_done(std::size_t point) {
  return "point_done " + std::to_string(point);
}

std::string format_lease_done(std::uint64_t lease) {
  return "lease_done " + std::to_string(lease);
}

std::string format_fail(const std::string& message) {
  // The protocol is line-oriented; flatten any newlines in e.what().
  std::string flat = message.empty() ? std::string("unknown error") : message;
  for (auto& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "fail " + flat;
}

std::string format_lease(std::uint64_t lease,
                         const std::vector<std::size_t>& points) {
  std::string out = "lease " + std::to_string(lease);
  for (const auto p : points) {
    out.push_back(' ');
    out += std::to_string(p);
  }
  return out;
}

std::string format_quit() { return "quit"; }

// --- Worker main loop -------------------------------------------------------

int run_worker(const exp::Manifest& manifest, const WorkerOptions& options) {
  // A dead driver must surface as EPIPE from send() (→ orderly shutdown
  // with a compacted part file), not as a SIGPIPE that kills the worker
  // mid-record. The supervisor resets the disposition to default before
  // exec, so this is the worker's own responsibility.
  ::signal(SIGPIPE, SIG_IGN);
  LineWriter out(STDOUT_FILENO);
  try {
    manifest.validate();
    const auto points = exp::expand_grid(manifest);

    exp::AggregatorOptions agg_options;
    agg_options.csv_path = options.out_csv;
    agg_options.per_run_path = options.per_run_csv;
    agg_options.axis_names = exp::axis_columns(manifest);
    agg_options.total_points = points.size();
    agg_options.replications = manifest.replications;
    agg_options.expected_identity = exp::grid_identity(points);
    if (options.store) {
      agg_options.store_path = exp::RowStore::path_for(options.out_csv);
    }
    // No owned_points: lease membership is decided by the driver at
    // runtime, so the part file may legitimately hold any subset.
    exp::Aggregator aggregator(std::move(agg_options));
    const std::size_t recovered = aggregator.load_existing();

    std::optional<exp::TelemetrySink> sink;
    if (!options.metrics_csv.empty()) {
      exp::TelemetryOptions telemetry_options;
      telemetry_options.path = options.metrics_csv;
      telemetry_options.axis_names = exp::axis_columns(manifest);
      telemetry_options.total_points = points.size();
      sink.emplace(std::move(telemetry_options));
      sink->load_existing();
    }

    std::unique_ptr<runtime::ThreadPool> pool;
    if (options.jobs > 1) {
      pool = std::make_unique<runtime::ThreadPool>(options.jobs);
    }

    const std::size_t crash_after =
        recovered == 0 ? crash_after_points(options.worker_id) : 0;
    std::size_t done_since_start = 0;

    if (!out.send(format_hello(options.worker_id, recovered))) return 1;
    HeartbeatThread heartbeat(out, options.heartbeat_s);

    std::string line;
    while (std::getline(std::cin, line)) {
      const auto cmd = parse_driver_line(line);
      if (!cmd) {
        heartbeat.stop();
        out.send(format_fail("malformed driver command: " + line));
        return 1;
      }
      if (cmd->kind == DriverCmd::Kind::kQuit) break;
      for (const auto p : cmd->points) {
        if (p >= points.size()) {
          heartbeat.stop();
          out.send(format_fail("leased point " + std::to_string(p) +
                               " is outside the grid"));
          return 1;
        }
        // A point can already be on disk if the driver re-issued work the
        // prescan had claimed (defensive — it normally never does).
        if (!aggregator.is_done(p)) {
          const auto metrics =
              exp::run_point(points[p], manifest.replications, pool.get());
          // record() appends + flushes before point_done is sent: the part
          // file leads the protocol stream, so a crash after this line
          // loses at most the *message*, never the data — the supervisor
          // re-reads the file on crash recovery.
          aggregator.record(p, points[p].seed, points[p].values, metrics);
          if (sink.has_value()) sink->record(points[p], metrics);
        }
        if (!out.send(format_point_done(p))) {
          aggregator.compact();  // driver died (EPIPE); exit tidily
          if (sink.has_value()) sink->finalize();
          return 1;
        }
        if (crash_after != 0 && ++done_since_start >= crash_after) {
          // Deterministic mid-campaign SIGKILL for the recovery tests.
          ::raise(SIGKILL);
        }
      }
      if (!out.send(format_lease_done(cmd->lease))) {
        aggregator.compact();
        if (sink.has_value()) sink->finalize();
        return 1;
      }
    }
    // `quit` or stdin EOF (driver gone): leave a sorted, torn-row-free
    // part file behind so it is directly mergeable/resumable.
    heartbeat.stop();
    aggregator.compact();
    if (sink.has_value()) sink->finalize();
    return 0;
  } catch (const std::exception& e) {
    out.send(format_fail(e.what()));
    return 1;
  }
}

}  // namespace pas::orch

// Multi-process campaign supervisor (the third layer of the scale stack:
// threads → static shards → supervised dynamic shards).
//
// drive() turns one manifest into a fault-tolerant multi-process campaign:
// it fork/execs W `pas-exp --worker` children, hands out point-range
// leases from a work-stealing queue (src/orch/queue.hpp — dynamic sizing
// beats PR 2's static modulo split when points have uneven cost), tracks
// liveness through the heartbeat/progress protocol (src/orch/worker_link
// .hpp), and recovers from failure:
//
//  * Crashed worker (non-zero exit, SIGKILL, protocol violation): the
//    driver re-reads the dead worker's part file — rows are flushed before
//    `point_done` is sent, so the file is ground truth — claims whatever
//    actually finished, drops rows duplicated against other parts, pushes
//    the unfinished lease points back to the queue, and spawns a
//    replacement (bounded by max_respawns).
//  * Hung worker (no protocol line for hang_timeout_s): SIGKILLed and
//    handled as a crash.
//  * SIGINT/SIGTERM: children are terminated, every part file is left
//    independently resumable, and the report says so; the CLI prints the
//    exact command that continues the campaign.
//
// On completion the driver runs exp::merge_outputs over the part files
// (validated against the manifest) and deletes them — the merged output is
// byte-identical to a serial `pas-exp` run, because every point's seeds
// derive from the manifest alone and merge re-emits raw rows in point
// order.
//
// Resume composes across topologies: `--drive --resume` claims rows from
// an existing --out (e.g. an interrupted single-process run) and from any
// `<out>.w<k>` part files (from a previous drive with any worker count)
// before scheduling only the rest.
#pragma once

#include <cstdint>
#include <string>

#include "exp/manifest.hpp"

namespace pas::serve {
class CampaignFeed;
}  // namespace pas::serve

namespace pas::orch {

struct DriveOptions {
  /// Binary to exec as workers (normally the running pas-exp itself; see
  /// self_exe_path()).
  std::string exe_path;
  /// Manifest file path handed to workers (they re-load and re-expand it,
  /// which is what keeps every process's view of point seeds identical).
  std::string manifest_path;
  std::string out_csv;
  /// Optional per-replication CSV; part files get the same ".w<k>" suffix.
  std::string per_run_csv;
  /// Optional telemetry JSONL (pas-exp --metrics). Workers write ".w<k>"
  /// parts; the driver merges them and appends its own orchestrator-scope
  /// registry snapshot (lease latency, heartbeat gaps, respawns) as the
  /// trailer row. Also arms the driver-side instruments.
  std::string metrics_path;
  /// Worker processes to spawn (capped by the number of pending points).
  std::size_t workers = 2;
  /// Threads per worker for replication-parallel points.
  std::size_t jobs_per_worker = 1;
  /// Claim rows from existing --out / part files instead of erroring.
  bool resume = false;
  /// Kill a worker silent for this long (heartbeats tick every 0.5 s);
  /// 0 disables hang detection.
  double hang_timeout_s = 120.0;
  /// Replacement-spawn budget for crashed/hung workers; exceeding it with
  /// work outstanding aborts the drive.
  std::size_t max_respawns = 8;
  /// Cap on points per lease.
  std::size_t max_lease = 64;
  /// Back workers' part files (and the resumed --out) with the binary row
  /// store (exp/row_store.hpp): in flight a part lives in `<part>.pasrows`
  /// and its CSV only materializes when the worker drains or the driver
  /// recovers it, so part discovery, crash recovery, and resume all accept
  /// store-only parts. Off = the legacy in-memory aggregation. The merged
  /// output is byte-identical either way.
  bool store = true;

  enum class Verbosity {
    kQuiet,     // nothing
    kPerPoint,  // one line per completed point
    kPeriodic,  // one status line per progress_interval_s (--progress)
  };
  Verbosity verbosity = Verbosity::kPerPoint;
  double progress_interval_s = 1.0;

  /// Live-observability hub (serve/feed.hpp). The driver publishes the
  /// worker table, point completions, crash/respawn/recovery events, and
  /// throttled progress into it; with --progress the feed also renders
  /// the classic status lines, so the terminal and any SSE stream are two
  /// views of the same counters. Null = the driver owns a private feed
  /// (progress unification still applies; nothing is retained).
  serve::CampaignFeed* feed = nullptr;
};

struct DriveReport {
  std::size_t total_points = 0;
  std::size_t computed = 0;  // points simulated by this invocation
  std::size_t resumed = 0;   // rows claimed from existing outputs
  std::size_t replications = 0;
  std::size_t workers_spawned = 0;  // initial spawns + respawns
  std::size_t crashes = 0;          // workers that died without clean quit
  std::size_t respawns = 0;
  std::size_t merged_rows = 0;
  double wall_s = 0.0;
  /// True when SIGINT/SIGTERM stopped the drive early; outputs are left
  /// resumable and no merge was attempted.
  bool interrupted = false;
};

/// Runs the supervised campaign. Throws on manifest/IO/protocol errors and
/// when the respawn budget is exhausted with work outstanding; children
/// never outlive the call.
DriveReport drive(const exp::Manifest& manifest, const DriveOptions& options);

/// Path of the currently running executable (/proc/self/exe when
/// available, else the given argv[0]) — what drive() should exec.
[[nodiscard]] std::string self_exe_path(const char* argv0);

/// The ".w<k>" part-file path for worker `k` of output `base`.
[[nodiscard]] std::string part_path(const std::string& base, int worker);

/// The --progress status line shared by drive and single-process mode:
/// "progress: done/total points (pct%) | reps/s | ETA". `computed` counts
/// only points simulated this invocation (resumed rows carry no elapsed
/// time), which is what makes the rate honest across resumes.
[[nodiscard]] std::string progress_line(std::size_t done, std::size_t total,
                                        std::size_t computed,
                                        std::size_t replications,
                                        double elapsed_s);

/// One per-worker row of the --progress drive status, e.g.
///   "  worker 3: 5 pts leased | 12 done | last line 0.4s ago"
/// (or "idle" when the worker holds no lease). `hb_age_s` is the time since
/// the worker's last protocol line — the same signal the hang detector
/// judges, so a climbing age flags a wedged worker before it is killed.
[[nodiscard]] std::string worker_status_line(int id, bool has_lease,
                                             std::size_t lease_points_left,
                                             std::size_t points_done,
                                             double hb_age_s);

}  // namespace pas::orch

#include "orch/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/grid.hpp"
#include "exp/row_store.hpp"
#include "exp/telemetry.hpp"
#include "io/json.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "orch/lease.hpp"
#include "orch/queue.hpp"
#include "orch/worker_link.hpp"
#include "serve/feed.hpp"

namespace pas::orch {

namespace fs = std::filesystem;

std::string self_exe_path(const char* argv0) {
#ifdef __linux__
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
#endif
  return argv0 != nullptr ? std::string(argv0) : std::string();
}

std::string part_path(const std::string& base, int worker) {
  return base + ".w" + std::to_string(worker);
}

std::string progress_line(std::size_t done, std::size_t total,
                          std::size_t computed, std::size_t replications,
                          double elapsed_s) {
  const double reps = static_cast<double>(computed * replications);
  const double rate = elapsed_s > 0.0 ? reps / elapsed_s : 0.0;
  const double eta =
      rate > 0.0
          ? static_cast<double>((total - done) * replications) / rate
          : 0.0;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "progress: %zu/%zu points (%.0f%%) | %.1f reps/s | ETA %.0fs",
                done, total,
                100.0 * static_cast<double>(done) /
                    static_cast<double>(std::max<std::size_t>(1, total)),
                rate, eta);
  return buf;
}

std::string worker_status_line(int id, bool has_lease,
                               std::size_t lease_points_left,
                               std::size_t points_done, double hb_age_s) {
  char buf[160];
  if (has_lease) {
    std::snprintf(buf, sizeof(buf),
                  "  worker %d: %zu pts leased | %zu done | last line %.1fs "
                  "ago",
                  id, lease_points_left, points_done, hb_age_s);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "  worker %d: idle | %zu done | last line %.1fs ago", id,
                  points_done, hb_age_s);
  }
  return buf;
}

namespace {

// --- Signal plumbing --------------------------------------------------------
//
// The handler only sets a flag and pokes the self-pipe so poll() wakes up;
// everything else (terminating children, printing the resume hint) happens
// on the main loop, where non-async-signal-safe calls are legal.

volatile std::sig_atomic_t g_signal_flag = 0;
int g_signal_pipe_write = -1;

void on_signal(int) {
  g_signal_flag = 1;
  if (g_signal_pipe_write >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe_write, &byte, 1);
  }
}

/// Installs SIGINT/SIGTERM → flag and SIGPIPE → ignore (a worker dying
/// mid-send must surface as EPIPE, not kill the driver); restores the
/// previous dispositions on destruction so drive() nests cleanly inside
/// tests and other hosts.
class SignalGuard {
 public:
  explicit SignalGuard(int pipe_write_fd) {
    g_signal_flag = 0;
    g_signal_pipe_write = pipe_write_fd;
    struct sigaction action{};
    action.sa_handler = on_signal;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, &old_int_);
    ::sigaction(SIGTERM, &action, &old_term_);
    struct sigaction ignore{};
    ignore.sa_handler = SIG_IGN;
    sigemptyset(&ignore.sa_mask);
    ::sigaction(SIGPIPE, &ignore, &old_pipe_);
  }
  ~SignalGuard() {
    ::sigaction(SIGINT, &old_int_, nullptr);
    ::sigaction(SIGTERM, &old_term_, nullptr);
    ::sigaction(SIGPIPE, &old_pipe_, nullptr);
    g_signal_pipe_write = -1;
  }

 private:
  struct sigaction old_int_{}, old_term_{}, old_pipe_{};
};

std::vector<int> discover_part_ids(const std::string& out_csv) {
  const fs::path out(out_csv);
  fs::path dir = out.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = out.filename().string() + ".w";
  std::vector<int> ids;
  if (!fs::is_directory(dir)) return ids;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    std::string tail = name.substr(prefix.size());
    // A SIGTERMed/SIGKILLed store-mode worker leaves only "<part>.pasrows"
    // behind (the CSV materializes on compact, which a kill skips), so part
    // discovery must see through the store extension.
    constexpr std::string_view kStoreExt = ".pasrows";
    if (tail.size() > kStoreExt.size() && tail.ends_with(kStoreExt)) {
      tail.resize(tail.size() - kStoreExt.size());
    }
    int id = 0;
    const auto [ptr, ec] =
        std::from_chars(tail.data(), tail.data() + tail.size(), id);
    // Canonical ".w<k>" names only (prescan and merge reconstruct the path
    // from the id): reject trailing junk (".w0.tmp"), overflow-wide
    // suffixes, and leading zeros (".w0009") rather than mis-claiming.
    if (ec != std::errc{} || ptr != tail.data() + tail.size() || id < 0 ||
        std::to_string(id) != tail) {
      continue;
    }
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

class Driver {
 public:
  Driver(const exp::Manifest& manifest, const DriveOptions& options)
      : manifest_(manifest),
        options_(options),
        registry_(!options.metrics_path.empty()) {
    // Resolve the orchestrator instruments once, before any worker can
    // make the registry freeze itself. All of these measure wall-clock
    // behaviour of this drive, so they live in the trailer row only —
    // never in the deterministic per-point telemetry.
    lease_latency_s_ = registry_.histogram("orch.lease_latency_s");
    hb_gap_s_ = registry_.histogram("orch.heartbeat_gap_s");
    crashes_ = registry_.counter("orch.worker_crashes");
    respawns_ = registry_.counter("orch.respawns");
    recovered_rows_ = registry_.counter("orch.recovered_rows");

    // Progress and worker events flow through one feed whether or not a
    // server is attached; without one the driver owns a throwaway feed so
    // the --progress rendering path is identical either way.
    if (options.feed != nullptr) {
      feed_ = options.feed;
    } else {
      local_feed_ = std::make_unique<serve::CampaignFeed>();
      feed_ = local_feed_.get();
    }
    feed_->set_echo(options.verbosity == DriveOptions::Verbosity::kPeriodic,
                    /*drive_style=*/true, options.progress_interval_s);
  }

  DriveReport run();

 private:
  struct Worker {
    int id = -1;
    pid_t pid = -1;
    int in_fd = -1;   // driver → worker stdin
    int out_fd = -1;  // worker stdout → driver
    std::string buf;  // partial protocol line
    bool hello = false;
    bool has_lease = false;
    std::uint64_t lease = 0;
    bool quit_sent = false;
    bool eof = false;
    bool doomed = false;  // queued for kill + crash recovery
    std::string doom_reason;
    Clock::time_point last_line{};
    std::size_t points_done = 0;  // completed this spawn (progress display)
    std::string part_csv;
    std::string part_runs;
    std::string part_metrics;
  };

  void prescan();
  std::size_t sanitize_and_claim(const std::string& csv,
                                 const std::string& runs, int tag);
  void spawn(int id);
  bool send(Worker& w, const std::string& line);
  void assign(Worker& w);
  void handle_line(Worker& w, const std::string& line);
  void read_worker(Worker& w);
  /// Kills + reaps every doomed/EOF worker and runs crash recovery or
  /// clean removal. Safe point: called between poll iterations only.
  void reap();
  void crash_recover(Worker& w);
  void doom(Worker& w, std::string reason);
  void close_fds(Worker& w);
  void interrupt_children();
  void merge_and_clean();
  void print_point(const Worker& w, std::size_t point);
  void print_progress(bool force);
  /// Appends the ring buffer of recent protocol exchanges to
  /// `<out_csv>.flightrec` (crash/abort forensics) and notes it on stderr.
  void dump_flight_recorder(const std::string& why);
  [[nodiscard]] std::size_t eligible_workers() const;

  const exp::Manifest& manifest_;
  const DriveOptions& options_;

  std::vector<exp::GridPoint> points_;
  std::vector<std::string> axis_names_;
  std::vector<std::vector<std::string>> identity_;

  /// point → owning source: a worker/part id, or -1 for the resumed --out.
  std::map<std::size_t, int> claimed_;
  std::set<int> all_part_ids_;
  bool out_is_merge_seed_ = false;
  int next_worker_id_ = 0;

  std::unique_ptr<WorkQueue> queue_;
  LeaseTable leases_;
  std::vector<std::unique_ptr<Worker>> workers_;

  DriveReport report_;
  std::string last_worker_error_;
  Clock::time_point t0_{};

  /// The unified progress/event hub: options_.feed, or a private one.
  serve::CampaignFeed* feed_ = nullptr;
  std::unique_ptr<serve::CampaignFeed> local_feed_;

  // Observability: inert (and the registry snapshot empty) unless --metrics
  // was given; the flight recorder always runs — noting a protocol line is
  // one small string copy, and its dump is the only record of what the
  // driver and a dead worker last said to each other.
  obs::Registry registry_;
  obs::Histogram lease_latency_s_;
  obs::Histogram hb_gap_s_;
  obs::Counter crashes_;
  obs::Counter respawns_;
  obs::Counter recovered_rows_;
  obs::FlightRecorder flightrec_{256};
};

std::size_t Driver::eligible_workers() const {
  std::size_t n = 0;
  for (const auto& w : workers_) {
    if (!w->quit_sent && !w->doomed) ++n;
  }
  return std::max<std::size_t>(1, n);
}

std::size_t Driver::sanitize_and_claim(const std::string& csv,
                                       const std::string& runs, int tag) {
  exp::AggregatorOptions agg_options;
  agg_options.csv_path = csv;
  agg_options.per_run_path = runs;
  agg_options.axis_names = axis_names_;
  agg_options.total_points = points_.size();
  agg_options.replications = manifest_.replications;
  agg_options.expected_identity = identity_;
  if (options_.store) {
    agg_options.store_path = exp::RowStore::path_for(csv);
  }
  exp::Aggregator aggregator(std::move(agg_options));
  // The identity-checked resume path: throws if the file belongs to a
  // different manifest, silently drops rows torn by a kill. In store mode
  // this reads `<csv>.pasrows` when present (the mid-flight ground truth)
  // and falls back to seeding the store from the CSV otherwise.
  aggregator.load_existing();
  // A point may appear in two part files when a worker wrote its row but
  // died before reporting it and the lease was reassigned. First claim
  // wins; the duplicate row is physically removed so merge_outputs()
  // (which rejects overlaps) sees each point exactly once.
  std::vector<std::size_t> duplicates;
  for (const auto p : aggregator.done_points()) {
    const auto it = claimed_.find(p);
    if (it != claimed_.end() && it->second != tag) duplicates.push_back(p);
  }
  aggregator.discard_points(duplicates);
  std::size_t fresh = 0;
  for (const auto p : aggregator.done_points()) {
    if (claimed_.emplace(p, tag).second) ++fresh;
  }
  // Store mode: materialize the duplicate-free CSV now so merge_and_clean
  // (which reads CSV part files) sees every surviving row, including those
  // of a killed worker that never compacted.
  if (aggregator.store_mode()) aggregator.compact();
  return fresh;
}

void Driver::prescan() {
  // An interrupted store-mode run may have its data only in the row store
  // (the CSV materializes at compact/finalize), so "the output exists"
  // must consider `<out>.pasrows` too.
  const bool out_exists =
      fs::exists(options_.out_csv) ||
      (options_.store &&
       fs::exists(exp::RowStore::path_for(options_.out_csv)));
  const bool runs_exists =
      !options_.per_run_csv.empty() && fs::exists(options_.per_run_csv);
  const auto existing_parts = discover_part_ids(options_.out_csv);
  if (!options_.resume) {
    if (out_exists || runs_exists || !existing_parts.empty() ||
        fs::exists(exp::RowStore::path_for(options_.out_csv))) {
      throw std::runtime_error(
          "drive: " + options_.out_csv +
          (existing_parts.empty() ? "" : " (and .w* part files)") +
          " exists; pass --resume to continue it or remove it to start "
          "over");
    }
    return;
  }
  if (out_exists || runs_exists) {
    // An interrupted single-process run (or a finished merge) seeds the
    // claim set — drive resume composes with every earlier topology.
    report_.resumed +=
        sanitize_and_claim(options_.out_csv, options_.per_run_csv, -1);
    out_is_merge_seed_ = true;
  }
  for (const int id : existing_parts) {
    const std::string runs =
        options_.per_run_csv.empty() ? std::string()
                                     : part_path(options_.per_run_csv, id);
    report_.resumed +=
        sanitize_and_claim(part_path(options_.out_csv, id), runs, id);
    all_part_ids_.insert(id);
  }
}

void Driver::spawn(int id) {
  Worker w;
  w.id = id;
  w.part_csv = part_path(options_.out_csv, id);
  w.part_runs = options_.per_run_csv.empty()
                    ? std::string()
                    : part_path(options_.per_run_csv, id);
  w.part_metrics = options_.metrics_path.empty()
                       ? std::string()
                       : part_path(options_.metrics_path, id);

  // argv is built *before* fork: between fork and exec only
  // async-signal-safe calls are legal (a host with threads — the tests —
  // could otherwise deadlock on an allocator lock snapshotted mid-hold).
  std::vector<std::string> args = {
      options_.exe_path, "--worker",
      "--worker-id",     std::to_string(id),
      "--manifest",      options_.manifest_path,
      "--out",           w.part_csv,
      "--jobs",          std::to_string(options_.jobs_per_worker)};
  if (!w.part_runs.empty()) {
    args.push_back("--per-run");
    args.push_back(w.part_runs);
  }
  if (!w.part_metrics.empty()) {
    args.push_back("--metrics");
    args.push_back(w.part_metrics);
  }
  if (!options_.store) {
    args.push_back("--store");
    args.push_back("off");
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  int to_worker[2];    // driver writes, worker stdin
  int from_worker[2];  // worker stdout, driver reads
  if (::pipe2(to_worker, O_CLOEXEC) != 0 ||
      ::pipe2(from_worker, O_CLOEXEC) != 0) {
    throw std::runtime_error("drive: pipe2 failed");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error("drive: fork failed");
  }
  if (pid == 0) {
    // Child: wire the pipes to stdin/stdout (dup2 clears CLOEXEC) and
    // become a worker. Async-signal-safe territory until execv.
    ::dup2(to_worker[0], STDIN_FILENO);
    ::dup2(from_worker[1], STDOUT_FILENO);
#ifdef __linux__
    // Die with the driver even if it is SIGKILLed (no orphan simulators).
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
    ::signal(SIGPIPE, SIG_DFL);  // SIG_IGN would survive the exec
    ::execv(options_.exe_path.c_str(), argv.data());
    ::_exit(127);
  }
  // Parent.
  ::close(to_worker[0]);
  ::close(from_worker[1]);
  const int flags = ::fcntl(from_worker[0], F_GETFL);
  ::fcntl(from_worker[0], F_SETFL, flags | O_NONBLOCK);
  w.pid = pid;
  w.in_fd = to_worker[1];
  w.out_fd = from_worker[0];
  w.last_line = Clock::now();
  all_part_ids_.insert(id);
  ++report_.workers_spawned;
  workers_.push_back(std::make_unique<Worker>(std::move(w)));
  feed_->worker_event("spawn", id, "pid " + std::to_string(pid));
}

bool Driver::send(Worker& w, const std::string& line) {
  flightrec_.note('>', w.id, line);
  // False = EPIPE: worker already gone — reap() will recover it.
  return write_line(w.in_fd, line);
}

void Driver::assign(Worker& w) {
  if (queue_->empty()) {
    if (!w.quit_sent) {
      if (send(w, format_quit())) {
        w.quit_sent = true;
      } else {
        doom(w, "write failed while sending quit");
      }
    }
    return;
  }
  const auto points = queue_->take(eligible_workers());
  const auto lease = leases_.issue(w.id, points, Clock::now());
  w.lease = lease;
  w.has_lease = true;
  if (!send(w, format_lease(lease, points))) {
    doom(w, "write failed while sending a lease");
  }
}

void Driver::doom(Worker& w, std::string reason) {
  if (w.doomed) return;
  w.doomed = true;
  w.doom_reason = std::move(reason);
}

void Driver::close_fds(Worker& w) {
  if (w.in_fd >= 0) ::close(w.in_fd);
  if (w.out_fd >= 0) ::close(w.out_fd);
  w.in_fd = w.out_fd = -1;
}

void Driver::handle_line(Worker& w, const std::string& line) {
  flightrec_.note('<', w.id, line);
  const auto msg = parse_worker_line(line);
  if (!msg) {
    doom(w, "malformed protocol line: " + line);
    return;
  }
  const auto now = Clock::now();
  if (w.hello) {
    // Gap between successive protocol lines from a live worker — the
    // distribution the hang timeout should sit far outside of. Measured
    // before last_line moves (spawn→hello is startup, not a gap).
    hb_gap_s_.record(std::chrono::duration<double>(now - w.last_line).count());
  }
  w.last_line = now;
  switch (msg->kind) {
    case WorkerMsg::Kind::kHello:
      if (w.hello) {
        doom(w, "duplicate hello");
        return;
      }
      w.hello = true;
      assign(w);
      break;
    case WorkerMsg::Kind::kHeartbeat:
      if (w.has_lease) leases_.renew(w.lease, w.last_line);
      break;
    case WorkerMsg::Kind::kPointDone: {
      if (!w.has_lease) {
        doom(w, "point_done without an active lease");
        return;
      }
      try {
        leases_.mark_done(w.lease, msg->point, w.last_line);
      } catch (const std::logic_error& e) {
        doom(w, e.what());
        return;
      }
      const auto [it, inserted] = claimed_.emplace(msg->point, w.id);
      if (!inserted && it->second != w.id) {
        doom(w, "point " + std::to_string(msg->point) +
                    " already claimed by another worker");
        return;
      }
      ++report_.computed;
      ++w.points_done;
      {
        // Identity-only row: the supervisor never parses worker CSV, so
        // the live view carries what the protocol proves — which point
        // finished, on which worker.
        io::JsonObject row;
        row["point"] = msg->point;
        row["seed"] = std::to_string(points_[msg->point].seed);
        row["worker"] = w.id;
        feed_->point_done(io::Json(std::move(row)).dump());
      }
      print_point(w, msg->point);
      break;
    }
    case WorkerMsg::Kind::kLeaseDone:
      if (!w.has_lease || msg->lease != w.lease) {
        doom(w, "lease_done for a lease the worker does not hold");
        return;
      }
      if (const Lease* lease = leases_.find(w.lease); lease != nullptr) {
        lease_latency_s_.record(
            std::chrono::duration<double>(w.last_line - lease->issued)
                .count());
      }
      try {
        leases_.complete(w.lease);
      } catch (const std::logic_error& e) {
        doom(w, e.what());
        return;
      }
      w.has_lease = false;
      assign(w);
      break;
    case WorkerMsg::Kind::kFail:
      last_worker_error_ = msg->message;
      std::fprintf(stderr, "pas-exp: worker %d: %s\n", w.id,
                   msg->message.c_str());
      break;  // the non-zero exit that follows triggers recovery
  }
}

void Driver::read_worker(Worker& w) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(w.out_fd, buf, sizeof(buf));
    if (n > 0) {
      w.buf.append(buf, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (std::size_t i = w.buf.find('\n', start); i != std::string::npos;
           i = w.buf.find('\n', start)) {
        const std::string line = w.buf.substr(start, i - start);
        start = i + 1;
        handle_line(w, line);
        if (w.doomed) break;
      }
      w.buf.erase(0, start);
      if (w.doomed) return;
      continue;
    }
    if (n == 0) {
      w.eof = true;
      return;
    }
    if (errno == EINTR) continue;
    return;  // EAGAIN: drained
  }
}

void Driver::crash_recover(Worker& w) {
  ++report_.crashes;
  crashes_.add();
  feed_->worker_event("crash", w.id,
                      w.doom_reason.empty() ? "exited unclean"
                                            : w.doom_reason);
  dump_flight_recorder("worker " + std::to_string(w.id) + " crashed: " +
                       (w.doom_reason.empty() ? "exited unclean"
                                              : w.doom_reason));
  std::vector<std::size_t> unfinished;
  if (w.has_lease) unfinished = leases_.revoke(w.lease);
  // The part file is ground truth: rows are flushed before point_done is
  // sent, so points the dead worker finished but never reported are
  // recovered from disk instead of being recomputed (and rows duplicated
  // against other parts are removed).
  const std::size_t recovered_from_disk =
      sanitize_and_claim(w.part_csv, w.part_runs, w.id);
  report_.computed += recovered_from_disk;
  recovered_rows_.add(recovered_from_disk);
  feed_->add_recovered(recovered_from_disk);
  if (recovered_from_disk > 0) {
    feed_->worker_event("recovered", w.id,
                        std::to_string(recovered_from_disk) +
                            " rows from part file");
  }
  std::erase_if(unfinished,
                [this](std::size_t p) { return claimed_.count(p) > 0; });
  queue_->put_back(unfinished);
  if (queue_->empty()) return;
  if (report_.respawns < options_.max_respawns) {
    ++report_.respawns;
    respawns_.add();
    feed_->worker_event("respawn", next_worker_id_,
                        "replacing worker " + std::to_string(w.id));
    spawn(next_worker_id_++);
    return;
  }
  // No budget for a replacement: fine while any live worker can still
  // pull from the queue, fatal otherwise.
  for (const auto& other : workers_) {
    if (other->id != w.id && !other->doomed && !other->quit_sent &&
        !other->eof) {
      return;
    }
  }
  throw std::runtime_error(
      "drive: respawn budget exhausted with " +
      std::to_string(queue_->remaining()) + " points outstanding" +
      (last_worker_error_.empty() ? std::string()
                                  : "; last worker error: " +
                                        last_worker_error_));
}

void Driver::reap() {
  for (std::size_t i = 0; i < workers_.size();) {
    Worker& w = *workers_[i];
    if (w.doomed && !w.eof) {
      ::kill(w.pid, SIGKILL);
    } else if (!w.doomed && !w.eof) {
      ++i;
      continue;
    }
    int status = 0;
    while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
    }
    // The pid is reaped and may be recycled by the OS; mark it dead so the
    // exception-cleanup path can never SIGKILL an unrelated process (the
    // entry outlives this loop when crash_recover throws).
    w.pid = -1;
    close_fds(w);
    const bool clean = !w.doomed && w.quit_sent && !w.has_lease &&
                       WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!clean) {
      if (w.doomed) {
        std::fprintf(stderr, "pas-exp: worker %d failed: %s\n", w.id,
                     w.doom_reason.c_str());
      }
      crash_recover(w);  // may spawn a replacement at the back
    }
    workers_.erase(workers_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

void Driver::interrupt_children() {
  for (const auto& w : workers_) {
    if (w->pid > 0) ::kill(w->pid, SIGTERM);
  }
  // Completed rows are already flushed to the part files, so a graceful
  // window is a courtesy, not a correctness requirement.
  const auto deadline = Clock::now() + std::chrono::seconds(2);
  for (const auto& w : workers_) {
    int status = 0;
    while (true) {
      const pid_t r = ::waitpid(w->pid, &status, WNOHANG);
      if (r != 0) break;  // reaped (or error: already gone)
      if (Clock::now() >= deadline) {
        ::kill(w->pid, SIGKILL);
        while (::waitpid(w->pid, &status, 0) < 0 && errno == EINTR) {
        }
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    close_fds(*w);
  }
  workers_.clear();
}

void Driver::merge_and_clean() {
  std::vector<std::string> inputs;
  std::vector<std::string> run_inputs;
  if (out_is_merge_seed_) {
    inputs.push_back(options_.out_csv);
    if (!options_.per_run_csv.empty() && fs::exists(options_.per_run_csv)) {
      run_inputs.push_back(options_.per_run_csv);
    }
  }
  std::vector<std::string> part_files;
  for (const int id : all_part_ids_) {
    const auto csv = part_path(options_.out_csv, id);
    if (fs::exists(csv)) {
      inputs.push_back(csv);
      part_files.push_back(csv);
    }
    if (!options_.per_run_csv.empty()) {
      const auto runs = part_path(options_.per_run_csv, id);
      if (fs::exists(runs)) {
        run_inputs.push_back(runs);
        part_files.push_back(runs);
      }
    }
  }
  // Byte-identical to a serial run: merge validates every row against the
  // manifest, rejects overlaps and gaps, and re-emits raw rows in point
  // order via temp file + rename.
  report_.merged_rows =
      exp::merge_outputs(inputs, options_.out_csv, &manifest_);
  if (!options_.per_run_csv.empty()) {
    exp::merge_outputs(run_inputs, options_.per_run_csv, &manifest_);
  }
  for (const auto& path : part_files) fs::remove(path);
  // Row stores are stale the moment the merged CSV exists; sweep them
  // unconditionally (no-ops when absent) so `<out>.w*` globs come up empty
  // and a later resume never prefers a dead store over the merged output.
  for (const int id : all_part_ids_) {
    fs::remove(exp::RowStore::path_for(part_path(options_.out_csv, id)));
  }
  fs::remove(exp::RowStore::path_for(options_.out_csv));

  if (!options_.metrics_path.empty()) {
    // Telemetry parts merge in the same priority order the CSV claims used
    // (resumed --metrics file first, then parts by id); the point rows are
    // identical whichever source wins, so the merged file's point section
    // is byte-identical to a single-process run's. The trailer is this
    // drive's wall-clock story and is the one part that legitimately
    // differs between schedules.
    std::vector<std::string> metric_inputs;
    std::vector<std::string> metric_parts;
    if (out_is_merge_seed_ && fs::exists(options_.metrics_path)) {
      metric_inputs.push_back(options_.metrics_path);
    }
    for (const int id : all_part_ids_) {
      const auto part = part_path(options_.metrics_path, id);
      if (fs::exists(part)) {
        metric_inputs.push_back(part);
        metric_parts.push_back(part);
      }
    }
    io::JsonObject trailer;
    trailer["kind"] = "registry";
    trailer["scope"] = "orchestrator";
    trailer["instruments"] = obs::snapshot_json(registry_.snapshot());
    exp::merge_telemetry(metric_inputs, options_.metrics_path,
                         {io::Json(std::move(trailer))});
    for (const auto& path : metric_parts) fs::remove(path);
  }
}

void Driver::dump_flight_recorder(const std::string& why) {
  if (flightrec_.noted() == 0) return;
  const std::string path = options_.out_csv + ".flightrec";
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  std::fprintf(f, "=== %s ===\n", why.c_str());
  flightrec_.dump(f);
  std::fclose(f);
  std::fprintf(stderr, "pas-exp: flight recorder appended to %s (%s)\n",
               path.c_str(), why.c_str());
}

void Driver::print_point(const Worker& w, std::size_t point) {
  if (options_.verbosity != DriveOptions::Verbosity::kPerPoint) return;
  std::printf("[%zu/%zu] point %zu done (worker %d)\n", claimed_.size(),
              points_.size(), point, w.id);
  std::fflush(stdout);
}

void Driver::print_progress(bool force) {
  // The worker table and the throttled progress line both go through the
  // feed: with --progress the feed echoes the classic lines; with --serve
  // the same push becomes the SSE "progress" event and /api/status table.
  std::vector<serve::CampaignFeed::WorkerRow> rows;
  rows.reserve(workers_.size());
  for (const auto& w : workers_) {
    serve::CampaignFeed::WorkerRow row;
    row.id = w->id;
    row.has_lease = w->has_lease;
    if (w->has_lease) {
      if (const Lease* lease = leases_.find(w->lease); lease != nullptr) {
        row.lease_points_left = lease->pending.size();
      }
    }
    row.points_done = w->points_done;
    row.last_line = w->last_line;
    rows.push_back(row);
  }
  feed_->update_workers(std::move(rows));
  feed_->progress_tick(force);
}

DriveReport Driver::run() {
  t0_ = Clock::now();
  manifest_.validate();
  if (options_.workers == 0) {
    throw std::invalid_argument("drive: workers must be >= 1");
  }
  if (options_.exe_path.empty() || !fs::exists(options_.exe_path)) {
    throw std::runtime_error("drive: worker executable not found: " +
                             options_.exe_path);
  }
  if (options_.out_csv.empty()) {
    // Unlike run_campaign (which aggregates in memory for benches), a
    // drive without an output would compute the whole grid into hidden
    // ".w<k>" files and then fail at the merge.
    throw std::invalid_argument("drive: out_csv must not be empty");
  }
  points_ = exp::expand_grid(manifest_);
  axis_names_ = exp::axis_columns(manifest_);
  identity_ = exp::grid_identity(points_);
  report_.total_points = points_.size();
  report_.replications = manifest_.replications;

  prescan();

  std::vector<std::size_t> pending;
  for (std::size_t p = 0; p < points_.size(); ++p) {
    if (claimed_.count(p) == 0) pending.push_back(p);
  }
  queue_ = std::make_unique<WorkQueue>(std::move(pending),
                                       options_.max_lease);
  next_worker_id_ =
      std::max<int>(static_cast<int>(options_.workers),
                    all_part_ids_.empty() ? 0 : *all_part_ids_.rbegin() + 1);

  feed_->begin_campaign(manifest_.name, 0, points_.size(),
                        manifest_.replications, claimed_.size());
  // /api/metrics serves this drive's registry while it runs; detached on
  // every exit path (the guard dies before registry_ only because feed_
  // may outlive this Driver, not because registry_ does).
  struct FeedMetricsGuard {
    serve::CampaignFeed* feed = nullptr;
    ~FeedMetricsGuard() {
      if (feed != nullptr) feed->set_metrics_source(nullptr);
    }
  } metrics_guard;
  if (registry_.enabled()) {
    metrics_guard.feed = feed_;
    feed_->set_metrics_source([this] {
      io::JsonObject out;
      out["scope"] = "orchestrator";
      out["instruments"] = obs::snapshot_json(registry_.snapshot());
      return io::Json(std::move(out));
    });
  }

  // Destruction order matters: the SignalGuard (constructed second) is
  // destroyed first, detaching the handler before the pipe fds close — a
  // late signal can then never write into a recycled descriptor.
  struct SignalPipe {
    int fd[2] = {-1, -1};
    SignalPipe() {
      if (::pipe2(fd, O_CLOEXEC | O_NONBLOCK) != 0) {
        throw std::runtime_error("drive: pipe2 failed");
      }
    }
    ~SignalPipe() {
      ::close(fd[0]);
      ::close(fd[1]);
    }
  } signal_pipe;
  const SignalGuard signals(signal_pipe.fd[1]);

  try {
    const std::size_t to_spawn =
        std::min<std::size_t>(options_.workers, queue_->remaining());
    for (std::size_t i = 0; i < to_spawn; ++i) {
      spawn(static_cast<int>(i));
    }

    while (!workers_.empty()) {
      std::vector<pollfd> fds;
      fds.push_back({signal_pipe.fd[0], POLLIN, 0});
      for (const auto& w : workers_) {
        fds.push_back({w->out_fd, POLLIN, 0});
      }
      const int rc = ::poll(fds.data(), fds.size(), 200);
      if (g_signal_flag != 0) {
        interrupt_children();
        report_.interrupted = true;
        dump_flight_recorder("interrupted (SIGINT/SIGTERM)");
        break;
      }
      if (rc > 0) {
        if ((fds[0].revents & POLLIN) != 0) {
          char drain[16];
          while (::read(signal_pipe.fd[0], drain, sizeof(drain)) > 0) {
          }
        }
        for (std::size_t i = 0; i < workers_.size(); ++i) {
          if ((fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
            read_worker(*workers_[i]);
          }
        }
      }
      // Hang detection: the worker-side heartbeat ticks every 0.5 s, so a
      // silent worker is wedged (or its machine is), not merely busy.
      // Lease holders are judged by their lease's renewal time (heartbeats
      // and point_done both renew); workers without a lease (starting up
      // or draining after quit) by their last protocol line.
      if (options_.hang_timeout_s > 0.0) {
        const auto now = Clock::now();
        for (const auto id : leases_.expired(now, options_.hang_timeout_s)) {
          for (const auto& w : workers_) {
            if (w->has_lease && w->lease == id && !w->eof) {
              doom(*w, "lease " + std::to_string(id) +
                           " expired: no heartbeat within " +
                           std::to_string(options_.hang_timeout_s) + " s");
            }
          }
        }
        for (const auto& w : workers_) {
          const double silent =
              std::chrono::duration<double>(now - w->last_line).count();
          if (!w->has_lease && !w->eof &&
              silent > options_.hang_timeout_s) {
            doom(*w, "no protocol line for " + std::to_string(silent) + " s");
          }
        }
      }
      reap();
      print_progress(false);
    }
  } catch (...) {
    feed_->end_campaign(/*interrupted=*/true);
    dump_flight_recorder("drive aborted by exception");
    // Never leak children past the call, whatever went wrong.
    for (const auto& w : workers_) {
      if (w->pid > 0) {
        ::kill(w->pid, SIGKILL);
        int status = 0;
        while (::waitpid(w->pid, &status, 0) < 0 && errno == EINTR) {
        }
      }
      close_fds(*w);
    }
    workers_.clear();
    throw;
  }

  if (!report_.interrupted) {
    if (!queue_->empty() || leases_.active() != 0) {
      throw std::logic_error(
          "drive: internal error — workers exited with work outstanding");
    }
    print_progress(true);
    merge_and_clean();
  }
  feed_->end_campaign(report_.interrupted);
  report_.wall_s =
      std::chrono::duration<double>(Clock::now() - t0_).count();
  return report_;
}

}  // namespace

DriveReport drive(const exp::Manifest& manifest, const DriveOptions& options) {
  Driver driver(manifest, options);
  return driver.run();
}

}  // namespace pas::orch

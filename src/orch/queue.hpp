// Dynamic work queue for the campaign orchestrator.
//
// The driver loads the pending point indices once and hands them out as
// *leases* — contiguous slices whose size follows guided self-scheduling:
// roughly remaining/(2·workers), clamped to [1, max_lease]. Early leases
// are big (low protocol overhead), late leases shrink so a worker stuck on
// an expensive point cannot strand a long tail behind it — the dynamic
// analogue of PR 2's static modulo split, which stalls on uneven point
// cost.
//
// Reassignment: when a worker dies, its unfinished lease points are pushed
// back to the *front* of the queue, so recovered work is re-issued before
// untouched work and a crash near the end does not restart the campaign's
// tail ordering from scratch. None of this affects output bytes: every
// point's seeds derive from the manifest alone, and the aggregator/merge
// layer orders rows by point index regardless of schedule.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace pas::orch {

class WorkQueue {
 public:
  /// `points` are the pending grid indices, typically ascending.
  /// `max_lease` caps lease size (keeps protocol lines short and bounds
  /// the work lost to one crash).
  explicit WorkQueue(std::vector<std::size_t> points,
                     std::size_t max_lease = 64);

  /// Takes the next lease for one of `workers` active workers. Empty when
  /// the queue is drained. Guided sizing: max(1, remaining/(2·workers)),
  /// clamped to max_lease.
  [[nodiscard]] std::vector<std::size_t> take(std::size_t workers);

  /// Returns a revoked lease's unfinished points to the front of the queue
  /// (they are re-issued before untouched work).
  void put_back(const std::vector<std::size_t>& points);

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return points_.size();
  }
  [[nodiscard]] std::size_t max_lease() const noexcept { return max_lease_; }

 private:
  std::deque<std::size_t> points_;
  std::size_t max_lease_;
};

}  // namespace pas::orch

#include "sim/trace.hpp"

#include <sstream>

namespace pas::sim {

const char* to_string(TraceCategory c) noexcept {
  switch (c) {
    case TraceCategory::kState: return "state";
    case TraceCategory::kMessage: return "msg";
    case TraceCategory::kDetection: return "detect";
    case TraceCategory::kSleep: return "sleep";
    case TraceCategory::kFailure: return "fail";
    case TraceCategory::kNet: return "net";
    case TraceCategory::kMisc: return "misc";
  }
  return "?";
}

const char* to_string(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::kMark: return "mark";
    case TraceKind::kWoke: return "woke";
    case TraceKind::kSleepFor: return "sleep_for";
    case TraceKind::kDetected: return "detected";
    case TraceKind::kRequest: return "request";
    case TraceKind::kResponse: return "response";
    case TraceKind::kStateChange: return "state_change";
    case TraceKind::kCoveredTimeout: return "covered_timeout";
    case TraceKind::kArrivalReceded: return "arrival_receded";
    case TraceKind::kActualVelocity: return "actual_velocity";
    case TraceKind::kEval: return "eval";
    case TraceKind::kNodeFailed: return "node_failed";
    case TraceKind::kMacDataTx: return "mac_data_tx";
    case TraceKind::kMacCollision: return "mac_collision";
    case TraceKind::kAlertOriginated: return "alert_originated";
    case TraceKind::kAlertForwarded: return "alert_forwarded";
    case TraceKind::kAlertDelivered: return "alert_delivered";
    case TraceKind::kAlertPredicted: return "alert_predicted";
  }
  return "?";
}

std::string format_event(const TraceEvent& e) {
  switch (e.kind) {
    case TraceKind::kMark:
      return {};
    case TraceKind::kWoke:
      return "woke up";
    case TraceKind::kSleepFor: {
      std::ostringstream os;
      os << "sleeping for " << e.x << "s";
      return os.str();
    }
    case TraceKind::kDetected:
      return "detected stimulus";
    case TraceKind::kRequest:
      return "REQUEST";
    case TraceKind::kResponse:
      return "RESPONSE";
    case TraceKind::kStateChange:
      return std::string(e.s1 != nullptr ? e.s1 : "?") + " -> " +
             (e.s2 != nullptr ? e.s2 : "?");
    case TraceKind::kCoveredTimeout:
      return "covered timeout -> safe";
    case TraceKind::kArrivalReceded:
      return "arrival receded -> safe";
    case TraceKind::kActualVelocity: {
      std::ostringstream os;
      os << "actual velocity (" << e.x << ", " << e.y << ")";
      return os.str();
    }
    case TraceKind::kEval: {
      std::ostringstream os;
      os << "eval: pred=" << e.x << " peers=" << e.a;
      return os.str();
    }
    case TraceKind::kNodeFailed:
      return "node failed";
    case TraceKind::kMacDataTx: {
      std::ostringstream os;
      os << "mac tx on air for " << e.x << "s";
      return os.str();
    }
    case TraceKind::kMacCollision:
      return "mac collision";
    case TraceKind::kAlertOriginated:
      return "alert originated";
    case TraceKind::kAlertForwarded: {
      std::ostringstream os;
      os << "alert forwarded (hop " << e.x << ")";
      return os.str();
    }
    case TraceKind::kAlertDelivered: {
      std::ostringstream os;
      os << "alert delivered after " << e.x << "s";
      return os.str();
    }
    case TraceKind::kAlertPredicted: {
      std::ostringstream os;
      os << "alert fallback: predicted arrival " << e.x << "s";
      return os.str();
    }
  }
  return {};
}

std::vector<TraceEvent> TraceLog::filter(TraceCategory c) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.category == c) out.push_back(e);
  }
  return out;
}

std::string TraceLog::format() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  for (const auto& e : events_) {
    os << "t=" << e.time << "s [" << to_string(e.category) << "] node "
       << e.node << ": " << format_event(e) << '\n';
  }
  return os.str();
}

}  // namespace pas::sim

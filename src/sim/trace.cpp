#include "sim/trace.hpp"

#include <sstream>

namespace pas::sim {

const char* to_string(TraceCategory c) noexcept {
  switch (c) {
    case TraceCategory::kState: return "state";
    case TraceCategory::kMessage: return "msg";
    case TraceCategory::kDetection: return "detect";
    case TraceCategory::kSleep: return "sleep";
    case TraceCategory::kFailure: return "fail";
    case TraceCategory::kMisc: return "misc";
  }
  return "?";
}

std::vector<TraceEvent> TraceLog::filter(TraceCategory c) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.category == c) out.push_back(e);
  }
  return out;
}

std::string TraceLog::format() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  for (const auto& e : events_) {
    os << "t=" << e.time << "s [" << to_string(e.category) << "] node "
       << e.node << ": " << e.text << '\n';
  }
  return os.str();
}

}  // namespace pas::sim

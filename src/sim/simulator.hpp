// Discrete-event simulator kernel.
//
// The kernel advances a virtual clock by executing callbacks in timestamp
// order. It is intentionally single-threaded (one Simulator per world);
// throughput-level parallelism comes from running many simulations at once
// via pas::runtime::Sweep.
//
// Callbacks are sim::SmallFn: the capture is stored inline in the event
// slab and moved — never copied, never heap-allocated for hot-path capture
// sizes — from schedule through dispatch.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace pas::sim {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time (seconds).
  [[nodiscard]] Time now() const noexcept { return now_; }

  // Scheduling and dispatch are defined inline: they are the kernel's
  // innermost loop and the library is built without LTO. Callables forward
  // to the queue as-is and are constructed directly in the event slab.

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  template <typename F>
  EventId schedule_at(Time t, F&& cb) {
    if (t < now_) {
      throw std::invalid_argument("Simulator::schedule_at: time in the past");
    }
    return queue_.push(t, std::forward<F>(cb));
  }

  /// Schedules `cb` after a relative delay (clamped to >= 0).
  template <typename F>
  EventId schedule_in(Duration dt, F&& cb) {
    if (dt < 0.0) dt = 0.0;
    return queue_.push(now_ + dt, std::forward<F>(cb));
  }

  /// Cancels a pending event; false if it already ran or was cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// True if the event is still pending.
  [[nodiscard]] bool pending(EventId id) const { return queue_.pending(id); }

  /// Executes the next event. Returns false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    ++executed_;
    // run_next publishes the event's time into now_ before dispatching, so
    // the callback reads the right clock.
    queue_.run_next(now_);
    return true;
  }

  /// Runs until the queue drains or stop() is called. Returns #events run.
  std::size_t run();

  /// Runs all events with time <= deadline, then sets now() = deadline.
  /// Returns #events run.
  std::size_t run_until(Time deadline);

  /// Requests the current run()/run_until() loop to end after the current
  /// callback returns. Safe to call from inside a callback.
  void stop() noexcept { stopped_ = true; }

  /// Returns the kernel to its just-constructed state — clock at 0, queue
  /// empty, counters zeroed — while keeping the event slab's capacity, so a
  /// reused simulator (world::Workspace) runs its next replication without
  /// re-warming allocations. Results are identical to a fresh Simulator.
  void reset() noexcept;

  [[nodiscard]] bool stopped() const noexcept { return stopped_; }
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t executed_events() const noexcept { return executed_; }

  /// Timestamp of the next pending event (kNever when none).
  [[nodiscard]] Time next_event_time() const { return queue_.next_time(); }

  /// Lifetime push/cancel/high-water counters; zeroed by reset().
  [[nodiscard]] const EventQueue::Stats& queue_stats() const noexcept {
    return queue_.stats();
  }

  /// Event-slab slot watermark. Depends on workspace reuse history, not just
  /// the schedule — keep it out of deterministic outputs.
  [[nodiscard]] std::size_t event_capacity() const noexcept {
    return queue_.slot_capacity();
  }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  std::size_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace pas::sim

// Discrete-event simulator kernel.
//
// The kernel advances a virtual clock by executing callbacks in timestamp
// order. It is intentionally single-threaded (one Simulator per world);
// throughput-level parallelism comes from running many simulations at once
// via pas::runtime::Sweep.
#pragma once

#include <cstddef>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace pas::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time (seconds).
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, Callback cb);

  /// Schedules `cb` after a relative delay (clamped to >= 0).
  EventId schedule_in(Duration dt, Callback cb);

  /// Cancels a pending event; false if it already ran or was cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// True if the event is still pending.
  [[nodiscard]] bool pending(EventId id) const { return queue_.pending(id); }

  /// Executes the next event. Returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains or stop() is called. Returns #events run.
  std::size_t run();

  /// Runs all events with time <= deadline, then sets now() = deadline.
  /// Returns #events run.
  std::size_t run_until(Time deadline);

  /// Requests the current run()/run_until() loop to end after the current
  /// callback returns. Safe to call from inside a callback.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] bool stopped() const noexcept { return stopped_; }
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t executed_events() const noexcept { return executed_; }

  /// Timestamp of the next pending event (kNever when none).
  [[nodiscard]] Time next_event_time() const { return queue_.next_time(); }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  std::size_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace pas::sim

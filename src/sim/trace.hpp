// Lightweight simulation tracing.
//
// Protocol modules record timestamped events (state changes, messages,
// detections) into a TraceLog. Examples pretty-print it; tests assert on it;
// benchmark runs leave it disabled so tracing costs nothing when off.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace pas::sim {

enum class TraceCategory : std::uint8_t {
  kState,      // node state-machine transitions
  kMessage,    // REQUEST/RESPONSE traffic
  kDetection,  // stimulus detections
  kSleep,      // sleep/wake decisions
  kFailure,    // node failures
  kMisc,
};

[[nodiscard]] const char* to_string(TraceCategory c) noexcept;

struct TraceEvent {
  Time time = 0.0;
  TraceCategory category = TraceCategory::kMisc;
  std::uint32_t node = 0;
  std::string text;
};

class TraceLog {
 public:
  /// Disabled by default: record() is a no-op until enable() is called.
  void enable(bool on = true) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void record(Time t, TraceCategory c, std::uint32_t node, std::string text) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{t, c, node, std::move(text)});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

  /// Events of one category (copy; tests use this on small logs).
  [[nodiscard]] std::vector<TraceEvent> filter(TraceCategory c) const;

  /// Multi-line human-readable dump ("t=12.000s [state] node 3: ...").
  [[nodiscard]] std::string format() const;

 private:
  std::vector<TraceEvent> events_;
  bool enabled_ = false;
};

}  // namespace pas::sim

// Lightweight simulation tracing.
//
// Protocol modules record timestamped events (state changes, messages,
// detections) into a TraceLog. Examples pretty-print it; tests assert on
// it; benchmark runs leave it disabled so tracing costs nothing when off.
//
// Events are structured: a kind tag plus a handful of fixed-size arguments
// (two integers, two doubles, two static-lifetime label pointers). The
// record path is a bounds-checked push_back of a POD — no ostringstream,
// no per-event heap string — and human-readable text is produced only at
// dump time by format_event(). Tools that want machine-readable traces
// (pas-exp --trace) export the structured fields directly as JSONL.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace pas::sim {

enum class TraceCategory : std::uint8_t {
  kState,      // node state-machine transitions
  kMessage,    // REQUEST/RESPONSE traffic
  kDetection,  // stimulus detections
  kSleep,      // sleep/wake decisions
  kFailure,    // node failures
  kMisc,
  kNet,        // MAC / multihop collection events (appended: digest-stable)
};

[[nodiscard]] const char* to_string(TraceCategory c) noexcept;

/// What happened — the tag that selects how the fixed args are read.
enum class TraceKind : std::uint8_t {
  kMark,            // no arguments (generic marker; tests)
  kWoke,            // duty-cycle wake-up
  kSleepFor,        // x = chosen sleep interval (s)
  kDetected,        // stimulus detection
  kRequest,         // REQUEST broadcast
  kResponse,        // RESPONSE broadcast
  kStateChange,     // s1 = old state name, s2 = new state name
  kCoveredTimeout,  // covered → safe on detection timeout
  kArrivalReceded,  // alert → safe (prediction receded)
  kActualVelocity,  // x, y = actual front velocity (formula 1)
  kEval,            // x = predicted arrival, a = peer-table size
  kNodeFailed,      // node failure
  kMacDataTx,       // x = preamble + data time on air (s)
  kMacCollision,    // reception corrupted at the traced receiver
  kAlertOriginated, // detector raised a multihop alert
  kAlertForwarded,  // x = hop count after this reception
  kAlertDelivered,  // x = collection delay (s)
  kAlertPredicted,  // x = backbone's predicted arrival (fallback answer)
};

[[nodiscard]] const char* to_string(TraceKind k) noexcept;

struct TraceEvent {
  Time time = 0.0;
  TraceCategory category = TraceCategory::kMisc;
  TraceKind kind = TraceKind::kMark;
  std::uint32_t node = 0;
  /// Kind-specific fixed arguments (see TraceKind). The label pointers
  /// must have static lifetime (enum-name tables); the log never copies
  /// or frees them.
  std::uint32_t a = 0;
  double x = 0.0;
  double y = 0.0;
  const char* s1 = nullptr;
  const char* s2 = nullptr;
};

/// The event's message text ("sleeping for 12.5s", "safe -> alert", ...),
/// rendered on demand — identical to what the pre-structured TraceLog
/// stored per record.
[[nodiscard]] std::string format_event(const TraceEvent& e);

class TraceLog {
 public:
  /// Disabled by default: record() is a no-op until enable() is called.
  void enable(bool on = true) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void record(const TraceEvent& e) {
    if (enabled_) events_.push_back(e);
  }

  void record(Time t, TraceCategory c, std::uint32_t node,
              TraceKind kind = TraceKind::kMark) {
    if (!enabled_) return;
    TraceEvent e;
    e.time = t;
    e.category = c;
    e.node = node;
    e.kind = kind;
    events_.push_back(e);
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

  /// Events of one category (copy; tests use this on small logs).
  [[nodiscard]] std::vector<TraceEvent> filter(TraceCategory c) const;

  /// Multi-line human-readable dump ("t=12.000s [state] node 3: ...").
  [[nodiscard]] std::string format() const;

 private:
  std::vector<TraceEvent> events_;
  bool enabled_ = false;
};

}  // namespace pas::sim

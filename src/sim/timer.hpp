// Reusable self-rescheduling event handle.
//
// Protocol state machines re-arm the same handful of per-node timers (wake,
// evaluation, alert recheck, ...) thousands of times per run. Scheduling a
// fresh lambda each time re-captures and re-stores the same state on every
// arm; a Timer captures the handler once at bind() and every subsequent arm
// only schedules an 8-byte trampoline — the cheapest possible event, stored
// inline in the kernel's slab.
//
// A Timer is a one-shot that can be re-armed, including from inside its own
// body (the periodic pattern). Arming while already armed cancels the
// previous occurrence first, so at most one firing is ever pending — which
// is also why cancel()/pending() need no event-id bookkeeping at call sites.
//
// The Timer's address is captured by the pending trampoline: do not move or
// destroy a Timer while it is armed (Protocol owns timers in a Runtime
// vector sized once at construction, which satisfies this by layout).
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

#include "sim/simulator.hpp"
#include "sim/small_fn.hpp"

namespace pas::sim {

class Timer {
 public:
  Timer() noexcept = default;
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  Timer& operator=(Timer&&) = delete;

  /// Move-construction exists only so containers of timers can grow before
  /// any timer is armed (vector::resize requires it); moving an armed timer
  /// would strand the pending trampoline's pointer.
  Timer(Timer&& other) noexcept
      : simulator_(other.simulator_),
        body_(std::move(other.body_)),
        id_(other.id_),
        reschedules_(other.reschedules_) {
    assert(!other.id_.valid() && "moving an armed Timer");
    other.simulator_ = nullptr;
    other.id_ = EventId{};
  }

  /// Sets the simulator and the handler this timer fires. Call once before
  /// the first arm; re-binding while armed is a logic error.
  void bind(Simulator& simulator, SmallFn body) noexcept {
    simulator_ = &simulator;
    body_ = std::move(body);
  }

  [[nodiscard]] bool bound() const noexcept { return simulator_ != nullptr; }

  /// Schedules the next firing after `dt` (clamped to >= 0 by the kernel).
  void arm_in(Duration dt) {
    if (cancel()) ++reschedules_;
    id_ = simulator_->schedule_in(dt, Fire{this});
  }

  /// Schedules the next firing at absolute time `t`.
  void arm_at(Time t) {
    if (cancel()) ++reschedules_;
    id_ = simulator_->schedule_at(t, Fire{this});
  }

  /// Cancels the pending firing, if any. Returns true if one was pending.
  bool cancel() noexcept {
    if (simulator_ == nullptr || !id_.valid()) return false;
    const bool was = simulator_->cancel(id_);
    id_ = EventId{};
    return was;
  }

  [[nodiscard]] bool pending() const noexcept {
    return simulator_ != nullptr && simulator_->pending(id_);
  }

  /// Number of arms that displaced a still-pending firing — how often the
  /// protocol revised its own schedule rather than reacting to a firing.
  [[nodiscard]] std::uint64_t reschedules() const noexcept {
    return reschedules_;
  }

 private:
  struct Fire {
    Timer* timer;
    void operator()() const {
      timer->id_ = EventId{};  // consumed; body may re-arm
      timer->body_();
    }
  };

  Simulator* simulator_ = nullptr;
  SmallFn body_;
  EventId id_;
  std::uint64_t reschedules_ = 0;
};

}  // namespace pas::sim

#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace pas::sim {

EventId EventQueue::push(Time t, Callback cb) {
  if (!is_valid_time(t)) {
    throw std::invalid_argument("EventQueue::push: invalid event time");
  }
  if (!cb) {
    throw std::invalid_argument("EventQueue::push: empty callback");
  }
  const std::uint64_t id = next_id_++;
  heap_.push_back(Entry{t, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  callbacks_.emplace(id, std::move(cb));
  ++live_;
  return EventId(id);
}

bool EventQueue::cancel(EventId id) {
  const auto it = callbacks_.find(id.value());
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_;
  return true;
}

bool EventQueue::pending(EventId id) const {
  return callbacks_.contains(id.value());
}

void EventQueue::drop_dead_top() const {
  while (!heap_.empty() && !callbacks_.contains(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() const {
  drop_dead_top();
  return heap_.empty() ? kNever : heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_dead_top();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry top = heap_.back();
  heap_.pop_back();
  auto it = callbacks_.find(top.id);
  assert(it != callbacks_.end());
  Popped out{top.time, EventId(top.id), std::move(it->second)};
  callbacks_.erase(it);
  --live_;
  return out;
}

void EventQueue::clear() {
  heap_.clear();
  callbacks_.clear();
  live_ = 0;
}

}  // namespace pas::sim

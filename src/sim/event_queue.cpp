#include "sim/event_queue.hpp"

namespace pas::sim {

std::uint32_t EventQueue::grow_slots() {
  if (slot_count_ >= kNilSlot - kChunkSize) {
    throw std::length_error("EventQueue: slot index space exhausted");
  }
  if (slot_count_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return slot_count_++;
}

void EventQueue::clear() {
  heap_.clear();
  free_head_ = kNilSlot;
  // Rebuild the free list over every slot; occupied ones are invalidated
  // exactly like a release so outstanding ids turn stale. Slots whose
  // callbacks are executing right now — at any nesting depth, when clear()
  // is reached from inside a callback (e.g. via Simulator::reset()) — are
  // skipped entirely: their callbacks must not be destroyed mid-invocation,
  // and each run_next() frame releases its own slot on return.
  for (std::uint32_t s = slot_count_; s-- > 0;) {
    if (is_executing(s)) continue;
    Slot& slot = slot_at(s);
    if (slot.fn) {
      slot.fn.reset();
      bump_generation(slot);
    }
    slot.next_free = free_head_;
    free_head_ = s;
  }
  live_ = 0;
  stats_ = Stats{};
}

}  // namespace pas::sim

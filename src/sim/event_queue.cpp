#include "sim/event_queue.hpp"

namespace pas::sim {

std::uint32_t EventQueue::grow_slots() {
  if (slot_count_ >= kNilSlot - kChunkSize) {
    throw std::length_error("EventQueue: slot index space exhausted");
  }
  if (slot_count_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return slot_count_++;
}

#if !defined(PAS_EVENTQ_HEAP)

std::size_t EventQueue::bucket_count_for(std::size_t n) noexcept {
  std::size_t nb = kMinBuckets;
  while (nb < n && nb < kMaxBuckets) nb <<= 1;
  return nb;
}

/// Appends a rung (reusing a retired one's bucket arrays when available)
/// sized to `buckets`; the caller fills in start/width.
EventQueue::Rung& EventQueue::push_rung(std::size_t buckets) const {
  if (!spare_rungs_.empty()) {
    rungs_.push_back(std::move(spare_rungs_.back()));
    spare_rungs_.pop_back();
  } else {
    rungs_.emplace_back();
  }
  Rung& r = rungs_.back();
  r.cur = 0;
  r.buckets.resize(buckets);
  return r;
}

/// Pops the innermost rung, parking its bucket arrays for reuse. Buckets
/// are cleared here (they already are on the drain path; clear() retires
/// rungs that still hold entries).
void EventQueue::retire_rung() const {
  Rung& r = rungs_.back();
  if (spare_rungs_.size() < kMaxSpareRungs) {
    for (auto& b : r.buckets) b.clear();
    r.cur = 0;
    spare_rungs_.push_back(std::move(r));
  }
  rungs_.pop_back();
}

/// Spawns a finer sub-rung from scratch_ (the live contents of one drained
/// bucket). Returns false when the batch spans no distinguishable times (or
/// the span underflows a bucket width), in which case the caller sorts it.
bool EventQueue::spawn_rung_from_scratch() const {
  Time lo = scratch_.front().time;
  Time hi = lo;
  for (const IndexEntry& e : scratch_) {
    if (e.time < lo) lo = e.time;
    if (e.time > hi) hi = e.time;
  }
  if (!(lo < hi)) return false;
  const std::size_t nb = bucket_count_for(scratch_.size());
  const Time width = (hi - lo) / static_cast<Time>(nb);
  if (!(width > 0.0)) return false;
  Rung& r = push_rung(nb);
  r.start = lo;
  r.width = width;
  for (const IndexEntry& e : scratch_) rung_insert(r, e);
  scratch_.clear();
  return true;
}

/// Produces a non-empty, sorted bottom_ from the rungs or the overflow
/// list. Returns false when nothing is pending anywhere. Pre: bottom_ is
/// empty.
bool EventQueue::refill_bottom() const {
  for (;;) {
    if (!rungs_.empty()) {
      Rung& r = rungs_.back();  // innermost = earliest
      const std::size_t nb = r.buckets.size();
      while (r.cur < nb && r.buckets[r.cur].empty()) ++r.cur;
      if (r.cur == nb) {
        retire_rung();
        continue;
      }

      std::vector<IndexEntry>& bucket = r.buckets[r.cur];
      // Consume the bucket before distributing it: pushes that land back in
      // its range must go below this rung (sub-rung or bottom_), never into
      // a drained bucket.
      ++r.cur;
      scratch_.clear();
      for (const IndexEntry& e : bucket) {
        if (entry_live(e)) {
          scratch_.push_back(e);
        } else {
          ++stats_.dead_skips;
        }
      }
      bucket.clear();
      // Retire eagerly so push routing never sees a fully-drained rung
      // (rung_insert clamps to cur and a dead rung would swallow events).
      if (r.cur == nb) retire_rung();
      if (scratch_.empty()) continue;
      if (scratch_.size() > stats_.max_bucket) {
        stats_.max_bucket = scratch_.size();
      }
      if (scratch_.size() > kSortThreshold && rungs_.size() < kMaxRungs &&
          spawn_rung_from_scratch()) {
        ++stats_.rung_spawns;
        continue;
      }
      std::sort(scratch_.begin(), scratch_.end(), Later{});
      bottom_.swap(scratch_);
      return true;
    }

    // Rungs exhausted: reseed the calendar from the overflow list.
    if (top_.empty()) return false;
    std::size_t kept = 0;
    for (const IndexEntry& e : top_) {
      if (entry_live(e)) {
        top_[kept++] = e;
      } else {
        ++stats_.dead_skips;
      }
    }
    top_.resize(kept);
    if (top_.empty()) return false;
    Time lo = top_.front().time;
    Time hi = lo;
    for (const IndexEntry& e : top_) {
      if (e.time < lo) lo = e.time;
      if (e.time > hi) hi = e.time;
    }
    // From now on only events at/after `hi` overflow: everything being
    // redistributed is <= hi, and any later same-time push carries a larger
    // seq, so dispatching the redistributed set first is exactly
    // (time, seq) order.
    top_start_ = hi;
    const std::size_t nb = bucket_count_for(top_.size());
    const Time width = (hi - lo) / static_cast<Time>(nb);
    if (top_.size() <= kSortThreshold || !(width > 0.0)) {
      // Too small (or too narrow a span) to be worth a calendar: one sort.
      if (top_.size() > stats_.max_bucket) stats_.max_bucket = top_.size();
      std::sort(top_.begin(), top_.end(), Later{});
      bottom_.swap(top_);
      top_.clear();
      return true;
    }
    Rung& r = push_rung(nb);
    r.start = lo;
    r.width = width;
    for (const IndexEntry& e : top_) rung_insert(r, e);
    top_.clear();
    ++stats_.bucket_resizes;
  }
}

#endif  // !defined(PAS_EVENTQ_HEAP)

void EventQueue::clear() {
#if defined(PAS_EVENTQ_HEAP)
  heap_.clear();
#else
  // Logical reset, warm storage: vector clears keep their capacity and
  // retired rungs park their bucket arrays, so a reused queue
  // (world::Workspace) rebuilds its calendar without reallocating — while
  // every threshold and counter restarts exactly as on a fresh queue.
  bottom_.clear();
  top_.clear();
  scratch_.clear();
  while (!rungs_.empty()) retire_rung();
  top_start_ = kLongAgo;
#endif
  free_head_ = kNilSlot;
  // Rebuild the free list over every slot; occupied ones are invalidated
  // exactly like a release so outstanding ids turn stale. Slots whose
  // callbacks are executing right now — at any nesting depth, when clear()
  // is reached from inside a callback (e.g. via Simulator::reset()) — are
  // skipped entirely: their callbacks must not be destroyed mid-invocation,
  // and each run_next() frame releases its own slot on return.
  for (std::uint32_t s = slot_count_; s-- > 0;) {
    if (is_executing(s)) continue;
    Slot& slot = slot_at(s);
    if (slot.fn) {
      slot.fn.reset();
      bump_generation(slot);
    }
    slot.next_free = free_head_;
    free_head_ = s;
  }
  live_ = 0;
  stats_ = Stats{};
}

}  // namespace pas::sim

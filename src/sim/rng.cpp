#include "sim/rng.hpp"

#include <cmath>
#include <numbers>

namespace pas::sim {

double Pcg32::uniform01() noexcept {
  // 32 random bits / 2^32: dense enough for simulation decisions and fast.
  return static_cast<double>(next()) * 0x1.0p-32;
}

double Pcg32::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::int64_t Pcg32::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1U;
  // Lemire-style rejection on the 32-bit generator, widened when needed.
  if (span <= 0x100000000ULL) {
    const auto bound = static_cast<std::uint32_t>(span);
    const std::uint32_t threshold = (-bound) % bound;
    for (;;) {
      const std::uint32_t r = next();
      if (r >= threshold) return lo + static_cast<std::int64_t>(r % bound);
    }
  }
  const std::uint64_t wide = (static_cast<std::uint64_t>(next()) << 32U) | next();
  return lo + static_cast<std::int64_t>(wide % span);
}

double Pcg32::normal(double mean, double stddev) noexcept {
  // Box-Muller; clamp u1 away from 0 so log() stays finite.
  double u1 = uniform01();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Pcg32::exponential(double rate) noexcept {
  double u = uniform01();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

bool Pcg32::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Pcg32 SeedSequence::stream(std::uint64_t domain, std::uint64_t index) const noexcept {
  SplitMix64 mixer(root_ ^ (domain * 0x9E3779B97F4A7C15ULL) ^
                   (index * 0xC2B2AE3D27D4EB4FULL));
  const std::uint64_t state = mixer.next();
  const std::uint64_t seq = mixer.next();
  return Pcg32(state, seq);
}

Pcg32 SeedSequence::stream(std::string_view label) const noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a 64-bit offset basis.
  for (const char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return stream(kUser, h);
}

}  // namespace pas::sim

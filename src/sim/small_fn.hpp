// Small-buffer-optimized callback type for the simulation kernel.
//
// Every scheduled event used to carry a std::function<void()>, whose capture
// lives on the heap once it outgrows the implementation's tiny inline buffer
// (16 bytes on libstdc++ — two captured pointers). The kernel's hot path
// allocates and frees one of those per event. SmallFn fixes the economics:
// captures up to kInlineBytes (sized for the largest hot callback, a network
// delivery closure carrying a Message by value) are stored inline in the
// event slab; bigger or throwing-move callables fall back to one heap
// allocation. SmallFn is move-only — the queue relocates callbacks through
// dispatch instead of copying them — and relocation of an inline capture is
// a nothrow move-construct, never an allocation.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace pas::sim {

class SmallFn {
 public:
  /// Inline capture capacity. 104 bytes + three dispatch pointers keep the
  /// whole object at 128 bytes (two cache lines); the largest kernel-path
  /// capture (Network delivery: this + receiver id + Message by value) is
  /// ~88 bytes, so the hot path never allocates.
  static constexpr std::size_t kInlineBytes = 104;

  SmallFn() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    construct(std::forward<F>(f));
  }

  /// Destroys the current target (if any) and constructs `f` in place —
  /// the zero-move path the event queue uses to build a capture directly
  /// inside its slab.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  void emplace(F&& f) {
    reset();
    construct(std::forward<F>(f));
  }

  SmallFn(SmallFn&& other) noexcept { steal(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { invoke_(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  /// Destroys the target (if any) and returns to the empty state.
  void reset() noexcept {
    if (destroy_ != nullptr) destroy_(storage_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

  /// True when the target lives in the inline buffer (diagnostics/tests).
  [[nodiscard]] bool is_inline() const noexcept {
    return invoke_ != nullptr && relocate_ != &heap_relocate;
  }

  /// Total footprint sanity: keep the object at two cache lines.
  static_assert(kInlineBytes % alignof(void*) == 0);

 private:
  template <typename D>
  static constexpr bool kStoredInline =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  /// Pre: *this is empty.
  template <typename F>
  void construct(F&& f) {
    using D = std::remove_cvref_t<F>;
    if constexpr (kStoredInline<D> && std::is_trivially_copyable_v<D> &&
                  std::is_trivially_destructible_v<D>) {
      // The kernel's hot captures (a node index, a Message by value) are
      // trivially relocatable: moving is a raw byte copy and destruction is
      // a no-op, so the destroy pointer stays null and reset() skips the
      // indirect call entirely.
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = &inline_invoke<D>;
      relocate_ = &trivial_relocate<sizeof(D)>;
    } else if constexpr (kStoredInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = &inline_invoke<D>;
      relocate_ = &inline_relocate<D>;
      destroy_ = &inline_destroy<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      invoke_ = &heap_invoke<D>;
      relocate_ = &heap_relocate;
      destroy_ = &heap_destroy<D>;
    }
  }

  using Invoke = void (*)(std::byte*);
  using Relocate = void (*)(std::byte* from, std::byte* to) noexcept;
  using Destroy = void (*)(std::byte*) noexcept;

  template <typename D>
  static D* inline_target(std::byte* s) noexcept {
    return std::launder(reinterpret_cast<D*>(s));
  }

  template <typename D>
  static void inline_invoke(std::byte* s) {
    (*inline_target<D>(s))();
  }
  template <std::size_t N>
  static void trivial_relocate(std::byte* from, std::byte* to) noexcept {
    std::memcpy(to, from, N);
  }
  template <typename D>
  static void inline_relocate(std::byte* from, std::byte* to) noexcept {
    D* f = inline_target<D>(from);
    ::new (static_cast<void*>(to)) D(std::move(*f));
    f->~D();
  }
  template <typename D>
  static void inline_destroy(std::byte* s) noexcept {
    inline_target<D>(s)->~D();
  }

  template <typename D>
  static D*& heap_target(std::byte* s) noexcept {
    return *std::launder(reinterpret_cast<D**>(s));
  }

  template <typename D>
  static void heap_invoke(std::byte* s) {
    (*heap_target<D>(s))();
  }
  static void heap_relocate(std::byte* from, std::byte* to) noexcept {
    // Ownership moves with the pointer; the pointee stays put.
    ::new (static_cast<void*>(to)) void*(*reinterpret_cast<void**>(from));
  }
  template <typename D>
  static void heap_destroy(std::byte* s) noexcept {
    delete heap_target<D>(s);
  }

  /// Relocates `other`'s target into *this (pre: *this is empty) and leaves
  /// `other` empty.
  void steal(SmallFn& other) noexcept {
    if (other.invoke_ == nullptr) return;
    other.relocate_(other.storage_, storage_);
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  Invoke invoke_ = nullptr;
  Relocate relocate_ = nullptr;
  Destroy destroy_ = nullptr;
};

}  // namespace pas::sim

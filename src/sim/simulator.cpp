#include "sim/simulator.hpp"

namespace pas::sim {

std::size_t Simulator::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::size_t Simulator::run_until(Time deadline) {
  if (deadline < now_) {
    throw std::invalid_argument("Simulator::run_until: deadline in the past");
  }
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    step();
    ++n;
  }
  if (!stopped_) now_ = deadline;
  return n;
}

void Simulator::reset() noexcept {
  queue_.clear();
  now_ = 0.0;
  executed_ = 0;
  stopped_ = false;
}

}  // namespace pas::sim

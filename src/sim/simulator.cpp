#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace pas::sim {

EventId Simulator::schedule_at(Time t, Callback cb) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  return queue_.push(t, std::move(cb));
}

EventId Simulator::schedule_in(Duration dt, Callback cb) {
  if (dt < 0.0) dt = 0.0;
  return queue_.push(now_ + dt, std::move(cb));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [time, id, callback] = queue_.pop();
  now_ = time;
  ++executed_;
  callback();
  return true;
}

std::size_t Simulator::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::size_t Simulator::run_until(Time deadline) {
  if (deadline < now_) {
    throw std::invalid_argument("Simulator::run_until: deadline in the past");
  }
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    step();
    ++n;
  }
  if (!stopped_) now_ = deadline;
  return n;
}

}  // namespace pas::sim

// Pending-event set for the discrete-event kernel.
//
// A binary heap ordered by (time, sequence) with O(1) lazy cancellation:
// cancelled events stay in the heap but are skipped on pop. Sequence numbers
// give FIFO ordering among simultaneous events, which keeps protocol runs
// deterministic regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace pas::sim {

/// Opaque handle to a scheduled event. Value 0 is "invalid".
class EventId {
 public:
  constexpr EventId() noexcept = default;
  explicit constexpr EventId(std::uint64_t v) noexcept : value_(v) {}

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != 0; }
  constexpr bool operator==(const EventId&) const noexcept = default;

 private:
  std::uint64_t value_ = 0;
};

/// Min-heap of (time, seq) with cancellation. Not thread-safe by design:
/// one simulation owns one queue; parallelism happens across simulations.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;

  /// Inserts an event; `t` must satisfy is_valid_time().
  EventId push(Time t, Callback cb);

  /// Cancels a pending event. Returns false if unknown/already executed.
  bool cancel(EventId id);

  /// True if a pushed event has neither executed nor been cancelled.
  [[nodiscard]] bool pending(EventId id) const;

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Timestamp of the earliest live event; kNever when empty.
  [[nodiscard]] Time next_time() const;

  /// Pops the earliest live event. Pre: !empty().
  struct Popped {
    Time time;
    EventId id;
    Callback callback;
  };
  Popped pop();

  /// Drops everything (cancels all pending events).
  void clear();

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_dead_top() const;

  // Lazy deletion: cancelled entries linger in the heap until they reach the
  // top. Pruning them is logically const, hence the mutable heap.
  mutable std::vector<Entry> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace pas::sim

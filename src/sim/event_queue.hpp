// Pending-event set for the discrete-event kernel.
//
// The pending-set index is a ladder/calendar-queue hybrid ordered by
// (time, sequence): a sorted "bottom" rung dispatched back-to-front, nested
// calendar rungs of unsorted buckets over the mid horizon (an overfull
// bucket spawns a finer sub-rung instead of being sorted wholesale), and an
// unsorted far-future overflow list that reseeds the calendar when the
// rungs drain. push and pop are O(1) amortized — only the active bucket is
// ever sorted — and the structure touches one small contiguous bucket per
// dispatch instead of O(log n) scattered heap nodes, which is what makes
// MAC-scale pending sets (every node's slot-sampling timer armed at once)
// cheap. Building with -DPAS_EVENTQ_HEAP=ON swaps the index back to the
// original binary heap (same contract, O(log n)) for differential testing
// and A/B benchmarks; see docs/ARCHITECTURE.md "Kernel internals".
//
// Determinism is contractual either way: dispatch order is strict
// (time, seq) with seq assigned in push order, so simultaneous events fire
// FIFO regardless of which index is compiled in or how buckets split.
// Cancellation stays lazy — cancelled events linger in their bucket (or the
// heap) and are skipped when the dispatch path reaches them.
//
// Callbacks live in a free-list slab of generation-tagged slots (a slot
// map). An EventId is (slot index, generation): cancel() and pending() are
// one array access plus a generation compare — no hashing, no node
// allocations — and a reused slot invalidates stale ids by construction
// because release bumps the generation. Callbacks are sim::SmallFn,
// constructed directly in the slab (push never copies a capture), and the
// slab grows in address-stable chunks so run_next() can invoke a callback
// in place — the dispatch path of a simulation is one indirect call per
// event, with no allocation and no capture relocation.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace pas::sim {

/// Opaque handle to a scheduled event. Value 0 is "invalid". Internally
/// packs (generation << 32) | slot; generations start at 1, so every live
/// id is non-zero.
class EventId {
 public:
  constexpr EventId() noexcept = default;
  explicit constexpr EventId(std::uint64_t v) noexcept : value_(v) {}

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != 0; }
  constexpr bool operator==(const EventId&) const noexcept = default;

  /// Slot index / generation accessors (used by the queue; stable layout so
  /// tests can assert on reuse behaviour).
  [[nodiscard]] constexpr std::uint32_t slot() const noexcept {
    return static_cast<std::uint32_t>(value_);
  }
  [[nodiscard]] constexpr std::uint32_t generation() const noexcept {
    return static_cast<std::uint32_t>(value_ >> 32);
  }
  [[nodiscard]] static constexpr EventId pack(std::uint32_t slot,
                                              std::uint32_t generation) noexcept {
    return EventId{(static_cast<std::uint64_t>(generation) << 32) | slot};
  }

 private:
  std::uint64_t value_ = 0;
};

/// Pending-event set ordered by (time, seq) with O(1) cancellation. Not
/// thread-safe by design: one simulation owns one queue; parallelism
/// happens across simulations.
class EventQueue {
 public:
  using Callback = SmallFn;

  /// Lifetime counters since construction / the last clear(). Plain
  /// increments on paths that already touch the same cache lines — the
  /// telemetry layer reads them after the run instead of hooking dispatch.
  /// Every field is a pure function of the push/cancel/dispatch schedule
  /// (never of retained capacity or reuse history), so all of them are safe
  /// to surface in byte-deterministic outputs.
  struct Stats {
    std::uint64_t pushed = 0;
    std::uint64_t cancelled = 0;
    /// High-water mark of simultaneously pending events.
    std::uint64_t max_live = 0;
    // Ladder-shape counters. All four stay zero in PAS_EVENTQ_HEAP builds
    // (the heap has no rungs and drops dead entries at the top instead).
    /// Sub-rungs spawned from overfull buckets.
    std::uint64_t rung_spawns = 0;
    /// Calendar (re)seeds: bucket-array layouts built from the overflow list.
    std::uint64_t bucket_resizes = 0;
    /// Largest live batch sorted into the bottom rung at once.
    std::uint64_t max_bucket = 0;
    /// Cancelled entries skipped while draining buckets / the bottom rung.
    std::uint64_t dead_skips = 0;
  };

  EventQueue() = default;

  // The push/cancel/dispatch path is defined inline below: it is the
  // innermost loop of every simulation and the library is built without
  // LTO, so a .cpp definition would cost an opaque call per event.

  /// Inserts an event; `t` must satisfy is_valid_time(). The callable is
  /// constructed directly in the slab: a raw lambda/functor argument never
  /// passes through a SmallFn temporary (zero moves), a SmallFn argument is
  /// moved in (one relocation).
  template <typename F>
  EventId push(Time t, F&& f) {
    if (!is_valid_time(t)) {
      throw std::invalid_argument("EventQueue::push: invalid event time");
    }
    if constexpr (std::is_same_v<std::remove_cvref_t<F>, Callback>) {
      if (!f) {
        throw std::invalid_argument("EventQueue::push: empty callback");
      }
    } else if constexpr (requires { static_cast<bool>(f); }) {
      // Null-testable callables (std::function, function pointers) must be
      // rejected here, at the call site, not at dispatch time.
      if (!static_cast<bool>(f)) {
        throw std::invalid_argument("EventQueue::push: empty callback");
      }
    }
    const std::uint32_t s = acquire_slot();
    Slot& slot = slot_at(s);
    if constexpr (std::is_same_v<std::remove_cvref_t<F>, Callback>) {
      slot.fn = std::forward<F>(f);
    } else {
      slot.fn.emplace(std::forward<F>(f));
    }
    index_push(IndexEntry{t, next_seq_++, s, slot.generation});
    ++live_;
    ++stats_.pushed;
    if (live_ > stats_.max_live) stats_.max_live = live_;
    return EventId::pack(s, slot.generation);
  }

  /// Cancels a pending event. Returns false if unknown/already executed.
  bool cancel(EventId id) {
    if (!pending(id)) return false;
    release_slot(id.slot());
    --live_;
    ++stats_.cancelled;
    return true;
  }

  /// True if a pushed event has neither executed nor been cancelled.
  [[nodiscard]] bool pending(EventId id) const {
    const std::uint32_t s = id.slot();
    if (s >= slot_count_) return false;
    const Slot& slot = slot_at(s);
    // The generation compare alone rejects every id the queue ever issued
    // and released; the occupancy check additionally rejects fabricated ids
    // that happen to guess a free slot's current generation.
    return slot.generation == id.generation() && static_cast<bool>(slot.fn);
  }

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Timestamp of the earliest live event; kNever when empty.
  [[nodiscard]] Time next_time() const {
    index_prepare();
    return index_has_top() ? index_top_time() : kNever;
  }

  /// Executes the earliest live event's callback in place in the slab —
  /// the kernel's dispatch path: no relocation, one indirect call. Pre:
  /// !empty(). `clock_out` is set to the event's timestamp *before* the
  /// callback runs (the simulator aliases its clock here so callbacks read
  /// the right now()). The event is retired before the callback runs (its
  /// id is no longer pending, exactly as with pop()), its slot becomes
  /// reusable only after the callback returns, and the callback may freely
  /// push or cancel.
  void run_next(Time& clock_out) {
    index_prepare();
    assert(index_has_top() && "run_next() on empty EventQueue");
    const IndexEntry top = index_pop();
    Slot& slot = slot_at(top.slot);
    // Retire the id first: during its own execution the event is no longer
    // pending and cannot be cancelled (so a self-cancel cannot free the
    // slot under us). The slot joins the free list only after the call, so
    // pushes from inside the callback cannot reuse this storage either —
    // chunked slab growth keeps `slot` address-stable meanwhile, and
    // clear() (e.g. a callback calling Simulator::reset()) skips the
    // executing slot so it is released exactly once, here.
    bump_generation(slot);
    --live_;
    // The release runs in a scope guard so a throwing callback still leaves
    // the queue consistent (slot freed, executing frame unlinked) — the
    // same guarantee the relocating pop() path gives for free. Frames form
    // a stack (callbacks may legally pump the queue again), and clear()
    // consults the whole chain so no executing slot is ever released twice.
    struct Release {
      EventQueue* queue;
      Slot* slot;
      ExecFrame frame;
      ~Release() {
        queue->executing_ = frame.prev;
        slot->fn.reset();
        slot->next_free = queue->free_head_;
        queue->free_head_ = frame.slot;
      }
    };
    Release release{this, &slot, ExecFrame{top.slot, executing_}};
    executing_ = &release.frame;
    clock_out = top.time;
    slot.fn();
  }

  /// run_next() when the caller does not need the timestamp published.
  Time run_next() {
    Time t = 0.0;
    run_next(t);
    return t;
  }

  /// Pops the earliest live event, relocating the callback out of the slab
  /// (never copying it). Pre: !empty(). The slot is released before return,
  /// so the callback may freely push new events. run_next() is the cheaper
  /// path when the callback can be invoked immediately.
  struct Popped {
    Time time;
    EventId id;
    Callback callback;
  };
  Popped pop() {
    index_prepare();
    assert(index_has_top() && "pop() on empty EventQueue");
    const IndexEntry top = index_pop();
    Slot& slot = slot_at(top.slot);
    Popped out{top.time, EventId::pack(top.slot, top.generation),
               std::move(slot.fn)};
    release_slot(top.slot);
    --live_;
    return out;
  }

  /// Drops everything (cancels all pending events) and zeroes stats().
  /// Slab capacity, bucket arrays and rung storage are retained so a reused
  /// queue (world::Workspace) schedules into warm memory; the *logical*
  /// index state resets completely, so a reused queue dispatches — and
  /// counts its Stats — exactly like a fresh one.
  void clear();

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Slots the slab has ever grown to (survives clear() — a capacity
  /// watermark, not per-run state, so workspace reuse makes it depend on
  /// scheduling history; keep it out of deterministic outputs).
  [[nodiscard]] std::size_t slot_capacity() const noexcept {
    return slot_count_;
  }

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffU;
  /// Slots per slab chunk. Chunked growth keeps every slot's address
  /// stable, which run_next() relies on while a callback executes.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1U << kChunkShift;

  /// One pending event as seen by the index: everything pop needs without
  /// touching the slab until dispatch.
  struct IndexEntry {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  /// One stack frame of in-progress dispatch (lives on run_next's stack).
  struct ExecFrame {
    std::uint32_t slot;
    ExecFrame* prev;
  };
  struct Later {
    bool operator()(const IndexEntry& a, const IndexEntry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    SmallFn fn;
    /// Bumped on every release; a generation mismatch is how stale index
    /// entries and cancelled/executed EventIds are recognised. 32 bits give
    /// 4 billion reuses per slot before an ABA collision could matter.
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNilSlot;
  };

  [[nodiscard]] Slot& slot_at(std::uint32_t s) noexcept {
    return chunks_[s >> kChunkShift][s & (kChunkSize - 1)];
  }
  [[nodiscard]] const Slot& slot_at(std::uint32_t s) const noexcept {
    return chunks_[s >> kChunkShift][s & (kChunkSize - 1)];
  }

  [[nodiscard]] bool entry_live(const IndexEntry& e) const noexcept {
    return slot_at(e.slot).generation == e.generation;
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t s = free_head_;
      free_head_ = slot_at(s).next_free;
      return s;
    }
    return grow_slots();
  }

  /// Invalidates the released id and its index entry. Generations skip 0 on
  /// wrap-around: generation 0 is reserved so that the default EventId
  /// (value 0) can never match a slot, even after 2^32 reuses.
  static void bump_generation(Slot& slot) noexcept {
    if (++slot.generation == 0) slot.generation = 1;
  }

  void release_slot(std::uint32_t s) noexcept {
    Slot& slot = slot_at(s);
    slot.fn.reset();
    bump_generation(slot);
    slot.next_free = free_head_;
    free_head_ = s;
  }

  /// Cold path of acquire_slot: appends a chunk when the slab is full.
  std::uint32_t grow_slots();

  /// True when slot `s` is currently dispatching at any nesting depth.
  [[nodiscard]] bool is_executing(std::uint32_t s) const noexcept {
    for (const ExecFrame* f = executing_; f != nullptr; f = f->prev) {
      if (f->slot == s) return true;
    }
    return false;
  }

#if defined(PAS_EVENTQ_HEAP)
  // ---- Index A: binary heap (differential / A-B build) --------------------
  //
  // The original index: std::push_heap/pop_heap over one array, dead
  // entries skipped when they surface at the top. Kept bit-compatible in
  // dispatch order with the ladder below so the two builds can be compared
  // event-for-event.

  void index_push(const IndexEntry& e) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Drops dead entries off the top. Logically const (lazy deletion),
  /// hence the mutable storage.
  void index_prepare() const {
    while (!heap_.empty() && !entry_live(heap_.front())) {
      heap_pop_top();
    }
  }

  [[nodiscard]] bool index_has_top() const noexcept { return !heap_.empty(); }
  [[nodiscard]] Time index_top_time() const noexcept {
    return heap_.front().time;
  }

  IndexEntry index_pop() const { return heap_pop_top(); }

  IndexEntry heap_pop_top() const noexcept {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const IndexEntry top = heap_.back();
    heap_.pop_back();
    return top;
  }

  mutable std::vector<IndexEntry> heap_;
#else
  // ---- Index B (default): ladder/calendar hybrid --------------------------
  //
  // Three regions partitioned by time thresholds, earliest first:
  //
  //   bottom_   sorted descending (back = earliest); the dispatch rung.
  //   rungs_    nested calendar rungs, outermost (coarsest) first; rung r
  //             owns [cur_start(r), its outer boundary) in unsorted buckets
  //             of equal width. rungs_.back() is the finest and earliest.
  //   top_      unsorted overflow for t >= top_start_.
  //
  // Invariants that make dispatch order exact:
  //   * every bottom_ entry precedes (in (time, seq)) every rung/top entry;
  //   * region thresholds (cur_start per rung, top_start_) only ever move
  //     forward, so for equal times a later push always lands in the same
  //     or a later region/bucket than an earlier one — and the final
  //     per-batch sort orders equal times by seq anyway.
  //
  // Draining: pop takes bottom_.back(); when bottom_ empties, the next
  // non-empty bucket of the innermost rung is filtered of dead entries and
  // either sorted into bottom_ or — if it still holds more than
  // kSortThreshold live events spanning distinct times — spawned into a
  // finer sub-rung. When all rungs drain, the overflow list reseeds the
  // calendar sized to the live count. All of it is logically const lazy
  // work driven by next_time()/pop(), hence the mutable storage.

  /// Live entries at or below this count are sorted straight into bottom_;
  /// larger batches spawn a sub-rung (unless all times are equal).
  static constexpr std::size_t kSortThreshold = 64;
  /// Rung-stack depth cap: beyond it batches are sorted regardless. Each
  /// spawn narrows the covered span by >= the bucket count, so real
  /// schedules never get near this; it bounds adversarial clustering.
  static constexpr std::size_t kMaxRungs = 40;
  static constexpr std::size_t kMinBuckets = 8;
  static constexpr std::size_t kMaxBuckets = 32768;
  /// Retired rungs kept (with their bucket arrays) for reuse.
  static constexpr std::size_t kMaxSpareRungs = 8;

  struct Rung {
    Time start = 0.0;
    Time width = 0.0;
    /// First undrained bucket; buckets before it have been dispatched (or
    /// redistributed), so pushes clamp to >= cur.
    std::size_t cur = 0;
    std::vector<std::vector<IndexEntry>> buckets;
  };

  [[nodiscard]] static Time rung_cur_start(const Rung& r) noexcept {
    return r.start + r.width * static_cast<Time>(r.cur);
  }

  /// Bucket placement is a heuristic (clamped to the rung's undrained
  /// range); the per-batch sort at drain time is what guarantees order, so
  /// floating-point edge cases here cost locality, never correctness.
  static void rung_insert(Rung& r, const IndexEntry& e) {
    const Time off = (e.time - r.start) / r.width;
    const std::size_t nb = r.buckets.size();
    std::size_t idx;
    if (!(off > 0.0)) {
      idx = 0;
    } else if (off >= static_cast<Time>(nb)) {
      idx = nb - 1;
    } else {
      idx = static_cast<std::size_t>(off);
    }
    if (idx < r.cur) idx = r.cur;
    r.buckets[idx].push_back(e);
  }

  void index_push(const IndexEntry& e) {
    if (e.time >= top_start_) {
      top_.push_back(e);
      return;
    }
    for (Rung& r : rungs_) {  // outermost first: largest cur_start wins
      if (e.time >= rung_cur_start(r)) {
        rung_insert(r, e);
        return;
      }
    }
    bottom_insert(e);
  }

  /// Sorted insert into the (usually tiny) bottom rung; the common case —
  /// an event earlier than everything pending — lands at the back.
  void bottom_insert(const IndexEntry& e) {
    const auto it =
        std::lower_bound(bottom_.begin(), bottom_.end(), e, Later{});
    bottom_.insert(it, e);
  }

  /// Exposes the earliest live entry at bottom_.back(), refilling from the
  /// rungs/overflow as needed. Logically const lazy maintenance.
  void index_prepare() const {
    for (;;) {
      while (!bottom_.empty() && !entry_live(bottom_.back())) {
        bottom_.pop_back();
        ++stats_.dead_skips;
      }
      if (!bottom_.empty()) return;
      if (!refill_bottom()) return;
    }
  }

  [[nodiscard]] bool index_has_top() const noexcept {
    return !bottom_.empty();
  }
  [[nodiscard]] Time index_top_time() const noexcept {
    return bottom_.back().time;
  }

  IndexEntry index_pop() const {
    const IndexEntry e = bottom_.back();
    bottom_.pop_back();
    return e;
  }

  // Cold paths, defined in event_queue.cpp.
  bool refill_bottom() const;
  bool spawn_rung_from_scratch() const;
  Rung& push_rung(std::size_t buckets) const;
  void retire_rung() const;
  static std::size_t bucket_count_for(std::size_t n) noexcept;

  mutable std::vector<IndexEntry> bottom_;
  mutable std::vector<Rung> rungs_;
  mutable std::vector<IndexEntry> top_;
  /// Events at or after this time go to top_. kLongAgo until the first
  /// reseed (everything starts in the overflow list); from then on it only
  /// moves forward within a run. clear() resets it.
  mutable Time top_start_ = kLongAgo;
  mutable std::vector<IndexEntry> scratch_;
  mutable std::vector<Rung> spare_rungs_;
#endif

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNilSlot;
  /// Innermost in-progress dispatch frame (null when none); clear() must
  /// leave every frame's slot alone so each run_next() releases its own
  /// slot exactly once on return.
  ExecFrame* executing_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  /// Mutable because lazy index maintenance (dead-entry skips) happens
  /// inside logically-const reads like next_time().
  mutable Stats stats_{};
};

}  // namespace pas::sim

// Pending-event set for the discrete-event kernel.
//
// A binary heap ordered by (time, sequence) with O(1) lazy cancellation:
// cancelled events stay in the heap but are skipped on pop. Sequence numbers
// give FIFO ordering among simultaneous events, which keeps protocol runs
// deterministic regardless of heap internals.
//
// Callbacks live in a free-list slab of generation-tagged slots (a slot
// map). An EventId is (slot index, generation): cancel() and pending() are
// one array access plus a generation compare — no hashing, no node
// allocations — and a reused slot invalidates stale ids by construction
// because release bumps the generation. Callbacks are sim::SmallFn,
// constructed directly in the slab (push never copies a capture), and the
// slab grows in address-stable chunks so run_next() can invoke a callback
// in place — the dispatch path of a simulation is one indirect call per
// event, with no allocation and no capture relocation.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace pas::sim {

/// Opaque handle to a scheduled event. Value 0 is "invalid". Internally
/// packs (generation << 32) | slot; generations start at 1, so every live
/// id is non-zero.
class EventId {
 public:
  constexpr EventId() noexcept = default;
  explicit constexpr EventId(std::uint64_t v) noexcept : value_(v) {}

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != 0; }
  constexpr bool operator==(const EventId&) const noexcept = default;

  /// Slot index / generation accessors (used by the queue; stable layout so
  /// tests can assert on reuse behaviour).
  [[nodiscard]] constexpr std::uint32_t slot() const noexcept {
    return static_cast<std::uint32_t>(value_);
  }
  [[nodiscard]] constexpr std::uint32_t generation() const noexcept {
    return static_cast<std::uint32_t>(value_ >> 32);
  }
  [[nodiscard]] static constexpr EventId pack(std::uint32_t slot,
                                              std::uint32_t generation) noexcept {
    return EventId{(static_cast<std::uint64_t>(generation) << 32) | slot};
  }

 private:
  std::uint64_t value_ = 0;
};

/// Min-heap of (time, seq) with cancellation. Not thread-safe by design:
/// one simulation owns one queue; parallelism happens across simulations.
class EventQueue {
 public:
  using Callback = SmallFn;

  /// Lifetime counters since construction / the last clear(). Plain
  /// increments on paths that already touch the same cache lines — the
  /// telemetry layer reads them after the run instead of hooking dispatch.
  struct Stats {
    std::uint64_t pushed = 0;
    std::uint64_t cancelled = 0;
    /// High-water mark of simultaneously pending events.
    std::uint64_t max_live = 0;
  };

  EventQueue() = default;

  // The push/cancel/dispatch path is defined inline below: it is the
  // innermost loop of every simulation and the library is built without
  // LTO, so a .cpp definition would cost an opaque call per event.

  /// Inserts an event; `t` must satisfy is_valid_time(). The callable is
  /// constructed directly in the slab: a raw lambda/functor argument never
  /// passes through a SmallFn temporary (zero moves), a SmallFn argument is
  /// moved in (one relocation).
  template <typename F>
  EventId push(Time t, F&& f) {
    if (!is_valid_time(t)) {
      throw std::invalid_argument("EventQueue::push: invalid event time");
    }
    if constexpr (std::is_same_v<std::remove_cvref_t<F>, Callback>) {
      if (!f) {
        throw std::invalid_argument("EventQueue::push: empty callback");
      }
    } else if constexpr (requires { static_cast<bool>(f); }) {
      // Null-testable callables (std::function, function pointers) must be
      // rejected here, at the call site, not at dispatch time.
      if (!static_cast<bool>(f)) {
        throw std::invalid_argument("EventQueue::push: empty callback");
      }
    }
    const std::uint32_t s = acquire_slot();
    Slot& slot = slot_at(s);
    if constexpr (std::is_same_v<std::remove_cvref_t<F>, Callback>) {
      slot.fn = std::forward<F>(f);
    } else {
      slot.fn.emplace(std::forward<F>(f));
    }
    heap_.push_back(HeapEntry{t, next_seq_++, s, slot.generation});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++live_;
    ++stats_.pushed;
    if (live_ > stats_.max_live) stats_.max_live = live_;
    return EventId::pack(s, slot.generation);
  }

  /// Cancels a pending event. Returns false if unknown/already executed.
  bool cancel(EventId id) {
    if (!pending(id)) return false;
    release_slot(id.slot());
    --live_;
    ++stats_.cancelled;
    return true;
  }

  /// True if a pushed event has neither executed nor been cancelled.
  [[nodiscard]] bool pending(EventId id) const {
    const std::uint32_t s = id.slot();
    if (s >= slot_count_) return false;
    const Slot& slot = slot_at(s);
    // The generation compare alone rejects every id the queue ever issued
    // and released; the occupancy check additionally rejects fabricated ids
    // that happen to guess a free slot's current generation.
    return slot.generation == id.generation() && static_cast<bool>(slot.fn);
  }

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Timestamp of the earliest live event; kNever when empty.
  [[nodiscard]] Time next_time() const {
    drop_dead_top();
    return heap_.empty() ? kNever : heap_.front().time;
  }

  /// Executes the earliest live event's callback in place in the slab —
  /// the kernel's dispatch path: no relocation, one indirect call. Pre:
  /// !empty(). `clock_out` is set to the event's timestamp *before* the
  /// callback runs (the simulator aliases its clock here so callbacks read
  /// the right now()). The event is retired before the callback runs (its
  /// id is no longer pending, exactly as with pop()), its slot becomes
  /// reusable only after the callback returns, and the callback may freely
  /// push or cancel.
  void run_next(Time& clock_out) {
    drop_dead_top();
    assert(!heap_.empty() && "run_next() on empty EventQueue");
    const HeapEntry top = heap_pop_top();
    Slot& slot = slot_at(top.slot);
    // Retire the id first: during its own execution the event is no longer
    // pending and cannot be cancelled (so a self-cancel cannot free the
    // slot under us). The slot joins the free list only after the call, so
    // pushes from inside the callback cannot reuse this storage either —
    // chunked slab growth keeps `slot` address-stable meanwhile, and
    // clear() (e.g. a callback calling Simulator::reset()) skips the
    // executing slot so it is released exactly once, here.
    bump_generation(slot);
    --live_;
    // The release runs in a scope guard so a throwing callback still leaves
    // the queue consistent (slot freed, executing frame unlinked) — the
    // same guarantee the relocating pop() path gives for free. Frames form
    // a stack (callbacks may legally pump the queue again), and clear()
    // consults the whole chain so no executing slot is ever released twice.
    struct Release {
      EventQueue* queue;
      Slot* slot;
      ExecFrame frame;
      ~Release() {
        queue->executing_ = frame.prev;
        slot->fn.reset();
        slot->next_free = queue->free_head_;
        queue->free_head_ = frame.slot;
      }
    };
    Release release{this, &slot, ExecFrame{top.slot, executing_}};
    executing_ = &release.frame;
    clock_out = top.time;
    slot.fn();
  }

  /// run_next() when the caller does not need the timestamp published.
  Time run_next() {
    Time t = 0.0;
    run_next(t);
    return t;
  }

  /// Pops the earliest live event, relocating the callback out of the slab
  /// (never copying it). Pre: !empty(). The slot is released before return,
  /// so the callback may freely push new events. run_next() is the cheaper
  /// path when the callback can be invoked immediately.
  struct Popped {
    Time time;
    EventId id;
    Callback callback;
  };
  Popped pop() {
    drop_dead_top();
    assert(!heap_.empty() && "pop() on empty EventQueue");
    const HeapEntry top = heap_pop_top();
    Slot& slot = slot_at(top.slot);
    Popped out{top.time, EventId::pack(top.slot, top.generation),
               std::move(slot.fn)};
    release_slot(top.slot);
    --live_;
    return out;
  }

  /// Drops everything (cancels all pending events) and zeroes stats().
  /// Slab capacity is retained so a reused queue (world::Workspace)
  /// schedules into warm memory.
  void clear();

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Slots the slab has ever grown to (survives clear() — a capacity
  /// watermark, not per-run state, so workspace reuse makes it depend on
  /// scheduling history; keep it out of deterministic outputs).
  [[nodiscard]] std::size_t slot_capacity() const noexcept {
    return slot_count_;
  }

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffU;
  /// Slots per slab chunk. Chunked growth keeps every slot's address
  /// stable, which run_next() relies on while a callback executes.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1U << kChunkShift;

  struct HeapEntry {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  /// One stack frame of in-progress dispatch (lives on run_next's stack).
  struct ExecFrame {
    std::uint32_t slot;
    ExecFrame* prev;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    SmallFn fn;
    /// Bumped on every release; a generation mismatch is how stale heap
    /// entries and cancelled/executed EventIds are recognised. 32 bits give
    /// 4 billion reuses per slot before an ABA collision could matter.
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNilSlot;
  };

  [[nodiscard]] Slot& slot_at(std::uint32_t s) noexcept {
    return chunks_[s >> kChunkShift][s & (kChunkSize - 1)];
  }
  [[nodiscard]] const Slot& slot_at(std::uint32_t s) const noexcept {
    return chunks_[s >> kChunkShift][s & (kChunkSize - 1)];
  }

  [[nodiscard]] bool entry_live(const HeapEntry& e) const noexcept {
    return slot_at(e.slot).generation == e.generation;
  }

  /// Removes and returns the heap's top entry.
  HeapEntry heap_pop_top() const noexcept {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const HeapEntry top = heap_.back();
    heap_.pop_back();
    return top;
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t s = free_head_;
      free_head_ = slot_at(s).next_free;
      return s;
    }
    return grow_slots();
  }

  /// Invalidates the released id and its heap entry. Generations skip 0 on
  /// wrap-around: generation 0 is reserved so that the default EventId
  /// (value 0) can never match a slot, even after 2^32 reuses.
  static void bump_generation(Slot& slot) noexcept {
    if (++slot.generation == 0) slot.generation = 1;
  }

  void release_slot(std::uint32_t s) noexcept {
    Slot& slot = slot_at(s);
    slot.fn.reset();
    bump_generation(slot);
    slot.next_free = free_head_;
    free_head_ = s;
  }

  void drop_dead_top() const {
    while (!heap_.empty() && !entry_live(heap_.front())) {
      heap_pop_top();
    }
  }

  /// Cold path of acquire_slot: appends a chunk when the slab is full.
  std::uint32_t grow_slots();

  /// True when slot `s` is currently dispatching at any nesting depth.
  [[nodiscard]] bool is_executing(std::uint32_t s) const noexcept {
    for (const ExecFrame* f = executing_; f != nullptr; f = f->prev) {
      if (f->slot == s) return true;
    }
    return false;
  }

  // Lazy deletion: cancelled entries linger in the heap until they reach the
  // top. Pruning them is logically const, hence the mutable heap.
  mutable std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNilSlot;
  /// Innermost in-progress dispatch frame (null when none); clear() must
  /// leave every frame's slot alone so each run_next() releases its own
  /// slot exactly once on return.
  ExecFrame* executing_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  Stats stats_{};
};

}  // namespace pas::sim

// Simulation time primitives.
//
// Simulation time is a double counting seconds since the start of the run.
// A double gives ~1 ns resolution over the minutes-long horizons the PAS
// experiments use, and keeps all of the paper's arithmetic (velocities in
// m/s, powers in W, energies in J) unit-coherent without a ratio type.
#pragma once

#include <limits>

namespace pas::sim {

/// Absolute simulation time in seconds.
using Time = double;

/// Relative duration in seconds.
using Duration = double;

/// Sentinel for "never" / "not yet happened".
inline constexpr Time kNever = std::numeric_limits<Time>::infinity();

/// Sentinel for "arbitrarily far in the past" — initialises last-event
/// stamps so that any `now - stamp >= interval` rate-limit check passes on
/// first use. The mirror image of kNever.
inline constexpr Time kLongAgo = -std::numeric_limits<Time>::infinity();

/// Returns true for a finite, non-negative time usable as an event stamp.
[[nodiscard]] constexpr bool is_valid_time(Time t) noexcept {
  return t >= 0.0 && t < kNever;
}

/// Milliseconds-to-seconds convenience (the MAC and radio layers think in ms).
[[nodiscard]] constexpr Duration ms(double v) noexcept { return v * 1e-3; }

/// Microseconds-to-seconds convenience.
[[nodiscard]] constexpr Duration us(double v) noexcept { return v * 1e-6; }

}  // namespace pas::sim

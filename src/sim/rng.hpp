// Deterministic random number generation.
//
// Every random decision in a simulation (deployment, MAC jitter, channel
// loss, failure times) is drawn from a Pcg32 stream derived from one 64-bit
// root seed via SplitMix64. Identical seeds therefore reproduce identical
// runs bit-for-bit, which both makes tests deterministic and lets the sweep
// runner farm replications out to a thread pool with no shared mutable state.
#pragma once

#include <cstdint>
#include <string_view>

namespace pas::sim {

/// SplitMix64: tiny, well-distributed 64-bit mixer. Used to expand a root
/// seed into per-stream (state, sequence) pairs for Pcg32.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG32 (pcg32_random_r from the PCG paper): 64-bit state, 32-bit output,
/// independent streams selected by the `sequence` parameter.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  constexpr Pcg32() noexcept : Pcg32(0x853C49E6748FEA9BULL, 0xDA3E39CB94B95BDBULL) {}
  constexpr Pcg32(std::uint64_t seed, std::uint64_t sequence) noexcept
      : state_(0), inc_((sequence << 1U) | 1U) {
    next();
    state_ += seed;
    next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return 0xFFFFFFFFU; }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr result_type next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    const auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal(double mean, double stddev) noexcept;
  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;
  /// Bernoulli trial.
  bool bernoulli(double p) noexcept;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Derives independent named Pcg32 streams from a single root seed.
/// Streams are identified by small integer domains so that adding a new
/// consumer never perturbs existing streams (stable replay across versions).
class SeedSequence {
 public:
  explicit SeedSequence(std::uint64_t root) noexcept : root_(root) {}

  /// A stream keyed by (domain, index); e.g. (kChannel, node_id).
  [[nodiscard]] Pcg32 stream(std::uint64_t domain, std::uint64_t index = 0) const noexcept;

  /// A stream keyed by a string label (hashed with FNV-1a); handy in tests.
  [[nodiscard]] Pcg32 stream(std::string_view label) const noexcept;

  [[nodiscard]] std::uint64_t root() const noexcept { return root_; }

  /// Well-known stream domains used across the library.
  enum Domain : std::uint64_t {
    kDeployment = 1,
    kMacJitter = 2,
    kChannel = 3,
    kFailure = 4,
    kStimulus = 5,
    kProtocol = 6,
    kMacSlot = 7,     // per-node LPL wake-slot phases (indexed by node)
    kMacBackoff = 8,  // per-node MAC backoff draws (indexed by node)
    kUser = 1000,
  };

 private:
  std::uint64_t root_;
};

}  // namespace pas::sim

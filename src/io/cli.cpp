#include "io/cli.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "io/csv.hpp"

namespace pas::io {

namespace {
template <typename T>
bool parse_number(std::string_view text, T* out) {
  const char* first = text.data();
  const char* last = text.data() + text.size();
  T value{};
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return false;
  *out = value;
  return true;
}
}  // namespace

void Cli::add_option(Option opt) {
  if (find(opt.name) != nullptr) {
    throw std::logic_error("Cli: duplicate option --" + opt.name);
  }
  options_.push_back(std::move(opt));
}

void Cli::add_flag(std::string name, bool* target, std::string help_text) {
  Option o;
  o.name = std::move(name);
  o.help = std::move(help_text);
  o.default_value = *target ? "true" : "false";
  o.is_flag = true;
  o.apply = [target](std::string_view v) {
    if (v.empty() || v == "true" || v == "1") { *target = true; return true; }
    if (v == "false" || v == "0") { *target = false; return true; }
    return false;
  };
  add_option(std::move(o));
}

void Cli::add_int(std::string name, std::int64_t* target, std::string help_text) {
  Option o;
  o.name = std::move(name);
  o.help = std::move(help_text);
  o.default_value = std::to_string(*target);
  o.apply = [target](std::string_view v) { return parse_number(v, target); };
  add_option(std::move(o));
}

void Cli::add_uint(std::string name, std::uint64_t* target, std::string help_text) {
  Option o;
  o.name = std::move(name);
  o.help = std::move(help_text);
  o.default_value = std::to_string(*target);
  o.apply = [target](std::string_view v) { return parse_number(v, target); };
  add_option(std::move(o));
}

void Cli::add_double(std::string name, double* target, std::string help_text) {
  Option o;
  o.name = std::move(name);
  o.help = std::move(help_text);
  o.default_value = format_double(*target);
  o.apply = [target](std::string_view v) { return parse_number(v, target); };
  add_option(std::move(o));
}

void Cli::add_string(std::string name, std::string* target, std::string help_text) {
  Option o;
  o.name = std::move(name);
  o.help = std::move(help_text);
  o.default_value = *target;
  o.apply = [target](std::string_view v) {
    *target = std::string(v);
    return true;
  };
  add_option(std::move(o));
}

const Cli::Option* Cli::find(std::string_view name) const {
  for (const auto& o : options_) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

std::string Cli::help() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& o : options_) {
    os << "  --" << o.name;
    if (!o.is_flag) os << " <value>";
    os << "\n      " << o.help << " (default: " << o.default_value << ")\n";
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      status_ = 0;
      return false;
    }
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string_view name = arg;
    std::optional<std::string_view> inline_value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    const Option* opt = find(name);
    if (opt == nullptr) {
      std::fprintf(stderr, "%s: unknown option --%.*s\n", program_.c_str(),
                   static_cast<int>(name.size()), name.data());
      status_ = 2;
      return false;
    }
    std::string_view value;
    if (inline_value.has_value()) {
      value = *inline_value;
    } else if (!opt->is_flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --%s requires a value\n", program_.c_str(),
                     opt->name.c_str());
        status_ = 2;
        return false;
      }
      value = argv[++i];
    }
    if (!opt->apply(value)) {
      std::fprintf(stderr, "%s: bad value for --%s: '%.*s'\n", program_.c_str(),
                   opt->name.c_str(), static_cast<int>(value.size()),
                   value.data());
      status_ = 2;
      return false;
    }
  }
  status_ = 1;
  return true;
}

}  // namespace pas::io

#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace pas::io {

std::string fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table: row width does not match header");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.push_back(fixed(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << "  ";
      os << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << '\n';
  };
  emit(columns_);
  std::vector<std::string> rule;
  rule.reserve(columns_.size());
  for (const auto w : widths) rule.emplace_back(w, '-');
  emit(rule);
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace pas::io

// Minimal CSV writer for experiment output.
//
// Benches and examples dump per-run records so results can be re-plotted
// offline. Quoting follows RFC 4180 (quote when a field contains comma,
// quote, or newline; double embedded quotes).
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pas::io {

class CsvWriter {
 public:
  /// Writes to an externally-owned stream (file, stringstream, stdout).
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes the header row; remembers the column count to validate rows.
  void header(std::initializer_list<std::string_view> columns);
  void header(const std::vector<std::string>& columns);

  /// Appends one row. Throws std::logic_error if the column count does not
  /// match the header (when a header was written).
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with enough digits to round-trip.
  void row_values(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  /// Escapes a single CSV field per RFC 4180.
  [[nodiscard]] static std::string escape(std::string_view field);

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ostream& os_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

/// Formats a double with round-trip precision, trimming trailing zeros.
[[nodiscard]] std::string format_double(double v);

}  // namespace pas::io

#include "io/json.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

namespace pas::io {

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = JsonObject{};
  auto* obj = std::get_if<JsonObject>(&value_);
  if (obj == nullptr) {
    throw std::logic_error("Json::operator[]: not an object");
  }
  return (*obj)[key];
}

void Json::push_back(Json v) {
  if (is_null()) value_ = JsonArray{};
  auto* arr = std::get_if<JsonArray>(&value_);
  if (arr == nullptr) {
    throw std::logic_error("Json::push_back: not an array");
  }
  arr->push_back(std::move(v));
}

void Json::escape_into(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

namespace {
void append_number(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    out += "null";  // JSON has no NaN/Inf; null is the conventional stand-in.
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  out.append(buf, ptr);
}
}  // namespace

void Json::dump_impl(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent >= 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    append_number(out, *d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    escape_into(out, *s);
  } else if (const auto* arr = std::get_if<JsonArray>(&value_)) {
    if (arr->empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    bool first = true;
    for (const auto& v : *arr) {
      if (!first) out.push_back(',');
      first = false;
      newline(depth + 1);
      v.dump_impl(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back(']');
  } else if (const auto* obj = std::get_if<JsonObject>(&value_)) {
    if (obj->empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : *obj) {
      if (!first) out.push_back(',');
      first = false;
      newline(depth + 1);
      escape_into(out, k);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      v.dump_impl(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back('}');
  } else {
    out += "null";
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

}  // namespace pas::io

#include "io/json.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pas::io {

namespace {

[[noreturn]] void type_error(const char* what, const char* got) {
  throw std::runtime_error(std::string("Json: expected ") + what + ", got " +
                           got);
}

const char* type_name(const Json& j) {
  if (j.is_null()) return "null";
  if (j.is_bool()) return "bool";
  if (j.is_number()) return "number";
  if (j.is_string()) return "string";
  if (j.is_array()) return "array";
  return "object";
}

}  // namespace

bool Json::as_bool() const {
  if (const auto* b = std::get_if<bool>(&value_)) return *b;
  type_error("bool", type_name(*this));
}

double Json::as_double() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  type_error("number", type_name(*this));
}

const std::string& Json::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  type_error("string", type_name(*this));
}

const JsonArray& Json::as_array() const {
  if (const auto* a = std::get_if<JsonArray>(&value_)) return *a;
  type_error("array", type_name(*this));
}

const JsonObject& Json::as_object() const {
  if (const auto* o = std::get_if<JsonObject>(&value_)) return *o;
  type_error("object", type_name(*this));
}

bool Json::contains(const std::string& key) const noexcept {
  const auto* obj = std::get_if<JsonObject>(&value_);
  return obj != nullptr && obj->count(key) > 0;
}

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw std::runtime_error("Json: missing key \"" + key + "\"");
  }
  return it->second;
}

double Json::number_or(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_double() : fallback;
}

std::string Json::string_or(const std::string& key,
                            std::string fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

bool Json::bool_or(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = JsonObject{};
  auto* obj = std::get_if<JsonObject>(&value_);
  if (obj == nullptr) {
    throw std::logic_error("Json::operator[]: not an object");
  }
  return (*obj)[key];
}

void Json::push_back(Json v) {
  if (is_null()) value_ = JsonArray{};
  auto* arr = std::get_if<JsonArray>(&value_);
  if (arr == nullptr) {
    throw std::logic_error("Json::push_back: not an array");
  }
  arr->push_back(std::move(v));
}

void Json::escape_into(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

namespace {
void append_number(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    out += "null";  // JSON has no NaN/Inf; null is the conventional stand-in.
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  out.append(buf, ptr);
}
}  // namespace

void Json::dump_impl(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent >= 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    append_number(out, *d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    escape_into(out, *s);
  } else if (const auto* arr = std::get_if<JsonArray>(&value_)) {
    if (arr->empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    bool first = true;
    for (const auto& v : *arr) {
      if (!first) out.push_back(',');
      first = false;
      newline(depth + 1);
      v.dump_impl(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back(']');
  } else if (const auto* obj = std::get_if<JsonObject>(&value_)) {
    if (obj->empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : *obj) {
      if (!first) out.push_back(',');
      first = false;
      newline(depth + 1);
      escape_into(out, k);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      v.dump_impl(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back('}');
  } else {
    out += "null";
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error("Json::parse: " + msg + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(out, parse_hex4()); break;
        default: fail("invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4U;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    // Surrogate pairs are not stitched: manifests are ASCII in practice and
    // lone surrogates round-trip as replacement-free 3-byte sequences.
    if (cp < 0x80U) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800U) {
      out.push_back(static_cast<char>(0xC0U | (cp >> 6U)));
      out.push_back(static_cast<char>(0x80U | (cp & 0x3FU)));
    } else {
      out.push_back(static_cast<char>(0xE0U | (cp >> 12U)));
      out.push_back(static_cast<char>(0x80U | ((cp >> 6U) & 0x3FU)));
      out.push_back(static_cast<char>(0x80U | (cp & 0x3FU)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_) {
      pos_ = start;
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

Json Json::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("Json::parse_file: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace pas::io

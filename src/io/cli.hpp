// Tiny command-line option parser for the example applications.
//
// Supports `--name value`, `--name=value` and boolean `--flag` options plus
// `--help` text generation. Examples register typed options bound to
// variables so scenario structs stay the single source of truth.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pas::io {

class Cli {
 public:
  Cli(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Registers options bound to caller-owned variables. Defaults shown in
  /// --help come from the bound variable's value at registration time.
  void add_flag(std::string name, bool* target, std::string help);
  void add_int(std::string name, std::int64_t* target, std::string help);
  void add_uint(std::string name, std::uint64_t* target, std::string help);
  void add_double(std::string name, double* target, std::string help);
  void add_string(std::string name, std::string* target, std::string help);

  /// Parses argv. Returns false (after printing a message) on --help or on a
  /// parse error; callers should exit(0)/exit(2) respectively via status().
  bool parse(int argc, const char* const* argv);

  /// 0 after --help, 2 after an error, 1 while unset/after success.
  [[nodiscard]] int status() const noexcept { return status_; }

  [[nodiscard]] std::string help() const;

  /// Positional arguments left over after option parsing.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  struct Option {
    std::string name;  // without leading dashes
    std::string help;
    std::string default_value;
    bool is_flag = false;
    std::function<bool(std::string_view)> apply;
  };

  void add_option(Option opt);
  [[nodiscard]] const Option* find(std::string_view name) const;

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
  std::vector<std::string> positional_;
  int status_ = 1;
};

}  // namespace pas::io

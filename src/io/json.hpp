// Minimal JSON value, serializer, and parser.
//
// Examples dump scenario configuration and results as JSON for downstream
// tooling, and the experiment engine (src/exp) loads campaign manifests
// from JSON files. A ~300-line value type covers both directions without a
// vendored dependency.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace pas::io {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;  // ordered keys => stable output

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_number() const noexcept { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<JsonObject>(value_); }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<JsonArray>(value_); }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Object element access; creates the object/key as needed.
  Json& operator[](const std::string& key);

  /// True if this is an object containing `key`.
  [[nodiscard]] bool contains(const std::string& key) const noexcept;

  /// Const object lookup; throws std::runtime_error if absent/not an object.
  [[nodiscard]] const Json& at(const std::string& key) const;

  /// Convenience lookups with fallbacks for optional manifest fields.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;

  /// Appends to an array (converts null to array first).
  void push_back(Json v);

  /// Parses a complete JSON document. Throws std::runtime_error (with a
  /// byte offset) on malformed input or trailing garbage.
  [[nodiscard]] static Json parse(std::string_view text);

  /// Reads and parses a JSON file. Throws std::runtime_error if the file
  /// cannot be read or does not parse.
  [[nodiscard]] static Json parse_file(const std::string& path);

  /// Serialises compactly (indent < 0) or pretty-printed with `indent`
  /// spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  void dump_impl(std::string& out, int indent, int depth) const;
  static void escape_into(std::string& out, std::string_view s);

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

}  // namespace pas::io

// Minimal JSON value + serializer (output only).
//
// Examples dump scenario configuration and results as JSON for downstream
// tooling. Writing (not parsing) is all the library needs, so this stays a
// ~150-line value type instead of a vendored dependency.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace pas::io {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;  // ordered keys => stable output

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<JsonObject>(value_); }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<JsonArray>(value_); }

  /// Object element access; creates the object/key as needed.
  Json& operator[](const std::string& key);

  /// Appends to an array (converts null to array first).
  void push_back(Json v);

  /// Serialises compactly (indent < 0) or pretty-printed with `indent`
  /// spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  void dump_impl(std::string& out, int indent, int depth) const;
  static void escape_into(std::string& out, std::string_view s);

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

}  // namespace pas::io

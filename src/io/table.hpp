// Fixed-width ASCII table printer.
//
// Benches print the paper's tables/figure series in aligned columns so the
// terminal output can be compared against the paper at a glance.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace pas::io {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Adds a row; must have the same width as the header.
  void add_row(std::vector<std::string> cells);

  /// Numeric convenience: values formatted with `precision` decimals.
  void add_row_values(const std::vector<double>& values, int precision = 4);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a header rule, e.g.
  ///   max_sleep_s  delay_NS  delay_PAS  delay_SAS
  ///   -----------  --------  ---------  ---------
  ///         5.000     0.000      0.312      0.841
  void print(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with fixed `precision` decimals.
[[nodiscard]] std::string fixed(double v, int precision);

}  // namespace pas::io

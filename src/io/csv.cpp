#include "io/csv.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

namespace pas::io {

std::string format_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, ptr);
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::header(std::initializer_list<std::string_view> columns) {
  std::vector<std::string> cols;
  cols.reserve(columns.size());
  for (const auto c : columns) cols.emplace_back(c);
  header(cols);
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  if (header_written_) {
    throw std::logic_error("CsvWriter: header written twice");
  }
  columns_ = columns.size();
  header_written_ = true;
  write_row(columns);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (header_written_ && cells.size() != columns_) {
    throw std::logic_error("CsvWriter: row width does not match header");
  }
  write_row(cells);
  ++rows_;
}

void CsvWriter::row_values(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.push_back(format_double(v));
  row(cells);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& c : cells) {
    if (!first) os_ << ',';
    os_ << escape(c);
    first = false;
  }
  os_ << '\n';
}

}  // namespace pas::io

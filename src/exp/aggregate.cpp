#include "exp/aggregate.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <queue>
#include <set>
#include <stdexcept>
#include <utility>

#include "exp/grid.hpp"
#include "io/csv.hpp"

namespace pas::exp {

namespace {

/// Default spill-buffer budget for the external-merge export.
constexpr std::size_t kDefaultSpillBudgetBytes = 32u << 20;

/// Replication counts up to this use exact (sort-based) delay quantiles in
/// record(); beyond it the streaming t-digest answers instead. The
/// threshold keeps every existing golden CSV bit-identical (campaign
/// manifests run far fewer replications) while bounding the sort cost for
/// sketch-scale points.
constexpr std::size_t kExactQuantileMaxReps = 256;

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (const char c : line) {
    if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

std::string join_csv(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) line.push_back(',');
    line += io::CsvWriter::escape(cells[i]);
  }
  return line;
}

bool parse_index(const std::string& cell, std::size_t& out) {
  const auto [ptr, ec] =
      std::from_chars(cell.data(), cell.data() + cell.size(), out);
  return ec == std::errc{} && ptr == cell.data() + cell.size();
}

/// True if the whole cell parses as a *finite* double (→ emit raw in JSON
/// lines). Non-finite cells ("nan"/"inf" from format_double) must not leak
/// into JSON, which has no such tokens; the caller emits null instead,
/// matching io::Json::dump's convention.
bool is_finite_numeric_cell(const std::string& cell, bool& non_finite) {
  non_finite = false;
  if (cell.empty()) return false;
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (ec != std::errc{} || ptr != cell.data() + cell.size()) return false;
  if (!std::isfinite(value)) {
    non_finite = true;
    return false;
  }
  return true;
}

/// Export merge order within a point: tombstones first (they set the
/// liveness threshold), then per-run rows by rep, then the summary;
/// sequence numbers break ties so later appends win deterministically.
int kind_rank(RowStore::Kind kind) {
  switch (kind) {
    case RowStore::Kind::kTombstone: return 0;
    case RowStore::Kind::kPerRun: return 1;
    case RowStore::Kind::kSummary: return 2;
  }
  return 3;
}

bool record_less(const RowStore::Record& a, const RowStore::Record& b) {
  if (a.point != b.point) return a.point < b.point;
  const int ra = kind_rank(a.kind), rb = kind_rank(b.kind);
  if (ra != rb) return ra < rb;
  if (a.rep != b.rep) return a.rep < b.rep;
  return a.seq < b.seq;
}

/// Approximate in-memory footprint of a buffered record, for the spill
/// budget accounting.
std::size_t record_bytes(const RowStore::Record& r) {
  std::size_t n = sizeof(RowStore::Record) + 32;
  for (const auto& cell : r.cells) n += cell.size() + sizeof(std::string);
  return n;
}

}  // namespace

PointSummary PointSummary::of(std::size_t point, std::uint64_t seed,
                              const world::ReplicatedMetrics& m) {
  PointSummary s;
  s.point = point;
  s.seed = seed;
  s.replications = m.runs.size();
  s.delay_s = m.delay_s;
  s.energy_j = m.energy_j;
  s.active_fraction = m.active_fraction;
  s.mean_missed = m.mean_missed;
  s.mean_broadcasts = m.mean_broadcasts;
  return s;
}

std::vector<std::string> Aggregator::metric_columns() {
  return {"replications",  "delay_mean_s",         "delay_ci95_s",
          "delay_min_s",   "delay_max_s",          "delay_p50_s",
          "delay_p95_s",   "delay_p99_s",          "energy_mean_j",
          "energy_ci95_j", "energy_min_j",         "energy_max_j",
          "active_fraction_mean",                  "missed_mean",
          "broadcasts_mean"};
}

std::vector<std::string> Aggregator::per_run_metric_columns() {
  return {"avg_delay_s", "p95_delay_s", "max_delay_s",     "avg_energy_j",
          "active_fraction",            "missed",          "censored",
          "broadcasts"};
}

Aggregator::Aggregator(AggregatorOptions options)
    : csv_path_(std::move(options.csv_path)),
      json_path_(std::move(options.json_path)),
      per_run_path_(std::move(options.per_run_path)),
      axis_count_(options.axis_names.size()),
      total_points_(options.total_points),
      replications_(options.replications),
      expected_identity_(std::move(options.expected_identity)),
      store_path_(std::move(options.store_path)),
      spill_budget_bytes_(options.spill_budget_bytes) {
  if (!expected_identity_.empty() &&
      expected_identity_.size() != total_points_) {
    throw std::logic_error("Aggregator: expected_identity size mismatch");
  }
  if (!per_run_path_.empty() && replications_ == 0) {
    throw std::logic_error(
        "Aggregator: per-run output requires the replication count");
  }
  if (!per_run_path_.empty() && csv_path_.empty()) {
    // Resume pairs per-run groups with summary rows; without the summary
    // CSV every recovered group would look orphaned and be wiped.
    throw std::logic_error(
        "Aggregator: per-run output requires a summary CSV path");
  }
  if (!store_path_.empty() && csv_path_.empty()) {
    // The store exists to back a CSV artifact; in-memory aggregation
    // (benches, unit tests) has nothing to export.
    throw std::logic_error(
        "Aggregator: store mode requires a summary CSV path");
  }
  if (!options.owned_points.empty()) {
    owned_.assign(total_points_, 0);
    for (const auto p : options.owned_points) {
      if (p >= total_points_) {
        throw std::logic_error("Aggregator: owned point out of range");
      }
      if (owned_[p] == 0) ++owned_count_;
      owned_[p] = 1;
    }
  }
  columns_ = {"point", "seed"};
  columns_.insert(columns_.end(), options.axis_names.begin(),
                  options.axis_names.end());
  const auto metrics = metric_columns();
  columns_.insert(columns_.end(), metrics.begin(), metrics.end());

  per_run_columns_ = {"point", "rep", "seed"};
  per_run_columns_.insert(per_run_columns_.end(), options.axis_names.begin(),
                          options.axis_names.end());
  const auto run_metrics = per_run_metric_columns();
  per_run_columns_.insert(per_run_columns_.end(), run_metrics.begin(),
                          run_metrics.end());

  if (store_mode()) {
    identity_hash_ = RowStore::hash_identity(columns_, total_points_,
                                             replications_,
                                             expected_identity_);
    store_done_.assign(total_points_, 0);
  }
}

Aggregator::Aggregator(std::string csv_path, std::string json_path,
                       std::vector<std::string> axis_names,
                       std::size_t total_points,
                       std::vector<std::vector<std::string>> expected_identity)
    : Aggregator(AggregatorOptions{
          .csv_path = std::move(csv_path),
          .json_path = std::move(json_path),
          .per_run_path = {},
          .axis_names = std::move(axis_names),
          .total_points = total_points,
          .replications = 0,
          .expected_identity = std::move(expected_identity),
          .owned_points = {},
          .store_path = {},
          .spill_budget_bytes = 0}) {}

std::string Aggregator::csv_line(const std::vector<std::string>& cells) const {
  return join_csv(cells);
}

std::string Aggregator::json_line(const std::vector<std::string>& cells) const {
  std::string out = "{";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('"');
    out += columns_[i];
    out += "\":";
    bool non_finite = false;
    if (is_finite_numeric_cell(cells[i], non_finite)) {
      out += cells[i];
    } else if (non_finite) {
      out += "null";
    } else {
      out.push_back('"');
      out += cells[i];
      out.push_back('"');
    }
  }
  out.push_back('}');
  return out;
}

void Aggregator::open_appenders() {
  if (!csv_path_.empty()) {
    csv_out_.open(csv_path_, std::ios::app);
    if (!csv_out_) {
      throw std::runtime_error("Aggregator: cannot open " + csv_path_);
    }
  }
  if (!json_path_.empty()) {
    json_out_.open(json_path_, std::ios::app);
    if (!json_out_) {
      throw std::runtime_error("Aggregator: cannot open " + json_path_);
    }
  }
  if (!per_run_path_.empty()) {
    per_run_out_.open(per_run_path_, std::ios::app);
    if (!per_run_out_) {
      throw std::runtime_error("Aggregator: cannot open " + per_run_path_);
    }
  }
}

void Aggregator::load_rows_file(
    const std::string& path, const std::vector<std::string>& want_header,
    const char* flag_hint, std::size_t key_arity,
    const std::function<void(std::size_t, std::size_t,
                             std::vector<std::string>)>& on_row) {
  std::ifstream in(path);
  if (!in) return;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (split_csv_line(line) != want_header) {
        throw std::runtime_error(
            "Aggregator: existing output header does not match this "
            "campaign (" + path + "); delete it or change " + flag_hint);
      }
      continue;
    }
    auto cells = split_csv_line(line);
    // A row truncated by a kill mid-write has the wrong cell count;
    // drop it and let the runner recompute that point.
    if (cells.size() != want_header.size()) continue;
    std::size_t point = 0, rep = 0;
    if (!parse_index(cells[0], point)) continue;
    if (key_arity > 1 && !parse_index(cells[1], rep)) continue;
    if (point >= total_points_) continue;
    if (!owns(point)) {
      throw std::runtime_error(
          "Aggregator: row for point " + std::to_string(point) + " in " +
          path +
          " does not belong to this shard (wrong --shard/--out pairing?)");
    }
    on_row(point, rep, std::move(cells));
  }
}

void Aggregator::load_point_rows() {
  load_rows_file(
      csv_path_, columns_, "--out", /*key_arity=*/1,
      [this](std::size_t point, std::size_t, std::vector<std::string> cells) {
        if (!expected_identity_.empty()) {
          // cells[1..1+axis_count] are the seed + axis values, and the
          // replications cell follows them; a mismatch means the file was
          // produced by a different manifest, and resuming over it would
          // mix incompatible results. (Seeds are independent of the
          // replication count, hence the separate check.)
          const auto& want = expected_identity_[point];
          bool matches = true;
          for (std::size_t k = 0; matches && k < want.size(); ++k) {
            matches = cells[1 + k] == want[k];
          }
          if (matches && replications_ > 0) {
            matches =
                cells[1 + want.size()] == std::to_string(replications_);
          }
          if (!matches) {
            throw std::runtime_error(
                "Aggregator: row for point " + std::to_string(point) +
                " in " + csv_path_ +
                " was computed with different parameters (manifest "
                "changed?); delete the file or change --out");
          }
        }
        rows_[point] = std::move(cells);
      });
}

void Aggregator::load_per_run_rows() {
  load_rows_file(
      per_run_path_, per_run_columns_, "--per-run",
      /*key_arity=*/2,
      [this](std::size_t point, std::size_t rep,
             std::vector<std::string> cells) {
        if (rep >= replications_) return;
        if (!expected_identity_.empty()) {
          // Mirror of load_point_rows' identity check: cells are
          // point,rep,seed,axes...; the run's seed must be the point seed
          // plus the replication index, and the axis cells must match.
          const auto& want = expected_identity_[point];
          std::size_t point_seed = 0;
          bool matches = parse_index(want.front(), point_seed) &&
                         cells[2] == std::to_string(point_seed + rep);
          for (std::size_t k = 1; matches && k < want.size(); ++k) {
            matches = cells[2 + k] == want[k];
          }
          if (!matches) {
            throw std::runtime_error(
                "Aggregator: run row for point " + std::to_string(point) +
                " in " + per_run_path_ +
                " was computed with different parameters (manifest "
                "changed?); delete the file or change --per-run");
          }
        }
        per_run_rows_[point][rep] = std::move(cells);
      });
}

void Aggregator::ensure_store() {
  if (!store_) {
    store_ = std::make_unique<RowStore>(store_path_, identity_hash_);
  }
  if (!store_->is_open()) store_->open_append();
}

std::size_t Aggregator::load_store() {
  store_ = std::make_unique<RowStore>(store_path_, identity_hash_);
  std::error_code ec;
  if (!store_->file_exists() &&
      (std::filesystem::exists(csv_path_, ec) ||
       (!per_run_path_.empty() &&
        std::filesystem::exists(per_run_path_, ec)))) {
    // A legacy/finalized artifact (or a stale per-run file from another
    // campaign) is on disk: run the legacy readers, which validate every
    // row's identity, and seed a fresh store from the survivors.
    return seed_store_from_csv();
  }
  // Validates the header against this campaign's identity hash and
  // truncates a torn trailing record before we scan.
  store_->open_append();

  const bool per_run = !per_run_path_.empty();
  std::vector<std::uint8_t> summary_live(total_points_, 0);
  std::vector<std::uint8_t> rep_live;
  if (per_run) rep_live.assign(total_points_ * replications_, 0);
  store_->scan([&](const RowStore::Record& r) {
    if (r.point >= total_points_) return;
    if (!owns(r.point)) {
      throw std::runtime_error(
          "Aggregator: row for point " + std::to_string(r.point) + " in " +
          store_path_ +
          " does not belong to this shard (wrong --shard/--out pairing?)");
    }
    switch (r.kind) {
      case RowStore::Kind::kTombstone:
        summary_live[r.point] = 0;
        if (per_run) {
          std::fill_n(rep_live.begin() +
                          static_cast<std::ptrdiff_t>(r.point * replications_),
                      replications_, std::uint8_t{0});
        }
        break;
      case RowStore::Kind::kSummary:
        summary_live[r.point] = 1;
        break;
      case RowStore::Kind::kPerRun:
        if (per_run && r.rep < replications_) {
          rep_live[r.point * replications_ + r.rep] = 1;
        }
        break;
    }
  });

  store_done_.assign(total_points_, 0);
  store_done_count_ = 0;
  for (std::size_t p = 0; p < total_points_; ++p) {
    if (summary_live[p] == 0) continue;
    if (per_run) {
      // A summary without its full per-run group is torn (kill between the
      // group and the summary, or a partial batch) — recompute the point.
      bool complete = true;
      for (std::size_t r = 0; complete && r < replications_; ++r) {
        complete = rep_live[p * replications_ + r] != 0;
      }
      if (!complete) continue;
    }
    store_done_[p] = 1;
    ++store_done_count_;
  }
  return store_done_count_;
}

std::size_t Aggregator::seed_store_from_csv() {
  // No store but a CSV exists: a finalized artifact or a pre-store
  // campaign. Recover through the legacy readers — same header, identity,
  // shard, and torn-group checks — then import the surviving rows into a
  // fresh store. The CSV stays on disk untouched; the next export
  // replaces it.
  load_point_rows();
  if (!per_run_path_.empty()) {
    load_per_run_rows();
    for (auto it = rows_.begin(); it != rows_.end();) {
      const auto group = per_run_rows_.find(it->first);
      if (group == per_run_rows_.end() ||
          group->second.size() != replications_) {
        if (group != per_run_rows_.end()) per_run_rows_.erase(group);
        it = rows_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = per_run_rows_.begin(); it != per_run_rows_.end();) {
      it = rows_.count(it->first) == 0 ? per_run_rows_.erase(it)
                                       : std::next(it);
    }
  }

  store_->open_append();
  store_done_.assign(total_points_, 0);
  store_done_count_ = 0;
  for (const auto& [point, cells] : rows_) {
    const auto group = per_run_rows_.find(point);
    if (group != per_run_rows_.end()) {
      for (const auto& [rep, rc] : group->second) {
        store_->append(RowStore::Kind::kPerRun, point, rep, rc);
      }
    }
    store_->append(RowStore::Kind::kSummary, point, 0, cells);
    store_done_[point] = 1;
    ++store_done_count_;
  }
  store_->flush();
  rows_.clear();
  per_run_rows_.clear();
  return store_done_count_;
}

std::size_t Aggregator::load_existing() {
  const std::lock_guard lock(mutex_);
  if (loaded_) throw std::logic_error("Aggregator: load_existing called twice");
  loaded_ = true;

  if (store_mode()) return load_store();

  if (!csv_path_.empty()) load_point_rows();
  if (!per_run_path_.empty()) {
    load_per_run_rows();
    // A point is only truly done when its per-run group is complete: a
    // kill can land between the per-run rows and the summary row. Torn
    // groups are dropped and the point recomputed (and vice versa for
    // orphaned groups without a summary row).
    for (auto it = rows_.begin(); it != rows_.end();) {
      const auto group = per_run_rows_.find(it->first);
      if (group == per_run_rows_.end() ||
          group->second.size() != replications_) {
        if (group != per_run_rows_.end()) per_run_rows_.erase(group);
        it = rows_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = per_run_rows_.begin(); it != per_run_rows_.end();) {
      it = rows_.count(it->first) == 0 ? per_run_rows_.erase(it)
                                       : std::next(it);
    }
  }

  // Compact what we recovered (drops truncated/duplicate rows), writing the
  // header either way, and leave the files open for appending.
  rewrite_files(/*require_complete=*/false);
  open_appenders();
  return rows_.size();
}

void Aggregator::rewrite_files(bool require_complete) {
  // Caller holds mutex_.
  if (require_complete && rows_.size() != owned_count()) {
    throw std::logic_error("Aggregator: finalize with incomplete campaign");
  }
  if (!csv_path_.empty()) {
    if (csv_out_.is_open()) csv_out_.close();
    const std::string tmp = csv_path_ + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) throw std::runtime_error("Aggregator: cannot write " + tmp);
      out << csv_line(columns_) << '\n';
      for (const auto& [point, cells] : rows_) {
        (void)point;
        out << csv_line(cells) << '\n';
      }
    }
    if (std::rename(tmp.c_str(), csv_path_.c_str()) != 0) {
      throw std::runtime_error("Aggregator: cannot replace " + csv_path_);
    }
  }
  if (!json_path_.empty()) {
    if (json_out_.is_open()) json_out_.close();
    const std::string tmp = json_path_ + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) throw std::runtime_error("Aggregator: cannot write " + tmp);
      for (const auto& [point, cells] : rows_) {
        (void)point;
        out << json_line(cells) << '\n';
      }
    }
    if (std::rename(tmp.c_str(), json_path_.c_str()) != 0) {
      throw std::runtime_error("Aggregator: cannot replace " + json_path_);
    }
  }
  if (!per_run_path_.empty()) {
    if (per_run_out_.is_open()) per_run_out_.close();
    const std::string tmp = per_run_path_ + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) throw std::runtime_error("Aggregator: cannot write " + tmp);
      out << csv_line(per_run_columns_) << '\n';
      for (const auto& [point, group] : per_run_rows_) {
        (void)point;
        for (const auto& [rep, cells] : group) {
          (void)rep;
          out << csv_line(cells) << '\n';
        }
      }
    }
    if (std::rename(tmp.c_str(), per_run_path_.c_str()) != 0) {
      throw std::runtime_error("Aggregator: cannot replace " + per_run_path_);
    }
  }
}

void Aggregator::export_store() {
  // Caller holds mutex_; store_ is open. External merge: buffer records up
  // to the spill budget, spill sorted runs, then k-way merge the runs with
  // the final in-memory batch and render the artifacts in one streaming
  // pass — memory stays O(budget) + O(one per-run group).
  store_->flush();
  const std::size_t budget =
      spill_budget_bytes_ != 0 ? spill_budget_bytes_ : kDefaultSpillBudgetBytes;

  // A crashed export leaves numbered run files behind; they are always
  // consecutive from 0, so delete until the first gap.
  for (std::size_t k = 0;; ++k) {
    std::error_code ec;
    if (!std::filesystem::remove(store_path_ + ".run" + std::to_string(k),
                                 ec)) {
      break;
    }
  }

  std::vector<std::string> run_paths;
  std::vector<RowStore::Record> buffer;
  std::size_t buffered = 0;
  const auto spill = [&] {
    std::sort(buffer.begin(), buffer.end(), record_less);
    std::string path = store_path_ + ".run" + std::to_string(run_paths.size());
    RowStore::write_run(path, buffer);
    run_paths.push_back(std::move(path));
    buffer.clear();
    buffered = 0;
  };
  store_->scan([&](const RowStore::Record& r) {
    buffered += record_bytes(r);
    buffer.push_back(r);
    if (buffered >= budget) spill();
  });
  std::sort(buffer.begin(), buffer.end(), record_less);

  struct Source {
    std::unique_ptr<RowStore::RunReader> reader;
    const std::vector<RowStore::Record>* mem = nullptr;
    std::size_t mem_idx = 0;
    RowStore::Record cur;
    bool advance() {
      if (reader) return reader->next(cur);
      if (mem_idx >= mem->size()) return false;
      cur = (*mem)[mem_idx++];
      return true;
    }
  };
  std::vector<Source> sources(run_paths.size() + 1);
  for (std::size_t i = 0; i < run_paths.size(); ++i) {
    sources[i].reader = std::make_unique<RowStore::RunReader>(run_paths[i]);
  }
  sources.back().mem = &buffer;
  const auto source_after = [](const Source* a, const Source* b) {
    return record_less(b->cur, a->cur);
  };
  std::priority_queue<Source*, std::vector<Source*>, decltype(source_after)>
      heap(source_after);
  for (auto& s : sources) {
    if (s.advance()) heap.push(&s);
  }

  const std::string csv_tmp = csv_path_ + ".tmp";
  std::ofstream csv_out(csv_tmp, std::ios::trunc);
  if (!csv_out) {
    throw std::runtime_error("Aggregator: cannot write " + csv_tmp);
  }
  csv_out << csv_line(columns_) << '\n';
  std::ofstream json_out, per_run_out;
  const std::string json_tmp = json_path_ + ".tmp";
  if (!json_path_.empty()) {
    json_out.open(json_tmp, std::ios::trunc);
    if (!json_out) {
      throw std::runtime_error("Aggregator: cannot write " + json_tmp);
    }
  }
  const bool per_run = !per_run_path_.empty();
  const std::string per_run_tmp = per_run_path_ + ".tmp";
  if (per_run) {
    per_run_out.open(per_run_tmp, std::ios::trunc);
    if (!per_run_out) {
      throw std::runtime_error("Aggregator: cannot write " + per_run_tmp);
    }
    per_run_out << csv_line(per_run_columns_) << '\n';
  }

  // Per-point group state: last-wins by sequence number, with tombstones
  // (which sort first) setting the liveness threshold. Only a complete
  // group — live summary plus, in per-run mode, every replication — is
  // rendered; torn batches and discarded generations vanish exactly as the
  // legacy reconciliation dropped them.
  std::size_t cur_point = SIZE_MAX;
  std::uint64_t tomb_seq = 0;
  bool have_tomb = false;
  std::optional<RowStore::Record> summary;
  std::vector<std::optional<RowStore::Record>> latest_rep(
      per_run ? replications_ : 0);

  const auto emit_group = [&] {
    if (cur_point == SIZE_MAX) return;
    const bool summary_live =
        summary.has_value() && (!have_tomb || summary->seq > tomb_seq) &&
        summary->cells.size() == columns_.size();
    bool complete = summary_live;
    if (complete && per_run) {
      for (std::size_t r = 0; complete && r < replications_; ++r) {
        complete = latest_rep[r].has_value() &&
                   (!have_tomb || latest_rep[r]->seq > tomb_seq) &&
                   latest_rep[r]->cells.size() == per_run_columns_.size();
      }
    }
    if (complete) {
      if (per_run) {
        for (std::size_t r = 0; r < replications_; ++r) {
          per_run_out << csv_line(latest_rep[r]->cells) << '\n';
        }
      }
      csv_out << csv_line(summary->cells) << '\n';
      if (json_out.is_open()) json_out << json_line(summary->cells) << '\n';
    }
    tomb_seq = 0;
    have_tomb = false;
    summary.reset();
    std::fill(latest_rep.begin(), latest_rep.end(), std::nullopt);
  };

  while (!heap.empty()) {
    Source* s = heap.top();
    heap.pop();
    const RowStore::Record& r = s->cur;
    if (r.point != cur_point) {
      emit_group();
      cur_point = r.point;
    }
    switch (r.kind) {
      case RowStore::Kind::kTombstone:
        tomb_seq = std::max(tomb_seq, r.seq);
        have_tomb = true;
        break;
      case RowStore::Kind::kSummary:
        if (!summary.has_value() || summary->seq < r.seq) summary = r;
        break;
      case RowStore::Kind::kPerRun:
        if (per_run && r.rep < replications_) {
          auto& slot = latest_rep[r.rep];
          if (!slot.has_value() || slot->seq < r.seq) slot = r;
        }
        break;
    }
    if (s->advance()) heap.push(s);
  }
  emit_group();

  csv_out.close();
  if (std::rename(csv_tmp.c_str(), csv_path_.c_str()) != 0) {
    throw std::runtime_error("Aggregator: cannot replace " + csv_path_);
  }
  if (json_out.is_open()) {
    json_out.close();
    if (std::rename(json_tmp.c_str(), json_path_.c_str()) != 0) {
      throw std::runtime_error("Aggregator: cannot replace " + json_path_);
    }
  }
  if (per_run) {
    per_run_out.close();
    if (std::rename(per_run_tmp.c_str(), per_run_path_.c_str()) != 0) {
      throw std::runtime_error("Aggregator: cannot replace " + per_run_path_);
    }
  }
  sources.clear();  // closes the run readers before unlinking
  for (const auto& path : run_paths) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
}

bool Aggregator::is_done(std::size_t point) const {
  const std::lock_guard lock(mutex_);
  if (store_mode()) {
    return point < store_done_.size() && store_done_[point] != 0;
  }
  return rows_.count(point) > 0;
}

std::vector<std::size_t> Aggregator::pending() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::size_t> out;
  if (store_mode()) {
    out.reserve(owned_count() - store_done_count_);
    for (std::size_t p = 0; p < total_points_; ++p) {
      if (owns(p) && store_done_[p] == 0) out.push_back(p);
    }
    return out;
  }
  out.reserve(owned_count() - rows_.size());
  for (std::size_t p = 0; p < total_points_; ++p) {
    if (owns(p) && rows_.count(p) == 0) out.push_back(p);
  }
  return out;
}

void Aggregator::record(std::size_t point, std::uint64_t seed,
                        const std::vector<std::string>& axis_values,
                        const world::ReplicatedMetrics& m) {
  if (axis_values.size() != axis_count_) {
    throw std::logic_error("Aggregator: axis value count mismatch");
  }
  if (!owns(point)) {
    throw std::logic_error("Aggregator: record for a point outside the shard");
  }
  std::vector<std::string> cells;
  cells.reserve(columns_.size());
  cells.push_back(std::to_string(point));
  cells.push_back(std::to_string(seed));
  cells.insert(cells.end(), axis_values.begin(), axis_values.end());
  cells.push_back(std::to_string(m.runs.size()));
  metrics::Percentiles delay_pct;
  if (m.runs.size() > kExactQuantileMaxReps &&
      m.delay_digest.count() == m.runs.size()) {
    // Sketch-scale point: read the streamed digest instead of sorting the
    // full per-run sample.
    delay_pct = metrics::Percentiles{.p50 = m.delay_digest.quantile(0.50),
                                     .p95 = m.delay_digest.quantile(0.95),
                                     .p99 = m.delay_digest.quantile(0.99)};
  } else {
    std::vector<double> delays;
    delays.reserve(m.runs.size());
    for (const auto& run : m.runs) delays.push_back(run.avg_delay_s);
    delay_pct = metrics::Percentiles::of_inplace(delays);
  }
  for (const double v :
       {m.delay_s.mean, m.delay_s.ci95_half, m.delay_s.min, m.delay_s.max,
        delay_pct.p50, delay_pct.p95, delay_pct.p99, m.energy_j.mean,
        m.energy_j.ci95_half, m.energy_j.min, m.energy_j.max,
        m.active_fraction.mean, m.mean_missed, m.mean_broadcasts}) {
    cells.push_back(io::format_double(v));
  }

  // Per-run rows, one per replication (seed column is the run's own seed).
  std::map<std::size_t, std::vector<std::string>> run_rows;
  if (!per_run_path_.empty()) {
    for (std::size_t r = 0; r < m.runs.size(); ++r) {
      const auto& run = m.runs[r];
      std::vector<std::string> rc;
      rc.reserve(per_run_columns_.size());
      rc.push_back(std::to_string(point));
      rc.push_back(std::to_string(r));
      rc.push_back(std::to_string(seed + r));
      rc.insert(rc.end(), axis_values.begin(), axis_values.end());
      for (const double v : {run.avg_delay_s, run.p95_delay_s,
                             run.max_delay_s, run.avg_energy_j,
                             run.avg_active_fraction}) {
        rc.push_back(io::format_double(v));
      }
      rc.push_back(std::to_string(run.missed));
      rc.push_back(std::to_string(run.censored));
      rc.push_back(std::to_string(run.network.broadcasts));
      run_rows.emplace(r, std::move(rc));
    }
  }

  const std::lock_guard lock(mutex_);
  if (store_mode()) {
    if (store_done_[point] != 0) return;  // already recovered via resume
    ensure_store();
    summaries_.emplace(point, PointSummary::of(point, seed, m));
    // The whole point — per-run group then summary — lands in one batched
    // write + flush at the point boundary: the summary record doubles as
    // the group's commit mark, so a torn batch is dropped on resume.
    for (const auto& [r, rc] : run_rows) {
      store_->append(RowStore::Kind::kPerRun, point, r, rc);
    }
    store_->append(RowStore::Kind::kSummary, point, 0, cells);
    store_->flush();
    store_done_[point] = 1;
    ++store_done_count_;
    return;
  }
  if (rows_.count(point) > 0) return;  // already recovered via resume
  summaries_.emplace(point, PointSummary::of(point, seed, m));
  // Per-run rows land on disk before the summary row: resume treats a
  // summary row without its full per-run group as torn either way, but
  // this order makes the common kill point (between points) clean.
  if (per_run_out_.is_open()) {
    for (const auto& [r, rc] : run_rows) {
      (void)r;
      per_run_out_ << csv_line(rc) << '\n';
    }
    per_run_out_.flush();
  }
  if (csv_out_.is_open()) {
    csv_out_ << csv_line(cells) << '\n';
    csv_out_.flush();
  }
  if (json_out_.is_open()) {
    json_out_ << json_line(cells) << '\n';
    json_out_.flush();
  }
  if (!per_run_path_.empty()) per_run_rows_.emplace(point, std::move(run_rows));
  rows_.emplace(point, std::move(cells));
}

void Aggregator::finalize() {
  const std::lock_guard lock(mutex_);
  if (!store_mode()) {
    rewrite_files(/*require_complete=*/true);
    return;
  }
  if (store_done_count_ != owned_count()) {
    throw std::logic_error("Aggregator: finalize with incomplete campaign");
  }
  ensure_store();
  export_store();
  // The artifacts now carry everything; a finalized campaign looks exactly
  // like a legacy one (resume re-seeds from the CSV if ever needed).
  store_->remove_file();
}

void Aggregator::compact() {
  const std::lock_guard lock(mutex_);
  if (store_mode()) {
    // Export the current state; the store stays open and authoritative
    // (tombstones and superseded generations resolve at export, so no
    // store rewrite is needed).
    ensure_store();
    export_store();
    return;
  }
  rewrite_files(/*require_complete=*/false);
  open_appenders();
}

void Aggregator::discard_points(const std::vector<std::size_t>& points) {
  const std::lock_guard lock(mutex_);
  if (store_mode()) {
    bool changed = false;
    for (const auto p : points) {
      summaries_.erase(p);
      if (p < store_done_.size() && store_done_[p] != 0) {
        ensure_store();
        store_->append(RowStore::Kind::kTombstone, p, 0, {});
        store_done_[p] = 0;
        --store_done_count_;
        changed = true;
      }
    }
    if (changed) store_->flush();
    return;
  }
  bool changed = false;
  for (const auto p : points) {
    changed = rows_.erase(p) > 0 || changed;
    per_run_rows_.erase(p);
    summaries_.erase(p);
  }
  if (changed) {
    rewrite_files(/*require_complete=*/false);
    open_appenders();
  }
}

std::vector<std::size_t> Aggregator::done_points() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::size_t> out;
  if (store_mode()) {
    out.reserve(store_done_count_);
    for (std::size_t p = 0; p < store_done_.size(); ++p) {
      if (store_done_[p] != 0) out.push_back(p);
    }
    return out;
  }
  out.reserve(rows_.size());
  for (const auto& [point, cells] : rows_) {
    (void)cells;
    out.push_back(point);
  }
  return out;
}

std::size_t Aggregator::done_count() const {
  const std::lock_guard lock(mutex_);
  return store_mode() ? store_done_count_ : rows_.size();
}

// --- Shard merging ----------------------------------------------------------

namespace {

/// Internal signal: an input file is not sorted by (point, rep), so the
/// streaming merge cannot preserve its invariants — fall back to the
/// buffered implementation (which sorts everything in memory).
struct UnsortedInputError {};

struct MergeExpectations {
  std::vector<std::string> want_point_header;
  std::vector<std::string> want_per_run_header;
  std::vector<GridPoint> grid;
};

MergeExpectations merge_expectations(const Manifest* manifest) {
  MergeExpectations e;
  if (manifest != nullptr) {
    manifest->validate();
    const auto axes = axis_columns(*manifest);
    e.want_point_header = {"point", "seed"};
    e.want_point_header.insert(e.want_point_header.end(), axes.begin(),
                               axes.end());
    const auto metrics = Aggregator::metric_columns();
    e.want_point_header.insert(e.want_point_header.end(), metrics.begin(),
                               metrics.end());
    e.want_per_run_header = {"point", "rep", "seed"};
    e.want_per_run_header.insert(e.want_per_run_header.end(), axes.begin(),
                                 axes.end());
    const auto run_metrics = Aggregator::per_run_metric_columns();
    e.want_per_run_header.insert(e.want_per_run_header.end(),
                                 run_metrics.begin(), run_metrics.end());
    e.grid = expand_grid(*manifest);
  }
  return e;
}

/// Validates one data row's manifest identity (seed/axis cells, summary
/// replication count); mirrors the resume-path checks.
void check_manifest_row(const std::vector<std::string>& cells,
                        std::size_t point, std::size_t rep, bool per_run,
                        const std::string& path, const Manifest& manifest,
                        const std::vector<GridPoint>& grid) {
  if (point >= grid.size()) {
    throw std::runtime_error("merge_outputs: " + path + " has point " +
                             std::to_string(point) +
                             " beyond the manifest's grid");
  }
  if (per_run && rep >= manifest.replications) {
    throw std::runtime_error("merge_outputs: " + path + " has replication " +
                             std::to_string(rep) +
                             " beyond the manifest's count");
  }
  const std::size_t seed_cell = per_run ? 2 : 1;
  const std::uint64_t want_seed = grid[point].seed + (per_run ? rep : 0);
  bool matches = cells[seed_cell] == std::to_string(want_seed);
  for (std::size_t a = 0; matches && a < grid[point].values.size(); ++a) {
    matches = cells[seed_cell + 1 + a] == grid[point].values[a];
  }
  // Point seeds do not depend on the replication count, so a summary
  // row's "replications" cell (right after the axes) is the only
  // evidence of a changed count; per-run rows are caught by the
  // rectangularity check instead.
  if (matches && !per_run) {
    matches = cells[seed_cell + 1 + grid[point].values.size()] ==
              std::to_string(manifest.replications);
  }
  if (!matches) {
    throw std::runtime_error(
        "merge_outputs: row for point " + std::to_string(point) + " in " +
        path + " was computed with different parameters (manifest mismatch)");
  }
}

/// The legacy buffered merge: loads every row into a map. Kept as the
/// fallback for unsorted inputs; finalized shard/part files are always
/// sorted, so the streaming path handles the real pipelines.
std::size_t merge_outputs_buffered(const std::vector<std::string>& inputs,
                                   const std::string& out_path,
                                   const Manifest* manifest) {
  const MergeExpectations expect = merge_expectations(manifest);

  std::string header_line;
  std::vector<std::string> header;
  bool per_run = false;
  // (point, rep) → raw line; raw bytes are re-emitted untouched so the
  // merged file is byte-identical to an unsharded run's output.
  std::map<std::pair<std::size_t, std::size_t>, std::string> rows;

  for (const auto& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      throw std::runtime_error("merge_outputs: cannot open " + path);
    }
    bool first = true;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (first) {
        first = false;
        if (header.empty()) {
          header_line = line;
          header = split_csv_line(line);
          per_run = header.size() > 1 && header[1] == "rep";
          if (manifest != nullptr &&
              header != (per_run ? expect.want_per_run_header
                                 : expect.want_point_header)) {
            throw std::runtime_error(
                "merge_outputs: header of " + path +
                " does not match the manifest's output columns");
          }
        } else if (split_csv_line(line) != header) {
          throw std::runtime_error(
              "merge_outputs: header of " + path + " does not match " +
              inputs.front() + " (shards of different campaigns?)");
        }
        continue;
      }
      const auto cells = split_csv_line(line);
      if (cells.size() != header.size()) {
        throw std::runtime_error(
            "merge_outputs: truncated row in " + path +
            "; resume that shard to completion before merging");
      }
      std::size_t point = 0, rep = 0;
      if (!parse_index(cells[0], point) ||
          (per_run && !parse_index(cells[1], rep))) {
        throw std::runtime_error("merge_outputs: unparsable row key in " +
                                 path);
      }
      if (manifest != nullptr) {
        check_manifest_row(cells, point, rep, per_run, path, *manifest,
                           expect.grid);
      }
      if (!rows.emplace(std::make_pair(point, rep), line).second) {
        throw std::runtime_error(
            "merge_outputs: point " + std::to_string(point) +
            (per_run ? " replication " + std::to_string(rep) : std::string()) +
            " appears in multiple inputs (overlapping shards?)");
      }
    }
  }
  if (header.empty()) {
    throw std::runtime_error("merge_outputs: inputs contain no header");
  }

  // Completeness: the merged point set must have no gaps (a missing shard
  // would otherwise go unnoticed), per-run groups must be rectangular, and
  // a manifest pins the exact expected counts.
  std::size_t max_point = 0, max_rep = 0;
  std::set<std::size_t> points_seen;
  std::map<std::size_t, std::size_t> reps_per_point;
  for (const auto& [key, line] : rows) {
    (void)line;
    max_point = std::max(max_point, key.first);
    max_rep = std::max(max_rep, key.second);
    points_seen.insert(key.first);
    ++reps_per_point[key.first];
  }
  const std::size_t want_points =
      manifest != nullptr ? manifest->point_count() : max_point + 1;
  const std::size_t want_reps =
      manifest != nullptr ? (per_run ? manifest->replications : 1)
                          : max_rep + 1;
  if (rows.empty() || points_seen.size() != want_points) {
    throw std::runtime_error(
        "merge_outputs: merged inputs cover " +
        std::to_string(points_seen.size()) + " of " +
        std::to_string(want_points) +
        " points; a shard output is missing or incomplete");
  }
  for (const auto& [point, count] : reps_per_point) {
    if (count != want_reps) {
      throw std::runtime_error(
          "merge_outputs: point " + std::to_string(point) + " has " +
          std::to_string(count) + " of " + std::to_string(want_reps) +
          " replication rows; a shard output is incomplete");
    }
  }

  const std::string tmp = out_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("merge_outputs: cannot write " + tmp);
    out << header_line << '\n';
    for (const auto& [key, line] : rows) {
      (void)key;
      out << line << '\n';
    }
  }
  if (std::rename(tmp.c_str(), out_path.c_str()) != 0) {
    throw std::runtime_error("merge_outputs: cannot replace " + out_path);
  }
  return rows.size();
}

/// Streaming merge: every input is read once through a k-way heap merge by
/// (point, rep), holding one row per input — O(inputs) memory instead of
/// O(rows). Inputs must be internally sorted (finalized/compacted outputs
/// always are); an unsorted input raises UnsortedInputError and the caller
/// falls back to the buffered path.
std::size_t merge_outputs_streaming(const std::vector<std::string>& inputs,
                                    const std::string& out_path,
                                    const Manifest* manifest) {
  const MergeExpectations expect = merge_expectations(manifest);

  struct Input {
    std::string path;
    std::ifstream in;
    std::string line;
    std::size_t point = 0;
    std::size_t rep = 0;
    bool started = false;  // true once the first data row was read
  };

  std::string header_line;
  std::vector<std::string> header;
  bool per_run = false;

  std::vector<std::unique_ptr<Input>> open_inputs;
  for (const auto& path : inputs) {
    auto input = std::make_unique<Input>();
    input->path = path;
    input->in.open(path);
    if (!input->in) {
      throw std::runtime_error("merge_outputs: cannot open " + path);
    }
    // Header line (skipping leading blanks, as the buffered path does).
    std::string line;
    bool have_header = false;
    while (std::getline(input->in, line)) {
      if (line.empty()) continue;
      have_header = true;
      break;
    }
    if (!have_header) continue;  // empty file contributes nothing
    if (header.empty()) {
      header_line = line;
      header = split_csv_line(line);
      per_run = header.size() > 1 && header[1] == "rep";
      if (manifest != nullptr &&
          header != (per_run ? expect.want_per_run_header
                             : expect.want_point_header)) {
        throw std::runtime_error("merge_outputs: header of " + path +
                                 " does not match the manifest's output "
                                 "columns");
      }
    } else if (split_csv_line(line) != header) {
      throw std::runtime_error("merge_outputs: header of " + path +
                               " does not match " + inputs.front() +
                               " (shards of different campaigns?)");
    }
    open_inputs.push_back(std::move(input));
  }
  if (header.empty()) {
    throw std::runtime_error("merge_outputs: inputs contain no header");
  }

  // Advances an input to its next valid data row; runs the same per-row
  // validation as the buffered path and enforces ascending (point, rep)
  // within the input.
  const auto advance = [&](Input& input) -> bool {
    std::string line;
    while (std::getline(input.in, line)) {
      if (line.empty()) continue;
      const auto cells = split_csv_line(line);
      if (cells.size() != header.size()) {
        throw std::runtime_error(
            "merge_outputs: truncated row in " + input.path +
            "; resume that shard to completion before merging");
      }
      std::size_t point = 0, rep = 0;
      if (!parse_index(cells[0], point) ||
          (per_run && !parse_index(cells[1], rep))) {
        throw std::runtime_error("merge_outputs: unparsable row key in " +
                                 input.path);
      }
      if (manifest != nullptr) {
        check_manifest_row(cells, point, rep, per_run, input.path, *manifest,
                           expect.grid);
      }
      if (input.started &&
          std::make_pair(point, rep) <=
              std::make_pair(input.point, input.rep)) {
        throw UnsortedInputError{};
      }
      input.started = true;
      input.point = point;
      input.rep = rep;
      input.line = std::move(line);
      return true;
    }
    return false;
  };

  const auto input_after = [](const Input* a, const Input* b) {
    return std::make_pair(b->point, b->rep) < std::make_pair(a->point, a->rep);
  };
  std::priority_queue<Input*, std::vector<Input*>, decltype(input_after)> heap(
      input_after);
  for (auto& input : open_inputs) {
    if (advance(*input)) heap.push(input.get());
  }

  const std::string tmp = out_path + ".tmp";
  std::size_t merged = 0;
  try {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("merge_outputs: cannot write " + tmp);
    out << header_line << '\n';

    // Walking the merged stream in key order makes every global check
    // local: duplicates are consecutive equal keys, point gaps are jumps
    // in the point sequence, and rectangularity is a per-point rep count.
    std::size_t prev_point = SIZE_MAX, prev_rep = 0;
    std::size_t cur_reps = 0;       // rows seen for the current point
    std::size_t points_seen = 0;
    std::size_t first_point_reps = 0;
    const auto want_reps_known = manifest != nullptr;
    const std::size_t manifest_reps =
        manifest != nullptr ? (per_run ? manifest->replications : 1) : 0;
    const auto check_point_complete = [&](std::size_t point) {
      const std::size_t want =
          want_reps_known ? manifest_reps
                          : (points_seen == 1 ? cur_reps : first_point_reps);
      if (points_seen == 1 && !want_reps_known) first_point_reps = cur_reps;
      if (cur_reps != want) {
        throw std::runtime_error(
            "merge_outputs: point " + std::to_string(point) + " has " +
            std::to_string(cur_reps) + " of " + std::to_string(want) +
            " replication rows; a shard output is incomplete");
      }
    };

    while (!heap.empty()) {
      Input* input = heap.top();
      heap.pop();
      const std::size_t point = input->point, rep = input->rep;
      if (prev_point != SIZE_MAX && point == prev_point && rep == prev_rep) {
        throw std::runtime_error(
            "merge_outputs: point " + std::to_string(point) +
            (per_run ? " replication " + std::to_string(rep) : std::string()) +
            " appears in multiple inputs (overlapping shards?)");
      }
      if (point != prev_point) {
        if (prev_point != SIZE_MAX) check_point_complete(prev_point);
        const std::size_t want_next = prev_point == SIZE_MAX ? 0
                                                             : prev_point + 1;
        if (point != want_next) {
          throw std::runtime_error(
              "merge_outputs: merged inputs cover " +
              std::to_string(points_seen) + " points up to " +
              std::to_string(prev_point == SIZE_MAX ? 0 : prev_point) +
              " but point " + std::to_string(want_next) +
              " is missing; a shard output is missing or incomplete");
        }
        ++points_seen;
        cur_reps = 0;
      }
      ++cur_reps;
      // Sorted unique keys mean the rep sequence within a point must be
      // 0,1,2,…; a jump is a missing replication row.
      if (per_run && rep != cur_reps - 1) {
        throw std::runtime_error(
            "merge_outputs: point " + std::to_string(point) + " has " +
            std::to_string(cur_reps) + " of " + std::to_string(rep + 1) +
            " replication rows; a shard output is incomplete");
      }
      prev_point = point;
      prev_rep = rep;
      out << input->line << '\n';
      ++merged;
      if (advance(*input)) heap.push(input);
    }
    if (prev_point != SIZE_MAX) check_point_complete(prev_point);

    const std::size_t want_points =
        manifest != nullptr ? manifest->point_count() : points_seen;
    if (merged == 0 || points_seen != want_points || points_seen == 0) {
      throw std::runtime_error(
          "merge_outputs: merged inputs cover " +
          std::to_string(points_seen) + " of " + std::to_string(want_points) +
          " points; a shard output is missing or incomplete");
    }
    out.close();
    if (!out) throw std::runtime_error("merge_outputs: cannot write " + tmp);
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
  if (std::rename(tmp.c_str(), out_path.c_str()) != 0) {
    throw std::runtime_error("merge_outputs: cannot replace " + out_path);
  }
  return merged;
}

}  // namespace

std::size_t merge_outputs(const std::vector<std::string>& inputs,
                          const std::string& out_path,
                          const Manifest* manifest) {
  if (inputs.empty()) {
    throw std::invalid_argument("merge_outputs: no input files");
  }
  try {
    return merge_outputs_streaming(inputs, out_path, manifest);
  } catch (const UnsortedInputError&) {
    return merge_outputs_buffered(inputs, out_path, manifest);
  }
}

}  // namespace pas::exp

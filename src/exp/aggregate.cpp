#include "exp/aggregate.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <utility>

#include "exp/grid.hpp"
#include "io/csv.hpp"

namespace pas::exp {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (const char c : line) {
    if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

std::string join_csv(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) line.push_back(',');
    line += io::CsvWriter::escape(cells[i]);
  }
  return line;
}

bool parse_index(const std::string& cell, std::size_t& out) {
  const auto [ptr, ec] =
      std::from_chars(cell.data(), cell.data() + cell.size(), out);
  return ec == std::errc{} && ptr == cell.data() + cell.size();
}

/// True if the whole cell parses as a *finite* double (→ emit raw in JSON
/// lines). Non-finite cells ("nan"/"inf" from format_double) must not leak
/// into JSON, which has no such tokens; the caller emits null instead,
/// matching io::Json::dump's convention.
bool is_finite_numeric_cell(const std::string& cell, bool& non_finite) {
  non_finite = false;
  if (cell.empty()) return false;
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (ec != std::errc{} || ptr != cell.data() + cell.size()) return false;
  if (!std::isfinite(value)) {
    non_finite = true;
    return false;
  }
  return true;
}

}  // namespace

PointSummary PointSummary::of(std::size_t point, std::uint64_t seed,
                              const world::ReplicatedMetrics& m) {
  PointSummary s;
  s.point = point;
  s.seed = seed;
  s.replications = m.runs.size();
  s.delay_s = m.delay_s;
  s.energy_j = m.energy_j;
  s.active_fraction = m.active_fraction;
  s.mean_missed = m.mean_missed;
  s.mean_broadcasts = m.mean_broadcasts;
  return s;
}

std::vector<std::string> Aggregator::metric_columns() {
  return {"replications",  "delay_mean_s",         "delay_ci95_s",
          "delay_min_s",   "delay_max_s",          "delay_p50_s",
          "delay_p95_s",   "delay_p99_s",          "energy_mean_j",
          "energy_ci95_j", "energy_min_j",         "energy_max_j",
          "active_fraction_mean",                  "missed_mean",
          "broadcasts_mean"};
}

std::vector<std::string> Aggregator::per_run_metric_columns() {
  return {"avg_delay_s", "p95_delay_s", "max_delay_s",     "avg_energy_j",
          "active_fraction",            "missed",          "censored",
          "broadcasts"};
}

Aggregator::Aggregator(AggregatorOptions options)
    : csv_path_(std::move(options.csv_path)),
      json_path_(std::move(options.json_path)),
      per_run_path_(std::move(options.per_run_path)),
      axis_count_(options.axis_names.size()),
      total_points_(options.total_points),
      replications_(options.replications),
      expected_identity_(std::move(options.expected_identity)) {
  if (!expected_identity_.empty() &&
      expected_identity_.size() != total_points_) {
    throw std::logic_error("Aggregator: expected_identity size mismatch");
  }
  if (!per_run_path_.empty() && replications_ == 0) {
    throw std::logic_error(
        "Aggregator: per-run output requires the replication count");
  }
  if (!per_run_path_.empty() && csv_path_.empty()) {
    // Resume pairs per-run groups with summary rows; without the summary
    // CSV every recovered group would look orphaned and be wiped.
    throw std::logic_error(
        "Aggregator: per-run output requires a summary CSV path");
  }
  if (!options.owned_points.empty()) {
    owned_.assign(total_points_, 0);
    for (const auto p : options.owned_points) {
      if (p >= total_points_) {
        throw std::logic_error("Aggregator: owned point out of range");
      }
      if (owned_[p] == 0) ++owned_count_;
      owned_[p] = 1;
    }
  }
  columns_ = {"point", "seed"};
  columns_.insert(columns_.end(), options.axis_names.begin(),
                  options.axis_names.end());
  const auto metrics = metric_columns();
  columns_.insert(columns_.end(), metrics.begin(), metrics.end());

  per_run_columns_ = {"point", "rep", "seed"};
  per_run_columns_.insert(per_run_columns_.end(), options.axis_names.begin(),
                          options.axis_names.end());
  const auto run_metrics = per_run_metric_columns();
  per_run_columns_.insert(per_run_columns_.end(), run_metrics.begin(),
                          run_metrics.end());
}

Aggregator::Aggregator(std::string csv_path, std::string json_path,
                       std::vector<std::string> axis_names,
                       std::size_t total_points,
                       std::vector<std::vector<std::string>> expected_identity)
    : Aggregator(AggregatorOptions{
          .csv_path = std::move(csv_path),
          .json_path = std::move(json_path),
          .per_run_path = {},
          .axis_names = std::move(axis_names),
          .total_points = total_points,
          .replications = 0,
          .expected_identity = std::move(expected_identity),
          .owned_points = {}}) {}

std::string Aggregator::csv_line(const std::vector<std::string>& cells) const {
  return join_csv(cells);
}

std::string Aggregator::json_line(const std::vector<std::string>& cells) const {
  std::string out = "{";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('"');
    out += columns_[i];
    out += "\":";
    bool non_finite = false;
    if (is_finite_numeric_cell(cells[i], non_finite)) {
      out += cells[i];
    } else if (non_finite) {
      out += "null";
    } else {
      out.push_back('"');
      out += cells[i];
      out.push_back('"');
    }
  }
  out.push_back('}');
  return out;
}

void Aggregator::open_appenders() {
  if (!csv_path_.empty()) {
    csv_out_.open(csv_path_, std::ios::app);
    if (!csv_out_) {
      throw std::runtime_error("Aggregator: cannot open " + csv_path_);
    }
  }
  if (!json_path_.empty()) {
    json_out_.open(json_path_, std::ios::app);
    if (!json_out_) {
      throw std::runtime_error("Aggregator: cannot open " + json_path_);
    }
  }
  if (!per_run_path_.empty()) {
    per_run_out_.open(per_run_path_, std::ios::app);
    if (!per_run_out_) {
      throw std::runtime_error("Aggregator: cannot open " + per_run_path_);
    }
  }
}

void Aggregator::load_rows_file(
    const std::string& path, const std::vector<std::string>& want_header,
    const char* flag_hint, std::size_t key_arity,
    const std::function<void(std::size_t, std::size_t,
                             std::vector<std::string>)>& on_row) {
  std::ifstream in(path);
  if (!in) return;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (split_csv_line(line) != want_header) {
        throw std::runtime_error(
            "Aggregator: existing output header does not match this "
            "campaign (" + path + "); delete it or change " + flag_hint);
      }
      continue;
    }
    auto cells = split_csv_line(line);
    // A row truncated by a kill mid-write has the wrong cell count;
    // drop it and let the runner recompute that point.
    if (cells.size() != want_header.size()) continue;
    std::size_t point = 0, rep = 0;
    if (!parse_index(cells[0], point)) continue;
    if (key_arity > 1 && !parse_index(cells[1], rep)) continue;
    if (point >= total_points_) continue;
    if (!owns(point)) {
      throw std::runtime_error(
          "Aggregator: row for point " + std::to_string(point) + " in " +
          path +
          " does not belong to this shard (wrong --shard/--out pairing?)");
    }
    on_row(point, rep, std::move(cells));
  }
}

void Aggregator::load_point_rows() {
  load_rows_file(
      csv_path_, columns_, "--out", /*key_arity=*/1,
      [this](std::size_t point, std::size_t, std::vector<std::string> cells) {
        if (!expected_identity_.empty()) {
          // cells[1..1+axis_count] are the seed + axis values, and the
          // replications cell follows them; a mismatch means the file was
          // produced by a different manifest, and resuming over it would
          // mix incompatible results. (Seeds are independent of the
          // replication count, hence the separate check.)
          const auto& want = expected_identity_[point];
          bool matches = true;
          for (std::size_t k = 0; matches && k < want.size(); ++k) {
            matches = cells[1 + k] == want[k];
          }
          if (matches && replications_ > 0) {
            matches =
                cells[1 + want.size()] == std::to_string(replications_);
          }
          if (!matches) {
            throw std::runtime_error(
                "Aggregator: row for point " + std::to_string(point) +
                " in " + csv_path_ +
                " was computed with different parameters (manifest "
                "changed?); delete the file or change --out");
          }
        }
        rows_[point] = std::move(cells);
      });
}

void Aggregator::load_per_run_rows() {
  load_rows_file(
      per_run_path_, per_run_columns_, "--per-run",
      /*key_arity=*/2,
      [this](std::size_t point, std::size_t rep,
             std::vector<std::string> cells) {
        if (rep >= replications_) return;
        if (!expected_identity_.empty()) {
          // Mirror of load_point_rows' identity check: cells are
          // point,rep,seed,axes...; the run's seed must be the point seed
          // plus the replication index, and the axis cells must match.
          const auto& want = expected_identity_[point];
          std::size_t point_seed = 0;
          bool matches = parse_index(want.front(), point_seed) &&
                         cells[2] == std::to_string(point_seed + rep);
          for (std::size_t k = 1; matches && k < want.size(); ++k) {
            matches = cells[2 + k] == want[k];
          }
          if (!matches) {
            throw std::runtime_error(
                "Aggregator: run row for point " + std::to_string(point) +
                " in " + per_run_path_ +
                " was computed with different parameters (manifest "
                "changed?); delete the file or change --per-run");
          }
        }
        per_run_rows_[point][rep] = std::move(cells);
      });
}

std::size_t Aggregator::load_existing() {
  const std::lock_guard lock(mutex_);
  if (loaded_) throw std::logic_error("Aggregator: load_existing called twice");
  loaded_ = true;

  if (!csv_path_.empty()) load_point_rows();
  if (!per_run_path_.empty()) {
    load_per_run_rows();
    // A point is only truly done when its per-run group is complete: a
    // kill can land between the per-run rows and the summary row. Torn
    // groups are dropped and the point recomputed (and vice versa for
    // orphaned groups without a summary row).
    for (auto it = rows_.begin(); it != rows_.end();) {
      const auto group = per_run_rows_.find(it->first);
      if (group == per_run_rows_.end() ||
          group->second.size() != replications_) {
        if (group != per_run_rows_.end()) per_run_rows_.erase(group);
        it = rows_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = per_run_rows_.begin(); it != per_run_rows_.end();) {
      it = rows_.count(it->first) == 0 ? per_run_rows_.erase(it)
                                       : std::next(it);
    }
  }

  // Compact what we recovered (drops truncated/duplicate rows), writing the
  // header either way, and leave the files open for appending.
  rewrite_files(/*require_complete=*/false);
  open_appenders();
  return rows_.size();
}

void Aggregator::rewrite_files(bool require_complete) {
  // Caller holds mutex_.
  if (require_complete && rows_.size() != owned_count()) {
    throw std::logic_error("Aggregator: finalize with incomplete campaign");
  }
  if (!csv_path_.empty()) {
    if (csv_out_.is_open()) csv_out_.close();
    const std::string tmp = csv_path_ + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) throw std::runtime_error("Aggregator: cannot write " + tmp);
      out << csv_line(columns_) << '\n';
      for (const auto& [point, cells] : rows_) {
        (void)point;
        out << csv_line(cells) << '\n';
      }
    }
    if (std::rename(tmp.c_str(), csv_path_.c_str()) != 0) {
      throw std::runtime_error("Aggregator: cannot replace " + csv_path_);
    }
  }
  if (!json_path_.empty()) {
    if (json_out_.is_open()) json_out_.close();
    const std::string tmp = json_path_ + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) throw std::runtime_error("Aggregator: cannot write " + tmp);
      for (const auto& [point, cells] : rows_) {
        (void)point;
        out << json_line(cells) << '\n';
      }
    }
    if (std::rename(tmp.c_str(), json_path_.c_str()) != 0) {
      throw std::runtime_error("Aggregator: cannot replace " + json_path_);
    }
  }
  if (!per_run_path_.empty()) {
    if (per_run_out_.is_open()) per_run_out_.close();
    const std::string tmp = per_run_path_ + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) throw std::runtime_error("Aggregator: cannot write " + tmp);
      out << csv_line(per_run_columns_) << '\n';
      for (const auto& [point, group] : per_run_rows_) {
        (void)point;
        for (const auto& [rep, cells] : group) {
          (void)rep;
          out << csv_line(cells) << '\n';
        }
      }
    }
    if (std::rename(tmp.c_str(), per_run_path_.c_str()) != 0) {
      throw std::runtime_error("Aggregator: cannot replace " + per_run_path_);
    }
  }
}

bool Aggregator::is_done(std::size_t point) const {
  const std::lock_guard lock(mutex_);
  return rows_.count(point) > 0;
}

std::vector<std::size_t> Aggregator::pending() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::size_t> out;
  out.reserve(owned_count() - rows_.size());
  for (std::size_t p = 0; p < total_points_; ++p) {
    if (owns(p) && rows_.count(p) == 0) out.push_back(p);
  }
  return out;
}

void Aggregator::record(std::size_t point, std::uint64_t seed,
                        const std::vector<std::string>& axis_values,
                        const world::ReplicatedMetrics& m) {
  if (axis_values.size() != axis_count_) {
    throw std::logic_error("Aggregator: axis value count mismatch");
  }
  if (!owns(point)) {
    throw std::logic_error("Aggregator: record for a point outside the shard");
  }
  std::vector<std::string> cells;
  cells.reserve(columns_.size());
  cells.push_back(std::to_string(point));
  cells.push_back(std::to_string(seed));
  cells.insert(cells.end(), axis_values.begin(), axis_values.end());
  cells.push_back(std::to_string(m.runs.size()));
  std::vector<double> delays;
  delays.reserve(m.runs.size());
  for (const auto& run : m.runs) delays.push_back(run.avg_delay_s);
  const auto delay_pct = metrics::Percentiles::of(std::move(delays));
  for (const double v :
       {m.delay_s.mean, m.delay_s.ci95_half, m.delay_s.min, m.delay_s.max,
        delay_pct.p50, delay_pct.p95, delay_pct.p99, m.energy_j.mean,
        m.energy_j.ci95_half, m.energy_j.min, m.energy_j.max,
        m.active_fraction.mean, m.mean_missed, m.mean_broadcasts}) {
    cells.push_back(io::format_double(v));
  }

  // Per-run rows, one per replication (seed column is the run's own seed).
  std::map<std::size_t, std::vector<std::string>> run_rows;
  if (!per_run_path_.empty()) {
    for (std::size_t r = 0; r < m.runs.size(); ++r) {
      const auto& run = m.runs[r];
      std::vector<std::string> rc;
      rc.reserve(per_run_columns_.size());
      rc.push_back(std::to_string(point));
      rc.push_back(std::to_string(r));
      rc.push_back(std::to_string(seed + r));
      rc.insert(rc.end(), axis_values.begin(), axis_values.end());
      for (const double v : {run.avg_delay_s, run.p95_delay_s,
                             run.max_delay_s, run.avg_energy_j,
                             run.avg_active_fraction}) {
        rc.push_back(io::format_double(v));
      }
      rc.push_back(std::to_string(run.missed));
      rc.push_back(std::to_string(run.censored));
      rc.push_back(std::to_string(run.network.broadcasts));
      run_rows.emplace(r, std::move(rc));
    }
  }

  const std::lock_guard lock(mutex_);
  if (rows_.count(point) > 0) return;  // already recovered via resume
  summaries_.emplace(point, PointSummary::of(point, seed, m));
  // Per-run rows land on disk before the summary row: resume treats a
  // summary row without its full per-run group as torn either way, but
  // this order makes the common kill point (between points) clean.
  if (per_run_out_.is_open()) {
    for (const auto& [r, rc] : run_rows) {
      (void)r;
      per_run_out_ << csv_line(rc) << '\n';
    }
    per_run_out_.flush();
  }
  if (csv_out_.is_open()) {
    csv_out_ << csv_line(cells) << '\n';
    csv_out_.flush();
  }
  if (json_out_.is_open()) {
    json_out_ << json_line(cells) << '\n';
    json_out_.flush();
  }
  if (!per_run_path_.empty()) per_run_rows_.emplace(point, std::move(run_rows));
  rows_.emplace(point, std::move(cells));
}

void Aggregator::finalize() {
  const std::lock_guard lock(mutex_);
  rewrite_files(/*require_complete=*/true);
}

void Aggregator::compact() {
  const std::lock_guard lock(mutex_);
  rewrite_files(/*require_complete=*/false);
  open_appenders();
}

void Aggregator::discard_points(const std::vector<std::size_t>& points) {
  const std::lock_guard lock(mutex_);
  bool changed = false;
  for (const auto p : points) {
    changed = rows_.erase(p) > 0 || changed;
    per_run_rows_.erase(p);
    summaries_.erase(p);
  }
  if (changed) {
    rewrite_files(/*require_complete=*/false);
    open_appenders();
  }
}

std::vector<std::size_t> Aggregator::done_points() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::size_t> out;
  out.reserve(rows_.size());
  for (const auto& [point, cells] : rows_) {
    (void)cells;
    out.push_back(point);
  }
  return out;
}

std::size_t Aggregator::done_count() const {
  const std::lock_guard lock(mutex_);
  return rows_.size();
}

// --- Shard merging ----------------------------------------------------------

std::size_t merge_outputs(const std::vector<std::string>& inputs,
                          const std::string& out_path,
                          const Manifest* manifest) {
  if (inputs.empty()) {
    throw std::invalid_argument("merge_outputs: no input files");
  }

  // Manifest-derived expectations (empty when merging without one).
  std::vector<std::string> want_point_header, want_per_run_header;
  std::vector<GridPoint> grid;
  if (manifest != nullptr) {
    manifest->validate();
    const auto axes = axis_columns(*manifest);
    want_point_header = {"point", "seed"};
    want_point_header.insert(want_point_header.end(), axes.begin(), axes.end());
    const auto metrics = Aggregator::metric_columns();
    want_point_header.insert(want_point_header.end(), metrics.begin(),
                             metrics.end());
    want_per_run_header = {"point", "rep", "seed"};
    want_per_run_header.insert(want_per_run_header.end(), axes.begin(),
                               axes.end());
    const auto run_metrics = Aggregator::per_run_metric_columns();
    want_per_run_header.insert(want_per_run_header.end(), run_metrics.begin(),
                               run_metrics.end());
    grid = expand_grid(*manifest);
  }

  std::string header_line;
  std::vector<std::string> header;
  bool per_run = false;
  // (point, rep) → raw line; raw bytes are re-emitted untouched so the
  // merged file is byte-identical to an unsharded run's output.
  std::map<std::pair<std::size_t, std::size_t>, std::string> rows;

  for (const auto& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      throw std::runtime_error("merge_outputs: cannot open " + path);
    }
    bool first = true;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (first) {
        first = false;
        if (header.empty()) {
          header_line = line;
          header = split_csv_line(line);
          per_run = header.size() > 1 && header[1] == "rep";
          if (manifest != nullptr &&
              header != (per_run ? want_per_run_header : want_point_header)) {
            throw std::runtime_error(
                "merge_outputs: header of " + path +
                " does not match the manifest's output columns");
          }
        } else if (split_csv_line(line) != header) {
          throw std::runtime_error(
              "merge_outputs: header of " + path + " does not match " +
              inputs.front() + " (shards of different campaigns?)");
        }
        continue;
      }
      const auto cells = split_csv_line(line);
      if (cells.size() != header.size()) {
        throw std::runtime_error(
            "merge_outputs: truncated row in " + path +
            "; resume that shard to completion before merging");
      }
      std::size_t point = 0, rep = 0;
      if (!parse_index(cells[0], point) ||
          (per_run && !parse_index(cells[1], rep))) {
        throw std::runtime_error("merge_outputs: unparsable row key in " +
                                 path);
      }
      if (manifest != nullptr) {
        if (point >= grid.size()) {
          throw std::runtime_error(
              "merge_outputs: " + path + " has point " +
              std::to_string(point) + " beyond the manifest's grid");
        }
        if (per_run && rep >= manifest->replications) {
          throw std::runtime_error(
              "merge_outputs: " + path + " has replication " +
              std::to_string(rep) + " beyond the manifest's count");
        }
        const std::size_t seed_cell = per_run ? 2 : 1;
        const std::uint64_t want_seed =
            grid[point].seed + (per_run ? rep : 0);
        bool matches = cells[seed_cell] == std::to_string(want_seed);
        for (std::size_t a = 0; matches && a < grid[point].values.size();
             ++a) {
          matches = cells[seed_cell + 1 + a] == grid[point].values[a];
        }
        // Point seeds do not depend on the replication count, so a summary
        // row's "replications" cell (right after the axes) is the only
        // evidence of a changed count; per-run rows are caught by the
        // rectangularity check instead.
        if (matches && !per_run) {
          matches = cells[seed_cell + 1 + grid[point].values.size()] ==
                    std::to_string(manifest->replications);
        }
        if (!matches) {
          throw std::runtime_error(
              "merge_outputs: row for point " + std::to_string(point) +
              " in " + path +
              " was computed with different parameters (manifest mismatch)");
        }
      }
      if (!rows.emplace(std::make_pair(point, rep), line).second) {
        throw std::runtime_error(
            "merge_outputs: point " + std::to_string(point) +
            (per_run ? " replication " + std::to_string(rep) : std::string()) +
            " appears in multiple inputs (overlapping shards?)");
      }
    }
  }
  if (header.empty()) {
    throw std::runtime_error("merge_outputs: inputs contain no header");
  }

  // Completeness: the merged point set must have no gaps (a missing shard
  // would otherwise go unnoticed), per-run groups must be rectangular, and
  // a manifest pins the exact expected counts.
  std::size_t max_point = 0, max_rep = 0;
  std::set<std::size_t> points_seen;
  std::map<std::size_t, std::size_t> reps_per_point;
  for (const auto& [key, line] : rows) {
    (void)line;
    max_point = std::max(max_point, key.first);
    max_rep = std::max(max_rep, key.second);
    points_seen.insert(key.first);
    ++reps_per_point[key.first];
  }
  const std::size_t want_points =
      manifest != nullptr ? manifest->point_count() : max_point + 1;
  const std::size_t want_reps =
      manifest != nullptr ? (per_run ? manifest->replications : 1)
                          : max_rep + 1;
  if (rows.empty() || points_seen.size() != want_points) {
    throw std::runtime_error(
        "merge_outputs: merged inputs cover " +
        std::to_string(points_seen.size()) + " of " +
        std::to_string(want_points) +
        " points; a shard output is missing or incomplete");
  }
  for (const auto& [point, count] : reps_per_point) {
    if (count != want_reps) {
      throw std::runtime_error(
          "merge_outputs: point " + std::to_string(point) + " has " +
          std::to_string(count) + " of " + std::to_string(want_reps) +
          " replication rows; a shard output is incomplete");
    }
  }

  const std::string tmp = out_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("merge_outputs: cannot write " + tmp);
    out << header_line << '\n';
    for (const auto& [key, line] : rows) {
      (void)key;
      out << line << '\n';
    }
  }
  if (std::rename(tmp.c_str(), out_path.c_str()) != 0) {
    throw std::runtime_error("merge_outputs: cannot replace " + out_path);
  }
  return rows.size();
}

}  // namespace pas::exp

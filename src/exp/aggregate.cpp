#include "exp/aggregate.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "io/csv.hpp"

namespace pas::exp {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (const char c : line) {
    if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

std::string join_csv(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) line.push_back(',');
    line += io::CsvWriter::escape(cells[i]);
  }
  return line;
}

/// True if the whole cell parses as a *finite* double (→ emit raw in JSON
/// lines). Non-finite cells ("nan"/"inf" from format_double) must not leak
/// into JSON, which has no such tokens; the caller emits null instead,
/// matching io::Json::dump's convention.
bool is_finite_numeric_cell(const std::string& cell, bool& non_finite) {
  non_finite = false;
  if (cell.empty()) return false;
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (ec != std::errc{} || ptr != cell.data() + cell.size()) return false;
  if (!std::isfinite(value)) {
    non_finite = true;
    return false;
  }
  return true;
}

}  // namespace

PointSummary PointSummary::of(std::size_t point, std::uint64_t seed,
                              const world::ReplicatedMetrics& m) {
  PointSummary s;
  s.point = point;
  s.seed = seed;
  s.replications = m.runs.size();
  s.delay_s = m.delay_s;
  s.energy_j = m.energy_j;
  s.active_fraction = m.active_fraction;
  s.mean_missed = m.mean_missed;
  s.mean_broadcasts = m.mean_broadcasts;
  return s;
}

std::vector<std::string> Aggregator::metric_columns() {
  return {"replications",         "delay_mean_s",  "delay_ci95_s",
          "delay_min_s",          "delay_max_s",   "energy_mean_j",
          "energy_ci95_j",        "energy_min_j",  "energy_max_j",
          "active_fraction_mean", "missed_mean",   "broadcasts_mean"};
}

Aggregator::Aggregator(std::string csv_path, std::string json_path,
                       std::vector<std::string> axis_names,
                       std::size_t total_points,
                       std::vector<std::vector<std::string>> expected_identity)
    : csv_path_(std::move(csv_path)),
      json_path_(std::move(json_path)),
      axis_count_(axis_names.size()),
      total_points_(total_points),
      expected_identity_(std::move(expected_identity)) {
  if (!expected_identity_.empty() &&
      expected_identity_.size() != total_points_) {
    throw std::logic_error("Aggregator: expected_identity size mismatch");
  }
  columns_ = {"point", "seed"};
  columns_.insert(columns_.end(), axis_names.begin(), axis_names.end());
  const auto metrics = metric_columns();
  columns_.insert(columns_.end(), metrics.begin(), metrics.end());
}

std::string Aggregator::csv_line(const std::vector<std::string>& cells) const {
  return join_csv(cells);
}

std::string Aggregator::json_line(const std::vector<std::string>& cells) const {
  std::string out = "{";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('"');
    out += columns_[i];
    out += "\":";
    bool non_finite = false;
    if (is_finite_numeric_cell(cells[i], non_finite)) {
      out += cells[i];
    } else if (non_finite) {
      out += "null";
    } else {
      out.push_back('"');
      out += cells[i];
      out.push_back('"');
    }
  }
  out.push_back('}');
  return out;
}

void Aggregator::open_appenders() {
  if (!csv_path_.empty()) {
    csv_out_.open(csv_path_, std::ios::app);
    if (!csv_out_) {
      throw std::runtime_error("Aggregator: cannot open " + csv_path_);
    }
  }
  if (!json_path_.empty()) {
    json_out_.open(json_path_, std::ios::app);
    if (!json_out_) {
      throw std::runtime_error("Aggregator: cannot open " + json_path_);
    }
  }
}

std::size_t Aggregator::load_existing() {
  const std::lock_guard lock(mutex_);
  if (loaded_) throw std::logic_error("Aggregator: load_existing called twice");
  loaded_ = true;

  if (!csv_path_.empty()) {
    std::ifstream in(csv_path_);
    if (in) {
      std::string line;
      bool first = true;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        if (first) {
          first = false;
          if (split_csv_line(line) != columns_) {
            throw std::runtime_error(
                "Aggregator: existing output header does not match this "
                "campaign (" + csv_path_ + "); delete it or change --out");
          }
          continue;
        }
        auto cells = split_csv_line(line);
        // A row truncated by a kill mid-write has the wrong cell count;
        // drop it and let the runner recompute that point.
        if (cells.size() != columns_.size()) continue;
        std::size_t point = 0;
        const auto [ptr, ec] = std::from_chars(
            cells[0].data(), cells[0].data() + cells[0].size(), point);
        if (ec != std::errc{} || ptr != cells[0].data() + cells[0].size()) {
          continue;
        }
        if (point >= total_points_) continue;
        if (!expected_identity_.empty()) {
          // cells[1..1+axis_count] are the seed + axis values; a mismatch
          // means the file was produced by a different manifest, and
          // resuming over it would mix incompatible results.
          const auto& want = expected_identity_[point];
          bool matches = true;
          for (std::size_t k = 0; k < want.size(); ++k) {
            if (cells[1 + k] != want[k]) {
              matches = false;
              break;
            }
          }
          if (!matches) {
            throw std::runtime_error(
                "Aggregator: row for point " + std::to_string(point) + " in " +
                csv_path_ +
                " was computed with different parameters (manifest changed?); "
                "delete the file or change --out");
          }
        }
        rows_[point] = std::move(cells);
      }
    }
  }

  // Compact what we recovered (drops truncated/duplicate rows), writing the
  // header either way, and leave both files open for appending.
  rewrite_files(/*require_complete=*/false);
  open_appenders();
  return rows_.size();
}

void Aggregator::rewrite_files(bool require_complete) {
  // Caller holds mutex_.
  if (require_complete && rows_.size() != total_points_) {
    throw std::logic_error("Aggregator: finalize with incomplete campaign");
  }
  if (!csv_path_.empty()) {
    if (csv_out_.is_open()) csv_out_.close();
    const std::string tmp = csv_path_ + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) throw std::runtime_error("Aggregator: cannot write " + tmp);
      out << csv_line(columns_) << '\n';
      for (const auto& [point, cells] : rows_) {
        (void)point;
        out << csv_line(cells) << '\n';
      }
    }
    if (std::rename(tmp.c_str(), csv_path_.c_str()) != 0) {
      throw std::runtime_error("Aggregator: cannot replace " + csv_path_);
    }
  }
  if (!json_path_.empty()) {
    if (json_out_.is_open()) json_out_.close();
    const std::string tmp = json_path_ + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) throw std::runtime_error("Aggregator: cannot write " + tmp);
      for (const auto& [point, cells] : rows_) {
        (void)point;
        out << json_line(cells) << '\n';
      }
    }
    if (std::rename(tmp.c_str(), json_path_.c_str()) != 0) {
      throw std::runtime_error("Aggregator: cannot replace " + json_path_);
    }
  }
}

bool Aggregator::is_done(std::size_t point) const {
  const std::lock_guard lock(mutex_);
  return rows_.count(point) > 0;
}

std::vector<std::size_t> Aggregator::pending() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::size_t> out;
  out.reserve(total_points_ - rows_.size());
  for (std::size_t p = 0; p < total_points_; ++p) {
    if (rows_.count(p) == 0) out.push_back(p);
  }
  return out;
}

void Aggregator::record(std::size_t point, std::uint64_t seed,
                        const std::vector<std::string>& axis_values,
                        const world::ReplicatedMetrics& m) {
  if (axis_values.size() != axis_count_) {
    throw std::logic_error("Aggregator: axis value count mismatch");
  }
  std::vector<std::string> cells;
  cells.reserve(columns_.size());
  cells.push_back(std::to_string(point));
  cells.push_back(std::to_string(seed));
  cells.insert(cells.end(), axis_values.begin(), axis_values.end());
  cells.push_back(std::to_string(m.runs.size()));
  for (const double v :
       {m.delay_s.mean, m.delay_s.ci95_half, m.delay_s.min, m.delay_s.max,
        m.energy_j.mean, m.energy_j.ci95_half, m.energy_j.min, m.energy_j.max,
        m.active_fraction.mean, m.mean_missed, m.mean_broadcasts}) {
    cells.push_back(io::format_double(v));
  }

  const std::lock_guard lock(mutex_);
  if (rows_.count(point) > 0) return;  // already recovered via resume
  summaries_.emplace(point, PointSummary::of(point, seed, m));
  if (csv_out_.is_open()) {
    csv_out_ << csv_line(cells) << '\n';
    csv_out_.flush();
  }
  if (json_out_.is_open()) {
    json_out_ << json_line(cells) << '\n';
    json_out_.flush();
  }
  rows_.emplace(point, std::move(cells));
}

void Aggregator::finalize() {
  const std::lock_guard lock(mutex_);
  rewrite_files(/*require_complete=*/true);
}

std::size_t Aggregator::done_count() const {
  const std::lock_guard lock(mutex_);
  return rows_.size();
}

}  // namespace pas::exp

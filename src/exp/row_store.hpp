// Binary campaign row store (".pasrows").
//
// The Aggregator's bounded-memory backend: completed rows are appended to a
// compact binary log instead of being kept as in-memory string maps. Each
// record carries its kind (per-run row, point summary, or tombstone), its
// (point, rep) key, and the row's cell strings verbatim, so the export step
// can render the exact CSV/JSONL bytes the legacy in-memory path produced.
//
// Layout:
//   header   = "PASROWS1" (8 bytes) + u64 identity hash (little-endian)
//   record   = u32 payload_len + u32 crc32(payload) + payload
//   payload  = u8 kind + u64 point + u32 rep + u32 cell_count
//              + cell_count × (u32 len + bytes)
//
// The identity hash fingerprints the campaign (columns, grid size,
// replication count, per-point seed/axis identity) so resume rejects a
// store written under a different manifest — the binary equivalent of the
// CSV header + per-row identity checks.
//
// Kill-safety: records are appended in batches and flushed at point
// boundaries. A torn trailing record (short write, CRC mismatch) ends the
// clean prefix; open_append() truncates the file back to that prefix, so a
// killed campaign always resumes from a valid record sequence — the same
// contract torn CSV rows have today.
//
// Spill runs: the external-merge export sorts buffered records and spills
// them to sibling ".run<k>" files using the same framing with the record's
// store sequence number embedded in the payload (a store record's sequence
// number is implicit: its byte offset).
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

namespace pas::exp {

class RowStore {
 public:
  enum class Kind : std::uint8_t {
    kPerRun = 1,
    kSummary = 2,
    /// Invalidates every earlier record for its point (crash recovery's
    /// discard_points); an O(1) append instead of a file rewrite.
    kTombstone = 3,
  };

  struct Record {
    Kind kind = Kind::kSummary;
    std::size_t point = 0;
    std::size_t rep = 0;
    /// Monotonic within a store file: the record's byte offset. Later
    /// records win when a (point, rep) appears more than once, and a
    /// tombstone kills exactly the records appended before it.
    std::uint64_t seq = 0;
    std::vector<std::string> cells;
  };

  RowStore(std::string path, std::uint64_t identity_hash);

  /// The conventional store path for a campaign CSV.
  [[nodiscard]] static std::string path_for(const std::string& csv_path) {
    return csv_path + ".pasrows";
  }

  /// Campaign fingerprint for the store header. Hashes the output columns,
  /// grid size, replication count, and each point's expected seed/axis
  /// cells (FNV-1a, length-prefixed fields).
  [[nodiscard]] static std::uint64_t hash_identity(
      const std::vector<std::string>& columns, std::size_t total_points,
      std::size_t replications,
      const std::vector<std::vector<std::string>>& expected_identity);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] bool file_exists() const;

  /// Streams every record of the clean prefix in file order. Returns the
  /// clean-prefix byte count (header included). Throws std::runtime_error
  /// on a magic or identity-hash mismatch. `on_record` may be null (used
  /// to measure the prefix only).
  std::uint64_t scan(const std::function<void(const Record&)>& on_record) const;

  /// Opens the store for appending: validates the header, truncates a torn
  /// tail back to the clean prefix, and writes a fresh header when the file
  /// is missing or empty.
  void open_append();
  [[nodiscard]] bool is_open() const noexcept { return out_.is_open(); }

  /// Buffers one record; nothing reaches the file until flush(). The
  /// caller batches a point's per-run records + summary and flushes once
  /// per point boundary.
  void append(Kind kind, std::size_t point, std::size_t rep,
              const std::vector<std::string>& cells);

  /// Writes the buffered batch with a single write + flush.
  void flush();

  void close();
  /// Closes and deletes the store file (finalize() exported everything).
  void remove_file();

  // --- Spill runs for the external-merge export -----------------------------

  /// Writes `records` (already sorted by the caller) as a spill run.
  static void write_run(const std::string& path,
                        const std::vector<Record>& records);

  /// Sequential reader over a spill run. Runs are written and read within
  /// one export pass, so corruption is an I/O error, not a torn tail:
  /// next() throws std::runtime_error instead of stopping early.
  class RunReader {
   public:
    explicit RunReader(const std::string& path);
    /// Reads the next record; returns false at end of file.
    bool next(Record& out);

   private:
    std::string path_;
    std::ifstream in_;
  };

 private:
  std::uint64_t scan_impl(const std::function<void(const Record&)>& on_record,
                          bool* header_present) const;

  std::string path_;
  std::uint64_t identity_hash_ = 0;
  std::ofstream out_;
  std::string buffer_;
};

}  // namespace pas::exp

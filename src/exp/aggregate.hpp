// Resumable campaign aggregation.
//
// The Aggregator owns the campaign's output files. Completed points stream
// in (from any thread, in any order) and are appended to the CSV — and
// optionally a JSON-lines file — with a flush per row, so a killed campaign
// leaves a valid, loadable record of everything it finished. On resume the
// aggregator reads that record back and reports which points are already
// done; the runner then schedules only the rest.
//
// When every point is present, finalize() rewrites both files in point
// order through a temp-file + rename, so the completed artifact is
// byte-identical no matter how many shards produced it or how many times
// the campaign was resumed.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "world/sweep.hpp"

namespace pas::exp {

/// One grid point's aggregate over its replications — ReplicatedMetrics
/// minus the per-run vector, cheap enough to keep for 10k-point campaigns.
struct PointSummary {
  std::size_t point = 0;
  std::uint64_t seed = 0;
  std::size_t replications = 0;
  metrics::Summary delay_s;
  metrics::Summary energy_j;
  metrics::Summary active_fraction;
  double mean_missed = 0.0;
  double mean_broadcasts = 0.0;

  [[nodiscard]] static PointSummary of(std::size_t point, std::uint64_t seed,
                                       const world::ReplicatedMetrics& m);
};

class Aggregator {
 public:
  /// `csv_path` may be empty (in-memory aggregation only, used by benches).
  /// `json_path` optionally mirrors every row as JSON lines.
  /// `expected_identity`, when non-empty, gives each point's expected
  /// {seed, axis values...} cells; resume uses it to reject rows computed
  /// under a different manifest (the runner passes it from the grid).
  Aggregator(std::string csv_path, std::string json_path,
             std::vector<std::string> axis_names, std::size_t total_points,
             std::vector<std::vector<std::string>> expected_identity = {});

  /// Loads completed rows from an existing CSV (resume). Throws
  /// std::runtime_error if the file exists but its header does not match
  /// this campaign's columns, or if a recovered row's seed/axis values
  /// disagree with `expected_identity` (both are manifest/output
  /// mismatches: resuming would silently produce wrong data). Returns the
  /// number of points recovered. Call before the first record().
  std::size_t load_existing();

  /// True if `point` already has a row (recorded now or recovered).
  [[nodiscard]] bool is_done(std::size_t point) const;

  /// Indices in [0, total_points) with no row yet, ascending.
  [[nodiscard]] std::vector<std::size_t> pending() const;

  /// Records one completed point. Thread-safe; appends + flushes so the row
  /// survives a kill. `axis_values` must align with the axis_names given at
  /// construction.
  void record(std::size_t point, std::uint64_t seed,
              const std::vector<std::string>& axis_values,
              const world::ReplicatedMetrics& m);

  /// Rewrites the output files in point order (temp file + atomic rename).
  /// Requires every point recorded; throws std::logic_error otherwise.
  void finalize();

  [[nodiscard]] std::size_t done_count() const;
  [[nodiscard]] std::size_t total_points() const noexcept { return total_points_; }

  /// Summaries recorded *this process* (resumed rows are not re-parsed into
  /// summaries), keyed by point index.
  [[nodiscard]] const std::map<std::size_t, PointSummary>& summaries() const noexcept {
    return summaries_;
  }

  /// Full column list: "point", "seed", the axis columns, then metrics.
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }

  /// The metric column names shared by every campaign CSV.
  [[nodiscard]] static std::vector<std::string> metric_columns();

 private:
  [[nodiscard]] std::string csv_line(const std::vector<std::string>& cells) const;
  [[nodiscard]] std::string json_line(const std::vector<std::string>& cells) const;
  void open_appenders();
  /// Rewrites both output files from `rows_` via temp file + rename.
  /// Caller must hold mutex_.
  void rewrite_files(bool require_complete);

  std::string csv_path_;
  std::string json_path_;
  std::size_t axis_count_ = 0;
  std::size_t total_points_ = 0;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> expected_identity_;

  mutable std::mutex mutex_;
  /// point index → full row cells (axis values + metrics), resume state.
  std::map<std::size_t, std::vector<std::string>> rows_;
  std::map<std::size_t, PointSummary> summaries_;
  std::ofstream csv_out_;
  std::ofstream json_out_;
  bool loaded_ = false;
};

}  // namespace pas::exp

// Resumable campaign aggregation.
//
// The Aggregator owns the campaign's output files. Completed points stream
// in (from any thread, in any order) and are appended to the CSV — and
// optionally a JSON-lines file and a per-replication CSV — with a flush per
// row, so a killed campaign leaves a valid, loadable record of everything
// it finished. On resume the aggregator reads that record back and reports
// which points are already done; the runner then schedules only the rest.
//
// When every owned point is present, finalize() rewrites the files in
// point order through a temp-file + rename, so the completed artifact is
// byte-identical no matter how many threads produced it or how many times
// the campaign was resumed.
//
// Sharding: a campaign may be split across processes/machines with
// `owned_points` — each shard aggregates only its own subset of the grid
// into its own files, and merge_outputs() recombines the finalized shard
// files into the exact bytes an unsharded run would have written.
//
// Store mode (AggregatorOptions::store_path): instead of keeping every row
// in memory and rewriting whole CSVs, rows are appended to a binary
// ".pasrows" log (see row_store.hpp) and the aggregator keeps only O(grid)
// bitmaps. finalize()/compact() render the CSV/JSONL artifacts through an
// external-merge export — sorted spill runs of bounded size, k-way merged
// by (point, rep) — so memory stays O(spill budget) no matter how large
// the campaign is, and the exported bytes are identical to what the
// in-memory path writes. In flight the store is the ground truth (the CSV
// only materializes at export); a finalized campaign deletes the store and
// looks exactly like a legacy one, and resuming from a bare CSV seeds a
// fresh store through the legacy readers, so both histories interoperate.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exp/manifest.hpp"
#include "exp/row_store.hpp"
#include "world/sweep.hpp"

namespace pas::exp {

/// One grid point's aggregate over its replications — ReplicatedMetrics
/// minus the per-run vector, cheap enough to keep for 10k-point campaigns.
struct PointSummary {
  std::size_t point = 0;
  std::uint64_t seed = 0;
  std::size_t replications = 0;
  metrics::Summary delay_s;
  metrics::Summary energy_j;
  metrics::Summary active_fraction;
  double mean_missed = 0.0;
  double mean_broadcasts = 0.0;

  [[nodiscard]] static PointSummary of(std::size_t point, std::uint64_t seed,
                                       const world::ReplicatedMetrics& m);
};

struct AggregatorOptions {
  /// CSV output path; empty aggregates in memory only (benches, tests).
  std::string csv_path;
  /// Optional JSON-lines mirror of every row.
  std::string json_path;
  /// Optional per-replication CSV (one row per run); requires
  /// `replications` so resume can tell complete groups from torn ones.
  std::string per_run_path;
  std::vector<std::string> axis_names;
  std::size_t total_points = 0;
  /// Replications per point; only consulted when per_run_path is set.
  std::size_t replications = 0;
  /// Each point's expected {seed, axis values...} cells; resume uses it to
  /// reject rows computed under a different manifest. Empty disables the
  /// check (unit tests); the runner always passes it from the grid.
  std::vector<std::vector<std::string>> expected_identity;
  /// Point indices this shard owns, ascending. Empty means all points.
  /// pending()/finalize() consider only owned points, and resume rejects
  /// rows for foreign points (they signal a wrong --shard/--out pairing).
  std::vector<std::size_t> owned_points;
  /// Binary row-store path (conventionally RowStore::path_for(csv_path)).
  /// Non-empty switches the aggregator to bounded-memory store mode;
  /// empty keeps the legacy in-memory row maps. Requires csv_path.
  std::string store_path;
  /// Spill-buffer budget for the external-merge export, in bytes.
  /// 0 selects the default (32 MiB); tests shrink it to force multi-run
  /// spills on small campaigns.
  std::size_t spill_budget_bytes = 0;
};

class Aggregator {
 public:
  explicit Aggregator(AggregatorOptions options);

  /// Convenience constructor for the common no-shard, no-per-run case.
  Aggregator(std::string csv_path, std::string json_path,
             std::vector<std::string> axis_names, std::size_t total_points,
             std::vector<std::vector<std::string>> expected_identity = {});

  /// Loads completed rows from the existing output files (resume). Throws
  /// std::runtime_error if a file exists but its header does not match
  /// this campaign's columns, if a recovered row's seed/axis values
  /// disagree with the expected identity, or if a row belongs to a point
  /// outside this shard (all are manifest/output mismatches: resuming
  /// would silently produce wrong data). A point whose per-run rows are
  /// missing or torn is dropped and recomputed. Returns the number of
  /// points recovered. Call before the first record().
  std::size_t load_existing();

  /// True if `point` already has a row (recorded now or recovered).
  [[nodiscard]] bool is_done(std::size_t point) const;

  /// Owned indices with no row yet, ascending.
  [[nodiscard]] std::vector<std::size_t> pending() const;

  /// Records one completed point. Thread-safe; appends + flushes so the row
  /// survives a kill. `axis_values` must align with the axis_names given at
  /// construction.
  void record(std::size_t point, std::uint64_t seed,
              const std::vector<std::string>& axis_values,
              const world::ReplicatedMetrics& m);

  /// Rewrites the output files in point order (temp file + atomic rename).
  /// Requires every owned point recorded; throws std::logic_error otherwise.
  void finalize();

  /// finalize() without the completeness requirement: rewrites whatever is
  /// recorded so far in point order and reopens the files for appending.
  /// Orchestrator workers call this on clean shutdown so a part file is
  /// always sorted and free of torn rows even though the worker owns only
  /// the leases it happened to receive.
  void compact();

  /// Forgets the given points (recorded or recovered) and rewrites the
  /// files without them. The orchestrator's crash recovery uses this to
  /// drop rows that a dead worker wrote for a point another worker already
  /// completed — the duplicate would otherwise poison merge_outputs().
  void discard_points(const std::vector<std::size_t>& points);

  /// Point indices that currently have a row, ascending.
  [[nodiscard]] std::vector<std::size_t> done_points() const;

  [[nodiscard]] std::size_t done_count() const;
  [[nodiscard]] std::size_t total_points() const noexcept { return total_points_; }
  /// Number of points this shard owns (== total_points() unsharded).
  [[nodiscard]] std::size_t owned_count() const noexcept {
    return owned_.empty() ? total_points_ : owned_count_;
  }

  /// Summaries recorded *this process* (resumed rows are not re-parsed into
  /// summaries), keyed by point index.
  [[nodiscard]] const std::map<std::size_t, PointSummary>& summaries() const noexcept {
    return summaries_;
  }

  /// Full column list: "point", "seed", the axis columns, then metrics.
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }

  /// Per-run column list: "point", "rep", "seed", axes, per-run metrics.
  [[nodiscard]] const std::vector<std::string>& per_run_columns() const noexcept {
    return per_run_columns_;
  }

  /// The metric column names shared by every campaign CSV.
  [[nodiscard]] static std::vector<std::string> metric_columns();

  /// The metric column names of the per-replication CSV.
  [[nodiscard]] static std::vector<std::string> per_run_metric_columns();

  /// True when this aggregator runs on the binary row store.
  [[nodiscard]] bool store_mode() const noexcept { return !store_path_.empty(); }

 private:
  [[nodiscard]] std::string csv_line(const std::vector<std::string>& cells) const;
  [[nodiscard]] std::string json_line(const std::vector<std::string>& cells) const;
  [[nodiscard]] bool owns(std::size_t point) const {
    return owned_.empty() || (point < owned_.size() && owned_[point] != 0);
  }
  void open_appenders();
  /// Rewrites the output files from `rows_`/`per_run_rows_` via temp file +
  /// rename. Caller must hold mutex_.
  void rewrite_files(bool require_complete);
  /// Shared resume-file reader: header validation, torn-row dropping,
  /// bounds and shard-ownership checks; `on_row` receives each surviving
  /// row's (point, rep, cells) — rep is 0 when key_arity is 1.
  void load_rows_file(
      const std::string& path, const std::vector<std::string>& want_header,
      const char* flag_hint, std::size_t key_arity,
      const std::function<void(std::size_t, std::size_t,
                               std::vector<std::string>)>& on_row);
  void load_point_rows();
  void load_per_run_rows();
  /// Store mode: creates/opens the store lazily. Caller must hold mutex_.
  void ensure_store();
  /// Store mode load_existing: scans the store into the done bitmap, or
  /// seeds a fresh store from an existing CSV (legacy/finalized artifact).
  std::size_t load_store();
  std::size_t seed_store_from_csv();
  /// Store mode finalize/compact: external-merge export of the CSV/JSONL/
  /// per-run artifacts (spill runs + k-way merge). Caller must hold mutex_.
  void export_store();

  std::string csv_path_;
  std::string json_path_;
  std::string per_run_path_;
  std::size_t axis_count_ = 0;
  std::size_t total_points_ = 0;
  std::size_t replications_ = 0;
  std::vector<std::string> columns_;
  std::vector<std::string> per_run_columns_;
  std::vector<std::vector<std::string>> expected_identity_;
  /// Ownership bitmap indexed by point; empty means "owns everything".
  std::vector<std::uint8_t> owned_;
  std::size_t owned_count_ = 0;

  mutable std::mutex mutex_;
  /// point index → full row cells (axis values + metrics), resume state.
  std::map<std::size_t, std::vector<std::string>> rows_;
  /// point index → replication index → per-run row cells.
  std::map<std::size_t, std::map<std::size_t, std::vector<std::string>>>
      per_run_rows_;
  std::map<std::size_t, PointSummary> summaries_;
  std::ofstream csv_out_;
  std::ofstream json_out_;
  std::ofstream per_run_out_;
  bool loaded_ = false;

  // Store mode state: the open row store plus O(grid) completion bitmaps —
  // no row content is held in memory.
  std::string store_path_;
  std::size_t spill_budget_bytes_ = 0;
  std::uint64_t identity_hash_ = 0;
  std::unique_ptr<RowStore> store_;
  std::vector<std::uint8_t> store_done_;
  std::size_t store_done_count_ = 0;
};

/// Recombines finalized shard outputs into `out_path`, byte-identical to
/// the file an unsharded run would have produced. All inputs must carry an
/// identical header; every (point, rep) may appear in exactly one input;
/// the merged point set must be gap-free from 0. Works for both the
/// point-summary CSV and the per-run CSV (recognized by its "rep" column).
///
/// When `manifest` is non-null the merge additionally validates the inputs
/// against it: the header must match the manifest's output columns, every
/// row's seed/axis cells must match the expanded grid, and the merged file
/// must cover the full grid — so shards of *different* manifests (or stale
/// outputs) are rejected instead of silently combined.
///
/// Returns the number of merged data rows.
std::size_t merge_outputs(const std::vector<std::string>& inputs,
                          const std::string& out_path,
                          const Manifest* manifest = nullptr);

}  // namespace pas::exp

#include "exp/runner.hpp"

#include <chrono>
#include <filesystem>
#include <future>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "world/sweep.hpp"

namespace pas::exp {

world::ReplicatedMetrics run_point(const GridPoint& point,
                                   std::size_t replications) {
  // Replications run serially inside the job: point-level parallelism is
  // ample for ≥100-point campaigns, and a flat pool keeps results
  // independent of shard count.
  return world::run_replicated(point.config, replications, nullptr);
}

CampaignReport run_campaign(const Manifest& manifest,
                            const CampaignOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  manifest.validate();
  const auto points = expand_grid(manifest);

  if (!options.resume) {
    for (const auto& path : {options.out_csv, options.out_json}) {
      if (!path.empty() && std::filesystem::exists(path)) {
        throw std::runtime_error("run_campaign: " + path +
                                 " exists; pass resume to continue it or "
                                 "remove it to start over");
      }
    }
  }

  // Each point's expected seed + axis-value cells, so resume can reject
  // rows produced by a different manifest.
  std::vector<std::vector<std::string>> identity;
  identity.reserve(points.size());
  for (const auto& p : points) {
    std::vector<std::string> cells{std::to_string(p.seed)};
    cells.insert(cells.end(), p.values.begin(), p.values.end());
    identity.push_back(std::move(cells));
  }

  Aggregator aggregator(options.out_csv, options.out_json,
                        axis_columns(manifest), points.size(),
                        std::move(identity));
  const std::size_t recovered = aggregator.load_existing();
  const auto pending = aggregator.pending();

  std::mutex progress_mutex;
  const auto execute = [&](std::size_t index) {
    const GridPoint& point = points[index];
    const auto metrics = run_point(point, manifest.replications);
    aggregator.record(point.index, point.seed, point.values, metrics);
    if (options.progress) {
      const std::lock_guard lock(progress_mutex);
      options.progress(PointSummary::of(point.index, point.seed, metrics),
                       aggregator.done_count(), points.size());
    }
  };

  if (options.jobs == 1) {
    for (const auto index : pending) execute(index);
  } else {
    runtime::ThreadPool pool(options.jobs);
    std::vector<std::future<void>> futures;
    futures.reserve(pending.size());
    for (const auto index : pending) {
      futures.push_back(pool.submit([&execute, index] { execute(index); }));
    }
    for (auto& f : futures) f.get();  // propagate the first failure
  }

  aggregator.finalize();

  CampaignReport report;
  report.total_points = points.size();
  report.computed = pending.size();
  report.skipped = recovered;
  report.replications = manifest.replications;
  report.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  return report;
}

}  // namespace pas::exp

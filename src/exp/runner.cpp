#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exp/telemetry.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "serve/feed.hpp"
#include "world/sweep.hpp"

namespace pas::exp {

namespace {

/// Replications per sub-job. Whole points when the pending grid alone
/// saturates the pool (cheapest schedule); otherwise contiguous chunks
/// sized so roughly 2×jobs sub-jobs exist, which keeps every core busy on
/// replication-heavy, point-poor campaigns. Chunking never changes output:
/// runs land in a replication-indexed buffer reduced in index order.
std::size_t auto_rep_chunk(std::size_t pending_points, std::size_t reps,
                           std::size_t jobs) {
  if (pending_points == 0 || jobs <= 1 || pending_points >= jobs * 2) {
    return reps;
  }
  const std::size_t jobs_per_point =
      (jobs * 2 + pending_points - 1) / pending_points;
  return std::max<std::size_t>(1, (reps + jobs_per_point - 1) / jobs_per_point);
}

/// One pending point's in-flight state: the replication-indexed result
/// buffer and the number of sub-jobs still running. The last sub-job to
/// finish owns the reduction — an order-independent meeting point, since
/// every earlier sub-job only wrote its own disjoint slice of `runs`.
/// The buffer is allocated by whichever sub-job starts first (alloc) and
/// released by the reduction, so a big campaign holds buffers only for
/// the handful of points actually in flight, not the whole pending grid.
struct PointTask {
  const GridPoint* point = nullptr;
  std::vector<metrics::RunMetrics> runs;
  std::once_flag alloc;
  std::atomic<std::size_t> remaining{0};
  /// Set when a graceful stop lands before the point's last chunk ran: the
  /// point is abandoned whole (no reduction, no row), keeping the output
  /// resumable and the no-partial-points invariant intact.
  std::atomic<bool> aborted{false};
};

/// The compact JSON row published per completed point through the feed
/// (/api/points and the "point" SSE event). Summary means only — the full
/// row lives in the CSV; the feed is a live view, not a second output.
std::string feed_point_row(const GridPoint& point, std::size_t replications,
                           const PointSummary& summary) {
  io::JsonObject row;
  row["point"] = point.index;
  row["seed"] = std::to_string(point.seed);
  row["replications"] = replications;
  row["delay_mean_s"] = summary.delay_s.mean;
  row["energy_mean_j"] = summary.energy_j.mean;
  row["active_fraction_mean"] = summary.active_fraction.mean;
  row["mean_missed"] = summary.mean_missed;
  row["mean_broadcasts"] = summary.mean_broadcasts;
  return io::Json(std::move(row)).dump();
}

/// Registry handles for one policy's campaign-level instruments, resolved
/// once before the first point completes (registration freezes on first
/// write; completion callbacks run on pool threads).
struct PolicyInstruments {
  obs::Counter wakeups;
  obs::Counter requests_sent;
  obs::Counter responses_sent;
  obs::Counter responses_pushed;
  obs::Counter pushes_suppressed;
  obs::Counter prediction_hits;
  obs::Counter prediction_misses;
  obs::Histogram sleep_s;
};

PolicyInstruments make_policy_instruments(obs::Registry& registry,
                                          core::Policy policy) {
  const std::string prefix = "policy." + std::string(core::to_string(policy));
  PolicyInstruments out;
  out.wakeups = registry.counter(prefix + ".wakeups");
  out.requests_sent = registry.counter(prefix + ".requests_sent");
  out.responses_sent = registry.counter(prefix + ".responses_sent");
  out.responses_pushed = registry.counter(prefix + ".responses_pushed");
  out.pushes_suppressed = registry.counter(prefix + ".pushes_suppressed");
  out.prediction_hits = registry.counter(prefix + ".prediction_hits");
  out.prediction_misses = registry.counter(prefix + ".prediction_misses");
  out.sleep_s =
      registry.histogram(prefix + ".sleep_s", core::kSleepHistSpec);
  return out;
}

/// Campaign-level net.mac.* / net.collection.* instruments, registered only
/// when at least one grid point runs with the MAC enabled — MAC-free
/// campaigns keep their registry trailer byte-identical to pre-MAC builds.
struct NetInstruments {
  obs::Counter data_tx;
  obs::Counter rendezvous_tx;
  obs::Counter cca_busy;
  obs::Counter backoffs;
  obs::Counter retries;
  obs::Counter collisions;
  obs::Counter captures;
  obs::Counter delivered;
  obs::Counter drops;
  obs::Counter lpl_samples;
  obs::Counter lpl_wakeups;
  obs::Counter alerts_originated;
  obs::Counter alerts_forwarded;
  obs::Counter alerts_delivered;
  obs::Counter alerts_predicted;
};

NetInstruments make_net_instruments(obs::Registry& registry) {
  NetInstruments out;
  out.data_tx = registry.counter("net.mac.data_tx");
  out.rendezvous_tx = registry.counter("net.mac.rendezvous_tx");
  out.cca_busy = registry.counter("net.mac.cca_busy");
  out.backoffs = registry.counter("net.mac.backoffs");
  out.retries = registry.counter("net.mac.retries");
  out.collisions = registry.counter("net.mac.collisions");
  out.captures = registry.counter("net.mac.captures");
  out.delivered = registry.counter("net.mac.delivered");
  out.drops = registry.counter("net.mac.drops");
  out.lpl_samples = registry.counter("net.mac.lpl_samples");
  out.lpl_wakeups = registry.counter("net.mac.lpl_wakeups");
  out.alerts_originated = registry.counter("net.collection.originated");
  out.alerts_forwarded = registry.counter("net.collection.forwarded");
  out.alerts_delivered = registry.counter("net.collection.delivered");
  out.alerts_predicted =
      registry.counter("net.collection.delivered_predicted");
  return out;
}

}  // namespace

world::ReplicatedMetrics run_point(const GridPoint& point,
                                   std::size_t replications,
                                   runtime::ThreadPool* pool) {
  return world::run_replicated(point.config, replications, pool);
}

CampaignReport run_campaign(const Manifest& manifest,
                            const CampaignOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  manifest.validate();
  if (options.shard_count == 0) {
    throw std::invalid_argument("run_campaign: shard_count must be >= 1");
  }
  if (options.shard_index >= options.shard_count) {
    throw std::invalid_argument(
        "run_campaign: shard_index must be < shard_count");
  }
  const auto points = expand_grid(manifest);

  const bool store_mode = options.use_store && !options.out_csv.empty();
  const std::string store_path =
      store_mode ? RowStore::path_for(options.out_csv) : std::string();
  if (!options.resume) {
    for (const auto& path : {options.out_csv, options.out_json,
                             options.per_run_csv, options.metrics_path,
                             store_path}) {
      if (!path.empty() && std::filesystem::exists(path)) {
        throw std::runtime_error("run_campaign: " + path +
                                 " exists; pass resume to continue it or "
                                 "remove it to start over");
      }
    }
  }

  if (!options.owned_points.empty() && options.shard_count > 1) {
    throw std::invalid_argument(
        "run_campaign: owned_points and shard_index/shard_count are "
        "mutually exclusive ownership specs");
  }

  AggregatorOptions agg_options;
  agg_options.csv_path = options.out_csv;
  agg_options.json_path = options.out_json;
  agg_options.per_run_path = options.per_run_csv;
  agg_options.axis_names = axis_columns(manifest);
  agg_options.total_points = points.size();
  agg_options.replications = manifest.replications;
  // Resume rejects rows produced by a different manifest via the expected
  // per-point identity cells.
  agg_options.expected_identity = grid_identity(points);
  agg_options.store_path = store_path;
  agg_options.spill_budget_bytes = options.spill_budget_bytes;
  if (!options.owned_points.empty()) {
    agg_options.owned_points = options.owned_points;
  } else if (options.shard_count > 1) {
    for (std::size_t p = options.shard_index; p < points.size();
         p += options.shard_count) {
      agg_options.owned_points.push_back(p);
    }
  }
  Aggregator aggregator(std::move(agg_options));
  const std::size_t recovered = aggregator.load_existing();
  const auto pending = aggregator.pending();

  serve::CampaignFeed* const feed = options.feed;
  if (feed != nullptr) {
    feed->begin_campaign(manifest.name, options.campaign_id,
                         aggregator.owned_count(), manifest.replications,
                         recovered);
  }

  // Telemetry: a JSONL sink for per-point rows plus a campaign-scoped
  // registry for the cross-point roll-up. Both exist only when --metrics
  // was given; a disabled registry hands out inert handles, and nothing in
  // the simulation path ever sees either (run_replication is telemetry-
  // blind), so metrics on/off cannot change a single output byte.
  std::optional<TelemetrySink> sink;
  if (!options.metrics_path.empty()) {
    TelemetryOptions telemetry_options;
    telemetry_options.path = options.metrics_path;
    telemetry_options.axis_names = axis_columns(manifest);
    telemetry_options.total_points = points.size();
    sink.emplace(std::move(telemetry_options));
    sink->load_existing();
  }
  obs::Registry registry(sink.has_value());
  std::map<core::Policy, PolicyInstruments> policy_instruments;
  std::optional<NetInstruments> net_instruments;
  if (registry.enabled()) {
    for (const auto& point : points) {
      const core::Policy policy = point.config.protocol.policy;
      if (!policy_instruments.contains(policy)) {
        policy_instruments.emplace(policy,
                                   make_policy_instruments(registry, policy));
      }
      if (point.config.mac.enabled && !net_instruments.has_value()) {
        net_instruments = make_net_instruments(registry);
      }
    }
  }
  const obs::Counter k_scheduled = registry.counter("kernel.events_scheduled");
  const obs::Counter k_dispatched =
      registry.counter("kernel.events_dispatched");
  const obs::Counter k_cancelled = registry.counter("kernel.events_cancelled");
  const obs::Gauge k_max_pending = registry.gauge("kernel.max_pending");
  const obs::Counter k_reschedules =
      registry.counter("kernel.timer_reschedules");
  const obs::Counter k_rung_spawns = registry.counter("kernel.rung_spawns");
  const obs::Counter k_bucket_resizes =
      registry.counter("kernel.bucket_resizes");
  const obs::Gauge k_max_bucket = registry.gauge("kernel.max_bucket");
  const obs::Counter k_dead_skips = registry.counter("kernel.dead_skips");
  const obs::Counter points_completed =
      registry.counter("campaign.points_completed");

  // The feed's /api/metrics source snapshots this campaign's registry.
  // The guard (declared after the registry, destroyed before it) detaches
  // the closure on every exit path so the server can never snapshot a
  // dead registry.
  struct FeedMetricsGuard {
    serve::CampaignFeed* feed = nullptr;
    ~FeedMetricsGuard() {
      if (feed != nullptr) feed->set_metrics_source(nullptr);
    }
  } metrics_guard;
  if (feed != nullptr && registry.enabled()) {
    metrics_guard.feed = feed;
    feed->set_metrics_source([&registry] {
      io::JsonObject out;
      out["scope"] = "campaign";
      out["instruments"] = obs::snapshot_json(registry.snapshot());
      return io::Json(std::move(out));
    });
  }

  const std::size_t reps = manifest.replications;
  const std::size_t jobs =
      options.jobs != 0
          ? options.jobs
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t chunk =
      options.rep_chunk != 0
          ? std::min(options.rep_chunk, reps)
          : auto_rep_chunk(pending.size(), reps, jobs);
  const std::size_t chunks_per_point = (reps + chunk - 1) / chunk;

  std::vector<PointTask> tasks(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    tasks[i].point = &points[pending[i]];
    tasks[i].remaining.store(chunks_per_point, std::memory_order_relaxed);
  }

  std::mutex progress_mutex;
  const auto finish_point = [&](PointTask& task) {
    const GridPoint& point = *task.point;
    const auto metrics = world::reduce_runs(std::move(task.runs));
    aggregator.record(point.index, point.seed, point.values, metrics);
    if (sink.has_value()) {
      sink->record(point, metrics);
      // Roll the point's run telemetry into the campaign registry. This
      // runs on whichever pool thread finished the point's last chunk, so
      // the thread-shard merge is exercised by every parallel campaign.
      world::RunTelemetry telemetry;
      for (const auto& run : metrics.runs) telemetry.add(run);
      k_scheduled.add(telemetry.kernel.events_scheduled);
      k_dispatched.add(telemetry.kernel.events_dispatched);
      k_cancelled.add(telemetry.kernel.events_cancelled);
      k_max_pending.record_max(telemetry.kernel.max_pending);
      k_reschedules.add(telemetry.kernel.timer_reschedules);
      k_rung_spawns.add(telemetry.kernel.rung_spawns);
      k_bucket_resizes.add(telemetry.kernel.bucket_resizes);
      k_max_bucket.record_max(telemetry.kernel.max_bucket);
      k_dead_skips.add(telemetry.kernel.dead_skips);
      const PolicyInstruments& pi =
          policy_instruments.at(point.config.protocol.policy);
      pi.wakeups.add(telemetry.protocol.wakeups);
      pi.requests_sent.add(telemetry.protocol.requests_sent);
      pi.responses_sent.add(telemetry.protocol.responses_sent);
      pi.responses_pushed.add(telemetry.protocol.responses_pushed);
      pi.pushes_suppressed.add(telemetry.protocol.pushes_suppressed);
      pi.prediction_hits.add(telemetry.protocol.prediction_hits);
      pi.prediction_misses.add(telemetry.protocol.prediction_misses);
      pi.sleep_s.merge(telemetry.protocol.sleep_s);
      if (point.config.mac.enabled && net_instruments.has_value()) {
        const NetInstruments& ni = *net_instruments;
        ni.data_tx.add(telemetry.mac.data_tx);
        ni.rendezvous_tx.add(telemetry.mac.rendezvous_tx);
        ni.cca_busy.add(telemetry.mac.cca_busy);
        ni.backoffs.add(telemetry.mac.backoffs);
        ni.retries.add(telemetry.mac.retries);
        ni.collisions.add(telemetry.mac.collisions);
        ni.captures.add(telemetry.mac.captures);
        ni.delivered.add(telemetry.mac.delivered);
        ni.drops.add(telemetry.mac.drops_cca + telemetry.mac.drops_retry);
        ni.lpl_samples.add(telemetry.mac.lpl_samples);
        ni.lpl_wakeups.add(telemetry.mac.lpl_wakeups);
        ni.alerts_originated.add(telemetry.collection.originated);
        ni.alerts_forwarded.add(telemetry.collection.forwarded);
        ni.alerts_delivered.add(telemetry.collection.delivered);
        ni.alerts_predicted.add(telemetry.collection.delivered_predicted);
      }
      points_completed.add();
    }
    if (options.progress || feed != nullptr) {
      const std::lock_guard lock(progress_mutex);
      const auto summary = PointSummary::of(point.index, point.seed, metrics);
      const std::size_t done = aggregator.done_count();
      const std::size_t owned = aggregator.owned_count();
      if (options.progress) options.progress(summary, done, owned);
      if (feed != nullptr) {
        feed->point_done(feed_point_row(point, reps, summary));
        feed->progress_tick(done == owned);
      }
    }
  };
  // Inline (jobs==1) chunks run on the caller's thread and use this
  // campaign-scoped workspace; pool chunks use a per-worker thread_local
  // whose lifetime is the pool's (run_campaign owns the pool, so nothing
  // outlives the campaign). Either way replications re-seed a kept-warm
  // world, and the stimulus-model cache carries across points that share a
  // stimulus — for PDE campaigns that drops a full solver integration per
  // replication.
  world::Workspace inline_workspace;
  const auto stop_requested = [&options] {
    return options.should_stop && options.should_stop();
  };
  const auto run_chunk = [&](PointTask& task, std::size_t begin,
                             std::size_t end, world::Workspace* caller_ws) {
    // Graceful stop is checked at chunk granularity: a chunk either runs
    // whole or not at all, and an abandoned point (any chunk skipped)
    // never reduces into a row — the output stays resumable.
    if (stop_requested()) task.aborted.store(true, std::memory_order_relaxed);
    if (!task.aborted.load(std::memory_order_relaxed)) {
      std::call_once(task.alloc, [&task, reps] { task.runs.resize(reps); });
      world::Workspace& workspace = [&]() -> world::Workspace& {
        if (caller_ws != nullptr) return *caller_ws;
        static thread_local world::Workspace pool_workspace;
        return pool_workspace;
      }();
      for (std::size_t r = begin; r < end; ++r) {
        task.runs[r] = world::run_replication(workspace, task.point->config, r);
      }
    }
    // acq_rel: the final decrement must observe every other chunk's writes
    // to task.runs before reducing them.
    if (task.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        !task.aborted.load(std::memory_order_acquire)) {
      finish_point(task);
    }
  };

  if (options.jobs == 1) {
    for (auto& task : tasks) {
      if (stop_requested()) break;
      for (std::size_t begin = 0; begin < reps; begin += chunk) {
        run_chunk(task, begin, std::min(reps, begin + chunk),
                  &inline_workspace);
      }
    }
  } else {
    runtime::ThreadPool pool(options.jobs);
    std::vector<std::future<void>> futures;
    futures.reserve(tasks.size() * chunks_per_point);
    for (auto& task : tasks) {
      for (std::size_t begin = 0; begin < reps; begin += chunk) {
        const std::size_t end = std::min(reps, begin + chunk);
        futures.push_back(pool.submit([&run_chunk, &task, begin, end] {
          run_chunk(task, begin, end, nullptr);
        }));
      }
    }
    for (auto& f : futures) f.get();  // propagate the first failure
  }

  const bool interrupted = stop_requested();
  if (!interrupted) {
    aggregator.finalize();
    if (sink.has_value()) {
      // The registry snapshot covers the points computed *this invocation*
      // (resumed rows were recovered, not re-simulated); points_completed
      // records exactly that.
      io::JsonObject trailer;
      trailer["kind"] = "registry";
      trailer["scope"] = "campaign";
      trailer["instruments"] = obs::snapshot_json(registry.snapshot());
      sink->finalize({io::Json(std::move(trailer))});
    }
  }
  // Interrupted: no finalize, no trailer — the appended rows are exactly
  // what a resume expects, the same shape a killed process leaves behind.

  if (feed != nullptr) feed->end_campaign(interrupted);

  CampaignReport report;
  report.total_points = points.size();
  report.owned_points = aggregator.owned_count();
  report.computed = aggregator.done_count() - recovered;
  report.skipped = recovered;
  report.replications = manifest.replications;
  report.interrupted = interrupted;
  report.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  return report;
}

}  // namespace pas::exp

// Deterministic grid expansion.
//
// Expands a manifest's axes into the full cross product of grid points, in
// row-major order (first declared axis slowest, last fastest — the order
// nested for-loops would produce). Point indices are therefore stable for a
// given manifest, which is what makes resume sound: the CSV's `point`
// column identifies the same parameter combination across runs.
//
// Each point also gets its own root seed derived from the manifest's
// seed_base and the point index via SplitMix64, so every point draws from
// an independent, reproducible RNG stream regardless of which shard or
// thread executes it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/manifest.hpp"
#include "world/scenario.hpp"

namespace pas::exp {

struct GridPoint {
  /// Row-major index into the grid; the resume key.
  std::size_t index = 0;
  /// Per-axis value index (coords[a] indexes manifest.axes[a]).
  std::vector<std::size_t> coords;
  /// Base scenario with every axis value applied and seed set to `seed`.
  world::ScenarioConfig config{};
  /// Root seed for replication 0; replication r runs with seed + r.
  std::uint64_t seed = 0;
  /// Axis values rendered as strings, aligned with axis_columns().
  std::vector<std::string> values;

  /// "policy=PAS max_sleep_s=20" — progress lines and error messages.
  [[nodiscard]] std::string label(const Manifest& manifest) const;
};

/// Root seed of point `index` in a campaign rooted at `seed_base`.
/// SplitMix64 over the golden-ratio-scrambled index: consecutive points get
/// decorrelated streams, and the mapping never changes with axis order.
[[nodiscard]] std::uint64_t point_seed(std::uint64_t seed_base,
                                       std::size_t index) noexcept;

/// CSV column names contributed by the manifest's axes, in declared order.
[[nodiscard]] std::vector<std::string> axis_columns(const Manifest& manifest);

/// The full grid in index order. An axis-free manifest yields one point
/// (the base scenario).
[[nodiscard]] std::vector<GridPoint> expand_grid(const Manifest& manifest);

/// Each point's expected {seed, axis values...} cells, aligned with the
/// output columns after "point". Resume and the orchestrator's crash
/// sanitization use it to reject rows computed under a different manifest
/// (see AggregatorOptions::expected_identity).
[[nodiscard]] std::vector<std::vector<std::string>> grid_identity(
    const std::vector<GridPoint>& points);

}  // namespace pas::exp

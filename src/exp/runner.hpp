// Sharded campaign execution.
//
// run_campaign() expands a manifest's grid, asks the aggregator which
// points already have rows (resume), and executes the rest as jobs on a
// runtime::ThreadPool. Every job derives its seeds from the manifest alone
// (see grid.hpp), so shard count, worker count, and scheduling order never
// change any number: `--jobs 1` and `--jobs 8` produce byte-identical
// output.
//
// Two scale-out directions compose with that guarantee:
//  * Process-level sharding (`shard_index`/`shard_count`): each process
//    owns the points with index ≡ shard_index (mod shard_count), writes an
//    independently resumable output, and merge_outputs() (aggregate.hpp)
//    recombines the shard files into the unsharded bytes.
//  * Replication-level parallelism (`rep_chunk`): a point's replications
//    are split into contiguous sub-jobs that run concurrently on the pool
//    and meet in an order-independent reduction (world::reduce_runs), so a
//    one-point 10k-replication study still saturates every core.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "exp/aggregate.hpp"
#include "exp/grid.hpp"
#include "exp/manifest.hpp"
#include "runtime/thread_pool.hpp"

namespace pas::serve {
class CampaignFeed;
}  // namespace pas::serve

namespace pas::exp {

struct CampaignOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = run serially in-line.
  std::size_t jobs = 0;
  /// Load `out_csv` (if present) and skip points that already have rows.
  /// Without this flag an existing output file is an error, not data loss.
  bool resume = false;
  /// CSV output path; empty aggregates in memory only (benches, tests).
  std::string out_csv;
  /// Optional JSON-lines mirror of every row.
  std::string out_json;
  /// Optional per-replication CSV (one row per run) for p95/p99 reporting.
  std::string per_run_csv;
  /// Optional telemetry JSONL (one row per point: kernel + protocol
  /// counters, sleep histogram; see exp/telemetry.hpp). Also enables the
  /// campaign-wide obs::Registry whose snapshot trails the file.
  std::string metrics_path;
  /// This process executes points with index ≡ shard_index (mod
  /// shard_count). The default 0/1 runs the whole grid.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Explicit point ownership: this process computes exactly these indices
  /// (any order; duplicates collapse). Overrides the modulo split above —
  /// setting both is an error. This is the lease shape the src/orch driver
  /// hands to workers; arbitrary subsets also let tests fabricate partial
  /// shard files directly.
  std::vector<std::size_t> owned_points;
  /// Replications per sub-job within a point. 0 = automatic: whole points
  /// when the grid alone saturates the pool, smaller chunks otherwise.
  /// manifest.replications (or larger) forces one job per point.
  std::size_t rep_chunk = 0;
  /// Invoked after each point completes (serialized; never concurrently).
  std::function<void(const PointSummary&, std::size_t done,
                     std::size_t total)>
      progress;
  /// Live-observability hub (serve/feed.hpp). When set, the campaign
  /// publishes begin/point/progress/end into it and installs a registry
  /// snapshot as the feed's metrics source (cleared again before return).
  /// The feed only ever receives copies — attaching one cannot change a
  /// single output byte.
  serve::CampaignFeed* feed = nullptr;
  /// Identity reported through the feed (0 = the CLI campaign; submitted
  /// manifests get ids from POST /api/campaigns).
  std::uint64_t campaign_id = 0;
  /// Polled between replication chunks; returning true stops the campaign
  /// gracefully: in-flight points finish or are abandoned whole (a partial
  /// point never produces a row), finalize is skipped, and the outputs are
  /// left exactly as resumable as after a kill. Null = never stop.
  std::function<bool()> should_stop;
  /// Back the aggregator with the bounded-memory binary row store
  /// (RowStore::path_for(out_csv)) instead of the legacy in-memory row
  /// maps. In flight, rows live in the store and the CSV only materializes
  /// at finalize; a finalized campaign is byte-identical either way and
  /// deletes the store again. Ignored for in-memory campaigns (no out_csv).
  bool use_store = true;
  /// Spill-buffer budget (bytes) for the store's external-merge export;
  /// 0 = default.
  std::size_t spill_budget_bytes = 0;
};

struct CampaignReport {
  std::size_t total_points = 0;  // full grid, all shards
  std::size_t owned_points = 0;  // points this shard is responsible for
  std::size_t computed = 0;      // points simulated by this invocation
  std::size_t skipped = 0;       // points recovered from the resume file
  std::size_t replications = 0;
  double wall_s = 0.0;
  /// True when should_stop ended the campaign early; outputs are left
  /// resumable (no finalize pass ran).
  bool interrupted = false;
};

/// Runs one replicated point exactly as a campaign job would (benches and
/// tests share the engine's execution path through this). A non-null
/// `pool` executes the replications in parallel with identical results.
[[nodiscard]] world::ReplicatedMetrics run_point(
    const GridPoint& point, std::size_t replications,
    runtime::ThreadPool* pool = nullptr);

/// Executes the campaign (or this process's shard of it). Throws on
/// manifest/IO errors; a failing point's exception propagates after
/// in-flight jobs drain.
CampaignReport run_campaign(const Manifest& manifest,
                            const CampaignOptions& options);

}  // namespace pas::exp

// Sharded campaign execution.
//
// run_campaign() expands a manifest's grid, asks the aggregator which
// points already have rows (resume), and executes the rest as independent
// jobs on a runtime::ThreadPool — one job per grid point, the point's
// replications running serially inside the job around the single-threaded
// simulation kernel. Every job derives its seeds from the manifest alone
// (see grid.hpp), so shard count and scheduling order never change any
// number: `--jobs 1` and `--jobs 8` produce byte-identical output.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "exp/aggregate.hpp"
#include "exp/grid.hpp"
#include "exp/manifest.hpp"

namespace pas::exp {

struct CampaignOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = run serially in-line.
  std::size_t jobs = 0;
  /// Load `out_csv` (if present) and skip points that already have rows.
  /// Without this flag an existing output file is an error, not data loss.
  bool resume = false;
  /// CSV output path; empty aggregates in memory only (benches, tests).
  std::string out_csv;
  /// Optional JSON-lines mirror of every row.
  std::string out_json;
  /// Invoked after each point completes (serialized; never concurrently).
  std::function<void(const PointSummary&, std::size_t done,
                     std::size_t total)>
      progress;
};

struct CampaignReport {
  std::size_t total_points = 0;
  std::size_t computed = 0;  // points simulated by this invocation
  std::size_t skipped = 0;   // points recovered from the resume file
  std::size_t replications = 0;
  double wall_s = 0.0;
};

/// Runs one replicated point exactly as a campaign job would (benches and
/// tests share the engine's execution path through this).
[[nodiscard]] world::ReplicatedMetrics run_point(const GridPoint& point,
                                                 std::size_t replications);

/// Executes the campaign. Throws on manifest/IO errors; a failing point's
/// exception propagates after in-flight jobs drain.
CampaignReport run_campaign(const Manifest& manifest,
                            const CampaignOptions& options);

}  // namespace pas::exp

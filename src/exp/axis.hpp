// Sweep axes for experiment campaigns.
//
// An Axis is one dimension of a campaign grid: a scenario field to vary
// (policy, sleep cap, alert threshold, node count, stimulus kind, failure
// rate, channel loss, duration) plus the list of values to try. Axes are
// declared in the manifest; the grid expander (grid.hpp) takes their cross
// product. Categorical axes (policy, stimulus) carry string labels, numeric
// axes doubles — value_string() renders either for CSV output and resume
// keys.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "io/json.hpp"
#include "world/scenario.hpp"

namespace pas::exp {

enum class AxisKind : std::uint8_t {
  kPolicy,           // protocol.policy — any name in core::policy_registry()
  kMaxSleep,         // protocol.sleep.max_s (Figs 4/6 x-axis)
  kAlertThreshold,   // protocol.alert_threshold_s (Figs 5/7 x-axis)
  kNodeCount,        // deployment.count
  kStimulus,         // stimulus kind — "radial" / "pde" / "plume" / "two-sources"
  kFailureFraction,  // failures.fraction
  kChannelLoss,      // channel_loss (switches a perfect channel to Bernoulli)
  kDuration,         // duration_s
  kDeployment,       // deployment.kind — "grid" / "uniform" / "poisson-disk"
  kRadioRange,       // radio.range_m (connectivity/density sweeps)
  kSleepRamp,        // protocol.sleep.kind — "linear" / "exponential" / "fixed"
  kGilbertPGoodToBad,  // gilbert.p_good_to_bad (switches the channel to GE)
  kDutyCyclePeriod,  // protocol.duty_cycle.period_s (DutyCycle points)
  kHoldWindow,       // protocol.threshold_hold.hold_window_s (ThresholdHold)
  kMacEnabled,       // mac.enabled — "on" / "off" (slotted LPL MAC)
  kSlotPeriod,       // mac.slot_period_s (implies mac on)
  kTopology,         // deployment.kind — "grid" / "random-multihop"
  kSinkPlacement,    // collection.sink_placement — "center"/"corner"/"edge"
};

[[nodiscard]] constexpr const char* to_string(AxisKind k) noexcept {
  switch (k) {
    case AxisKind::kPolicy: return "policy";
    case AxisKind::kMaxSleep: return "max_sleep_s";
    case AxisKind::kAlertThreshold: return "alert_threshold_s";
    case AxisKind::kNodeCount: return "node_count";
    case AxisKind::kStimulus: return "stimulus";
    case AxisKind::kFailureFraction: return "failure_fraction";
    case AxisKind::kChannelLoss: return "channel_loss";
    case AxisKind::kDuration: return "duration_s";
    case AxisKind::kDeployment: return "deployment";
    case AxisKind::kRadioRange: return "radio_range_m";
    case AxisKind::kSleepRamp: return "sleep_ramp";
    case AxisKind::kGilbertPGoodToBad: return "ge_p_good_to_bad";
    case AxisKind::kDutyCyclePeriod: return "duty_cycle_period_s";
    case AxisKind::kHoldWindow: return "hold_window_s";
    case AxisKind::kMacEnabled: return "mac";
    case AxisKind::kSlotPeriod: return "slot_period_s";
    case AxisKind::kTopology: return "topology";
    case AxisKind::kSinkPlacement: return "sink_placement";
  }
  // Axis names become CSV column headers (resume identity); a silent "?"
  // would poison them, so fail loudly in debug builds.
  assert(!"to_string(AxisKind): value outside the enum");
  return "?";
}

[[nodiscard]] AxisKind axis_kind_from_string(std::string_view s);

/// Policy, stimulus, deployment, and sleep-ramp axes take string values;
/// the rest numbers.
[[nodiscard]] constexpr bool axis_is_categorical(AxisKind k) noexcept {
  return k == AxisKind::kPolicy || k == AxisKind::kStimulus ||
         k == AxisKind::kDeployment || k == AxisKind::kSleepRamp ||
         k == AxisKind::kMacEnabled || k == AxisKind::kTopology ||
         k == AxisKind::kSinkPlacement;
}

struct Axis {
  AxisKind kind = AxisKind::kMaxSleep;
  std::vector<double> numbers;      // numeric axes
  std::vector<std::string> labels;  // categorical axes

  [[nodiscard]] std::size_t size() const noexcept {
    return axis_is_categorical(kind) ? labels.size() : numbers.size();
  }

  /// The i-th value rendered for CSV cells and progress lines. Numbers use
  /// round-trip formatting so output is byte-stable across runs.
  [[nodiscard]] std::string value_string(std::size_t i) const;

  /// Applies the i-th value onto a scenario config.
  void apply(world::ScenarioConfig& config, std::size_t i) const;

  /// Throws std::invalid_argument on an empty axis or a value of the wrong
  /// type for the axis kind.
  void validate() const;

  /// Manifest shape: {"axis": "max_sleep_s", "values": [5, 10, 20]}.
  [[nodiscard]] static Axis from_json(const io::Json& j);
  [[nodiscard]] io::Json to_json() const;
};

}  // namespace pas::exp

// Campaign manifests.
//
// A Manifest declares one experiment campaign: a base scenario, the axes to
// sweep, the number of replications per grid point, and the root seed the
// per-point RNG streams derive from. Manifests live in JSON files (see
// examples/campaign.json) so campaigns are versionable artifacts — the
// manifest plus the code revision fully determines every number in the
// output.
//
// JSON shape:
//   {
//     "name": "fig4",
//     "description": "delay vs max sleep",
//     "replications": 30,
//     "seed_base": 1,
//     "base": { ... scenario_from_json shape, all fields optional ... },
//     "axes": [
//       {"axis": "policy", "values": ["NS", "SAS", "PAS"]},
//       {"axis": "max_sleep_s", "values": [5, 10, 15, 20]}
//     ]
//   }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/axis.hpp"
#include "io/json.hpp"
#include "world/scenario.hpp"

namespace pas::exp {

struct Manifest {
  std::string name = "campaign";
  std::string description;
  world::ScenarioConfig base{};
  /// Declared order is grid nesting order: the last axis varies fastest.
  std::vector<Axis> axes;
  std::size_t replications = 30;
  std::uint64_t seed_base = 1;

  /// Product of axis sizes (1 for an axis-free manifest: a single point).
  [[nodiscard]] std::size_t point_count() const noexcept;

  /// Total simulator runs (point_count × replications).
  [[nodiscard]] std::size_t run_count() const noexcept {
    return point_count() * replications;
  }

  /// Throws std::invalid_argument / std::runtime_error on an empty axis,
  /// zero replications, or duplicate axis kinds.
  void validate() const;

  [[nodiscard]] static Manifest from_json(const io::Json& j);
  /// Reads and parses a manifest file; validates before returning.
  [[nodiscard]] static Manifest load(const std::string& path);
  [[nodiscard]] io::Json to_json() const;
};

}  // namespace pas::exp

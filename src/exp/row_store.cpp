#include "exp/row_store.hpp"

#include <array>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

namespace pas::exp {

namespace {

constexpr char kMagic[8] = {'P', 'A', 'S', 'R', 'O', 'W', 'S', '1'};
constexpr std::uint64_t kHeaderBytes = 16;
/// Sanity cap: a payload longer than this is treated as a torn/garbage
/// length field, ending the clean prefix.
constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t crc32(const char* data, std::size_t size) {
  const auto& table = crc32_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

/// Serializes a record payload; `with_seq` embeds the sequence number
/// (spill-run framing — a store record's seq is its byte offset instead).
std::string encode_payload(RowStore::Kind kind, std::size_t point,
                           std::size_t rep, std::uint64_t seq,
                           const std::vector<std::string>& cells,
                           bool with_seq) {
  std::string payload;
  payload.push_back(static_cast<char>(kind));
  if (with_seq) put_u64(payload, seq);
  put_u64(payload, static_cast<std::uint64_t>(point));
  put_u32(payload, static_cast<std::uint32_t>(rep));
  put_u32(payload, static_cast<std::uint32_t>(cells.size()));
  for (const auto& cell : cells) {
    put_u32(payload, static_cast<std::uint32_t>(cell.size()));
    payload += cell;
  }
  return payload;
}

/// Parses a record payload; returns false on any malformed field (the
/// caller treats that as a torn record).
bool decode_payload(const char* data, std::size_t size, bool with_seq,
                    RowStore::Record& out) {
  std::size_t pos = 0;
  auto need = [&](std::size_t n) { return size - pos >= n; };
  if (!need(1)) return false;
  const auto kind = static_cast<std::uint8_t>(data[pos++]);
  if (kind < 1 || kind > 3) return false;
  out.kind = static_cast<RowStore::Kind>(kind);
  if (with_seq) {
    if (!need(8)) return false;
    out.seq = get_u64(data + pos);
    pos += 8;
  }
  if (!need(8 + 4 + 4)) return false;
  out.point = static_cast<std::size_t>(get_u64(data + pos));
  pos += 8;
  out.rep = get_u32(data + pos);
  pos += 4;
  const std::uint32_t cell_count = get_u32(data + pos);
  pos += 4;
  out.cells.clear();
  out.cells.reserve(cell_count);
  for (std::uint32_t i = 0; i < cell_count; ++i) {
    if (!need(4)) return false;
    const std::uint32_t len = get_u32(data + pos);
    pos += 4;
    if (!need(len)) return false;
    out.cells.emplace_back(data + pos, len);
    pos += len;
  }
  return pos == size;
}

void frame_record(std::string& out, const std::string& payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload.data(), payload.size()));
  out += payload;
}

/// Reads one framed record from `in`; returns false on a clean or torn end
/// (`torn` distinguishes the two). `payload` receives the verified bytes.
bool read_frame(std::istream& in, std::string& payload, bool& torn) {
  torn = false;
  char head[8];
  in.read(head, sizeof head);
  if (in.gcount() == 0) return false;  // clean end
  if (in.gcount() < static_cast<std::streamsize>(sizeof head)) {
    torn = true;
    return false;
  }
  const std::uint32_t len = get_u32(head);
  const std::uint32_t crc = get_u32(head + 4);
  if (len == 0 || len > kMaxPayloadBytes) {
    torn = true;
    return false;
  }
  payload.resize(len);
  in.read(payload.data(), len);
  if (in.gcount() < static_cast<std::streamsize>(len) ||
      crc32(payload.data(), payload.size()) != crc) {
    torn = true;
    return false;
  }
  return true;
}

}  // namespace

RowStore::RowStore(std::string path, std::uint64_t identity_hash)
    : path_(std::move(path)), identity_hash_(identity_hash) {
  if (path_.empty()) {
    throw std::invalid_argument("RowStore: path must be set");
  }
}

std::uint64_t RowStore::hash_identity(
    const std::vector<std::string>& columns, std::size_t total_points,
    std::size_t replications,
    const std::vector<std::vector<std::string>>& expected_identity) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix_byte = [&](unsigned char b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  auto mix_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte((v >> (8 * i)) & 0xFFu);
  };
  auto mix_str = [&](const std::string& s) {
    mix_u64(s.size());
    for (const char c : s) mix_byte(static_cast<unsigned char>(c));
  };
  mix_str("pasrows-identity-v1");
  mix_u64(columns.size());
  for (const auto& c : columns) mix_str(c);
  mix_u64(total_points);
  mix_u64(replications);
  mix_u64(expected_identity.size());
  for (const auto& cells : expected_identity) {
    mix_u64(cells.size());
    for (const auto& cell : cells) mix_str(cell);
  }
  return h;
}

bool RowStore::file_exists() const {
  std::error_code ec;
  return std::filesystem::exists(path_, ec);
}

std::uint64_t RowStore::scan_impl(
    const std::function<void(const Record&)>& on_record,
    bool* header_present) const {
  if (header_present != nullptr) *header_present = false;
  std::ifstream in(path_, std::ios::binary);
  if (!in) return 0;
  char header[kHeaderBytes];
  in.read(header, sizeof header);
  if (in.gcount() < static_cast<std::streamsize>(sizeof header)) {
    return 0;  // torn header: clean prefix is empty, rewrite it
  }
  if (std::memcmp(header, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("RowStore: " + path_ +
                             " is not a .pasrows row store");
  }
  if (get_u64(header + sizeof kMagic) != identity_hash_) {
    throw std::runtime_error(
        "RowStore: " + path_ +
        " was written with different campaign parameters (manifest or "
        "output flags changed?); delete it or change --out");
  }
  if (header_present != nullptr) *header_present = true;
  std::uint64_t clean = kHeaderBytes;
  std::string payload;
  Record record;
  bool torn = false;
  while (read_frame(in, payload, torn)) {
    if (!decode_payload(payload.data(), payload.size(), /*with_seq=*/false,
                        record)) {
      break;  // undecodable but CRC-valid payload: treat as torn
    }
    record.seq = clean;
    if (on_record) on_record(record);
    clean += 8 + payload.size();
  }
  return clean;
}

std::uint64_t RowStore::scan(
    const std::function<void(const Record&)>& on_record) const {
  return scan_impl(on_record, nullptr);
}

void RowStore::open_append() {
  if (out_.is_open()) return;
  bool header_present = false;
  const std::uint64_t clean = scan_impl(nullptr, &header_present);
  std::error_code ec;
  const auto size = std::filesystem::file_size(path_, ec);
  if (!ec && size > clean && clean >= kHeaderBytes) {
    // Torn tail from a kill mid-batch: truncate back to the last complete
    // record so the append stream starts on a record boundary.
    std::filesystem::resize_file(path_, clean);
  } else if (!ec && size > 0 && !header_present) {
    std::filesystem::resize_file(path_, 0);
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("RowStore: cannot open " + path_);
  }
  if (!header_present) {
    std::string header(kMagic, sizeof kMagic);
    put_u64(header, identity_hash_);
    out_.write(header.data(), static_cast<std::streamsize>(header.size()));
    out_.flush();
    if (!out_) {
      throw std::runtime_error("RowStore: cannot write header to " + path_);
    }
  }
}

void RowStore::append(Kind kind, std::size_t point, std::size_t rep,
                      const std::vector<std::string>& cells) {
  if (!out_.is_open()) {
    throw std::logic_error("RowStore: append before open_append");
  }
  frame_record(buffer_,
               encode_payload(kind, point, rep, 0, cells, /*with_seq=*/false));
}

void RowStore::flush() {
  if (buffer_.empty()) return;
  out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  out_.flush();
  if (!out_) {
    throw std::runtime_error("RowStore: write failed on " + path_);
  }
  buffer_.clear();
}

void RowStore::close() {
  if (out_.is_open()) {
    flush();
    out_.close();
  }
}

void RowStore::remove_file() {
  close();
  std::error_code ec;
  std::filesystem::remove(path_, ec);
}

void RowStore::write_run(const std::string& path,
                         const std::vector<Record>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("RowStore: cannot write spill run " + path);
  }
  std::string buffer;
  for (const auto& r : records) {
    frame_record(buffer, encode_payload(r.kind, r.point, r.rep, r.seq,
                                        r.cells, /*with_seq=*/true));
    if (buffer.size() >= (1u << 20)) {
      out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
      buffer.clear();
    }
  }
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  out.flush();
  if (!out) {
    throw std::runtime_error("RowStore: write failed on spill run " + path);
  }
}

RowStore::RunReader::RunReader(const std::string& path)
    : path_(path), in_(path, std::ios::binary) {
  if (!in_) {
    throw std::runtime_error("RowStore: cannot open spill run " + path);
  }
}

bool RowStore::RunReader::next(Record& out) {
  std::string payload;
  bool torn = false;
  if (!read_frame(in_, payload, torn)) {
    if (torn) {
      throw std::runtime_error("RowStore: corrupt spill run " + path_);
    }
    return false;
  }
  if (!decode_payload(payload.data(), payload.size(), /*with_seq=*/true,
                      out)) {
    throw std::runtime_error("RowStore: corrupt spill run " + path_);
  }
  return true;
}

}  // namespace pas::exp

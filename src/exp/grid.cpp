#include "exp/grid.hpp"

#include "sim/rng.hpp"

namespace pas::exp {

std::string GridPoint::label(const Manifest& manifest) const {
  std::string out;
  for (std::size_t a = 0; a < coords.size(); ++a) {
    if (!out.empty()) out.push_back(' ');
    out += to_string(manifest.axes[a].kind);
    out.push_back('=');
    out += manifest.axes[a].value_string(coords[a]);
  }
  if (out.empty()) out = "base";
  return out;
}

std::uint64_t point_seed(std::uint64_t seed_base, std::size_t index) noexcept {
  // Scramble the index with the golden-ratio constant before mixing so that
  // seed_base and index perturb different bit patterns; one SplitMix64 step
  // then decorrelates the streams.
  sim::SplitMix64 mixer(seed_base ^
                        ((static_cast<std::uint64_t>(index) + 1) *
                         0x9E3779B97F4A7C15ULL));
  return mixer.next();
}

std::vector<std::string> axis_columns(const Manifest& manifest) {
  std::vector<std::string> columns;
  columns.reserve(manifest.axes.size());
  for (const auto& axis : manifest.axes) {
    columns.emplace_back(to_string(axis.kind));
  }
  return columns;
}

std::vector<GridPoint> expand_grid(const Manifest& manifest) {
  manifest.validate();
  const std::size_t total = manifest.point_count();
  std::vector<GridPoint> points;
  points.reserve(total);

  std::vector<std::size_t> coords(manifest.axes.size(), 0);
  for (std::size_t index = 0; index < total; ++index) {
    GridPoint p;
    p.index = index;
    p.coords = coords;
    p.config = manifest.base;
    p.seed = point_seed(manifest.seed_base, index);
    p.config.seed = p.seed;
    p.values.reserve(manifest.axes.size());
    for (std::size_t a = 0; a < manifest.axes.size(); ++a) {
      manifest.axes[a].apply(p.config, coords[a]);
      p.values.push_back(manifest.axes[a].value_string(coords[a]));
    }
    points.push_back(std::move(p));

    // Odometer increment, last axis fastest (row-major).
    for (std::size_t a = manifest.axes.size(); a-- > 0;) {
      if (++coords[a] < manifest.axes[a].size()) break;
      coords[a] = 0;
    }
  }
  return points;
}

std::vector<std::vector<std::string>> grid_identity(
    const std::vector<GridPoint>& points) {
  std::vector<std::vector<std::string>> identity;
  identity.reserve(points.size());
  for (const auto& p : points) {
    std::vector<std::string> cells{std::to_string(p.seed)};
    cells.insert(cells.end(), p.values.begin(), p.values.end());
    identity.push_back(std::move(cells));
  }
  return identity;
}

}  // namespace pas::exp

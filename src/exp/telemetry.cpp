#include "exp/telemetry.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "obs/export.hpp"

namespace pas::exp {

namespace {

io::Json kernel_json(const metrics::KernelStats& k) {
  io::JsonObject out;
  out["events_scheduled"] = k.events_scheduled;
  out["events_dispatched"] = k.events_dispatched;
  out["events_cancelled"] = k.events_cancelled;
  out["max_pending"] = k.max_pending;
  out["timer_reschedules"] = k.timer_reschedules;
  out["rung_spawns"] = k.rung_spawns;
  out["bucket_resizes"] = k.bucket_resizes;
  out["max_bucket"] = k.max_bucket;
  out["dead_skips"] = k.dead_skips;
  return io::Json(std::move(out));
}

io::Json protocol_json(const core::ProtocolStats& p) {
  io::JsonObject out;
  out["wakeups"] = p.wakeups;
  out["requests_sent"] = p.requests_sent;
  out["responses_sent"] = p.responses_sent;
  out["responses_pushed"] = p.responses_pushed;
  out["pushes_suppressed"] = p.pushes_suppressed;
  out["messages_received"] = p.messages_received;
  out["alert_entries"] = p.alert_entries;
  out["alert_exits"] = p.alert_exits;
  out["covered_entries"] = p.covered_entries;
  out["covered_timeouts"] = p.covered_timeouts;
  out["failures"] = p.failures;
  out["prediction_hits"] = p.prediction_hits;
  out["prediction_misses"] = p.prediction_misses;
  out["sleep_s"] = obs::histogram_json(p.sleep_s);
  return io::Json(std::move(out));
}

io::Json net_json(const net::MacStats& mac, const net::CollectionStats& c) {
  io::JsonObject m;
  m["unicasts"] = mac.unicasts;
  m["broadcasts"] = mac.broadcasts;
  m["data_tx"] = mac.data_tx;
  m["rendezvous_tx"] = mac.rendezvous_tx;
  m["cca_busy"] = mac.cca_busy;
  m["backoffs"] = mac.backoffs;
  m["retries"] = mac.retries;
  m["collisions"] = mac.collisions;
  m["captures"] = mac.captures;
  m["delivered"] = mac.delivered;
  m["acks"] = mac.acks;
  m["drops_cca"] = mac.drops_cca;
  m["drops_retry"] = mac.drops_retry;
  m["lpl_samples"] = mac.lpl_samples;
  m["lpl_wakeups"] = mac.lpl_wakeups;
  m["overhears"] = mac.overhears;
  io::JsonObject coll;
  coll["originated"] = c.originated;
  coll["forwarded"] = c.forwarded;
  coll["delivered"] = c.delivered;
  coll["delivered_predicted"] = c.delivered_predicted;
  coll["dropped_ttl"] = c.dropped_ttl;
  coll["dropped_queue"] = c.dropped_queue;
  coll["sum_delay_s"] = c.sum_delay_s;
  coll["sum_hops"] = c.sum_hops;
  io::JsonObject out;
  out["mac"] = io::Json(std::move(m));
  out["collection"] = io::Json(std::move(coll));
  return io::Json(std::move(out));
}

/// Parses one JSONL line into a point row; returns the point index or
/// SIZE_MAX when the line is not a (valid) point row.
std::size_t parse_point_row(const std::string& line, std::size_t total_points,
                            io::Json* out) {
  if (line.empty()) return SIZE_MAX;
  try {
    io::Json row = io::Json::parse(line);
    if (!row.is_object()) return SIZE_MAX;
    if (row.string_or("kind", "") != "point") return SIZE_MAX;
    if (!row.contains("point") || !row.at("point").is_number()) {
      return SIZE_MAX;
    }
    const double idx = row.at("point").as_double();
    if (idx < 0.0 || (total_points > 0 &&
                      idx >= static_cast<double>(total_points))) {
      return SIZE_MAX;
    }
    if (out != nullptr) *out = std::move(row);
    return static_cast<std::size_t>(idx);
  } catch (const std::runtime_error&) {
    return SIZE_MAX;
  }
}

void write_sorted(const std::string& path,
                  const std::map<std::size_t, std::string>& rows,
                  const std::vector<io::Json>& trailers) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("telemetry: cannot write " + tmp);
    }
    for (const auto& entry : rows) out << entry.second << '\n';
    for (const auto& trailer : trailers) out << trailer.dump() << '\n';
  }
  std::filesystem::rename(tmp, path);
}

}  // namespace

io::Json telemetry_point_row(const GridPoint& point,
                             const std::vector<std::string>& axis_names,
                             const world::ReplicatedMetrics& m) {
  world::RunTelemetry telemetry;
  for (const auto& run : m.runs) telemetry.add(run);

  io::JsonObject row;
  row["kind"] = "point";
  row["point"] = point.index;
  // Seeds use all 64 bits; io::Json numbers are doubles, so emit a string.
  row["seed"] = std::to_string(point.seed);
  row["replications"] = telemetry.runs;
  row["policy"] = std::string(core::to_string(point.config.protocol.policy));
  io::JsonObject axes;
  for (std::size_t a = 0;
       a < axis_names.size() && a < point.values.size(); ++a) {
    axes[axis_names[a]] = point.values[a];
  }
  row["axes"] = std::move(axes);
  row["kernel"] = kernel_json(telemetry.kernel);
  row["protocol"] = protocol_json(telemetry.protocol);
  // The "net" section exists only for MAC-enabled points: mac-off rows stay
  // byte-identical to pre-MAC builds (the JSONL schema marks it optional).
  if (point.config.mac.enabled) {
    row["net"] = net_json(telemetry.mac, telemetry.collection);
  }
  return io::Json(std::move(row));
}

TelemetrySink::TelemetrySink(TelemetryOptions options)
    : options_(std::move(options)) {
  if (options_.path.empty()) {
    throw std::invalid_argument("TelemetrySink: path must be set");
  }
}

bool TelemetrySink::mark_seen(std::size_t point) {
  if (point >= seen_.size()) {
    if (options_.total_points > 0) return false;  // out of range: drop
    seen_.resize(point + 1, 0);
  }
  if (seen_[point] != 0) return false;
  seen_[point] = 1;
  ++count_;
  return true;
}

std::size_t TelemetrySink::load_existing() {
  std::ifstream in(options_.path);
  if (!in) return 0;
  if (options_.total_points > 0 && seen_.empty()) {
    seen_.assign(options_.total_points, 0);
  }
  // Stream the survivors into a compacted copy (first row per point wins,
  // stale trailers and torn lines dropped) instead of buffering them: the
  // sink only remembers *which* points have rows, never the rows.
  const std::string tmp = options_.path + ".tmp";
  std::size_t recovered = 0;
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("telemetry: cannot write " + tmp);
    }
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t point =
          parse_point_row(line, options_.total_points, nullptr);
      if (point == SIZE_MAX) continue;
      if (!mark_seen(point)) continue;
      out << line << '\n';
      ++recovered;
    }
  }
  in.close();
  std::filesystem::rename(tmp, options_.path);
  return recovered;
}

void TelemetrySink::record(const GridPoint& point,
                           const world::ReplicatedMetrics& m) {
  std::string line =
      telemetry_point_row(point, options_.axis_names, m).dump();
  const std::lock_guard lock(mutex_);
  if (options_.total_points > 0 && seen_.empty()) {
    seen_.assign(options_.total_points, 0);
  }
  if (!mark_seen(point.index)) return;
  if (!out_.is_open()) {
    out_.open(options_.path, std::ios::app);
    if (!out_) {
      throw std::runtime_error("telemetry: cannot open " + options_.path);
    }
  }
  out_ << line << '\n' << std::flush;
}

void TelemetrySink::finalize(const std::vector<io::Json>& trailers) {
  const std::lock_guard lock(mutex_);
  if (out_.is_open()) out_.close();
  // The file holds one row per point in arrival order. Index (point, byte
  // offset) pairs — O(points) of fixed-size entries — sort by point, then
  // seek-copy each line into the sorted artifact. Byte-identical to the
  // legacy map-backed rewrite since lines are copied verbatim.
  std::vector<std::pair<std::size_t, std::streamoff>> index;
  {
    std::ifstream in(options_.path, std::ios::binary);
    if (in) {
      std::string line;
      while (true) {
        const std::streamoff offset = in.tellg();
        if (!std::getline(in, line)) break;
        const std::size_t point =
            parse_point_row(line, options_.total_points, nullptr);
        if (point == SIZE_MAX) continue;
        index.emplace_back(point, offset);
      }
    }
  }
  std::stable_sort(index.begin(), index.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  // First row per point wins, mirroring load_existing's dedup.
  index.erase(std::unique(index.begin(), index.end(),
                          [](const auto& a, const auto& b) {
                            return a.first == b.first;
                          }),
              index.end());

  const std::string tmp = options_.path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("telemetry: cannot write " + tmp);
    }
    std::ifstream in(options_.path, std::ios::binary);
    std::string line;
    for (const auto& [point, offset] : index) {
      (void)point;
      in.clear();
      in.seekg(offset);
      if (!std::getline(in, line)) {
        throw std::runtime_error("telemetry: cannot re-read " +
                                 options_.path);
      }
      out << line << '\n';
    }
    for (const auto& trailer : trailers) out << trailer.dump() << '\n';
  }
  std::filesystem::rename(tmp, options_.path);
}

std::size_t TelemetrySink::recorded_count() const {
  const std::lock_guard lock(mutex_);
  return count_;
}

std::size_t merge_telemetry(const std::vector<std::string>& inputs,
                            const std::string& out_path,
                            const std::vector<io::Json>& trailers) {
  std::map<std::size_t, std::string> rows;
  for (const auto& input : inputs) {
    std::ifstream in(input);
    if (!in) continue;  // worker that never completed a point
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t point = parse_point_row(line, 0, nullptr);
      if (point == SIZE_MAX) continue;
      rows.emplace(point, line);  // first input wins, like the CSV merge
    }
  }
  write_sorted(out_path, rows, trailers);
  return rows.size();
}

}  // namespace pas::exp

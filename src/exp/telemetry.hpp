// Campaign telemetry output (pas-exp --metrics).
//
// A TelemetrySink mirrors the Aggregator's lifecycle for the structured
// telemetry file: one JSONL row per completed grid point, appended + flushed
// as points finish (crash-safe), resumable, and finalized point-sorted
// through a temp file + rename so the completed artifact is byte-identical
// no matter how many threads — or how many resumed invocations — produced
// it. Trailer rows (a campaign-wide registry snapshot, the orchestrator's
// wall-clock instruments) are appended after the point rows at finalize.
//
// A point row is a pure function of the point's identity and its
// replications' RunMetrics, so `--jobs 1`, `--jobs 8`, `--shard`, and
// `--drive` all produce identical point rows; only wall-clock trailer
// content (orchestrator latencies) may differ between schedules.
//
// Row schema (keys sorted by io::Json):
//   {"kind":"point","point":N,"seed":"<u64>","replications":R,
//    "policy":"PAS","axes":{...},"kernel":{...},"protocol":{...}}
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "exp/grid.hpp"
#include "io/json.hpp"
#include "world/sweep.hpp"

namespace pas::exp {

struct TelemetryOptions {
  /// JSONL output path (required; callers that don't want telemetry simply
  /// don't construct a sink).
  std::string path;
  std::vector<std::string> axis_names;
  std::size_t total_points = 0;
};

/// Builds the per-point telemetry row from a point's replicated runs.
[[nodiscard]] io::Json telemetry_point_row(
    const GridPoint& point, const std::vector<std::string>& axis_names,
    const world::ReplicatedMetrics& m);

class TelemetrySink {
 public:
  explicit TelemetrySink(TelemetryOptions options);

  /// Loads point rows from an existing file (resume). Deliberately lenient
  /// where the Aggregator is strict: the CSV is the ground truth a resumed
  /// campaign validates against; the telemetry file only needs to keep the
  /// rows that are still meaningful. Unparsable lines, rows for foreign
  /// points, and stale trailer rows are dropped (trailers are re-emitted at
  /// finalize). The surviving rows are streamed into a compacted file
  /// (temp + rename) rather than held in memory — the sink keeps only a
  /// presence bitmap. Returns the number of points recovered. Call before
  /// the first record().
  std::size_t load_existing();

  /// Records one completed point. Thread-safe; appends + flushes so the row
  /// survives a kill. A duplicate point is ignored (first row wins).
  void record(const GridPoint& point, const world::ReplicatedMetrics& m);

  /// Rewrites the file in point order (temp file + atomic rename), with
  /// `trailers` appended after the point rows. Lenient about gaps: a
  /// resumed campaign whose earlier invocation ran without --metrics has no
  /// rows for those points, and that must not block the rest.
  void finalize(const std::vector<io::Json>& trailers = {});

  [[nodiscard]] std::size_t recorded_count() const;

 private:
  /// Marks a point as present; returns false if it already was. Grows the
  /// bitmap on demand when total_points is unknown (0).
  bool mark_seen(std::size_t point);

  TelemetryOptions options_;
  mutable std::mutex mutex_;
  /// Presence bitmap indexed by point — the file itself holds the rows, so
  /// the sink's memory is O(total_points) bits, not O(rows).
  std::vector<std::uint8_t> seen_;
  std::size_t count_ = 0;
  std::ofstream out_;
};

/// Recombines telemetry part files (orchestrator workers' `<path>.w<k>`)
/// into `out_path`: point rows deduplicated (first input wins, mirroring
/// the driver's crash sanitization), sorted by point, `trailers` appended.
/// Missing inputs are skipped — a worker that never completed a point
/// writes no part file. Returns the number of merged point rows.
std::size_t merge_telemetry(const std::vector<std::string>& inputs,
                            const std::string& out_path,
                            const std::vector<io::Json>& trailers = {});

}  // namespace pas::exp

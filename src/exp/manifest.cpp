#include "exp/manifest.hpp"

#include <stdexcept>

#include "world/config_json.hpp"

namespace pas::exp {

std::size_t Manifest::point_count() const noexcept {
  std::size_t n = 1;
  for (const auto& axis : axes) n *= axis.size();
  return n;
}

void Manifest::validate() const {
  if (replications == 0) {
    throw std::invalid_argument("Manifest: replications must be >= 1");
  }
  bool sweeps_channel_loss = false, sweeps_ge = false;
  bool sweeps_topology = false, sweeps_deployment = false;
  for (std::size_t i = 0; i < axes.size(); ++i) {
    axes[i].validate();
    sweeps_channel_loss |= axes[i].kind == AxisKind::kChannelLoss;
    sweeps_ge |= axes[i].kind == AxisKind::kGilbertPGoodToBad;
    sweeps_topology |= axes[i].kind == AxisKind::kTopology;
    sweeps_deployment |= axes[i].kind == AxisKind::kDeployment;
    for (std::size_t k = i + 1; k < axes.size(); ++k) {
      if (axes[i].kind == axes[k].kind) {
        throw std::invalid_argument(std::string("Manifest: duplicate axis ") +
                                    to_string(axes[i].kind));
      }
    }
  }
  if (sweeps_channel_loss && sweeps_ge) {
    // ge_p_good_to_bad selects the Gilbert–Elliott channel, which ignores
    // channel_loss — combining the axes would emit a channel_loss column
    // with no effect on the simulation.
    throw std::invalid_argument(
        "Manifest: channel_loss and ge_p_good_to_bad axes cannot be "
        "combined (the Gilbert-Elliott channel ignores channel_loss)");
  }
  if (sweeps_topology && sweeps_deployment) {
    // Both axes write deployment.kind; whichever applies last would silently
    // win and the other's column would lie about the simulated layout.
    throw std::invalid_argument(
        "Manifest: topology and deployment axes cannot be combined (both "
        "select the deployment layout)");
  }
  base.protocol.validate();
}

Manifest Manifest::from_json(const io::Json& j) {
  for (const auto& [key, value] : j.as_object()) {
    (void)value;
    if (key != "name" && key != "description" && key != "replications" &&
        key != "seed_base" && key != "base" && key != "axes") {
      throw std::runtime_error("Manifest: unknown key \"" + key + "\"");
    }
  }
  Manifest m;
  m.name = j.string_or("name", m.name);
  m.description = j.string_or("description", m.description);
  const double reps =
      j.number_or("replications", static_cast<double>(m.replications));
  if (reps < 0.0) {
    throw std::runtime_error("Manifest: replications must be >= 0");
  }
  m.replications = static_cast<std::size_t>(reps);
  const double seed_base =
      j.number_or("seed_base", static_cast<double>(m.seed_base));
  if (seed_base < 0.0) {
    throw std::runtime_error("Manifest: seed_base must be >= 0");
  }
  m.seed_base = static_cast<std::uint64_t>(seed_base);
  if (j.contains("base")) {
    m.base = world::scenario_from_json(j.at("base"));
  }
  if (j.contains("axes")) {
    for (const auto& a : j.at("axes").as_array()) {
      m.axes.push_back(Axis::from_json(a));
    }
  }
  m.validate();
  return m;
}

Manifest Manifest::load(const std::string& path) {
  return from_json(io::Json::parse_file(path));
}

io::Json Manifest::to_json() const {
  io::Json j;
  j["name"] = name;
  if (!description.empty()) j["description"] = description;
  j["replications"] = replications;
  j["seed_base"] = static_cast<double>(seed_base);
  j["base"] = world::to_json(base);
  io::Json axes_json{io::JsonArray{}};
  for (const auto& axis : axes) axes_json.push_back(axis.to_json());
  j["axes"] = std::move(axes_json);
  return j;
}

}  // namespace pas::exp

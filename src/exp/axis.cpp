#include "exp/axis.hpp"

#include <stdexcept>

#include "io/csv.hpp"
#include "world/config_json.hpp"

namespace pas::exp {

AxisKind axis_kind_from_string(std::string_view s) {
  if (s == "policy") return AxisKind::kPolicy;
  if (s == "max_sleep_s") return AxisKind::kMaxSleep;
  if (s == "alert_threshold_s") return AxisKind::kAlertThreshold;
  if (s == "node_count") return AxisKind::kNodeCount;
  if (s == "stimulus") return AxisKind::kStimulus;
  if (s == "failure_fraction") return AxisKind::kFailureFraction;
  if (s == "channel_loss") return AxisKind::kChannelLoss;
  if (s == "duration_s") return AxisKind::kDuration;
  if (s == "deployment") return AxisKind::kDeployment;
  if (s == "radio_range_m") return AxisKind::kRadioRange;
  if (s == "sleep_ramp") return AxisKind::kSleepRamp;
  if (s == "ge_p_good_to_bad") return AxisKind::kGilbertPGoodToBad;
  if (s == "duty_cycle_period_s") return AxisKind::kDutyCyclePeriod;
  if (s == "hold_window_s") return AxisKind::kHoldWindow;
  if (s == "mac") return AxisKind::kMacEnabled;
  if (s == "slot_period_s") return AxisKind::kSlotPeriod;
  if (s == "topology") return AxisKind::kTopology;
  if (s == "sink_placement") return AxisKind::kSinkPlacement;
  throw std::runtime_error("Axis: unknown axis \"" + std::string(s) + "\"");
}

std::string Axis::value_string(std::size_t i) const {
  if (axis_is_categorical(kind)) return labels.at(i);
  return io::format_double(numbers.at(i));
}

void Axis::apply(world::ScenarioConfig& config, std::size_t i) const {
  switch (kind) {
    case AxisKind::kPolicy:
      config.protocol.policy = world::policy_from_string(labels.at(i));
      break;
    case AxisKind::kMaxSleep:
      config.protocol.sleep.max_s = numbers.at(i);
      break;
    case AxisKind::kAlertThreshold:
      config.protocol.alert_threshold_s = numbers.at(i);
      break;
    case AxisKind::kNodeCount:
      if (numbers.at(i) < 0.0) {
        throw std::invalid_argument("Axis node_count: value must be >= 0");
      }
      config.deployment.count = static_cast<std::size_t>(numbers.at(i));
      break;
    case AxisKind::kStimulus:
      config.stimulus = world::stimulus_kind_from_string(labels.at(i));
      break;
    case AxisKind::kFailureFraction:
      config.failures.fraction = numbers.at(i);
      // A failure axis is meaningless with a zero-length window; default to
      // the whole run unless the manifest base configured one.
      if (config.failures.window_end_s <= config.failures.window_start_s) {
        config.failures.window_end_s = config.duration_s;
      }
      break;
    case AxisKind::kChannelLoss:
      config.channel_loss = numbers.at(i);
      if (config.channel == world::ChannelKind::kPerfect &&
          config.channel_loss > 0.0) {
        config.channel = world::ChannelKind::kBernoulli;
      }
      break;
    case AxisKind::kDuration:
      config.duration_s = numbers.at(i);
      break;
    case AxisKind::kDeployment:
      config.deployment.kind =
          world::deployment_kind_from_string(labels.at(i));
      break;
    case AxisKind::kRadioRange:
      if (numbers.at(i) <= 0.0) {
        throw std::invalid_argument("Axis radio_range_m: value must be > 0");
      }
      config.radio.range_m = numbers.at(i);
      break;
    case AxisKind::kSleepRamp:
      config.protocol.sleep.kind =
          world::ramp_kind_from_string(labels.at(i));
      break;
    case AxisKind::kGilbertPGoodToBad:
      if (numbers.at(i) < 0.0 || numbers.at(i) > 1.0) {
        throw std::invalid_argument(
            "Axis ge_p_good_to_bad: value must be in [0, 1]");
      }
      config.gilbert.p_good_to_bad = numbers.at(i);
      // Sweeping a Gilbert–Elliott parameter implies the bursty channel;
      // the other GE parameters come from the manifest base (or defaults).
      config.channel = world::ChannelKind::kGilbertElliott;
      break;
    case AxisKind::kDutyCyclePeriod:
      if (numbers.at(i) <= 0.0) {
        throw std::invalid_argument(
            "Axis duty_cycle_period_s: value must be > 0");
      }
      config.protocol.duty_cycle.period_s = numbers.at(i);
      break;
    case AxisKind::kHoldWindow:
      if (numbers.at(i) < 0.0) {
        throw std::invalid_argument("Axis hold_window_s: value must be >= 0");
      }
      config.protocol.threshold_hold.hold_window_s = numbers.at(i);
      break;
    case AxisKind::kMacEnabled: {
      const std::string& v = labels.at(i);
      if (v != "on" && v != "off") {
        throw std::invalid_argument("Axis mac: values must be on/off");
      }
      config.mac.enabled = v == "on";
      break;
    }
    case AxisKind::kSlotPeriod:
      if (numbers.at(i) <= 0.0) {
        throw std::invalid_argument("Axis slot_period_s: value must be > 0");
      }
      config.mac.slot_period_s = numbers.at(i);
      // Sweeping the wake-slot period implies the MAC, like channel_loss
      // implies the Bernoulli channel.
      config.mac.enabled = true;
      break;
    case AxisKind::kTopology:
      // Multihop spellings of the deployment layouts: a regular grid vs. the
      // paper's aerial scattering (both typically sized well beyond one hop).
      if (labels.at(i) == "grid") {
        config.deployment.kind = world::DeploymentKind::kGrid;
      } else if (labels.at(i) == "random-multihop") {
        config.deployment.kind = world::DeploymentKind::kUniform;
      } else {
        throw std::invalid_argument(
            "Axis topology: values must be grid/random-multihop");
      }
      break;
    case AxisKind::kSinkPlacement:
      config.collection.sink_placement =
          net::sink_placement_from_string(labels.at(i));
      break;
  }
}

void Axis::validate() const {
  if (size() == 0) {
    throw std::invalid_argument(std::string("Axis ") + to_string(kind) +
                                ": no values");
  }
  if (axis_is_categorical(kind) && !numbers.empty()) {
    throw std::invalid_argument(std::string("Axis ") + to_string(kind) +
                                ": expects string values");
  }
  if (!axis_is_categorical(kind) && !labels.empty()) {
    throw std::invalid_argument(std::string("Axis ") + to_string(kind) +
                                ": expects numeric values");
  }
  // Applying every value to a scratch config surfaces bad labels (unknown
  // policy/stimulus names) at manifest-load time instead of mid-campaign.
  world::ScenarioConfig scratch;
  for (std::size_t i = 0; i < size(); ++i) apply(scratch, i);
}

Axis Axis::from_json(const io::Json& j) {
  Axis axis;
  axis.kind = axis_kind_from_string(j.at("axis").as_string());
  for (const auto& v : j.at("values").as_array()) {
    if (axis_is_categorical(axis.kind)) {
      axis.labels.push_back(v.as_string());
    } else {
      axis.numbers.push_back(v.as_double());
    }
  }
  axis.validate();
  return axis;
}

io::Json Axis::to_json() const {
  io::Json j;
  j["axis"] = std::string(to_string(kind));
  io::Json values{io::JsonArray{}};
  if (axis_is_categorical(kind)) {
    for (const auto& l : labels) values.push_back(l);
  } else {
    for (const auto n : numbers) values.push_back(n);
  }
  j["values"] = std::move(values);
  return j;
}

}  // namespace pas::exp

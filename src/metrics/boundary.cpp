#include "metrics/boundary.hpp"

#include <algorithm>
#include <stdexcept>

namespace pas::metrics {

std::vector<geom::Vec2> estimate_boundary_points(
    const std::vector<geom::Vec2>& positions, const std::vector<bool>& covered,
    double range) {
  if (positions.size() != covered.size()) {
    throw std::invalid_argument(
        "estimate_boundary_points: positions/covered size mismatch");
  }
  std::vector<geom::Vec2> points;
  const double r2 = range * range;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (!covered[i]) continue;
    for (std::size_t j = 0; j < positions.size(); ++j) {
      if (covered[j] || i == j) continue;
      if (geom::distance2(positions[i], positions[j]) <= r2) {
        points.push_back(geom::lerp(positions[i], positions[j], 0.5));
      }
    }
  }
  return points;
}

BoundaryAccuracy boundary_accuracy(const std::vector<geom::Vec2>& estimated,
                                   const geom::Polyline& truth) {
  BoundaryAccuracy acc;
  if (estimated.empty() || truth.empty()) return acc;
  double sum = 0.0;
  for (const geom::Vec2 p : estimated) {
    const double d = truth.distance_to(p);
    sum += d;
    acc.max_error_m = std::max(acc.max_error_m, d);
  }
  acc.samples = estimated.size();
  acc.mean_error_m = sum / static_cast<double>(acc.samples);
  return acc;
}

}  // namespace pas::metrics

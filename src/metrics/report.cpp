#include "metrics/report.hpp"

#include <algorithm>

#include "metrics/stats.hpp"

namespace pas::metrics {

std::vector<NodeOutcome> collect_outcomes(
    const std::vector<node::SensorNode>& nodes) {
  std::vector<NodeOutcome> out;
  collect_outcomes(nodes, out);
  return out;
}

void collect_outcomes(const std::vector<node::SensorNode>& nodes,
                      std::vector<NodeOutcome>& out) {
  out.clear();
  out.reserve(nodes.size());
  for (const auto& n : nodes) {
    NodeOutcome o;
    o.id = n.id;
    o.position = n.position;
    o.arrival = n.arrival;
    o.detected = n.detected;
    o.was_reached = n.was_reached();
    o.was_detected = n.has_detected();
    o.failed = n.failed;
    if (o.was_detected) o.delay_s = n.detection_delay();
    o.energy_sleep_j = n.meter.sleep_j();
    o.energy_active_j = n.meter.active_j();
    o.energy_tx_j = n.meter.tx_j();
    o.energy_transition_j = n.meter.transition_j();
    o.energy_cca_j = n.meter.cca_j();
    o.energy_preamble_j = n.meter.preamble_j();
    o.energy_listen_j = n.meter.listen_j();
    o.energy_j = o.energy_sleep_j + o.energy_active_j + o.energy_tx_j +
                 o.energy_transition_j + n.meter.rx_j() + o.energy_cca_j +
                 o.energy_preamble_j + o.energy_listen_j;
    o.active_s = n.meter.active_s();
    o.sleep_s = n.meter.sleep_s();
    o.transitions = n.meter.transitions();
    o.tx_count = n.meter.tx_count();
    out.push_back(o);
  }
}

RunMetrics summarize(const std::vector<NodeOutcome>& outcomes,
                     double duration_s, double censor_cutoff_s,
                     const net::Network::Stats& network,
                     const core::ProtocolStats& protocol) {
  RunMetrics m;
  m.node_count = outcomes.size();
  m.duration_s = duration_s;
  m.network = network;
  m.protocol = protocol;

  std::vector<double> delays;
  RunningStats energy;
  RunningStats tx_energy;
  RunningStats active_fraction;
  for (const auto& o : outcomes) {
    if (o.was_reached && !o.failed) {
      ++m.reached;
      if (o.was_detected) {
        ++m.detected;
        delays.push_back(o.delay_s);
      } else if (o.arrival > censor_cutoff_s) {
        ++m.censored;
      } else {
        ++m.missed;
      }
    }
    energy.add(o.energy_j);
    tx_energy.add(o.energy_tx_j);
    if (duration_s > 0.0) active_fraction.add(o.active_s / duration_s);
  }

  if (!delays.empty()) {
    const Summary s = Summary::of(delays);
    m.avg_delay_s = s.mean;
    m.max_delay_s = s.max;
    m.p95_delay_s = quantile(delays, 0.95);
  }
  m.avg_energy_j = energy.mean();
  m.total_energy_j = energy.sum();
  m.avg_energy_tx_j = tx_energy.mean();
  m.avg_active_fraction = active_fraction.mean();
  return m;
}

}  // namespace pas::metrics

// Per-run metric extraction.
//
// The two paper metrics (§4.1):
//   * average detection delay  — mean over nodes of (detection − arrival);
//     active nodes contribute 0, sleeping nodes their wake-up lag;
//   * average energy consumption — mean per-node energy over the run,
//     controller + communication.
// plus enough breakdown (per-state energy, message counts, percentiles) to
// explain *why* a policy behaves as it does.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/protocol.hpp"
#include "net/collection.hpp"
#include "net/mac.hpp"
#include "net/network.hpp"
#include "node/sensor_node.hpp"
#include "sim/time.hpp"

namespace pas::metrics {

struct NodeOutcome {
  std::uint32_t id = 0;
  geom::Vec2 position{};
  sim::Time arrival = sim::kNever;
  sim::Time detected = sim::kNever;
  /// detected − arrival; only meaningful when detected (see `was_detected`).
  double delay_s = 0.0;
  bool was_reached = false;
  bool was_detected = false;
  bool failed = false;
  double energy_j = 0.0;
  double energy_sleep_j = 0.0;
  double energy_active_j = 0.0;
  double energy_tx_j = 0.0;
  double energy_transition_j = 0.0;
  // MAC line items (zero when the MAC is off).
  double energy_cca_j = 0.0;
  double energy_preamble_j = 0.0;
  double energy_listen_j = 0.0;
  double active_s = 0.0;
  double sleep_s = 0.0;
  std::uint64_t transitions = 0;
  std::uint64_t tx_count = 0;
};

/// Kernel-level counters for one run, lifted off the simulator after the
/// run drains. Everything here is a pure function of the schedule (and so
/// byte-deterministic across thread pools / sharding); the schedule-
/// dependent event-slab watermark is deliberately excluded.
struct KernelStats {
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_dispatched = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t max_pending = 0;
  std::uint64_t timer_reschedules = 0;
  // Event-queue shape (ladder index): how the pending set organised itself.
  // Pure functions of the schedule like everything else here; all four are
  // zero in PAS_EVENTQ_HEAP builds (the heap has no rungs or buckets).
  std::uint64_t rung_spawns = 0;
  std::uint64_t bucket_resizes = 0;
  std::uint64_t max_bucket = 0;
  std::uint64_t dead_skips = 0;

  void add(const KernelStats& other) {
    events_scheduled += other.events_scheduled;
    events_dispatched += other.events_dispatched;
    events_cancelled += other.events_cancelled;
    max_pending = std::max(max_pending, other.max_pending);
    timer_reschedules += other.timer_reschedules;
    rung_spawns += other.rung_spawns;
    bucket_resizes += other.bucket_resizes;
    max_bucket = std::max(max_bucket, other.max_bucket);
    dead_skips += other.dead_skips;
  }
};

struct RunMetrics {
  std::size_t node_count = 0;
  double duration_s = 0.0;

  // Detection delay over reached-and-detected, non-failed nodes.
  double avg_delay_s = 0.0;
  double max_delay_s = 0.0;
  double p95_delay_s = 0.0;
  std::size_t reached = 0;
  std::size_t detected = 0;
  /// Reached early enough to have woken again, yet never detected — a real
  /// protocol miss.
  std::size_t missed = 0;
  /// Reached so close to the end of the run that a sleeping node need not
  /// have woken again (arrival after the censor cutoff) and undetected —
  /// right-censored, not a protocol failure.
  std::size_t censored = 0;

  // Energy over all nodes (failed nodes included up to their death).
  double avg_energy_j = 0.0;
  double total_energy_j = 0.0;
  double avg_energy_tx_j = 0.0;
  double avg_active_fraction = 0.0;  // share of the run spent active

  net::Network::Stats network{};
  core::ProtocolStats protocol{};
  /// Filled by world::Workspace after the run (summarize() leaves it
  /// zeroed — the summarizer never sees the simulator).
  KernelStats kernel{};
  /// Filled by world::Workspace when the MAC is enabled (all-zero
  /// otherwise — summarize() never sees the net layer's internals).
  net::MacStats mac{};
  net::CollectionStats collection{};
};

/// Builds outcome rows from finalized nodes. Call node.meter.finalize(end)
/// before this (run_scenario does).
[[nodiscard]] std::vector<NodeOutcome> collect_outcomes(
    const std::vector<node::SensorNode>& nodes);

/// Same, writing into a caller-owned buffer (cleared first) so replicated
/// runs through world::Workspace reuse one allocation.
void collect_outcomes(const std::vector<node::SensorNode>& nodes,
                      std::vector<NodeOutcome>& out);

/// Aggregates outcomes into the run-level metrics. Undetected nodes whose
/// arrival falls after `censor_cutoff_s` count as censored rather than
/// missed (run_scenario passes duration − max-sleep − slack; pass
/// `duration_s` to disable censoring).
[[nodiscard]] RunMetrics summarize(const std::vector<NodeOutcome>& outcomes,
                                   double duration_s, double censor_cutoff_s,
                                   const net::Network::Stats& network,
                                   const core::ProtocolStats& protocol);

}  // namespace pas::metrics

#include "metrics/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace pas::metrics {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Summary Summary::of(std::span<const double> values) {
  RunningStats rs;
  for (const double v : values) rs.add(v);
  Summary s;
  s.n = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.ci95_half =
      s.n > 1 ? 1.96 * s.stddev / std::sqrt(static_cast<double>(s.n)) : 0.0;
  return s;
}

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) {
    throw std::invalid_argument("quantile_sorted: empty sample");
  }
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return quantile_sorted(values, q);
}

std::vector<double> quantiles(std::vector<double> values,
                              std::span<const double> qs) {
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) out.push_back(quantile_sorted(values, q));
  return out;
}

Percentiles Percentiles::of(std::vector<double> values) {
  return of_inplace(values);
}

Percentiles Percentiles::of(std::span<const double> values) {
  return of(std::vector<double>(values.begin(), values.end()));
}

Percentiles Percentiles::of_inplace(std::span<double> values) {
  if (values.empty()) return {};
  std::sort(values.begin(), values.end());
  return Percentiles{.p50 = quantile_sorted(values, 0.50),
                     .p95 = quantile_sorted(values, 0.95),
                     .p99 = quantile_sorted(values, 0.99)};
}

}  // namespace pas::metrics

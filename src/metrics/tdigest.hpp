// Streaming percentile sketch (merging t-digest).
//
// Dunning & Ertl's t-digest in its merging form: incoming values buffer
// until a threshold, then a single sorted merge compresses buffer +
// centroids under the k1 scale function k(q) = (δ/2π)·asin(2q−1), which
// keeps centroids small near the tails — exactly where the campaign's
// p95/p99 columns read. Memory is O(compression) regardless of how many
// values stream in, so quantiles over 100k+ replications no longer require
// materializing (and sorting) the full sample.
//
// Determinism: compression points depend only on the insertion sequence
// (buffered merges use stable sorts and fixed thresholds), so a given run
// order always yields the same digest — replications are reduced in
// replication order, which makes campaign outputs reproducible.
//
// Accuracy is a rank error of roughly 1/compression near the median and
// far better at the tails; the Aggregator keeps exact quantiles for small
// replication counts so existing golden CSVs stay bit-identical, and only
// switches to the sketch beyond that.
#pragma once

#include <cstddef>
#include <vector>

namespace pas::metrics {

class TDigest {
 public:
  explicit TDigest(double compression = 100.0);

  /// Adds one observation with the given weight.
  void add(double x, double weight = 1.0);

  /// Merges another digest into this one.
  void merge(const TDigest& other);

  /// Interpolated quantile estimate, q in [0, 1]. An empty digest yields
  /// 0.0, matching Percentiles::of's convention for empty samples.
  [[nodiscard]] double quantile(double q) const;

  /// Total weight added (count when all weights are 1).
  [[nodiscard]] double total_weight() const noexcept {
    return total_weight_ + buffered_weight_;
  }
  [[nodiscard]] std::size_t count() const noexcept {
    return static_cast<std::size_t>(total_weight() + 0.5);
  }

  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

  /// Number of centroids after compressing the pending buffer (test hook
  /// for the O(compression) memory bound).
  [[nodiscard]] std::size_t centroid_count() const;

 private:
  struct Centroid {
    double mean = 0.0;
    double weight = 0.0;
  };

  /// Sorts the buffer and merges it into the centroid list under the k1
  /// size bound. Called from const accessors, hence the mutable state.
  void compress() const;

  double compression_;
  mutable std::vector<Centroid> centroids_;
  mutable std::vector<Centroid> buffer_;
  mutable double total_weight_ = 0.0;
  mutable double buffered_weight_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool seen_any_ = false;
};

}  // namespace pas::metrics

// Summary statistics for experiment aggregation.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace pas::metrics {

/// Welford's online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(n_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One-shot summary of a sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Normal-approximation 95% confidence half-width (1.96·s/√n).
  double ci95_half = 0.0;

  [[nodiscard]] static Summary of(std::span<const double> values);
};

/// Linear-interpolated quantile, q in [0, 1]. `sorted` must be ascending.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Convenience: copies, sorts, and takes the quantile.
[[nodiscard]] double quantile(std::vector<double> values, double q);

/// Evaluates several quantiles over a single sort of `values`. Returns one
/// result per entry of `qs`, in order. Throws on an empty sample.
[[nodiscard]] std::vector<double> quantiles(std::vector<double> values,
                                            std::span<const double> qs);

/// The campaign reporting percentiles (median / p95 / p99), interpolated.
/// An empty sample yields all zeros, matching Summary::of's convention so
/// degenerate points still produce a well-formed CSV row.
struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  [[nodiscard]] static Percentiles of(std::vector<double> values);
  /// Non-owning overload; copies into a scratch vector before sorting.
  [[nodiscard]] static Percentiles of(std::span<const double> values);
  /// Sorts `values` in place — no copy. For hot paths that own a scratch
  /// buffer and don't care about its order afterwards.
  [[nodiscard]] static Percentiles of_inplace(std::span<double> values);
};

}  // namespace pas::metrics

// Estimated stimulus boundary and its accuracy.
//
// The point of a DS-monitoring deployment is to report *where the stimulus
// is*. This module reconstructs the boundary the network would report —
// midpoints of covered↔uncovered node pairs within radio range (the
// standard event-contour estimate, cf. Iso-Map [8] in the paper's related
// work) — and scores it against the ground-truth boundary.
#pragma once

#include <vector>

#include "geom/polyline.hpp"
#include "geom/vec2.hpp"

namespace pas::metrics {

/// Boundary sample points implied by the network's coverage knowledge:
/// for every pair (covered node, uncovered node) within `range` of each
/// other, the midpoint is a boundary witness. Returns an empty vector when
/// coverage is uniform (all covered or none).
[[nodiscard]] std::vector<geom::Vec2> estimate_boundary_points(
    const std::vector<geom::Vec2>& positions, const std::vector<bool>& covered,
    double range);

struct BoundaryAccuracy {
  std::size_t samples = 0;
  /// Mean distance from estimated points to the true boundary (m).
  double mean_error_m = 0.0;
  /// Worst estimated point (m).
  double max_error_m = 0.0;
};

/// Distance statistics from estimated boundary points to the reference
/// boundary polyline. Zero samples yields a zeroed result.
[[nodiscard]] BoundaryAccuracy boundary_accuracy(
    const std::vector<geom::Vec2>& estimated, const geom::Polyline& truth);

}  // namespace pas::metrics

#include "metrics/tdigest.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pas::metrics {

namespace {

/// The k1 scale function and its inverse: k(q) = (δ/2π)·asin(2q−1).
double scale_k(double q, double compression) {
  q = std::clamp(q, 0.0, 1.0);
  return compression / (2.0 * std::numbers::pi) * std::asin(2.0 * q - 1.0);
}

double scale_k_inv(double k, double compression) {
  const double x = std::sin(k * 2.0 * std::numbers::pi / compression);
  return std::clamp((x + 1.0) / 2.0, 0.0, 1.0);
}

}  // namespace

TDigest::TDigest(double compression) : compression_(compression) {
  if (!(compression_ >= 10.0)) {
    throw std::invalid_argument("TDigest: compression must be >= 10");
  }
  // Buffering several multiples of the centroid budget amortizes the sort:
  // compress cost is O(buffer log buffer) per ~4δ adds.
  buffer_.reserve(static_cast<std::size_t>(4.0 * compression_));
}

void TDigest::add(double x, double weight) {
  if (!(weight > 0.0)) return;
  if (!seen_any_) {
    min_ = max_ = x;
    seen_any_ = true;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  buffer_.push_back(Centroid{.mean = x, .weight = weight});
  buffered_weight_ += weight;
  if (buffer_.size() >= buffer_.capacity()) compress();
}

void TDigest::merge(const TDigest& other) {
  other.compress();
  if (other.centroids_.empty()) return;
  for (const auto& c : other.centroids_) add(c.mean, c.weight);
  // Centroid means under-cover the extremes; carry the true ones over.
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void TDigest::compress() const {
  if (buffer_.empty()) return;
  // Stable sort keeps equal-mean centroids in insertion order, so the
  // resulting digest is a pure function of the add sequence.
  std::stable_sort(buffer_.begin(), buffer_.end(),
                   [](const Centroid& a, const Centroid& b) {
                     return a.mean < b.mean;
                   });
  std::vector<Centroid> merged;
  merged.reserve(centroids_.size() + buffer_.size());
  std::merge(centroids_.begin(), centroids_.end(), buffer_.begin(),
             buffer_.end(), std::back_inserter(merged),
             [](const Centroid& a, const Centroid& b) {
               return a.mean < b.mean;
             });
  buffer_.clear();

  const double total = total_weight_ + buffered_weight_;
  total_weight_ = total;
  buffered_weight_ = 0.0;

  std::vector<Centroid> out;
  out.reserve(static_cast<std::size_t>(2.0 * compression_) + 8);
  Centroid cur = merged.front();
  double emitted = 0.0;  // weight of centroids already appended to `out`
  double q_limit = scale_k_inv(scale_k(0.0, compression_) + 1.0, compression_);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const Centroid& next = merged[i];
    const double q = (emitted + cur.weight + next.weight) / total;
    if (q <= q_limit) {
      // Within the k1 bound: absorb into the current centroid.
      cur.mean = (cur.mean * cur.weight + next.mean * next.weight) /
                 (cur.weight + next.weight);
      cur.weight += next.weight;
    } else {
      out.push_back(cur);
      emitted += cur.weight;
      q_limit = scale_k_inv(scale_k(emitted / total, compression_) + 1.0,
                            compression_);
      cur = next;
    }
  }
  out.push_back(cur);
  centroids_ = std::move(out);
}

double TDigest::min() const noexcept { return seen_any_ ? min_ : 0.0; }
double TDigest::max() const noexcept { return seen_any_ ? max_ : 0.0; }

std::size_t TDigest::centroid_count() const {
  compress();
  return centroids_.size();
}

double TDigest::quantile(double q) const {
  compress();
  if (centroids_.empty()) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  if (centroids_.size() == 1) return centroids_.front().mean;

  const double target = q * total_weight_;
  // Each centroid is anchored at the midpoint of its weight span; the
  // estimate interpolates between neighbouring midpoints, with the global
  // min/max capping the extremes.
  double cum = 0.0;
  double prev_mid = 0.0;
  double prev_mean = min_;
  for (std::size_t i = 0; i < centroids_.size(); ++i) {
    const double mid = cum + centroids_[i].weight / 2.0;
    if (target <= mid) {
      const double span = mid - prev_mid;
      const double t = span > 0.0 ? (target - prev_mid) / span : 1.0;
      return prev_mean + t * (centroids_[i].mean - prev_mean);
    }
    cum += centroids_[i].weight;
    prev_mid = mid;
    prev_mean = centroids_[i].mean;
  }
  const double span = total_weight_ - prev_mid;
  const double t = span > 0.0 ? (target - prev_mid) / span : 1.0;
  return prev_mean + t * (max_ - prev_mean);
}

}  // namespace pas::metrics

#include "node/failure_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pas::node {

FailurePlan::FailurePlan(std::size_t n, const FailureConfig& config,
                         sim::Pcg32 rng) {
  if (config.fraction < 0.0 || config.fraction > 1.0) {
    throw std::invalid_argument("FailurePlan: fraction must be in [0,1]");
  }
  if (config.window_end_s < config.window_start_s) {
    throw std::invalid_argument("FailurePlan: window end before start");
  }
  death_times_.assign(n, sim::kNever);
  const auto k = static_cast<std::size_t>(
      std::llround(config.fraction * static_cast<double>(n)));
  if (k == 0) return;

  // Partial Fisher-Yates: choose k distinct victims.
  std::vector<std::uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0U);
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(n - 1)));
    std::swap(ids[i], ids[j]);
    death_times_[ids[i]] =
        rng.uniform(config.window_start_s, config.window_end_s);
  }
}

std::size_t FailurePlan::failing_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(death_times_.begin(), death_times_.end(),
                    [](sim::Time t) { return t < sim::kNever; }));
}

}  // namespace pas::node

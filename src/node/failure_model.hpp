// Node-failure injection (the paper's §5 future work).
//
// A FailurePlan assigns each node a death time: a sampled fraction of nodes
// fails uniformly inside a time window; the rest never fail. The protocol
// layer turns a dead node off (no sensing, no radio) at its death time.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace pas::node {

struct FailureConfig {
  /// Fraction of nodes in [0, 1] that fail during the run.
  double fraction = 0.0;
  /// Failures are drawn uniformly in [window_start_s, window_end_s].
  sim::Time window_start_s = 0.0;
  sim::Time window_end_s = 0.0;
};

class FailurePlan {
 public:
  FailurePlan() = default;

  /// Samples death times for `n` nodes. Exactly round(fraction*n) distinct
  /// nodes are selected (a fixed-size sample keeps replications comparable).
  FailurePlan(std::size_t n, const FailureConfig& config, sim::Pcg32 rng);

  [[nodiscard]] std::size_t size() const noexcept { return death_times_.size(); }

  /// kNever for survivors.
  [[nodiscard]] sim::Time death_time(std::size_t i) const {
    return death_times_.at(i);
  }

  [[nodiscard]] std::size_t failing_count() const noexcept;

 private:
  std::vector<sim::Time> death_times_;
};

}  // namespace pas::node

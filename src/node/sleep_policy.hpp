// Sleeping-interval schedules (§3.4).
//
// The paper prescribes a linearly increasing sleeping interval ("a
// specified sleeping strategy such as a linearly increasing sleeping
// time" — i.e. linear is one choice of a family). SleepSchedule implements
// the family: linear ramps (the paper's default, Δt per uneventful wake),
// exponential ramps (double each time, reaching the maximum much sooner),
// and fixed intervals (no ramp). bench_ablation_ramp compares them.
#pragma once

#include <cassert>
#include <stdexcept>

#include "sim/time.hpp"

namespace pas::node {

enum class RampKind : unsigned char {
  kLinear,       // current + increment_s
  kExponential,  // current * factor
  kFixed,        // always initial_s
};

[[nodiscard]] constexpr const char* to_string(RampKind k) noexcept {
  switch (k) {
    case RampKind::kLinear: return "linear";
    case RampKind::kExponential: return "exponential";
    case RampKind::kFixed: return "fixed";
  }
  // Serializing "?" into campaign CSVs would silently poison resume keys;
  // fail loudly in debug builds instead.
  assert(!"to_string(RampKind): value outside the enum");
  return "?";
}

struct SleepSchedule {
  RampKind kind = RampKind::kLinear;
  /// First sleeping interval after (re-)entering safe state (s).
  sim::Duration initial_s = 1.0;
  /// Linear ramp: increment Δt added per uneventful wake-up (s).
  sim::Duration increment_s = 1.0;
  /// Exponential ramp: multiplier per uneventful wake-up.
  double factor = 2.0;
  /// Maximum sleeping interval (s); the ramp clamps here (§3.4: "their
  /// sleeping interval will stay when it reaches the upper bound").
  sim::Duration max_s = 20.0;

  void validate() const {
    if (initial_s <= 0.0) {
      throw std::invalid_argument("SleepSchedule: initial_s must be > 0");
    }
    if (increment_s < 0.0) {
      throw std::invalid_argument("SleepSchedule: increment_s must be >= 0");
    }
    if (factor < 1.0) {
      throw std::invalid_argument("SleepSchedule: factor must be >= 1");
    }
    if (max_s < initial_s) {
      throw std::invalid_argument("SleepSchedule: max_s must be >= initial_s");
    }
  }

  /// Interval following `current` (clamped at max_s).
  [[nodiscard]] sim::Duration next(sim::Duration current) const noexcept {
    sim::Duration grown = current;
    switch (kind) {
      case RampKind::kLinear: grown = current + increment_s; break;
      case RampKind::kExponential: grown = current * factor; break;
      case RampKind::kFixed: grown = initial_s; break;
    }
    return grown > max_s ? max_s : grown;
  }

  /// Number of uneventful wake-ups before the ramp saturates at max_s
  /// (0 for the fixed ramp; used by analysis and tests).
  [[nodiscard]] int steps_to_max() const noexcept {
    if (kind == RampKind::kFixed) return 0;
    int steps = 0;
    sim::Duration cur = initial_s;
    while (cur < max_s && steps < 1000000) {
      cur = next(cur);
      ++steps;
    }
    return steps;
  }
};

/// The paper's default schedule, kept as a named alias for readability in
/// code that means specifically the linear ramp.
using LinearSleepPolicy = SleepSchedule;

}  // namespace pas::node

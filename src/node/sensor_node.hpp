// Per-node runtime record.
//
// SensorNode is deliberately passive: it owns identity, position, the
// energy meter, and detection bookkeeping. All *behaviour* (state machine,
// prediction, sleeping decisions) lives in pas::core so that PAS, SAS and
// NS are pure policy variations over identical node plumbing.
#pragma once

#include <cstdint>

#include "energy/energy_meter.hpp"
#include "geom/vec2.hpp"
#include "sim/time.hpp"

namespace pas::node {

struct SensorNode {
  std::uint32_t id = 0;
  geom::Vec2 position{};
  energy::EnergyMeter meter{};

  bool asleep = false;
  bool failed = false;

  /// Ground-truth stimulus arrival at this node (kNever if unreached).
  sim::Time arrival = sim::kNever;
  /// When this node first *detected* the stimulus (kNever if never).
  sim::Time detected = sim::kNever;

  /// Detection delay; only meaningful when both times are finite.
  [[nodiscard]] sim::Duration detection_delay() const noexcept {
    return detected - arrival;
  }
  [[nodiscard]] bool was_reached() const noexcept {
    return arrival < sim::kNever;
  }
  [[nodiscard]] bool has_detected() const noexcept {
    return detected < sim::kNever;
  }
};

}  // namespace pas::node

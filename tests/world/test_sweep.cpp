#include "world/sweep.hpp"

#include <gtest/gtest.h>

#include "world/paper_setup.hpp"

namespace pas::world {
namespace {

TEST(Sweep, ZeroReplicationsThrows) {
  EXPECT_THROW((void)run_replicated(paper_scenario(), 0), std::invalid_argument);
}

TEST(Sweep, AggregatesAcrossReplications) {
  const auto agg = run_replicated(paper_scenario(), 3);
  EXPECT_EQ(agg.runs.size(), 3U);
  EXPECT_EQ(agg.delay_s.n, 3U);
  EXPECT_EQ(agg.energy_j.n, 3U);
  EXPECT_GT(agg.energy_j.mean, 0.0);
  EXPECT_GT(agg.mean_broadcasts, 0.0);
}

TEST(Sweep, ReplicationsUseDistinctSeeds) {
  const auto agg = run_replicated(paper_scenario(), 3);
  // Different seeds produce different deployments, hence different energy.
  EXPECT_FALSE(agg.runs[0].avg_energy_j == agg.runs[1].avg_energy_j &&
               agg.runs[1].avg_energy_j == agg.runs[2].avg_energy_j);
}

TEST(Sweep, ParallelMatchesSerial) {
  runtime::ThreadPool pool(4);
  const auto serial = run_replicated(paper_scenario(), 4, nullptr);
  const auto parallel = run_replicated(paper_scenario(), 4, &pool);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.runs[i].avg_delay_s, parallel.runs[i].avg_delay_s);
    EXPECT_DOUBLE_EQ(serial.runs[i].avg_energy_j,
                     parallel.runs[i].avg_energy_j);
  }
  EXPECT_DOUBLE_EQ(serial.delay_s.mean, parallel.delay_s.mean);
}

}  // namespace
}  // namespace pas::world

#include "world/deployment.hpp"

#include <gtest/gtest.h>

namespace pas::world {
namespace {

TEST(GridDeployment, CountAndContainment) {
  sim::Pcg32 rng(1, 1);
  const auto pts = grid_deployment(30, geom::Aabb::square(40.0), 0.2, rng);
  EXPECT_EQ(pts.size(), 30U);
  for (const auto& p : pts) {
    EXPECT_TRUE(geom::Aabb::square(40.0).contains(p));
  }
}

TEST(GridDeployment, ZeroJitterIsRegular) {
  sim::Pcg32 rng(1, 1);
  const auto pts = grid_deployment(9, geom::Aabb::square(30.0), 0.0, rng);
  // 3x3 grid with pitch 10: cell centers at 5, 15, 25.
  EXPECT_DOUBLE_EQ(pts[0].x, 5.0);
  EXPECT_DOUBLE_EQ(pts[4].x, 15.0);
  EXPECT_DOUBLE_EQ(pts[8].y, 25.0);
}

TEST(GridDeployment, RejectsBadJitter) {
  sim::Pcg32 rng(1, 1);
  EXPECT_THROW(grid_deployment(4, geom::Aabb::square(10.0), 0.7, rng),
               std::invalid_argument);
}

TEST(UniformDeployment, CountContainmentDeterminism) {
  sim::Pcg32 a(5, 5), b(5, 5);
  const auto pa = uniform_deployment(50, geom::Aabb::square(40.0), a);
  const auto pb = uniform_deployment(50, geom::Aabb::square(40.0), b);
  EXPECT_EQ(pa.size(), 50U);
  EXPECT_EQ(pa, pb);
  for (const auto& p : pa) {
    EXPECT_TRUE(geom::Aabb::square(40.0).contains(p));
  }
}

TEST(PoissonDisk, RespectsMinSeparation) {
  sim::Pcg32 rng(9, 9);
  const auto pts =
      poisson_disk_deployment(25, geom::Aabb::square(40.0), 4.0, rng);
  ASSERT_EQ(pts.size(), 25U);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      EXPECT_GE(geom::distance(pts[i], pts[j]), 4.0);
    }
  }
}

TEST(PoissonDisk, ImpossiblePackingThrows) {
  sim::Pcg32 rng(1, 1);
  EXPECT_THROW(
      poisson_disk_deployment(1000, geom::Aabb::square(10.0), 5.0, rng),
      std::runtime_error);
}

TEST(PoissonDisk, RejectsNonPositiveSeparation) {
  sim::Pcg32 rng(1, 1);
  EXPECT_THROW(poisson_disk_deployment(5, geom::Aabb::square(10.0), 0.0, rng),
               std::invalid_argument);
}

TEST(GenerateDeployment, DispatchesOnKind) {
  DeploymentConfig cfg;
  cfg.count = 16;
  cfg.region = geom::Aabb::square(40.0);
  for (const auto kind : {DeploymentKind::kGrid, DeploymentKind::kUniform,
                          DeploymentKind::kPoissonDisk}) {
    cfg.kind = kind;
    sim::Pcg32 rng(3, 3);
    EXPECT_EQ(generate_deployment(cfg, rng).size(), 16U) << to_string(kind);
  }
}

TEST(IsConnected, DetectsChainAndGap) {
  EXPECT_TRUE(is_connected({{0.0, 0.0}, {8.0, 0.0}, {16.0, 0.0}}, 10.0));
  EXPECT_FALSE(is_connected({{0.0, 0.0}, {8.0, 0.0}, {30.0, 0.0}}, 10.0));
  EXPECT_TRUE(is_connected({}, 10.0));
  EXPECT_TRUE(is_connected({{1.0, 1.0}}, 10.0));
}

TEST(DeploymentKindNames, Stable) {
  EXPECT_STREQ(to_string(DeploymentKind::kGrid), "grid");
  EXPECT_STREQ(to_string(DeploymentKind::kUniform), "uniform");
  EXPECT_STREQ(to_string(DeploymentKind::kPoissonDisk), "poisson-disk");
}

}  // namespace
}  // namespace pas::world

#include "world/config_json.hpp"

#include <gtest/gtest.h>

#include "world/paper_setup.hpp"

namespace pas::world {
namespace {

TEST(ConfigJson, ContainsEverySubsystemSection) {
  const std::string dump = to_json(paper_scenario()).dump();
  for (const char* key :
       {"\"seed\"", "\"deployment\"", "\"radio\"", "\"power\"", "\"protocol\"",
        "\"stimulus\"", "\"channel\"", "\"failures\"", "\"duration_s\""}) {
    EXPECT_NE(dump.find(key), std::string::npos) << key;
  }
}

TEST(ConfigJson, ReflectsPolicyAndThreshold) {
  PaperSetupOverrides o;
  o.policy = core::Policy::kSas;
  o.alert_threshold_s = 12.5;
  const std::string dump = to_json(paper_scenario(o)).dump();
  EXPECT_NE(dump.find("\"policy\":\"SAS\""), std::string::npos);
  EXPECT_NE(dump.find("\"alert_threshold_s\":12.5"), std::string::npos);
}

TEST(ConfigJson, StimulusVariants) {
  PaperSetupOverrides o;
  o.stimulus = StimulusKind::kPlume;
  EXPECT_NE(to_json(paper_scenario(o)).dump().find("\"plume\""),
            std::string::npos);
  o.stimulus = StimulusKind::kPde;
  EXPECT_NE(to_json(paper_scenario(o)).dump().find("\"diffusivity\""),
            std::string::npos);
  o.stimulus = StimulusKind::kTwoSources;
  EXPECT_NE(to_json(paper_scenario(o)).dump().find("\"radial_second\""),
            std::string::npos);
}

TEST(ConfigJson, ChannelVariants) {
  ScenarioConfig cfg = paper_scenario();
  cfg.channel = ChannelKind::kBernoulli;
  cfg.channel_loss = 0.25;
  EXPECT_NE(to_json(cfg).dump().find("\"loss\":0.25"), std::string::npos);
  cfg.channel = ChannelKind::kGilbertElliott;
  EXPECT_NE(to_json(cfg).dump().find("gilbert-elliott"), std::string::npos);
}

TEST(RunRecord, BundlesConfigMetricsOutcomes) {
  const ScenarioConfig cfg = paper_scenario();
  const RunResult result = run_scenario(cfg);
  const io::Json record = run_record(cfg, result);
  const std::string dump = record.dump();
  EXPECT_NE(dump.find("\"config\""), std::string::npos);
  EXPECT_NE(dump.find("\"metrics\""), std::string::npos);
  EXPECT_NE(dump.find("\"outcomes\""), std::string::npos);
  // 30 outcome rows.
  std::size_t ids = 0;
  for (std::size_t pos = 0; (pos = dump.find("\"id\":", pos)) != std::string::npos;
       ++pos) {
    ++ids;
  }
  EXPECT_EQ(ids, 30U);
}

TEST(RunRecord, UnreachedArrivalSerialisesAsNull) {
  const ScenarioConfig cfg = paper_scenario();
  const RunResult result = run_scenario(cfg);
  // The spill stops at 28 m, so some nodes are never reached; their arrival
  // must serialize as null (JSON has no Infinity).
  bool found_null_arrival = false;
  for (const auto& o : result.outcomes) {
    if (!o.was_reached) {
      const std::string dump = to_json(o).dump();
      EXPECT_NE(dump.find("\"arrival_s\":null"), std::string::npos);
      found_null_arrival = true;
      break;
    }
  }
  EXPECT_TRUE(found_null_arrival);
}

TEST(MetricsJson, RoundNumbersPresent) {
  const RunResult result = run_scenario(paper_scenario());
  const std::string dump = to_json(result.metrics).dump();
  EXPECT_NE(dump.find("\"node_count\":30"), std::string::npos);
  EXPECT_NE(dump.find("\"avg_energy_j\""), std::string::npos);
  EXPECT_NE(dump.find("\"alert_entries\""), std::string::npos);
}

TEST(ScenarioFromJson, RoundTripsSerialisedConfig) {
  ScenarioConfig cfg = paper_scenario();
  cfg.seed = 77;
  cfg.protocol.policy = core::Policy::kSas;
  cfg.channel = ChannelKind::kGilbertElliott;
  cfg.gilbert.loss_bad = 0.7;
  cfg.failures.fraction = 0.15;
  cfg.failures.window_end_s = 90.0;
  cfg.stimulus = StimulusKind::kTwoSources;

  const ScenarioConfig parsed =
      scenario_from_json(io::Json::parse(to_json(cfg).dump()));
  EXPECT_EQ(parsed.seed, cfg.seed);
  EXPECT_EQ(parsed.protocol.policy, cfg.protocol.policy);
  EXPECT_EQ(parsed.channel, cfg.channel);
  EXPECT_DOUBLE_EQ(parsed.gilbert.loss_bad, cfg.gilbert.loss_bad);
  EXPECT_DOUBLE_EQ(parsed.failures.fraction, cfg.failures.fraction);
  EXPECT_DOUBLE_EQ(parsed.failures.window_end_s, cfg.failures.window_end_s);
  EXPECT_EQ(parsed.stimulus, cfg.stimulus);
  EXPECT_DOUBLE_EQ(parsed.radial.base_speed, cfg.radial.base_speed);
  EXPECT_DOUBLE_EQ(parsed.radial_second.start_time,
                   cfg.radial_second.start_time);
  ASSERT_EQ(parsed.radial.harmonics.size(), cfg.radial.harmonics.size());
  EXPECT_DOUBLE_EQ(parsed.radial.harmonics[1].amplitude,
                   cfg.radial.harmonics[1].amplitude);
  EXPECT_EQ(parsed.deployment.count, cfg.deployment.count);
  EXPECT_DOUBLE_EQ(parsed.deployment.region.width(),
                   cfg.deployment.region.width());
  // Serialise → parse → serialise is a fixed point.
  EXPECT_EQ(to_json(parsed).dump(), to_json(cfg).dump());
}

TEST(ScenarioFromJson, PerPolicyBlocksRoundTrip) {
  ScenarioConfig cfg = paper_scenario();
  cfg.protocol.policy = core::Policy::kDutyCycle;
  cfg.protocol.duty_cycle.period_s = 2.5;
  cfg.protocol.threshold_hold.hold_window_s = 35.0;

  const ScenarioConfig parsed =
      scenario_from_json(io::Json::parse(to_json(cfg).dump()));
  EXPECT_EQ(parsed.protocol.policy, core::Policy::kDutyCycle);
  EXPECT_DOUBLE_EQ(parsed.protocol.duty_cycle.period_s, 2.5);
  EXPECT_DOUBLE_EQ(parsed.protocol.threshold_hold.hold_window_s, 35.0);
  EXPECT_EQ(to_json(parsed).dump(), to_json(cfg).dump());
}

TEST(ScenarioFromJson, NewPolicyNamesParse) {
  const ScenarioConfig duty = scenario_from_json(io::Json::parse(
      R"({"protocol": {"policy": "DutyCycle", "duty_cycle": {"period_s": 4}}})"));
  EXPECT_EQ(duty.protocol.policy, core::Policy::kDutyCycle);
  EXPECT_DOUBLE_EQ(duty.protocol.duty_cycle.period_s, 4.0);

  const ScenarioConfig hold = scenario_from_json(io::Json::parse(
      R"({"protocol": {"policy": "ThresholdHold",
                       "threshold_hold": {"hold_window_s": 12}}})"));
  EXPECT_EQ(hold.protocol.policy, core::Policy::kThresholdHold);
  EXPECT_DOUBLE_EQ(hold.protocol.threshold_hold.hold_window_s, 12.0);
}

TEST(ScenarioFromJson, UnknownPolicyNameThrowsListingRegisteredOnes) {
  try {
    (void)scenario_from_json(
        io::Json::parse(R"({"protocol": {"policy": "BMAC"}})"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("BMAC"), std::string::npos);
    EXPECT_NE(what.find("DutyCycle"), std::string::npos);
    EXPECT_NE(what.find("ThresholdHold"), std::string::npos);
  }
}

TEST(ScenarioFromJson, UnknownKeysInPolicyBlocksThrow) {
  EXPECT_THROW(scenario_from_json(io::Json::parse(
                   R"({"protocol": {"duty_cycle": {"period": 4}}})")),
               std::runtime_error);
  EXPECT_THROW(scenario_from_json(io::Json::parse(
                   R"({"protocol": {"threshold_hold": {"window_s": 4}}})")),
               std::runtime_error);
}

TEST(ScenarioFromJson, PartialOverridesKeepBase) {
  const ScenarioConfig base = paper_scenario();
  const ScenarioConfig parsed = scenario_from_json(
      io::Json::parse(R"({"protocol": {"alert_threshold_s": 25}})"), base);
  EXPECT_DOUBLE_EQ(parsed.protocol.alert_threshold_s, 25.0);
  EXPECT_EQ(parsed.protocol.policy, base.protocol.policy);
  EXPECT_EQ(parsed.deployment.count, base.deployment.count);
  EXPECT_DOUBLE_EQ(parsed.radial.base_speed, base.radial.base_speed);
}

TEST(ScenarioFromJson, UnknownKeysThrow) {
  EXPECT_THROW(scenario_from_json(io::Json::parse(R"({"sede": 1})")),
               std::runtime_error);
  EXPECT_THROW(
      scenario_from_json(io::Json::parse(R"({"radio": {"range": 10}})")),
      std::runtime_error);
  EXPECT_THROW(scenario_from_json(
                   io::Json::parse(R"({"protocol": {"policy": "BOGUS"}})")),
               std::runtime_error);
}

}  // namespace
}  // namespace pas::world

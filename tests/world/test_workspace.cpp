#include "world/workspace.hpp"

#include <gtest/gtest.h>

#include "world/paper_setup.hpp"
#include "world/sweep.hpp"

namespace pas::world {
namespace {

ScenarioConfig small_config(core::Policy policy, StimulusKind stimulus,
                            std::uint64_t seed) {
  PaperSetupOverrides o;
  o.policy = policy;
  o.stimulus = stimulus;
  o.seed = seed;
  auto cfg = paper_scenario(o);
  cfg.duration_s = 60.0;  // keep the suite fast
  return cfg;
}

void expect_same_metrics(const metrics::RunMetrics& a,
                         const metrics::RunMetrics& b) {
  // Reuse must be purely allocational: every number matches bit-for-bit.
  EXPECT_EQ(a.node_count, b.node_count);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.missed, b.missed);
  EXPECT_EQ(a.censored, b.censored);
  EXPECT_DOUBLE_EQ(a.avg_delay_s, b.avg_delay_s);
  EXPECT_DOUBLE_EQ(a.max_delay_s, b.max_delay_s);
  EXPECT_DOUBLE_EQ(a.avg_energy_j, b.avg_energy_j);
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_DOUBLE_EQ(a.avg_active_fraction, b.avg_active_fraction);
  EXPECT_EQ(a.network.broadcasts, b.network.broadcasts);
  EXPECT_EQ(a.network.deliveries, b.network.deliveries);
  EXPECT_EQ(a.protocol.wakeups, b.protocol.wakeups);
  EXPECT_EQ(a.protocol.requests_sent, b.protocol.requests_sent);
  EXPECT_EQ(a.protocol.responses_sent, b.protocol.responses_sent);
}

TEST(Workspace, ReusedRunsMatchFreshRunsAcrossSeeds) {
  Workspace ws;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto cfg = small_config(core::Policy::kPas, StimulusKind::kRadial, seed);
    const auto reused = ws.run(cfg);
    const auto fresh = run_scenario(cfg);
    expect_same_metrics(reused.metrics, fresh.metrics);
    EXPECT_EQ(reused.positions, fresh.positions);
    EXPECT_EQ(reused.deployment_attempts, fresh.deployment_attempts);
  }
}

TEST(Workspace, ReusedRunsMatchFreshAcrossPolicyAndStimulusSwitches) {
  // Worst case for stale state: consecutive runs that differ in policy,
  // stimulus kind, and node count.
  Workspace ws;
  std::vector<ScenarioConfig> configs = {
      small_config(core::Policy::kPas, StimulusKind::kRadial, 3),
      small_config(core::Policy::kNeverSleep, StimulusKind::kRadial, 3),
      small_config(core::Policy::kSas, StimulusKind::kPlume, 4),
      small_config(core::Policy::kPas, StimulusKind::kTwoSources, 5),
      small_config(core::Policy::kPas, StimulusKind::kRadial, 3),
  };
  configs[4].deployment.count = 45;  // resize the world mid-sequence
  for (const auto& cfg : configs) {
    const auto reused = ws.run(cfg);
    const auto fresh = run_scenario(cfg);
    expect_same_metrics(reused.metrics, fresh.metrics);
    EXPECT_EQ(reused.positions, fresh.positions);
  }
}

TEST(Workspace, RunMetricsMatchesRun) {
  Workspace a;
  Workspace b;
  const auto cfg = small_config(core::Policy::kPas, StimulusKind::kPlume, 9);
  const auto& light = a.run_metrics(cfg);
  const auto full = b.run(cfg);
  expect_same_metrics(light, full.metrics);
}

TEST(Workspace, TraceMatchesFreshRun) {
  Workspace ws;
  auto cfg = small_config(core::Policy::kPas, StimulusKind::kRadial, 7);
  cfg.enable_trace = true;
  // Prime the workspace with a different seed first so the traced run
  // executes against reused buffers.
  auto primer = cfg;
  primer.seed = 99;
  (void)ws.run(primer);
  const auto reused = ws.run(cfg);
  const auto fresh = run_scenario(cfg);
  ASSERT_EQ(reused.trace.size(), fresh.trace.size());
  for (std::size_t i = 0; i < reused.trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(reused.trace.events()[i].time, fresh.trace.events()[i].time);
    EXPECT_EQ(reused.trace.events()[i].category, fresh.trace.events()[i].category);
    EXPECT_EQ(reused.trace.events()[i].node, fresh.trace.events()[i].node);
    EXPECT_EQ(reused.trace.events()[i].kind, fresh.trace.events()[i].kind);
    EXPECT_EQ(sim::format_event(reused.trace.events()[i]),
              sim::format_event(fresh.trace.events()[i]));
  }
}

TEST(Workspace, SameStimulusKeysTheModelCache) {
  const auto radial = small_config(core::Policy::kPas, StimulusKind::kRadial, 1);
  auto radial2 = radial;
  EXPECT_TRUE(same_stimulus(radial, radial2));

  radial2.seed = 42;
  radial2.protocol.alert_threshold_s = 5.0;
  EXPECT_TRUE(same_stimulus(radial, radial2))
      << "seed/protocol changes must not invalidate the stimulus cache";

  auto faster = radial;
  faster.radial.base_speed *= 2.0;
  EXPECT_FALSE(same_stimulus(radial, faster));

  auto plume = radial;
  plume.stimulus = StimulusKind::kPlume;
  EXPECT_FALSE(same_stimulus(radial, plume));

  // Kinds only compare the sub-config they actually read: a plume config
  // change is invisible to two radial scenarios...
  auto radial_with_plume_noise = radial;
  radial_with_plume_noise.plume.mass *= 3.0;
  EXPECT_TRUE(same_stimulus(radial, radial_with_plume_noise));

  // ...while two-source scenarios read the second radial config too.
  auto two_a = small_config(core::Policy::kPas, StimulusKind::kTwoSources, 1);
  auto two_b = two_a;
  two_b.radial_second.start_time += 10.0;
  EXPECT_FALSE(same_stimulus(two_a, two_b));
}

TEST(Workspace, ReplicationHelpersAgree) {
  const auto cfg = small_config(core::Policy::kSas, StimulusKind::kRadial, 2);
  Workspace ws;
  for (std::size_t r = 0; r < 4; ++r) {
    const auto with_ws = run_replication(ws, cfg, r);
    const auto without = run_replication(cfg, r);
    expect_same_metrics(with_ws, without);
  }
}

}  // namespace
}  // namespace pas::world

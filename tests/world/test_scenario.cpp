#include "world/scenario.hpp"

#include <gtest/gtest.h>

#include "world/paper_setup.hpp"

namespace pas::world {
namespace {

TEST(Scenario, PaperDefaultsAreSane) {
  const ScenarioConfig cfg = paper_scenario();
  EXPECT_EQ(cfg.deployment.count, 30U);
  EXPECT_DOUBLE_EQ(cfg.radio.range_m, 10.0);
  EXPECT_DOUBLE_EQ(cfg.duration_s, 150.0);
  EXPECT_NO_THROW(cfg.protocol.validate());
}

TEST(Scenario, MakeStimulusDispatches) {
  ScenarioConfig cfg = paper_scenario();
  cfg.stimulus = StimulusKind::kRadial;
  EXPECT_EQ(make_stimulus(cfg)->name(), "radial");
  cfg.stimulus = StimulusKind::kPlume;
  EXPECT_EQ(make_stimulus(cfg)->name(), "plume");
  cfg.stimulus = StimulusKind::kPde;
  cfg.pde.nx = 32;
  cfg.pde.ny = 32;
  cfg.pde.horizon = 30.0;
  EXPECT_EQ(make_stimulus(cfg)->name(), "pde");
}

TEST(Scenario, RunProducesConsistentResult) {
  PaperSetupOverrides o;
  o.policy = core::Policy::kPas;
  const RunResult r = run_scenario(paper_scenario(o));
  EXPECT_EQ(r.positions.size(), 30U);
  EXPECT_EQ(r.outcomes.size(), 30U);
  EXPECT_EQ(r.metrics.node_count, 30U);
  EXPECT_GT(r.metrics.reached, 12U);  // front crosses much of the field
  EXPECT_EQ(r.metrics.detected + r.metrics.missed + r.metrics.censored,
            r.metrics.reached);
  EXPECT_GT(r.metrics.avg_energy_j, 0.0);
  // Sleeping policy must spend far less than always-on energy.
  const double ns_energy = 41e-3 * r.metrics.duration_s;
  EXPECT_LT(r.metrics.avg_energy_j, ns_energy);
}

TEST(Scenario, NeverSleepHasZeroDelayAndFullDetection) {
  PaperSetupOverrides o;
  o.policy = core::Policy::kNeverSleep;
  const RunResult r = run_scenario(paper_scenario(o));
  EXPECT_EQ(r.metrics.missed, 0U);
  EXPECT_NEAR(r.metrics.avg_delay_s, 0.0, 1e-9);
  EXPECT_NEAR(r.metrics.max_delay_s, 0.0, 1e-9);
}

TEST(Scenario, DeploymentIsConnected) {
  const RunResult r = run_scenario(paper_scenario());
  EXPECT_TRUE(is_connected(r.positions, 10.0));
}

TEST(Scenario, DelayBoundedByMaxSleep) {
  PaperSetupOverrides o;
  o.max_sleep_s = 10.0;
  const RunResult r = run_scenario(paper_scenario(o));
  EXPECT_LE(r.metrics.max_delay_s, 10.0 + 1e-6);
}

TEST(Scenario, TraceCapturesWhenEnabled) {
  ScenarioConfig cfg = paper_scenario();
  cfg.enable_trace = true;
  const RunResult r = run_scenario(cfg);
  EXPECT_GT(r.trace.size(), 0U);
}

TEST(Scenario, TraceEmptyWhenDisabled) {
  const RunResult r = run_scenario(paper_scenario());
  EXPECT_EQ(r.trace.size(), 0U);
}

TEST(Scenario, InvalidDurationThrows) {
  ScenarioConfig cfg = paper_scenario();
  cfg.duration_s = 0.0;
  EXPECT_THROW((void)run_scenario(cfg), std::invalid_argument);
}

TEST(Scenario, ImpossibleConnectivityThrows) {
  ScenarioConfig cfg = paper_scenario();
  cfg.deployment.count = 4;                      // 4 nodes in a 200 m field
  cfg.deployment.region = geom::Aabb::square(200.0);
  cfg.max_deployment_attempts = 3;
  EXPECT_THROW((void)run_scenario(cfg), std::runtime_error);
}

TEST(Scenario, PdeStimulusRuns) {
  PaperSetupOverrides o;
  o.stimulus = StimulusKind::kPde;
  ScenarioConfig cfg = paper_scenario(o);
  cfg.pde.nx = 48;  // keep the test quick
  cfg.pde.ny = 48;
  const RunResult r = run_scenario(cfg);
  EXPECT_GT(r.metrics.reached, 5U);
  EXPECT_GT(r.metrics.detected, 0U);
}

TEST(Scenario, PlumeStimulusTriggersCoveredTimeouts) {
  PaperSetupOverrides o;
  o.stimulus = StimulusKind::kPlume;
  ScenarioConfig cfg = paper_scenario(o);
  cfg.duration_s = 400.0;  // long enough for the plume to dissolve
  cfg.protocol.covered_timeout_s = 10.0;
  const RunResult r = run_scenario(cfg);
  EXPECT_GT(r.metrics.detected, 0U);
  // The plume recedes, so covered nodes must eventually time out to safe.
  EXPECT_GT(r.metrics.protocol.covered_timeouts, 0U);
}

TEST(Scenario, TwoSourceStimulusRuns) {
  PaperSetupOverrides o;
  o.stimulus = StimulusKind::kTwoSources;
  const ScenarioConfig cfg = paper_scenario(o);
  EXPECT_EQ(make_stimulus(cfg)->name(), "composite");
  const RunResult two = run_scenario(cfg);

  PaperSetupOverrides single;
  const RunResult one = run_scenario(paper_scenario(single));
  // A second release can only add coverage: more nodes reached.
  EXPECT_GT(two.metrics.reached, one.metrics.reached);
  EXPECT_GT(two.metrics.detected, 0U);
}

TEST(Scenario, DutyCycleIsRadioSilentAndBoundedByPeriod) {
  PaperSetupOverrides o;
  o.policy = core::Policy::kDutyCycle;
  ScenarioConfig cfg = paper_scenario(o);
  cfg.protocol.duty_cycle.period_s = 4.0;
  const RunResult r = run_scenario(cfg);
  // Pure local sensing: the classic LPL baseline never keys the radio.
  EXPECT_EQ(r.metrics.network.broadcasts, 0U);
  EXPECT_EQ(r.metrics.protocol.requests_sent, 0U);
  EXPECT_EQ(r.metrics.protocol.alert_entries, 0U);
  EXPECT_GT(r.metrics.detected, 0U);
  // Delay is bounded by the fixed period, not by sleep.max_s (20 s here).
  EXPECT_LE(r.metrics.max_delay_s, 4.0 + 1e-6);
  EXPECT_GT(r.metrics.max_delay_s, 0.0);
}

TEST(Scenario, ThresholdHoldListensButNeverQueriesWhileSafe) {
  PaperSetupOverrides o;
  o.policy = core::Policy::kThresholdHold;
  const RunResult r = run_scenario(paper_scenario(o));
  EXPECT_GT(r.metrics.detected, 0U);
  // REQUESTs come only from covered nodes' detection exchange, so there are
  // at most as many as there are detections (safe nodes never query; under
  // SAS/PAS every uneventful wake sends one).
  EXPECT_LE(r.metrics.protocol.requests_sent,
            static_cast<std::uint64_t>(r.metrics.detected));
  EXPECT_GT(r.metrics.network.broadcasts, 0U);

  PaperSetupOverrides sas;
  sas.policy = core::Policy::kSas;
  const RunResult s = run_scenario(paper_scenario(sas));
  EXPECT_LT(r.metrics.network.broadcasts, s.metrics.network.broadcasts);
}

TEST(Scenario, PolicyEnergyOrdering) {
  // On one seed of the paper scenario, the family must order as designed:
  // always-on NS is the ceiling; PAS pays more than the passive policies
  // for its messaging; DutyCycle and ThresholdHold sit at the bottom.
  const auto energy_of = [](core::Policy p) {
    PaperSetupOverrides o;
    o.policy = p;
    o.seed = 7;
    return run_scenario(paper_scenario(o)).metrics.avg_energy_j;
  };
  const double ns = energy_of(core::Policy::kNeverSleep);
  const double pas = energy_of(core::Policy::kPas);
  const double hold = energy_of(core::Policy::kThresholdHold);
  const double duty = energy_of(core::Policy::kDutyCycle);
  EXPECT_GT(ns, pas);
  EXPECT_GT(pas, hold);
  EXPECT_GT(hold, duty);
}

TEST(Scenario, FailuresReduceDetections) {
  PaperSetupOverrides o;
  ScenarioConfig healthy = paper_scenario(o);
  ScenarioConfig faulty = healthy;
  faulty.failures.fraction = 0.3;
  faulty.failures.window_start_s = 0.0;
  faulty.failures.window_end_s = 1.0;
  const RunResult h = run_scenario(healthy);
  const RunResult f = run_scenario(faulty);
  EXPECT_LT(f.metrics.detected, h.metrics.detected);
}

}  // namespace
}  // namespace pas::world

#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace pas::runtime {
namespace {

TEST(ThreadPool, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1U);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++done;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] { ++done; });
    }
  }
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, TasksCanSubmitTasks) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 7; });
    return inner.get();
  });
  EXPECT_EQ(outer.get(), 7);
}

}  // namespace
}  // namespace pas::runtime

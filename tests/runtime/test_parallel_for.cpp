#include "runtime/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace pas::runtime {
namespace {

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, SingleIteration) {
  ThreadPool pool(2);
  int value = 0;
  parallel_for(pool, 1, [&](std::size_t i) { value = static_cast<int>(i) + 5; });
  EXPECT_EQ(value, 5);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("bad index");
                   }),
      std::runtime_error);
}

TEST(ParallelMap, ResultsInIndexOrder) {
  ThreadPool pool(4);
  const auto out =
      parallel_map(pool, 256, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 256U);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, WorksWithNonTrivialTypes) {
  ThreadPool pool(2);
  const auto out = parallel_map(pool, 10, [](std::size_t i) {
    return std::string(i, 'x');
  });
  EXPECT_EQ(out[3], "xxx");
  EXPECT_EQ(out[0], "");
}

}  // namespace
}  // namespace pas::runtime

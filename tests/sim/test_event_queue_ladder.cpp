// Stress and differential tests for the ladder/calendar pending-set index.
//
// Everything here runs against whichever index the build compiled in: the
// default ladder or the PAS_EVENTQ_HEAP binary heap. The dispatch-order
// contract is identical for both — strict (time, seq) with seq assigned in
// push order — so the same assertions double as the differential check: CI
// builds both variants and runs this suite under each, and the randomized
// oracle below pins the exact (time, token) dispatch sequence that the two
// builds must share. Ladder-only shape-counter assertions are guarded with
// #ifndef PAS_EVENTQ_HEAP.

#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace pas::sim {
namespace {

// --- Randomized oracle: every op checked against a brute-force model ------

TEST(EventQueueLadder, RandomizedOpsMatchReferenceModel) {
  // Mixed push / cancel / pop / run_next / clear traffic with timestamps
  // spanning every region of the ladder (sub-second, mid-horizon,
  // far-future, and exact duplicates of earlier times). The queue must
  // agree with the brute-force model on every accept/reject decision,
  // every next_time(), and the complete dispatch order.
  struct Ref {
    double time;
    std::size_t order;  // push order = expected FIFO tiebreak
    int token;
    bool live;
    EventId id;
  };
  EventQueue q;
  std::vector<Ref> ref;
  std::vector<int> executed;
  std::vector<int> expected;
  Pcg32 rng(7777, 99);
  int next_token = 0;
  std::size_t live_count = 0;

  const auto model_pop = [&]() -> int {
    auto best = ref.end();
    for (auto it = ref.begin(); it != ref.end(); ++it) {
      if (!it->live) continue;
      if (best == ref.end() || it->time < best->time ||
          (it->time == best->time && it->order < best->order)) {
        best = it;
      }
    }
    best->live = false;
    --live_count;
    return best->token;
  };
  const auto model_next_time = [&]() -> double {
    double t = kNever;
    for (const Ref& e : ref) {
      if (e.live && e.time < t) t = e.time;
    }
    return t;
  };
  const auto draw_time = [&]() -> double {
    const double u = rng.uniform01();
    if (u < 0.40) return rng.uniform(0.0, 1.0);        // ladder bottom
    if (u < 0.70) return rng.uniform(0.0, 1.0e3);      // calendar rungs
    if (u < 0.85) return rng.uniform(1.0e6, 1.0e9);    // far-future overflow
    if (!ref.empty()) {                                // exact duplicate
      return ref[static_cast<std::size_t>(rng.uniform_int(
                     0, static_cast<std::int64_t>(ref.size()) - 1))]
          .time;
    }
    return rng.uniform(0.0, 1.0e3);
  };

  for (int op = 0; op < 6000; ++op) {
    const double u = rng.uniform01();
    if (u < 0.45 || live_count == 0) {
      const double t = draw_time();
      const int token = next_token++;
      const EventId id =
          q.push(t, [token, &executed] { executed.push_back(token); });
      ref.push_back(Ref{t, ref.size(), token, true, id});
      ++live_count;
    } else if (u < 0.70) {
      auto& e = ref[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(ref.size()) - 1))];
      const bool accepted = q.cancel(e.id);
      EXPECT_EQ(accepted, e.live);
      if (e.live) {
        e.live = false;
        --live_count;
      }
    } else if (u < 0.85) {
      q.pop().callback();
      ASSERT_FALSE(executed.empty());
      expected.push_back(model_pop());
      ASSERT_EQ(executed.back(), expected.back());
    } else if (u < 0.99) {
      q.run_next();
      ASSERT_FALSE(executed.empty());
      expected.push_back(model_pop());
      ASSERT_EQ(executed.back(), expected.back());
    } else {
      q.clear();
      for (Ref& e : ref) e.live = false;
      live_count = 0;
    }
    ASSERT_EQ(q.size(), live_count);
    ASSERT_DOUBLE_EQ(q.next_time(), model_next_time());
  }
  while (!q.empty()) {
    q.run_next();
    expected.push_back(model_pop());
  }
  EXPECT_EQ(executed, expected);
  EXPECT_EQ(live_count, 0U);
}

// --- Targeted region / boundary scenarios ---------------------------------

TEST(EventQueueLadder, SameTimestampFloodDispatchesFifo) {
  // 20k events at one timestamp exceed every batch threshold, but the batch
  // has zero time span, so it must be sorted (by seq) rather than split —
  // and the dispatch order must be exactly push order.
  EventQueue q;
  std::vector<int> order;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    q.push(5.0, [i, &order] { order.push_back(i); });
  }
  q.push(4.0, [&order] { order.push_back(-1); });
  q.push(6.0, [&order, kN] { order.push_back(kN); });
  while (!q.empty()) q.run_next();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kN) + 2);
  EXPECT_EQ(order.front(), -1);
  EXPECT_EQ(order.back(), kN);
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i) + 1], i);
  }
}

TEST(EventQueueLadder, BucketBoundaryIntegerTimesStaySorted) {
  // Integer timestamps land exactly on calendar bucket boundaries (the
  // rounding-sensitive spot for time -> bucket-index mapping). Push a
  // permutation with many duplicates; dispatch must be the stable sort.
  EventQueue q;
  std::vector<std::pair<double, int>> dispatched;
  std::vector<std::pair<double, int>> expect;
  for (int i = 0; i < 4096; ++i) {
    const double t = static_cast<double>((i * 37) % 1024);
    q.push(t, [t, i, &dispatched] { dispatched.emplace_back(t, i); });
    expect.emplace_back(t, i);
  }
  std::stable_sort(expect.begin(), expect.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(dispatched, expect);
}

TEST(EventQueueLadder, FarFutureOverflowReseedsInOrder) {
  // Two widely separated clusters reseed into one very wide calendar; the
  // dense near cluster collapses into its first bucket and must split into
  // a finer sub-rung. Pops interleaved with fresh pushes below and above
  // the dispatch frontier must still come out in global order.
  EventQueue q;
  std::vector<double> popped;
  Pcg32 rng(42, 7);
  std::vector<double> times;
  for (int i = 0; i < 1000; ++i) times.push_back(rng.uniform(0.0, 1.0));
  for (int i = 0; i < 1000; ++i) times.push_back(rng.uniform(1.0e8, 1.0e9));
  for (const double t : times) {
    q.push(t, [t, &popped] { popped.push_back(t); });
  }
  // Drain half the near cluster, then inject new events both below and
  // above the current dispatch frontier.
  for (int i = 0; i < 500; ++i) q.run_next();
  const double frontier = popped.back();
  q.push(frontier, [&popped, frontier] { popped.push_back(frontier); });
  q.push(2.0e9, [&popped] { popped.push_back(2.0e9); });
  while (!q.empty()) q.run_next();
  ASSERT_EQ(popped.size(), times.size() + 2);
  for (std::size_t i = 1; i < popped.size(); ++i) {
    ASSERT_LE(popped[i - 1], popped[i]) << "at index " << i;
  }
  EXPECT_DOUBLE_EQ(popped.back(), 2.0e9);
#ifndef PAS_EVENTQ_HEAP
  // Ladder-only: the initial reseed built a calendar over both clusters,
  // and the dense near cluster (collapsed into one coarse bucket by the
  // 1e9-wide span) had to spawn a finer sub-rung.
  EXPECT_GE(q.stats().bucket_resizes, 1U);
  EXPECT_GE(q.stats().rung_spawns, 1U);
#endif
}

TEST(EventQueueLadder, ReentrantPushFromCallbackKeepsSeqOrder) {
  // Events pushed from inside run_next() carry later seq numbers than
  // everything already pending, so a same-timestamp reentrant push fires
  // after the pre-existing ties but before any later timestamp.
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] {                 // A: first at t=1
    order.push_back(0);
    q.push(1.0, [&] {               // D: same time, pushed during A
      order.push_back(3);
      q.push(1.0, [&] { order.push_back(4); });  // E: chained reentrant
    });
  });
  q.push(1.0, [&] { order.push_back(1); });  // B: second at t=1
  q.push(2.0, [&] { order.push_back(5); });  // C: later time
  q.push(1.0, [&] { order.push_back(2); });  // F: third at t=1
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(EventQueueLadder, ReentrantPushStormFromCallbacks) {
  // Timer-style self-rearm at scale: each callback re-pushes itself a few
  // steps ahead, so the structure is continuously refilled while it
  // drains. The global dispatch sequence must stay nondecreasing in time
  // and complete exactly the expected number of events.
  EventQueue q;
  Pcg32 rng(11, 3);
  std::size_t fired = 0;
  double last = 0.0;
  constexpr std::size_t kTotal = 50000;
  struct Rearm {
    EventQueue* q;
    Pcg32* rng;
    std::size_t* fired;
    double* last;
    double time;
    void operator()() const {
      ASSERT_GE(time, *last);
      *last = time;
      if (++*fired + q->size() < kTotal) {
        const double next = time + rng->uniform(0.0, 2.0);
        q->push(next, Rearm{q, rng, fired, last, next});
      }
    }
  };
  for (int i = 0; i < 64; ++i) {
    const double t = rng.uniform(0.0, 2.0);
    q.push(t, Rearm{&q, &rng, &fired, &last, t});
  }
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, kTotal);
}

// --- Warm-reuse determinism -----------------------------------------------

TEST(EventQueueLadder, StatsAndOrderIdenticalAcrossWarmReuse) {
  // world::Workspace reuses one queue across runs via clear(), which keeps
  // bucket arrays and slab capacity warm. The Stats counters (and of
  // course the dispatch order) must be a pure function of the schedule —
  // identical between a fresh queue and an arbitrarily reused one.
  const auto run_schedule = [](EventQueue& q, std::vector<double>* popped) {
    Pcg32 rng(99, 5);
    std::vector<EventId> ids;
    for (int i = 0; i < 5000; ++i) {
      const double u = rng.uniform01();
      const double t = u < 0.5   ? rng.uniform(0.0, 1.0)
                       : u < 0.9 ? rng.uniform(0.0, 1.0e3)
                                 : rng.uniform(1.0e6, 1.0e9);
      ids.push_back(q.push(t, [t, popped] { popped->push_back(t); }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 3) q.cancel(ids[i]);
    for (int i = 0; i < 1000; ++i) q.run_next();
    for (std::size_t i = 1; i < ids.size(); i += 7) q.cancel(ids[i]);
    while (!q.empty()) q.run_next();
  };
  const auto stats_eq = [](const EventQueue::Stats& a,
                           const EventQueue::Stats& b) {
    EXPECT_EQ(a.pushed, b.pushed);
    EXPECT_EQ(a.cancelled, b.cancelled);
    EXPECT_EQ(a.max_live, b.max_live);
    EXPECT_EQ(a.rung_spawns, b.rung_spawns);
    EXPECT_EQ(a.bucket_resizes, b.bucket_resizes);
    EXPECT_EQ(a.max_bucket, b.max_bucket);
    EXPECT_EQ(a.dead_skips, b.dead_skips);
  };

  EventQueue fresh;
  std::vector<double> fresh_popped;
  run_schedule(fresh, &fresh_popped);
  const EventQueue::Stats fresh_stats = fresh.stats();

  EventQueue reused;
  std::vector<double> scratch;
  run_schedule(reused, &scratch);  // dirty the internal layout
  reused.clear();
  std::vector<double> reused_popped;
  run_schedule(reused, &reused_popped);

  EXPECT_EQ(fresh_popped, reused_popped);
  stats_eq(fresh_stats, reused.stats());
}

// --- Ladder-only shape counters -------------------------------------------

#ifndef PAS_EVENTQ_HEAP

TEST(EventQueueLadder, OverfullBucketSpawnsSubRung) {
  // A dense cluster inside a wide horizon: the reseed spreads 10k events
  // over the full span, so the cluster collapses into one bucket, which
  // must spawn a finer sub-rung instead of being sorted wholesale.
  EventQueue q;
  Pcg32 rng(3, 1);
  std::vector<double> popped;
  for (int i = 0; i < 10000; ++i) {
    const double t = rng.uniform(0.0, 1.0e-6);
    q.push(t, [t, &popped] { popped.push_back(t); });
  }
  for (int i = 0; i < 100; ++i) {
    const double t = rng.uniform(1.0, 1.0e3);
    q.push(t, [t, &popped] { popped.push_back(t); });
  }
  while (!q.empty()) q.run_next();
  for (std::size_t i = 1; i < popped.size(); ++i) {
    ASSERT_LE(popped[i - 1], popped[i]);
  }
  EXPECT_GE(q.stats().rung_spawns, 1U);
  EXPECT_GE(q.stats().bucket_resizes, 1U);
  EXPECT_GT(q.stats().max_bucket, 0U);
}

TEST(EventQueueLadder, DeadSkipsCountCancelledEntriesAtDrain) {
  // Cancel after the calendar has been seeded: the cancelled entries stay
  // in their buckets (lazy deletion) and must be counted as dead skips
  // when the drain reaches them.
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.push(1.0 + i, [] {}));
  }
  q.run_next();  // forces the reseed that distributes the rest
  // Keep the last event live: a dead entry after the final dispatch would
  // (correctly) never be drained, and every counted skip is counted once —
  // so the counter must land exactly on the number of cancellations.
  std::uint64_t cancelled = 0;
  for (std::size_t i = 1; i + 1 < ids.size(); i += 2) {
    if (q.cancel(ids[i])) ++cancelled;
  }
  while (!q.empty()) q.run_next();
  EXPECT_EQ(q.stats().dead_skips, cancelled);
}

#endif  // !PAS_EVENTQ_HEAP

}  // namespace
}  // namespace pas::sim

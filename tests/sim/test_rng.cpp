#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace pas::sim {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Pcg32, Deterministic) {
  Pcg32 a(7, 11), b(7, 11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, StreamsAreIndependent) {
  Pcg32 a(7, 1), b(7, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Pcg32, Uniform01InRange) {
  Pcg32 rng(123, 456);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Pcg32, Uniform01MeanNearHalf) {
  Pcg32 rng(9, 9);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Pcg32, UniformRespectsBounds) {
  Pcg32 rng(5, 6);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 7.0);
  }
}

TEST(Pcg32, UniformIntCoversRangeInclusive) {
  Pcg32 rng(11, 13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4U);
}

TEST(Pcg32, UniformIntDegenerateRange) {
  Pcg32 rng(1, 1);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
  EXPECT_EQ(rng.uniform_int(6, 2), 6);  // lo >= hi returns lo
}

TEST(Pcg32, UniformIntIsRoughlyUniform) {
  Pcg32 rng(3, 17);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kN / 10.0, kN / 10.0 * 0.1);
  }
}

TEST(Pcg32, NormalMomentsMatch) {
  Pcg32 rng(21, 22);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Pcg32, ExponentialMeanMatches) {
  Pcg32 rng(31, 32);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(Pcg32, BernoulliEdgeCases) {
  Pcg32 rng(41, 42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Pcg32, BernoulliRateMatches) {
  Pcg32 rng(51, 52);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(SeedSequence, SameRootSameStreams) {
  const SeedSequence a(99), b(99);
  Pcg32 s1 = a.stream(SeedSequence::kChannel, 3);
  Pcg32 s2 = b.stream(SeedSequence::kChannel, 3);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(s1.next(), s2.next());
}

TEST(SeedSequence, DifferentDomainsDiffer) {
  const SeedSequence seq(99);
  Pcg32 a = seq.stream(SeedSequence::kChannel, 0);
  Pcg32 b = seq.stream(SeedSequence::kMacJitter, 0);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(SeedSequence, DifferentIndicesDiffer) {
  const SeedSequence seq(99);
  Pcg32 a = seq.stream(SeedSequence::kChannel, 0);
  Pcg32 b = seq.stream(SeedSequence::kChannel, 1);
  EXPECT_NE(a.next(), b.next());
}

TEST(SeedSequence, LabelledStreamsAreStable) {
  const SeedSequence seq(7);
  Pcg32 a = seq.stream("foo");
  Pcg32 b = seq.stream("foo");
  Pcg32 c = seq.stream("bar");
  EXPECT_EQ(a.next(), b.next());
  Pcg32 a2 = seq.stream("foo");
  EXPECT_NE(a2.next(), c.next());
}

}  // namespace
}  // namespace pas::sim

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pas::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator s;
  std::vector<double> seen;
  s.schedule_at(1.5, [&] { seen.push_back(s.now()); });
  s.schedule_at(0.5, [&] { seen.push_back(s.now()); });
  s.run();
  EXPECT_EQ(seen, (std::vector<double>{0.5, 1.5}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  double fired_at = -1.0;
  s.schedule_at(2.0, [&] {
    s.schedule_in(3.0, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, ScheduleInClampsNegativeDelay) {
  Simulator s;
  double fired_at = -1.0;
  s.schedule_at(1.0, [&] {
    s.schedule_in(-5.0, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.0);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.schedule_at(2.0, [&] {
    EXPECT_THROW(s.schedule_at(1.0, [] {}), std::invalid_argument);
  });
  s.run();
}

TEST(Simulator, RunUntilStopsAtDeadlineAndSetsClock) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(static_cast<double>(i), [&] { ++count; });
  }
  const std::size_t executed = s.run_until(5.5);
  EXPECT_EQ(executed, 5U);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(s.now(), 5.5);
  EXPECT_EQ(s.pending_events(), 5U);
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtDeadline) {
  Simulator s;
  bool ran = false;
  s.schedule_at(5.0, [&] { ran = true; });
  s.run_until(5.0);
  EXPECT_TRUE(ran);
}

TEST(Simulator, StopEndsRunEarly) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(static_cast<double>(i), [&] {
      ++count;
      if (count == 3) s.stop();
    });
  }
  s.run();
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(s.stopped());
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  const EventId id = s.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(s.pending(id));
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, EventsScheduledFromCallbacksRun) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(1.0, [&] {
    order.push_back(1);
    s.schedule_at(1.0, [&] { order.push_back(2); });  // same timestamp
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, ExecutedEventsCounts) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_in(1.0, [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 7U);
}

TEST(Simulator, RunUntilPastDeadlineThrows) {
  Simulator s;
  s.schedule_at(1.0, [] {});
  s.run_until(2.0);
  EXPECT_THROW(s.run_until(1.0), std::invalid_argument);
}

TEST(Simulator, ResetReturnsToFreshState) {
  Simulator s;
  s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  s.run_until(1.5);
  s.reset();
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending_events(), 0U);
  EXPECT_EQ(s.executed_events(), 0U);
  std::vector<double> fired;
  s.schedule_at(0.5, [&] { fired.push_back(s.now()); });
  s.schedule_at(1.0, [&] { fired.push_back(s.now()); });
  s.run();
  EXPECT_EQ(fired, (std::vector<double>{0.5, 1.0}));
}

TEST(Simulator, ResetFromInsideCallbackIsSafe) {
  Simulator s;
  int later = 0;
  s.schedule_at(1.0, [&] {
    s.schedule_at(2.0, [&later] { ++later; });
    s.reset();
  });
  s.run();
  EXPECT_EQ(later, 0);
  EXPECT_EQ(s.pending_events(), 0U);
  // The kernel must be fully reusable afterwards.
  std::vector<double> fired;
  s.schedule_at(1.0, [&] { fired.push_back(s.now()); });
  s.schedule_at(2.0, [&] { fired.push_back(s.now()); });
  s.run();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
}

TEST(Simulator, NextEventTime) {
  Simulator s;
  EXPECT_EQ(s.next_event_time(), kNever);
  s.schedule_at(4.0, [] {});
  EXPECT_DOUBLE_EQ(s.next_event_time(), 4.0);
}

}  // namespace
}  // namespace pas::sim

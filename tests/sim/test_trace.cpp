#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace pas::sim {
namespace {

TEST(TraceLog, DisabledByDefault) {
  TraceLog log;
  EXPECT_FALSE(log.enabled());
  log.record(1.0, TraceCategory::kState, 0, "ignored");
  EXPECT_EQ(log.size(), 0U);
}

TEST(TraceLog, RecordsWhenEnabled) {
  TraceLog log;
  log.enable();
  log.record(1.0, TraceCategory::kState, 3, "safe -> alert");
  log.record(2.0, TraceCategory::kMessage, 4, "REQUEST");
  ASSERT_EQ(log.size(), 2U);
  EXPECT_EQ(log.events()[0].node, 3U);
  EXPECT_EQ(log.events()[1].category, TraceCategory::kMessage);
}

TEST(TraceLog, FilterByCategory) {
  TraceLog log;
  log.enable();
  log.record(1.0, TraceCategory::kState, 0, "a");
  log.record(2.0, TraceCategory::kMessage, 0, "b");
  log.record(3.0, TraceCategory::kState, 1, "c");
  const auto states = log.filter(TraceCategory::kState);
  ASSERT_EQ(states.size(), 2U);
  EXPECT_EQ(states[1].text, "c");
}

TEST(TraceLog, FormatContainsFields) {
  TraceLog log;
  log.enable();
  log.record(12.0, TraceCategory::kDetection, 7, "detected stimulus");
  const std::string s = log.format();
  EXPECT_NE(s.find("t=12.000s"), std::string::npos);
  EXPECT_NE(s.find("[detect]"), std::string::npos);
  EXPECT_NE(s.find("node 7"), std::string::npos);
}

TEST(TraceLog, ClearEmptiesLog) {
  TraceLog log;
  log.enable();
  log.record(1.0, TraceCategory::kMisc, 0, "x");
  log.clear();
  EXPECT_EQ(log.size(), 0U);
}

TEST(TraceCategoryNames, AllDistinct) {
  EXPECT_STREQ(to_string(TraceCategory::kState), "state");
  EXPECT_STREQ(to_string(TraceCategory::kMessage), "msg");
  EXPECT_STREQ(to_string(TraceCategory::kDetection), "detect");
  EXPECT_STREQ(to_string(TraceCategory::kSleep), "sleep");
  EXPECT_STREQ(to_string(TraceCategory::kFailure), "fail");
  EXPECT_STREQ(to_string(TraceCategory::kMisc), "misc");
}

}  // namespace
}  // namespace pas::sim

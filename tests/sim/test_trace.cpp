#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace pas::sim {
namespace {

TEST(TraceLog, DisabledByDefault) {
  TraceLog log;
  EXPECT_FALSE(log.enabled());
  log.record(1.0, TraceCategory::kState, 0);
  EXPECT_EQ(log.size(), 0U);
}

TEST(TraceLog, RecordsWhenEnabled) {
  TraceLog log;
  log.enable();
  log.record(1.0, TraceCategory::kState, 3, TraceKind::kWoke);
  log.record(2.0, TraceCategory::kMessage, 4, TraceKind::kRequest);
  ASSERT_EQ(log.size(), 2U);
  EXPECT_EQ(log.events()[0].node, 3U);
  EXPECT_EQ(log.events()[0].kind, TraceKind::kWoke);
  EXPECT_EQ(log.events()[1].category, TraceCategory::kMessage);
}

TEST(TraceLog, RecordsFullEvents) {
  TraceLog log;
  log.enable();
  TraceEvent e;
  e.time = 4.5;
  e.category = TraceCategory::kSleep;
  e.kind = TraceKind::kSleepFor;
  e.node = 9;
  e.x = 2.5;
  log.record(e);
  ASSERT_EQ(log.size(), 1U);
  EXPECT_EQ(log.events()[0].kind, TraceKind::kSleepFor);
  EXPECT_DOUBLE_EQ(log.events()[0].x, 2.5);
}

TEST(TraceLog, FilterByCategory) {
  TraceLog log;
  log.enable();
  log.record(1.0, TraceCategory::kState, 0, TraceKind::kWoke);
  log.record(2.0, TraceCategory::kMessage, 0, TraceKind::kRequest);
  log.record(3.0, TraceCategory::kState, 1, TraceKind::kNodeFailed);
  const auto states = log.filter(TraceCategory::kState);
  ASSERT_EQ(states.size(), 2U);
  EXPECT_EQ(states[1].kind, TraceKind::kNodeFailed);
}

TEST(TraceLog, FormatContainsFields) {
  TraceLog log;
  log.enable();
  log.record(12.0, TraceCategory::kDetection, 7, TraceKind::kDetected);
  const std::string s = log.format();
  EXPECT_NE(s.find("t=12.000s"), std::string::npos);
  EXPECT_NE(s.find("[detect]"), std::string::npos);
  EXPECT_NE(s.find("node 7"), std::string::npos);
  EXPECT_NE(s.find("detected stimulus"), std::string::npos);
}

TEST(TraceLog, ClearEmptiesLog) {
  TraceLog log;
  log.enable();
  log.record(1.0, TraceCategory::kMisc, 0);
  log.clear();
  EXPECT_EQ(log.size(), 0U);
}

TEST(TraceCategoryNames, AllDistinct) {
  EXPECT_STREQ(to_string(TraceCategory::kState), "state");
  EXPECT_STREQ(to_string(TraceCategory::kMessage), "msg");
  EXPECT_STREQ(to_string(TraceCategory::kDetection), "detect");
  EXPECT_STREQ(to_string(TraceCategory::kSleep), "sleep");
  EXPECT_STREQ(to_string(TraceCategory::kFailure), "fail");
  EXPECT_STREQ(to_string(TraceCategory::kMisc), "misc");
}

TEST(TraceKindNames, StableIdentifiers) {
  // These strings are the "kind" field of the --trace JSONL export; changing
  // one breaks downstream consumers.
  EXPECT_STREQ(to_string(TraceKind::kMark), "mark");
  EXPECT_STREQ(to_string(TraceKind::kWoke), "woke");
  EXPECT_STREQ(to_string(TraceKind::kSleepFor), "sleep_for");
  EXPECT_STREQ(to_string(TraceKind::kDetected), "detected");
  EXPECT_STREQ(to_string(TraceKind::kRequest), "request");
  EXPECT_STREQ(to_string(TraceKind::kResponse), "response");
  EXPECT_STREQ(to_string(TraceKind::kStateChange), "state_change");
  EXPECT_STREQ(to_string(TraceKind::kCoveredTimeout), "covered_timeout");
  EXPECT_STREQ(to_string(TraceKind::kArrivalReceded), "arrival_receded");
  EXPECT_STREQ(to_string(TraceKind::kActualVelocity), "actual_velocity");
  EXPECT_STREQ(to_string(TraceKind::kEval), "eval");
  EXPECT_STREQ(to_string(TraceKind::kNodeFailed), "node_failed");
}

TEST(FormatEvent, DeferredFormattingMatchesLegacyText) {
  // Formatting happens at read time from the structured args; spot-check
  // the renderings callers grep for.
  TraceEvent sleep_for;
  sleep_for.kind = TraceKind::kSleepFor;
  sleep_for.x = 2.5;
  EXPECT_EQ(format_event(sleep_for), "sleeping for 2.5s");

  TraceEvent state;
  state.kind = TraceKind::kStateChange;
  state.s1 = "safe";
  state.s2 = "alert";
  EXPECT_EQ(format_event(state), "safe -> alert");

  TraceEvent woke;
  woke.kind = TraceKind::kWoke;
  EXPECT_EQ(format_event(woke), "woke up");

  TraceEvent velocity;
  velocity.kind = TraceKind::kActualVelocity;
  velocity.x = 1.5;
  velocity.y = -2.0;
  EXPECT_EQ(format_event(velocity), "actual velocity (1.5, -2)");
}

}  // namespace
}  // namespace pas::sim

#include "sim/timer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pas::sim {
namespace {

TEST(Timer, FiresBoundBodyAtArmedTime) {
  Simulator s;
  std::vector<double> fired;
  Timer t;
  t.bind(s, [&] { fired.push_back(s.now()); });
  t.arm_in(2.5);
  s.run();
  EXPECT_EQ(fired, (std::vector<double>{2.5}));
}

TEST(Timer, RearmFromOwnBodyMakesAPeriodicTimer) {
  Simulator s;
  std::vector<double> fired;
  Timer t;
  t.bind(s, [&] {
    fired.push_back(s.now());
    if (fired.size() < 4) t.arm_in(1.0);
  });
  t.arm_in(1.0);
  s.run();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(Timer, CancelPreventsFiring) {
  Simulator s;
  int hits = 0;
  Timer t;
  t.bind(s, [&] { ++hits; });
  t.arm_in(1.0);
  EXPECT_TRUE(t.pending());
  EXPECT_TRUE(t.cancel());
  EXPECT_FALSE(t.pending());
  s.run();
  EXPECT_EQ(hits, 0);
}

TEST(Timer, CancelWithoutArmReturnsFalse) {
  Simulator s;
  Timer t;
  t.bind(s, [] {});
  EXPECT_FALSE(t.cancel());
  EXPECT_FALSE(t.pending());
}

TEST(Timer, RearmWhileArmedReplacesThePendingFiring) {
  Simulator s;
  std::vector<double> fired;
  Timer t;
  t.bind(s, [&] { fired.push_back(s.now()); });
  t.arm_in(1.0);
  t.arm_in(5.0);  // supersedes the 1.0 occurrence
  s.run();
  EXPECT_EQ(fired, (std::vector<double>{5.0}));
  EXPECT_EQ(s.executed_events(), 1U);
}

TEST(Timer, ArmAtSchedulesAbsoluteTime) {
  Simulator s;
  double fired_at = -1.0;
  Timer t;
  t.bind(s, [&] { fired_at = s.now(); });
  s.schedule_at(2.0, [&t] { t.arm_at(7.0); });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(Timer, ReusableAcrossManyArms) {
  // The whole point: one bind, many cheap arms.
  Simulator s;
  int hits = 0;
  Timer t;
  t.bind(s, [&] { ++hits; });
  for (int i = 1; i <= 100; ++i) {
    t.arm_in(static_cast<double>(i));
    if (i % 3 == 0) t.cancel();  // 100 % 3 != 0, so the last arm survives
  }
  // Only the last arm survives the churn (every arm cancels its predecessor).
  s.run();
  EXPECT_EQ(hits, 1);
}

TEST(Timer, CancelAfterFiringReturnsFalse) {
  Simulator s;
  Timer t;
  t.bind(s, [] {});
  t.arm_in(1.0);
  s.run();
  EXPECT_FALSE(t.pending());
  EXPECT_FALSE(t.cancel());
}

}  // namespace
}  // namespace pas::sim

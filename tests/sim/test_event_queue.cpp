#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "sim/rng.hpp"

namespace pas::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0U);
  EXPECT_EQ(q.next_time(), kNever);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, NextTimeReflectsEarliestLive) {
  EventQueue q;
  const EventId early = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  EXPECT_TRUE(q.cancel(early));
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.pending(id));
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.pending(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterExecutionFails) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.pop().callback();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_FALSE(q.cancel(EventId{12345}));
}

TEST(EventQueue, RejectsInvalidTime) {
  EventQueue q;
  EXPECT_THROW(q.push(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.push(kNever, [] {}), std::invalid_argument);
}

TEST(EventQueue, RejectsEmptyCallback) {
  EventQueue q;
  EXPECT_THROW(q.push(1.0, EventQueue::Callback{}), std::invalid_argument);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kNever);
}

TEST(EventQueue, SizeCountsOnlyLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2U);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1U);
}

// --- Slot-map specifics: generation tagging and id reuse (ABA) ------------

TEST(EventQueue, CancelledSlotIsReusedWithFreshGeneration) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  ASSERT_TRUE(q.cancel(a));
  const EventId b = q.push(2.0, [] {});
  // The free list hands the same slot back, but under a new generation, so
  // the two handles never alias.
  EXPECT_EQ(b.slot(), a.slot());
  EXPECT_NE(b.generation(), a.generation());
  EXPECT_NE(a.value(), b.value());
  EXPECT_FALSE(q.pending(a));
  EXPECT_TRUE(q.pending(b));
}

TEST(EventQueue, StaleIdCannotCancelTheSlotsNewOccupant) {
  // The ABA scenario: cancel a, slot reused by b, then someone replays a.
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  ASSERT_TRUE(q.cancel(a));
  const EventId b = q.push(2.0, [] {});
  ASSERT_EQ(b.slot(), a.slot());
  EXPECT_FALSE(q.cancel(a));
  EXPECT_TRUE(q.pending(b));
  EXPECT_EQ(q.size(), 1U);
  EXPECT_DOUBLE_EQ(q.pop().time, 2.0);  // b survives and still fires
}

TEST(EventQueue, StaleIdAfterExecutionCannotTouchReusedSlot) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.pop();  // executes a, releasing its slot
  const EventId b = q.push(3.0, [] {});
  ASSERT_EQ(b.slot(), a.slot());
  EXPECT_FALSE(q.pending(a));
  EXPECT_FALSE(q.cancel(a));
  EXPECT_TRUE(q.pending(b));
}

TEST(EventQueue, ClearInvalidatesOutstandingIds) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  const EventId b = q.push(2.0, [] {});
  q.clear();
  EXPECT_FALSE(q.pending(a));
  EXPECT_FALSE(q.cancel(b));
  const EventId c = q.push(1.5, [] {});
  EXPECT_TRUE(q.pending(c));
  EXPECT_FALSE(q.pending(a));
  EXPECT_FALSE(q.pending(b));
  EXPECT_EQ(q.size(), 1U);
}

TEST(EventQueue, LongChurnNeverResurrectsAnId) {
  // Thousands of reuses of a tiny slot population: every retired id must
  // stay dead even while its slot cycles through new occupants.
  EventQueue q;
  std::vector<EventId> retired;
  EventId live = q.push(1.0, [] {});
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(q.cancel(live));
    retired.push_back(live);
    live = q.push(1.0 + i, [] {});
  }
  for (const EventId id : retired) {
    EXPECT_FALSE(q.pending(id));
    EXPECT_FALSE(q.cancel(id));
  }
  EXPECT_TRUE(q.pending(live));
  EXPECT_EQ(q.size(), 1U);
}

TEST(EventQueue, ClearDuringNestedDispatchReleasesEverySlotOnce) {
  // Callback A pumps the queue again (nested run_next); the inner callback
  // B clears it. Neither A's nor B's slot may reach the free list twice.
  EventQueue q;
  q.push(1.0, [&q] {           // A
    q.push(2.0, [&q] {         // B
      q.push(3.0, [] {});
      q.clear();
    });
    q.run_next();              // nested dispatch of B
  });
  q.run_next();                // dispatch of A
  EXPECT_TRUE(q.empty());
  const EventId a = q.push(1.0, [] {});
  const EventId b = q.push(2.0, [] {});
  const EventId c = q.push(3.0, [] {});
  EXPECT_NE(a.slot(), b.slot());
  EXPECT_NE(a.slot(), c.slot());
  EXPECT_NE(b.slot(), c.slot());
  EXPECT_DOUBLE_EQ(q.pop().time, 1.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 2.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RejectsEmptyStdFunctionAtPushTime) {
  EventQueue q;
  std::function<void()> empty;
  EXPECT_THROW(q.push(1.0, empty), std::invalid_argument);
  EXPECT_THROW(q.push(1.0, std::function<void()>{}), std::invalid_argument);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClearFromExecutingCallbackReleasesSlotOnce) {
  // A callback may clear the queue (Simulator::reset() does this). The
  // executing event's slot must not end up on the free list twice, or two
  // later pushes would share storage.
  EventQueue q;
  q.push(1.0, [&q] {
    q.push(2.0, [] {});
    q.clear();
  });
  q.run_next();
  EXPECT_TRUE(q.empty());
  const EventId a = q.push(1.0, [] {});
  const EventId b = q.push(2.0, [] {});
  EXPECT_NE(a.slot(), b.slot());
  EXPECT_TRUE(q.pending(a));
  EXPECT_TRUE(q.pending(b));
  EXPECT_DOUBLE_EQ(q.pop().time, 1.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 2.0);
  EXPECT_TRUE(q.empty());
}

// --- Cancellation stress against a reference model ------------------------

TEST(EventQueue, CancellationStressMatchesReferenceModel) {
  // Random pushes, cancels (live, repeated, and stale ids) and mid-stream
  // pops; the queue must agree with a brute-force reference on every
  // accept/reject decision and on the final execution order.
  struct Ref {
    double time;
    std::size_t order;  // insertion order = expected FIFO tiebreak
    int token;
    bool live;
    EventId id;
  };
  EventQueue q;
  std::vector<Ref> ref;
  std::vector<int> executed;
  std::vector<int> expected;
  sim::Pcg32 rng(2024, 11);
  int next_token = 0;
  std::size_t live_count = 0;

  const auto pop_expected = [&]() -> int {
    auto best = ref.end();
    for (auto it = ref.begin(); it != ref.end(); ++it) {
      if (!it->live) continue;
      if (best == ref.end() || it->time < best->time ||
          (it->time == best->time && it->order < best->order)) {
        best = it;
      }
    }
    best->live = false;
    --live_count;
    return best->token;
  };

  for (int op = 0; op < 4000; ++op) {
    const double u = rng.uniform01();
    if (u < 0.45 || live_count == 0) {
      const double t = rng.uniform(0.0, 50.0);
      const int token = next_token++;
      const EventId id =
          q.push(t, [token, &executed] { executed.push_back(token); });
      ref.push_back(Ref{t, ref.size(), token, true, id});
      ++live_count;
    } else if (u < 0.80) {
      // Cancel a uniformly chosen historical id — sometimes live, sometimes
      // already cancelled/executed (the queue must reject those).
      auto& e = ref[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ref.size()) - 1))];
      const bool accepted = q.cancel(e.id);
      EXPECT_EQ(accepted, e.live);
      if (e.live) {
        e.live = false;
        --live_count;
      }
    } else {
      auto popped = q.pop();
      popped.callback();
      ASSERT_FALSE(executed.empty());
      expected.push_back(pop_expected());
      EXPECT_EQ(executed.back(), expected.back());
    }
    ASSERT_EQ(q.size(), live_count);
  }
  while (!q.empty()) {
    q.pop().callback();
    expected.push_back(pop_expected());
  }
  EXPECT_EQ(executed, expected);
  EXPECT_EQ(live_count, 0U);
}

TEST(EventQueue, ManyInterleavedCancelsKeepOrder) {
  EventQueue q;
  std::vector<EventId> ids;
  std::vector<double> popped;
  for (int i = 0; i < 100; ++i) {
    const double t = static_cast<double>((i * 37) % 100);
    ids.push_back(q.push(t, [&popped, t] { popped.push_back(t); }));
  }
  // Cancel every third insertion.
  for (std::size_t i = 0; i < ids.size(); i += 3) q.cancel(ids[i]);
  while (!q.empty()) q.pop().callback();
  for (std::size_t i = 1; i < popped.size(); ++i) {
    EXPECT_LE(popped[i - 1], popped[i]);
  }
  EXPECT_EQ(popped.size(), 66U);
}

}  // namespace
}  // namespace pas::sim

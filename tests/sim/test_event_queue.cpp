#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pas::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0U);
  EXPECT_EQ(q.next_time(), kNever);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, NextTimeReflectsEarliestLive) {
  EventQueue q;
  const EventId early = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  EXPECT_TRUE(q.cancel(early));
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.pending(id));
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.pending(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterExecutionFails) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.pop().callback();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_FALSE(q.cancel(EventId{12345}));
}

TEST(EventQueue, RejectsInvalidTime) {
  EventQueue q;
  EXPECT_THROW(q.push(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.push(kNever, [] {}), std::invalid_argument);
}

TEST(EventQueue, RejectsEmptyCallback) {
  EventQueue q;
  EXPECT_THROW(q.push(1.0, EventQueue::Callback{}), std::invalid_argument);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kNever);
}

TEST(EventQueue, SizeCountsOnlyLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2U);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1U);
}

TEST(EventQueue, ManyInterleavedCancelsKeepOrder) {
  EventQueue q;
  std::vector<EventId> ids;
  std::vector<double> popped;
  for (int i = 0; i < 100; ++i) {
    const double t = static_cast<double>((i * 37) % 100);
    ids.push_back(q.push(t, [&popped, t] { popped.push_back(t); }));
  }
  // Cancel every third insertion.
  for (std::size_t i = 0; i < ids.size(); i += 3) q.cancel(ids[i]);
  while (!q.empty()) q.pop().callback();
  for (std::size_t i = 1; i < popped.size(); ++i) {
    EXPECT_LE(popped[i - 1], popped[i]);
  }
  EXPECT_EQ(popped.size(), 66U);
}

}  // namespace
}  // namespace pas::sim

#include "sim/small_fn.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <utility>

namespace pas::sim {
namespace {

TEST(SmallFn, DefaultIsEmpty) {
  SmallFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(SmallFn, InvokesSmallCapture) {
  int hits = 0;
  SmallFn fn = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, SmallCapturesAreInline) {
  int x = 0;
  SmallFn fn = [&x] { ++x; };
  EXPECT_TRUE(fn.is_inline());
}

TEST(SmallFn, CaptureAtCapacityIsInline) {
  std::array<char, SmallFn::kInlineBytes> blob{};
  blob[0] = 42;
  SmallFn fn = [blob] { (void)blob[0]; };
  EXPECT_TRUE(fn.is_inline());
}

TEST(SmallFn, OversizedCaptureFallsBackToHeap) {
  std::array<char, SmallFn::kInlineBytes + 1> blob{};
  blob[0] = 7;
  int seen = 0;
  SmallFn fn = [blob, &seen] { seen = blob[0]; };
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(seen, 7);
}

TEST(SmallFn, ThrowingMoveFallsBackToHeap) {
  struct ThrowingMove {
    ThrowingMove() = default;
    ThrowingMove(ThrowingMove&&) noexcept(false) {}
    void operator()() const {}
  };
  SmallFn fn = ThrowingMove{};
  EXPECT_FALSE(fn.is_inline());
  fn();
}

TEST(SmallFn, MoveTransfersTargetAndEmptiesSource) {
  int hits = 0;
  SmallFn a = [&hits] { ++hits; };
  SmallFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(SmallFn, MoveAssignReplacesTarget) {
  int first = 0, second = 0;
  SmallFn fn = [&first] { ++first; };
  fn = SmallFn{[&second] { ++second; }};
  fn();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(SmallFn, DestroysInlineTargetExactlyOnce) {
  // A non-trivially-destructible capture exercises the typed destroy path.
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    SmallFn fn = [token] { (void)*token; };
    EXPECT_TRUE(fn.is_inline());
    token.reset();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(SmallFn, DestroysHeapTargetExactlyOnce) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    std::array<char, SmallFn::kInlineBytes> pad{};
    SmallFn fn = [token, pad] { (void)*token, (void)pad[0]; };
    EXPECT_FALSE(fn.is_inline());
    token.reset();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(SmallFn, MovedFromNonTrivialTargetStillDestroyedOnce) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    SmallFn a = [token] { (void)*token; };
    token.reset();
    SmallFn b = std::move(a);
    b();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(SmallFn, ResetDropsTarget) {
  int hits = 0;
  SmallFn fn = [&hits] { ++hits; };
  fn.reset();
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(SmallFn, WrapsStdFunction) {
  int hits = 0;
  std::function<void()> f = [&hits] { ++hits; };
  SmallFn fn = f;
  fn();
  EXPECT_EQ(hits, 1);
}

TEST(SmallFn, ObjectStaysTwoCacheLines) {
  EXPECT_LE(sizeof(SmallFn), 128U);
}

}  // namespace
}  // namespace pas::sim
